//! Umbrella crate for the k-ECSS workspace.
//!
//! This package exists to give the workspace-level integration tests
//! (`tests/`) and example programs (`examples/`) a Cargo home; the library
//! itself only re-exports the member crates so examples and docs can reach
//! everything through one name.
//!
//! * [`graphs`] — sequential graph substrate (generators, connectivity, MST).
//! * [`kecss`] — the paper's algorithms (2-ECSS, TAP, k-ECSS, 3-ECSS).
//! * [`congest`] — CONGEST-model simulator and round accounting.

#![forbid(unsafe_code)]

pub use congest;
pub use graphs;
pub use kecss;
