//! Crate seam smoke test: a real server on an ephemeral port, one job end to
//! end, clean shutdown. (The workspace-level `tests/service.rs` suite covers
//! concurrency, backpressure, cancellation and malformed requests.)

use kecss_server::client::Client;
use kecss_server::protocol::Request;
use kecss_server::server::{Server, ServerConfig};
use std::time::Duration;

#[test]
fn submit_solve_fetch_shutdown() {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        queue_depth: 4,
        ..ServerConfig::default()
    })
    .expect("bind an ephemeral port");
    let handle = server.spawn();
    let addr = handle.addr().to_string();

    let mut client = Client::connect(&addr).unwrap();
    let Request::Submit(spec) = Request::parse("SUBMIT harary:12 3 kecss auto 7").unwrap() else {
        unreachable!()
    };
    let id = client.submit(&spec).unwrap().expect("queue has room");
    let payload = client
        .wait_result(id, Duration::from_millis(10), Duration::from_secs(120))
        .unwrap();
    let text = String::from_utf8(payload).unwrap();
    assert!(text.contains("verified k=3 yes"), "{text}");
    assert!(text.contains("spec harary:12 3 kecss auto 7"), "{text}");
    assert_eq!(client.status(id).unwrap(), "DONE");

    client.shutdown().unwrap();
    let summary = handle.join();
    assert_eq!(summary.submitted, 1);
    assert_eq!(summary.completed, 1);
    assert_eq!(summary.failed, 0);
}
