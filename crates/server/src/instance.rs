//! Instance specifications: the `<family>:<n>` / `inline:` grammar of the
//! service protocol, and the shared family-level generation policy.
//!
//! This module is the single source of truth for how an instance family name
//! plus a vertex count turns into a concrete [`Graph`]: the CLI's `generate`
//! command and the service's `SUBMIT` handler both call [`build_family`], so a
//! `ring:32` submitted over the wire is byte-for-byte the instance that
//! `kecss generate --family ring --n 32` writes to disk (for equal `k`,
//! `max-weight` and seed).

use graphs::{generators, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// The instance families the generator supports.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Family {
    /// Random k-edge-connected graph (Harary base + random extras).
    Random,
    /// Ring of cliques (high diameter).
    RingOfCliques,
    /// Torus grid.
    Torus,
    /// Harary graph (minimum k-edge-connected graph).
    Harary,
    /// Hypercube `Q_d` (edge connectivity exactly `log2 n`).
    Hypercube,
}

impl Family {
    /// Parses a family name as used by the CLI flags and the wire protocol.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "random" => Some(Family::Random),
            "ring" | "ring-of-cliques" => Some(Family::RingOfCliques),
            "torus" => Some(Family::Torus),
            "harary" => Some(Family::Harary),
            "hypercube" | "cube" => Some(Family::Hypercube),
            _ => None,
        }
    }

    /// The canonical family name (inverse of [`Family::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            Family::Random => "random",
            Family::RingOfCliques => "ring",
            Family::Torus => "torus",
            Family::Harary => "harary",
            Family::Hypercube => "hypercube",
        }
    }
}

impl fmt::Display for Family {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Builds a family instance: `n` vertices (approximate for grid-like
/// families), at least `k`-edge-connected, weights uniform in
/// `1..=max_weight` when `max_weight > 1`.
///
/// This is the family-level policy shared by the CLI and the service; the
/// result is a pure function of the four arguments.
///
/// # Errors
///
/// Returns a human-readable message for undersized instances, `k == 0`, or a
/// hypercube whose rounded size cannot be k-edge-connected.
pub fn build_family(
    family: Family,
    n: usize,
    k: usize,
    max_weight: u64,
    seed: u64,
) -> Result<Graph, String> {
    if n < 3 {
        return Err("instances need at least 3 vertices".into());
    }
    if k == 0 {
        return Err("the connectivity target k must be at least 1".into());
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graph = match family {
        Family::Random => generators::random_k_edge_connected(n, k, 2 * n, &mut rng),
        Family::RingOfCliques => {
            let clique = (k + 2).max(4);
            generators::ring_of_cliques((n / clique).max(3), clique, k.max(2), 1)
        }
        Family::Torus => {
            let side = ((n as f64).sqrt().round() as usize).max(3);
            generators::torus(side, side, 1)
        }
        Family::Harary => generators::harary(k, n, 1),
        Family::Hypercube => {
            // Round n up to the next power of two; the dimension is its log.
            let dim = (n.max(2).next_power_of_two().trailing_zeros() as usize).max(1);
            if k > dim {
                return Err(format!(
                    "a hypercube with n = {} vertices has edge connectivity exactly {dim}; \
                     lower k or raise n",
                    1usize << dim
                ));
            }
            generators::hypercube(dim, 1)
        }
    };
    if max_weight > 1 {
        generators::randomize_weights(&mut graph, max_weight, &mut rng);
    }
    Ok(graph)
}

/// The largest vertex count a submitted instance may request. A `SUBMIT`
/// line is attacker-controlled input to a long-running process, and
/// `Graph::new(n)` allocates per-vertex adjacency storage up front, so an
/// unbounded `n` would let one request OOM the server. 2²⁰ vertices keeps
/// the ROADMAP's "10⁶-vertex sweeps" ambition reachable while bounding a
/// single job's instance at tens of MB.
pub const MAX_INSTANCE_N: usize = 1 << 20;

/// The largest instance file a `file:` spec may name, checked against the
/// file's metadata *before* any byte is read. The readers stream in bounded
/// chunks, so this no longer bounds a transient buffer — it bounds the edge
/// count (and hence the built graph) a single request can name, alongside
/// the [`MAX_INSTANCE_N`] header check. 256 MiB comfortably covers a
/// [`MAX_INSTANCE_N`]-vertex instance in either format.
pub const MAX_INSTANCE_FILE_BYTES: u64 = 256 << 20;

/// A parsed instance field of a `SUBMIT` request.
///
/// Grammar (no whitespace inside the field — the request line is
/// whitespace-split, so `file:` paths with spaces cannot be submitted):
///
/// ```text
/// <family>:<n>[:<max-weight>]          e.g.  hypercube:64   random:48:30
/// inline:<n>:<u>-<v>-<w>[,<u>-<v>-<w>...]   e.g.  inline:3:0-1-1,1-2-1,2-0-1
/// file:<path>                          e.g.  file:/data/big.graphb
/// ```
///
/// `n` is capped at [`MAX_INSTANCE_N`] in all forms; for `file:` the cap is
/// enforced from the instance **header** ([`graphs::stream::peek_header`])
/// before the body is ingested. A `file:` path is read **on the server's
/// filesystem** when the job runs, in either instance format — streamed with
/// extension-based autodetection via [`graphs::io::read_graph`] (`.graphb`
/// = `KGB1` binary, anything else = text).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum InstanceSpec {
    /// A generated family instance.
    Family {
        /// The instance family.
        family: Family,
        /// Requested vertex count (approximate for grid-like families).
        n: usize,
        /// Maximum edge weight (1 = unweighted).
        max_weight: u64,
    },
    /// An explicit edge list shipped in the request itself.
    Inline {
        /// The vertex count.
        n: usize,
        /// The edges as `(u, v, weight)` triples, in submission order.
        edges: Vec<(usize, usize, u64)>,
    },
    /// An instance file on the server's filesystem (text or `KGB1` binary,
    /// autodetected by extension).
    File {
        /// The server-local path.
        path: String,
    },
}

impl InstanceSpec {
    /// Parses the instance field of a `SUBMIT` request.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message describing the malformed part.
    pub fn parse(field: &str) -> Result<Self, String> {
        let check_n = |n: usize| -> Result<usize, String> {
            if n > MAX_INSTANCE_N {
                Err(format!(
                    "requested vertex count {n} exceeds the service bound of {MAX_INSTANCE_N}"
                ))
            } else {
                Ok(n)
            }
        };
        if let Some(path) = field.strip_prefix("file:") {
            // The rest of the field is the path verbatim (it may itself
            // contain ':'); only emptiness is a parse error — existence and
            // well-formedness are checked when the job builds the instance.
            if path.is_empty() {
                return Err("file instance is missing the path".into());
            }
            return Ok(InstanceSpec::File {
                path: path.to_string(),
            });
        }
        let mut parts = field.split(':');
        let head = parts.next().unwrap_or_default();
        if head == "inline" {
            let n: usize = check_n(
                parts
                    .next()
                    .ok_or("inline instance is missing the vertex count")?
                    .parse()
                    .map_err(|_| "inline instance has a malformed vertex count".to_string())?,
            )?;
            let list = parts
                .next()
                .ok_or("inline instance is missing the edge list")?;
            if parts.next().is_some() {
                return Err("inline instance has trailing ':' fields".into());
            }
            let mut edges = Vec::new();
            for (i, item) in list.split(',').filter(|s| !s.is_empty()).enumerate() {
                let nums: Vec<&str> = item.split('-').collect();
                let [u, v, w] = nums.as_slice() else {
                    return Err(format!(
                        "inline edge {i} must be '<u>-<v>-<w>', got '{item}'"
                    ));
                };
                let parse = |s: &str, what: &str| -> Result<u64, String> {
                    s.parse()
                        .map_err(|_| format!("inline edge {i}: malformed {what} '{s}'"))
                };
                let u = parse(u, "endpoint")? as usize;
                let v = parse(v, "endpoint")? as usize;
                let w = parse(w, "weight")?;
                if u >= n || v >= n || u == v {
                    return Err(format!(
                        "inline edge {i}: invalid endpoints {u} {v} for n = {n}"
                    ));
                }
                edges.push((u, v, w));
            }
            if edges.is_empty() {
                return Err("inline instance has no edges".into());
            }
            Ok(InstanceSpec::Inline { n, edges })
        } else {
            let family = Family::parse(head).ok_or_else(|| {
                format!(
                    "unknown family '{head}' (expected random, ring, torus, harary, hypercube, \
                     inline:... or file:...)"
                )
            })?;
            let n: usize = check_n(
                parts
                    .next()
                    .ok_or_else(|| format!("family instance '{head}' is missing ':<n>'"))?
                    .parse()
                    .map_err(|_| {
                        format!("family instance '{head}' has a malformed vertex count")
                    })?,
            )?;
            let max_weight: u64 = match parts.next() {
                Some(w) => w
                    .parse()
                    .map_err(|_| format!("family instance '{head}' has a malformed max weight"))?,
                None => 1,
            };
            if parts.next().is_some() {
                return Err(format!("family instance '{head}' has trailing ':' fields"));
            }
            Ok(InstanceSpec::Family {
                family,
                n,
                max_weight,
            })
        }
    }

    /// The canonical wire form (parses back to an equal spec).
    pub fn canonical(&self) -> String {
        match self {
            InstanceSpec::Family {
                family,
                n,
                max_weight,
            } => {
                if *max_weight > 1 {
                    format!("{family}:{n}:{max_weight}")
                } else {
                    format!("{family}:{n}")
                }
            }
            InstanceSpec::Inline { n, edges } => {
                let list: Vec<String> = edges
                    .iter()
                    .map(|(u, v, w)| format!("{u}-{v}-{w}"))
                    .collect();
                format!("inline:{n}:{}", list.join(","))
            }
            InstanceSpec::File { path } => format!("file:{path}"),
        }
    }

    /// Materializes the instance graph. A pure function of `(self, k, seed)`
    /// — and, for `file:` instances, of the file's contents at build time.
    ///
    /// # Errors
    ///
    /// Same conditions as [`build_family`] for family instances; inline
    /// instances only require 3 vertices; file instances propagate read and
    /// format errors and enforce [`MAX_INSTANCE_N`] from the header before
    /// the body is ingested.
    pub fn build(&self, k: usize, seed: u64) -> Result<Graph, String> {
        match self {
            InstanceSpec::Family {
                family,
                n,
                max_weight,
            } => build_family(*family, *n, k, *max_weight, seed),
            InstanceSpec::Inline { n, edges } => {
                if *n < 3 {
                    return Err("instances need at least 3 vertices".into());
                }
                let mut graph = Graph::new(*n);
                for &(u, v, w) in edges {
                    graph.add_edge(u, v, w);
                }
                Ok(graph)
            }
            InstanceSpec::File { path } => {
                // Size-bound the file BEFORE reading: a `SUBMIT file:` line
                // is attacker-adjacent input to a long-running process —
                // without this check one request naming a huge file (or an
                // unbounded special file like /dev/zero, which is also not a
                // regular file) could OOM the server or wedge a pool worker.
                let meta =
                    std::fs::metadata(path).map_err(|e| format!("instance file '{path}': {e}"))?;
                if !meta.is_file() {
                    return Err(format!("instance file '{path}' is not a regular file"));
                }
                if meta.len() > MAX_INSTANCE_FILE_BYTES {
                    return Err(format!(
                        "instance file '{path}' is {} bytes, exceeding the service bound of \
                         {MAX_INSTANCE_FILE_BYTES}",
                        meta.len()
                    ));
                }
                // Vertex-cap the instance from its header BEFORE the body is
                // ingested: `peek_header` reads the KGB1 header / the text
                // vertex-count line and nothing else, so an over-cap
                // instance is rejected without the server ever allocating
                // per-vertex or per-edge storage for it.
                let std_path = std::path::Path::new(path);
                let header = graphs::stream::peek_header(std_path)
                    .map_err(|e| format!("instance file '{path}': {e}"))?;
                if header.n > MAX_INSTANCE_N {
                    return Err(format!(
                        "instance file '{path}' declares {} vertices, exceeding the service \
                         bound of {MAX_INSTANCE_N}",
                        header.n
                    ));
                }
                if header.n < 3 {
                    return Err("instances need at least 3 vertices".into());
                }
                let graph = graphs::io::read_graph(std_path)
                    .map_err(|e| format!("instance file '{path}': {e}"))?;
                Ok(graph)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn family_names_round_trip() {
        for family in [
            Family::Random,
            Family::RingOfCliques,
            Family::Torus,
            Family::Harary,
            Family::Hypercube,
        ] {
            assert_eq!(Family::parse(family.name()), Some(family));
        }
        assert_eq!(Family::parse("cube"), Some(Family::Hypercube));
        assert_eq!(Family::parse("nope"), None);
    }

    #[test]
    fn family_specs_parse_and_round_trip() {
        let spec = InstanceSpec::parse("hypercube:64").unwrap();
        assert_eq!(
            spec,
            InstanceSpec::Family {
                family: Family::Hypercube,
                n: 64,
                max_weight: 1
            }
        );
        assert_eq!(spec.canonical(), "hypercube:64");
        let spec = InstanceSpec::parse("random:48:30").unwrap();
        assert_eq!(spec.canonical(), "random:48:30");
        assert_eq!(
            InstanceSpec::parse(spec.canonical().as_str()).unwrap(),
            spec
        );
    }

    #[test]
    fn inline_specs_parse_and_build() {
        let spec = InstanceSpec::parse("inline:3:0-1-1,1-2-1,2-0-5").unwrap();
        assert_eq!(spec.canonical(), "inline:3:0-1-1,1-2-1,2-0-5");
        let g = spec.build(2, 1).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        assert_eq!(g.total_weight(), 7);
    }

    #[test]
    fn file_specs_parse_and_build_in_both_formats() {
        let spec = InstanceSpec::parse("file:/data/big.graphb").unwrap();
        assert_eq!(
            spec,
            InstanceSpec::File {
                path: "/data/big.graphb".into()
            }
        );
        assert_eq!(spec.canonical(), "file:/data/big.graphb");
        // Paths containing ':' survive verbatim.
        assert_eq!(
            InstanceSpec::parse("file:C:/data/x.graph")
                .unwrap()
                .canonical(),
            "file:C:/data/x.graph"
        );
        assert!(InstanceSpec::parse("file:").is_err());

        let dir = std::env::temp_dir().join("kecss-server-instance-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let reference = build_family(Family::RingOfCliques, 20, 2, 1, 1).unwrap();
        for name in ["inst.graph", "inst.graphb"] {
            let path = dir.join(name);
            graphs::io::write_graph(&path, &reference).unwrap();
            let spec = InstanceSpec::parse(&format!("file:{}", path.display())).unwrap();
            let built = spec.build(2, 7).unwrap();
            assert_eq!(built, reference, "{name}");
        }
        // Missing files fail with a readable message, not a panic.
        let missing = InstanceSpec::parse("file:/no/such/file.graph").unwrap();
        let err = missing.build(2, 1).unwrap_err();
        assert!(err.contains("/no/such/file.graph"), "{err}");
        // Non-regular files (directories, devices) are refused before any
        // read — the size bound cannot be trusted for them.
        let dir_spec = InstanceSpec::parse(&format!("file:{}", dir.display())).unwrap();
        let err = dir_spec.build(2, 1).unwrap_err();
        assert!(err.contains("not a regular file"), "{err}");
    }

    #[test]
    fn oversized_file_instances_are_rejected_from_the_header_alone() {
        let dir = std::env::temp_dir().join("kecss-server-instance-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let over = (MAX_INSTANCE_N + 1) as u64;

        // A KGB1 header declaring an over-cap n, followed by NO body at all:
        // if the server read past the header the build would fail with a
        // truncation error, so getting the "service bound" message proves
        // the cap fired before any body ingest.
        let bin = dir.join("over.graphb");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"KGB1");
        bytes.extend_from_slice(&over.to_le_bytes());
        bytes.extend_from_slice(&1000u64.to_le_bytes());
        std::fs::write(&bin, &bytes).unwrap();
        let spec = InstanceSpec::parse(&format!("file:{}", bin.display())).unwrap();
        let err = spec.build(2, 1).unwrap_err();
        assert!(err.contains("exceeding the service bound"), "{err}");

        // Same for text: an over-cap vertex count followed by a line that
        // would be a parse error if the body were read.
        let text = dir.join("over.graph");
        std::fs::write(&text, format!("{over}\nthis is not an edge\n")).unwrap();
        let spec = InstanceSpec::parse(&format!("file:{}", text.display())).unwrap();
        let err = spec.build(2, 1).unwrap_err();
        assert!(err.contains("exceeding the service bound"), "{err}");

        // Under-cap headers still reach the body (and its errors).
        let torn = dir.join("torn.graphb");
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"KGB1");
        bytes.extend_from_slice(&8u64.to_le_bytes());
        bytes.extend_from_slice(&4u64.to_le_bytes());
        std::fs::write(&torn, &bytes).unwrap();
        let spec = InstanceSpec::parse(&format!("file:{}", torn.display())).unwrap();
        let err = spec.build(2, 1).unwrap_err();
        assert!(err.contains("ends after"), "{err}");
    }

    #[test]
    fn malformed_specs_are_rejected() {
        for bad in [
            "",
            "nope:8",
            "random",
            "random:abc",
            "random:8:x",
            "random:8:1:9",
            "inline:3",
            "inline:x:0-1-1",
            "inline:3:0-1",
            "inline:3:0-1-1-7",
            "inline:3:0-9-1",
            "inline:3:1-1-1",
            "inline:3:",
            "inline:3:0-1-1:extra",
        ] {
            assert!(
                InstanceSpec::parse(bad).is_err(),
                "'{bad}' should not parse"
            );
        }
    }

    #[test]
    fn oversized_vertex_counts_are_rejected_at_parse_time() {
        let over = MAX_INSTANCE_N + 1;
        for bad in [
            format!("random:{over}"),
            format!("hypercube:{over}"),
            format!("inline:{over}:0-1-1"),
            "random:9999999999999999".to_string(),
        ] {
            let err = InstanceSpec::parse(&bad).unwrap_err();
            assert!(
                err.contains("exceeds") || err.contains("malformed"),
                "'{bad}': {err}"
            );
        }
        // The bound itself is accepted (parsing allocates nothing).
        assert!(InstanceSpec::parse(&format!("random:{MAX_INSTANCE_N}")).is_ok());
    }

    #[test]
    fn build_is_deterministic_and_validates() {
        let spec = InstanceSpec::parse("random:24:10").unwrap();
        let a = spec.build(2, 7).unwrap();
        let b = spec.build(2, 7).unwrap();
        assert_eq!(a, b);
        assert!(spec.build(0, 7).is_err(), "k = 0 must be rejected");
        assert!(InstanceSpec::parse("random:2")
            .unwrap()
            .build(2, 1)
            .is_err());
        assert!(
            InstanceSpec::parse("hypercube:16")
                .unwrap()
                .build(6, 1)
                .is_err(),
            "Q_4 cannot be 6-edge-connected"
        );
    }
}
