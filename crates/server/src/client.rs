//! A blocking client for the service protocol (used by `kecss submit`, the
//! integration tests and the CI smoke script).
//!
//! Speaks both wire modes over the same helpers: [`Client::connect`] uses the
//! text line protocol; [`Client::connect_binary`] negotiates `KGW1` binary
//! frames with the 4-byte preamble and then encodes/decodes every request
//! through [`crate::wire`]. Waiting for a result is push-based in both modes:
//! [`Client::wait_result`] sends one `RESULT WAIT` and blocks until the
//! server pushes the terminal reply — no client code path polls.

use crate::job::JobSpec;
use crate::protocol::{Request, Response};
use crate::scheduler::JobId;
use crate::wire;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A parsed server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `OK ...` — the words after `OK`.
    Ok(Vec<String>),
    /// `BUSY <depth>` — the submission was rejected by backpressure.
    Busy {
        /// The server's configured queue depth.
        depth: usize,
    },
    /// `WAIT <id> <state>` — the result is not ready yet.
    Wait {
        /// The job id.
        id: JobId,
        /// The job's current state word.
        state: String,
    },
    /// `RESULT <id> <len>` + payload — the finished result.
    Result {
        /// The job id.
        id: JobId,
        /// The payload bytes.
        payload: Vec<u8>,
    },
    /// `GONE <id>` — the job completed but its payload was already fetched
    /// and evicted (results are fetched-once).
    Gone {
        /// The job id.
        id: JobId,
    },
    /// `METRICS <len>` + payload — the metrics text exposition.
    Metrics {
        /// The exposition text.
        text: String,
    },
    /// `FLEET <len>` + payload — the coordinator's fleet status text.
    Fleet {
        /// The fleet status text (`# kecss fleet status v1`, DESIGN.md §13).
        text: String,
    },
    /// `ERR <message>`.
    Err(String),
}

/// The wire mode this client negotiated at connect time.
enum WireMode {
    Text,
    Binary,
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    mode: WireMode,
}

/// Errors surfaced by the client helpers.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or broke.
    Io(std::io::Error),
    /// The server sent something outside the protocol grammar.
    Protocol(String),
    /// The server answered, but with an error or an unexpected reply.
    Server(String),
    /// [`Client::wait_result`] ran out of time.
    Timeout {
        /// The job that did not finish in time.
        id: JobId,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Timeout { id } => write!(f, "timed out waiting for job {id}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(value: std::io::Error) -> Self {
        ClientError::Io(value)
    }
}

impl Client {
    /// Connects to a server address (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply with small frames: Nagle + delayed ACK costs ~40 ms
        // per round trip whenever a frame spans two writes.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
            mode: WireMode::Text,
        })
    }

    /// Connects in `KGW1` binary frame mode: sends the 4-byte preamble, after
    /// which every request goes out as a binary frame (inline instances as
    /// zero-parse `KGB1` edge records) and every reply comes back as one.
    /// The replies decode to the same [`Reply`] values as text mode, so all
    /// helpers work identically.
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect_binary(addr: &str) -> Result<Client, ClientError> {
        let mut client = Client::connect(addr)?;
        client.writer.write_all(&wire::PREAMBLE)?;
        client.mode = WireMode::Binary;
        Ok(client)
    }

    /// Bounds every read on this connection: a reply (or payload byte) that
    /// takes longer than `timeout` to arrive fails with an I/O error instead
    /// of blocking forever. The coordinator sets this on its worker-facing
    /// connections so a hung worker reads as a worker loss, not a wedged
    /// dispatch thread. `None` restores unbounded blocking reads.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one raw request line and parses the reply (the seam the
    /// malformed-request tests use; text mode only).
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations.
    pub fn request_line(&mut self, line: &str) -> Result<Reply, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.read_reply()
    }

    /// Sends a typed request in the connection's wire mode.
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        match self.mode {
            WireMode::Text => self.request_line(&request.to_line()),
            WireMode::Binary => {
                self.writer.write_all(&wire::encode_request(request))?;
                self.read_frame_reply()
            }
        }
    }

    /// Submits a job spec: `Ok(Ok(id))` when queued, `Ok(Err(depth))` when
    /// the server answered `BUSY`.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<Result<JobId, usize>, ClientError> {
        match self.request(&Request::Submit(spec.clone()))? {
            Reply::Ok(words) => {
                let id = words
                    .first()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Protocol("OK reply without a job id".into()))?;
                Ok(Ok(id))
            }
            Reply::Busy { depth } => Ok(Err(depth)),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Queries a job's state word (`QUEUED`, `RUNNING`, ...).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies.
    pub fn status(&mut self, id: JobId) -> Result<String, ClientError> {
        match self.request(&Request::Status(id))? {
            Reply::Ok(words) => words
                .get(1)
                .cloned()
                .ok_or_else(|| ClientError::Protocol("OK status without a state".into())),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches a result: `Some(payload)` when done, `None` while in flight.
    /// Results are fetched-once — the server evicts the payload on a
    /// successful fetch, and a repeat fetch is a `GONE` error.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR`/`GONE`
    /// replies (including failed and cancelled jobs).
    pub fn result(&mut self, id: JobId) -> Result<Option<Vec<u8>>, ClientError> {
        match self.request(&Request::Result(id))? {
            Reply::Result { payload, .. } => Ok(Some(payload)),
            Reply::Wait { .. } => Ok(None),
            Reply::Gone { id } => Err(ClientError::Server(format!(
                "job {id}: the result was already fetched and evicted (GONE)"
            ))),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Waits for the payload with one blocking `RESULT WAIT`: the server
    /// pushes the terminal reply when the job completes, so nothing polls.
    /// `_poll` is kept for signature compatibility with the old polling
    /// implementation and is unused. On [`ClientError::Timeout`] the
    /// connection should be discarded — the server may still push the reply
    /// later, and a timed-out read can tear a partially received frame.
    ///
    /// # Errors
    ///
    /// Everything [`Client::result`] can return, plus
    /// [`ClientError::Timeout`] after `timeout`.
    pub fn wait_result(
        &mut self,
        id: JobId,
        _poll: Duration,
        timeout: Duration,
    ) -> Result<Vec<u8>, ClientError> {
        self.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let outcome = self.request(&Request::ResultWait(id));
        // Restore unbounded reads so later requests on this client are not
        // silently bounded by a stale wait deadline.
        self.set_read_timeout(None)?;
        match outcome {
            Ok(Reply::Result { payload, .. }) => Ok(payload),
            Ok(Reply::Gone { id }) => Err(ClientError::Server(format!(
                "job {id}: the result was already fetched and evicted (GONE)"
            ))),
            Ok(Reply::Err(msg)) => Err(ClientError::Server(msg)),
            Ok(other) => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
            Err(ClientError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(ClientError::Timeout { id })
            }
            Err(e) => Err(e),
        }
    }

    /// Submits and waits for the payload in as few requests as the wire
    /// mode allows: `Ok(Ok((id, payload)))` when the job completed,
    /// `Ok(Err(depth))` when the server answered `BUSY`.
    ///
    /// In binary mode this is **one write** — the `SUBMIT` frame carries the
    /// [`wire::FLAG_SUBMIT_WAIT`] bit, the server acks `OK <id> QUEUED` and
    /// pushes the terminal reply on the same connection, so a full
    /// submit-to-result round costs a single request instead of two. Text
    /// mode has no spelling for the flag and falls back to `SUBMIT` +
    /// `RESULT WAIT` (still push-based, one extra round trip).
    ///
    /// # Errors
    ///
    /// Everything [`Client::submit`] and [`Client::wait_result`] can return.
    /// On [`ClientError::Timeout`] the connection should be discarded, as
    /// with [`Client::wait_result`].
    pub fn submit_wait(
        &mut self,
        spec: &JobSpec,
        timeout: Duration,
    ) -> Result<Result<(JobId, Vec<u8>), usize>, ClientError> {
        if matches!(self.mode, WireMode::Text) {
            return match self.submit(spec)? {
                Ok(id) => self
                    .wait_result(id, Duration::from_millis(1), timeout)
                    .map(|payload| Ok((id, payload))),
                Err(depth) => Ok(Err(depth)),
            };
        }
        self.set_read_timeout(Some(timeout.max(Duration::from_millis(1))))?;
        let outcome = self.submit_wait_binary(spec);
        self.set_read_timeout(None)?;
        match outcome {
            Err(ClientError::Io(e))
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                Err(ClientError::Timeout { id: 0 })
            }
            other => other,
        }
    }

    /// The binary-mode body of [`Client::submit_wait`]: one wait-flagged
    /// `SUBMIT` frame, then the `OK` ack and the pushed terminal reply.
    fn submit_wait_binary(
        &mut self,
        spec: &JobSpec,
    ) -> Result<Result<(JobId, Vec<u8>), usize>, ClientError> {
        let id = match self.request(&Request::SubmitWait(spec.clone()))? {
            Reply::Ok(words) => words
                .first()
                .and_then(|w| w.parse::<JobId>().ok())
                .ok_or_else(|| ClientError::Protocol("OK reply without a job id".into()))?,
            Reply::Busy { depth } => return Ok(Err(depth)),
            Reply::Err(msg) => return Err(ClientError::Server(msg)),
            other => {
                return Err(ClientError::Protocol(format!("unexpected reply {other:?}")));
            }
        };
        match self.read_frame_reply()? {
            Reply::Result { payload, .. } => Ok(Ok((id, payload))),
            Reply::Gone { id } => Err(ClientError::Server(format!(
                "job {id}: the result was already fetched and evicted (GONE)"
            ))),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Cancels a queued job.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies
    /// (running or finished jobs).
    pub fn cancel(&mut self, id: JobId) -> Result<(), ClientError> {
        match self.request(&Request::Cancel(id))? {
            Reply::Ok(_) => Ok(()),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the server's metrics registry as a text exposition.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Reply::Metrics { text } => Ok(text),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Sends one registration/liveness heartbeat for `worker` (serving at
    /// `addr`) and returns the coordinator's acknowledgement word
    /// (`REGISTERED` for a new or re-registered worker, `ALIVE` otherwise).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies
    /// (e.g. the peer is not a coordinator).
    pub fn heartbeat(&mut self, worker: &str, addr: &str) -> Result<String, ClientError> {
        let request = Request::Heartbeat {
            worker: worker.to_string(),
            addr: addr.to_string(),
        };
        match self.request(&request)? {
            Reply::Ok(words) => words
                .get(1)
                .cloned()
                .ok_or_else(|| ClientError::Protocol("OK heartbeat without a word".into())),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the coordinator's fleet status text (`FLEET`).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies
    /// (e.g. the peer is not a coordinator).
    pub fn fleet_status(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Fleet)? {
            Reply::Fleet { text } => Ok(text),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Requests a server shutdown (drain + exit).
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Reply::Ok(_) => Ok(()),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let line = line.trim_end();
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        match verb {
            "OK" => Ok(Reply::Ok(
                rest.split_whitespace().map(String::from).collect(),
            )),
            "BUSY" => {
                let depth = rest
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("malformed BUSY '{line}'")))?;
                Ok(Reply::Busy { depth })
            }
            "WAIT" => {
                let mut words = rest.split_whitespace();
                let id = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Protocol(format!("malformed WAIT '{line}'")))?;
                let state = words.next().unwrap_or("UNKNOWN").to_string();
                Ok(Reply::Wait { id, state })
            }
            "GONE" => {
                let id = rest
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("malformed GONE '{line}'")))?;
                Ok(Reply::Gone { id })
            }
            "RESULT" => {
                let mut words = rest.split_whitespace();
                let id: JobId = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Protocol(format!("malformed RESULT '{line}'")))?;
                let len: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Protocol(format!("malformed RESULT '{line}'")))?;
                let mut payload = vec![0u8; len];
                self.reader.read_exact(&mut payload)?;
                Ok(Reply::Result { id, payload })
            }
            "METRICS" | "FLEET" => {
                let len: usize = rest
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("malformed {verb} '{line}'")))?;
                let mut payload = vec![0u8; len];
                self.reader.read_exact(&mut payload)?;
                let text = String::from_utf8(payload)
                    .map_err(|_| ClientError::Protocol(format!("{verb} payload is not UTF-8")))?;
                Ok(if verb == "METRICS" {
                    Reply::Metrics { text }
                } else {
                    Reply::Fleet { text }
                })
            }
            "ERR" => Ok(Reply::Err(rest.to_string())),
            _ => Err(ClientError::Protocol(format!("unknown reply '{line}'"))),
        }
    }

    /// Reads one binary reply frame and decodes it (binary mode).
    fn read_frame_reply(&mut self) -> Result<Reply, ClientError> {
        let mut header = [0u8; wire::FRAME_HEADER_BYTES];
        self.reader.read_exact(&mut header)?;
        let (opcode, _flags, body_len) =
            wire::parse_frame_header(&header).map_err(ClientError::Protocol)?;
        let mut body = vec![0u8; body_len];
        self.reader.read_exact(&mut body)?;
        let response = wire::decode_response(opcode, &body).map_err(ClientError::Protocol)?;
        reply_from_response(response)
    }
}

/// Maps a decoded binary [`Response`] onto the same [`Reply`] values the text
/// parser produces, so the helper methods are wire-mode agnostic.
fn reply_from_response(response: Response) -> Result<Reply, ClientError> {
    let unwrap_bytes = |bytes: Arc<Vec<u8>>| -> Vec<u8> {
        Arc::try_unwrap(bytes).unwrap_or_else(|shared| (*shared).clone())
    };
    let text_of = |bytes: Arc<Vec<u8>>, what: &str| -> Result<String, ClientError> {
        String::from_utf8(unwrap_bytes(bytes))
            .map_err(|_| ClientError::Protocol(format!("{what} payload is not UTF-8")))
    };
    Ok(match response {
        Response::Ok(words) => Reply::Ok(words.split_whitespace().map(String::from).collect()),
        Response::Busy(depth) => Reply::Busy {
            depth: usize::try_from(depth)
                .map_err(|_| ClientError::Protocol("BUSY depth overflows usize".into()))?,
        },
        Response::Wait { id, state } => Reply::Wait {
            id,
            state: state.to_string(),
        },
        Response::Result { id, payload } => Reply::Result {
            id,
            payload: unwrap_bytes(payload),
        },
        Response::Gone(id) => Reply::Gone { id },
        Response::Err(message) => Reply::Err(message),
        Response::Metrics(bytes) => Reply::Metrics {
            text: text_of(bytes, "METRICS")?,
        },
        Response::Fleet(bytes) => Reply::Fleet {
            text: text_of(bytes, "FLEET")?,
        },
    })
}

/// Polls the coordinator's `FLEET` status until at least `workers` workers
/// are live (the handshake the tests, benches and smoke harness use before
/// submitting: heartbeats are periodic, so a freshly spawned worker is not
/// registered instantaneously).
///
/// # Errors
///
/// I/O failures, protocol violations, and [`ClientError::Timeout`] (reported
/// with job id 0 — there is no job yet) when the fleet does not reach the
/// requested size in time.
pub fn wait_for_live_workers(
    addr: &str,
    workers: usize,
    poll: Duration,
    timeout: Duration,
) -> Result<(), ClientError> {
    let deadline = Instant::now() + timeout;
    let mut client = Client::connect(addr)?;
    loop {
        let text = client.fleet_status()?;
        let live = text
            .lines()
            .find_map(|line| {
                let mut words = line.split_whitespace();
                (words.next() == Some("workers"))
                    .then(|| {
                        words
                            .skip_while(|w| *w != "live")
                            .nth(1)
                            .and_then(|w| w.parse::<usize>().ok())
                    })
                    .flatten()
            })
            .ok_or_else(|| ClientError::Protocol("fleet status without a workers line".into()))?;
        if live >= workers {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(ClientError::Timeout { id: 0 });
        }
        std::thread::sleep(poll);
    }
}
