//! A blocking client for the service protocol (used by `kecss submit`, the
//! integration tests and the CI smoke script).

use crate::job::JobSpec;
use crate::protocol::Request;
use crate::scheduler::JobId;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// A parsed server response.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `OK ...` — the words after `OK`.
    Ok(Vec<String>),
    /// `BUSY <depth>` — the submission was rejected by backpressure.
    Busy {
        /// The server's configured queue depth.
        depth: usize,
    },
    /// `WAIT <id> <state>` — the result is not ready yet.
    Wait {
        /// The job id.
        id: JobId,
        /// The job's current state word.
        state: String,
    },
    /// `RESULT <id> <len>` + payload — the finished result.
    Result {
        /// The job id.
        id: JobId,
        /// The payload bytes.
        payload: Vec<u8>,
    },
    /// `GONE <id>` — the job completed but its payload was already fetched
    /// and evicted (results are fetched-once).
    Gone {
        /// The job id.
        id: JobId,
    },
    /// `METRICS <len>` + payload — the metrics text exposition.
    Metrics {
        /// The exposition text.
        text: String,
    },
    /// `FLEET <len>` + payload — the coordinator's fleet status text.
    Fleet {
        /// The fleet status text (`# kecss fleet status v1`, DESIGN.md §13).
        text: String,
    },
    /// `ERR <message>`.
    Err(String),
}

/// A connected protocol client.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

/// Errors surfaced by the client helpers.
#[derive(Debug)]
pub enum ClientError {
    /// The connection failed or broke.
    Io(std::io::Error),
    /// The server sent something outside the protocol grammar.
    Protocol(String),
    /// The server answered, but with an error or an unexpected reply.
    Server(String),
    /// [`Client::wait_result`] ran out of time.
    Timeout {
        /// The job that did not finish in time.
        id: JobId,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "connection error: {e}"),
            ClientError::Protocol(msg) => write!(f, "protocol violation: {msg}"),
            ClientError::Server(msg) => write!(f, "server error: {msg}"),
            ClientError::Timeout { id } => write!(f, "timed out waiting for job {id}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(value: std::io::Error) -> Self {
        ClientError::Io(value)
    }
}

impl Client {
    /// Connects to a server address (`host:port`).
    ///
    /// # Errors
    ///
    /// Propagates the connection failure.
    pub fn connect(addr: &str) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        // Request/reply with small frames: Nagle + delayed ACK costs ~40 ms
        // per round trip whenever a frame spans two writes.
        stream.set_nodelay(true)?;
        let writer = stream.try_clone()?;
        Ok(Client {
            reader: BufReader::new(stream),
            writer,
        })
    }

    /// Bounds every read on this connection: a reply (or payload byte) that
    /// takes longer than `timeout` to arrive fails with an I/O error instead
    /// of blocking forever. The coordinator sets this on its worker-facing
    /// connections so a hung worker reads as a worker loss, not a wedged
    /// dispatch thread. `None` restores unbounded blocking reads.
    ///
    /// # Errors
    ///
    /// Propagates the socket-option failure.
    pub fn set_read_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.reader.get_ref().set_read_timeout(timeout)?;
        Ok(())
    }

    /// Sends one raw request line and parses the reply (the seam the
    /// malformed-request tests use).
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations.
    pub fn request_line(&mut self, line: &str) -> Result<Reply, ClientError> {
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")?;
        self.read_reply()
    }

    /// Sends a typed request.
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations.
    pub fn request(&mut self, request: &Request) -> Result<Reply, ClientError> {
        self.request_line(&request.to_line())
    }

    /// Submits a job spec: `Ok(Ok(id))` when queued, `Ok(Err(depth))` when
    /// the server answered `BUSY`.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies.
    pub fn submit(&mut self, spec: &JobSpec) -> Result<Result<JobId, usize>, ClientError> {
        match self.request(&Request::Submit(spec.clone()))? {
            Reply::Ok(words) => {
                let id = words
                    .first()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Protocol("OK reply without a job id".into()))?;
                Ok(Ok(id))
            }
            Reply::Busy { depth } => Ok(Err(depth)),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Queries a job's state word (`QUEUED`, `RUNNING`, ...).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies.
    pub fn status(&mut self, id: JobId) -> Result<String, ClientError> {
        match self.request(&Request::Status(id))? {
            Reply::Ok(words) => words
                .get(1)
                .cloned()
                .ok_or_else(|| ClientError::Protocol("OK status without a state".into())),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches a result: `Some(payload)` when done, `None` while in flight.
    /// Results are fetched-once — the server evicts the payload on a
    /// successful fetch, and a repeat fetch is a `GONE` error.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR`/`GONE`
    /// replies (including failed and cancelled jobs).
    pub fn result(&mut self, id: JobId) -> Result<Option<Vec<u8>>, ClientError> {
        match self.request(&Request::Result(id))? {
            Reply::Result { payload, .. } => Ok(Some(payload)),
            Reply::Wait { .. } => Ok(None),
            Reply::Gone { id } => Err(ClientError::Server(format!(
                "job {id}: the result was already fetched and evicted (GONE)"
            ))),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Polls `RESULT` until the payload is available.
    ///
    /// # Errors
    ///
    /// Everything [`Client::result`] can return, plus
    /// [`ClientError::Timeout`].
    pub fn wait_result(
        &mut self,
        id: JobId,
        poll: Duration,
        timeout: Duration,
    ) -> Result<Vec<u8>, ClientError> {
        let deadline = Instant::now() + timeout;
        loop {
            if let Some(payload) = self.result(id)? {
                return Ok(payload);
            }
            if Instant::now() >= deadline {
                return Err(ClientError::Timeout { id });
            }
            std::thread::sleep(poll);
        }
    }

    /// Cancels a queued job.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies
    /// (running or finished jobs).
    pub fn cancel(&mut self, id: JobId) -> Result<(), ClientError> {
        match self.request(&Request::Cancel(id))? {
            Reply::Ok(_) => Ok(()),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the server's metrics registry as a text exposition.
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies.
    pub fn metrics(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Metrics)? {
            Reply::Metrics { text } => Ok(text),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Sends one registration/liveness heartbeat for `worker` (serving at
    /// `addr`) and returns the coordinator's acknowledgement word
    /// (`REGISTERED` for a new or re-registered worker, `ALIVE` otherwise).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies
    /// (e.g. the peer is not a coordinator).
    pub fn heartbeat(&mut self, worker: &str, addr: &str) -> Result<String, ClientError> {
        let request = Request::Heartbeat {
            worker: worker.to_string(),
            addr: addr.to_string(),
        };
        match self.request(&request)? {
            Reply::Ok(words) => words
                .get(1)
                .cloned()
                .ok_or_else(|| ClientError::Protocol("OK heartbeat without a word".into())),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Fetches the coordinator's fleet status text (`FLEET`).
    ///
    /// # Errors
    ///
    /// I/O failures, protocol violations, and server-side `ERR` replies
    /// (e.g. the peer is not a coordinator).
    pub fn fleet_status(&mut self) -> Result<String, ClientError> {
        match self.request(&Request::Fleet)? {
            Reply::Fleet { text } => Ok(text),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Requests a server shutdown (drain + exit).
    ///
    /// # Errors
    ///
    /// I/O failures and protocol violations.
    pub fn shutdown(&mut self) -> Result<(), ClientError> {
        match self.request(&Request::Shutdown)? {
            Reply::Ok(_) => Ok(()),
            Reply::Err(msg) => Err(ClientError::Server(msg)),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    fn read_reply(&mut self) -> Result<Reply, ClientError> {
        let mut line = String::new();
        let read = self.reader.read_line(&mut line)?;
        if read == 0 {
            return Err(ClientError::Protocol("server closed the connection".into()));
        }
        let line = line.trim_end();
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        match verb {
            "OK" => Ok(Reply::Ok(
                rest.split_whitespace().map(String::from).collect(),
            )),
            "BUSY" => {
                let depth = rest
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("malformed BUSY '{line}'")))?;
                Ok(Reply::Busy { depth })
            }
            "WAIT" => {
                let mut words = rest.split_whitespace();
                let id = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Protocol(format!("malformed WAIT '{line}'")))?;
                let state = words.next().unwrap_or("UNKNOWN").to_string();
                Ok(Reply::Wait { id, state })
            }
            "GONE" => {
                let id = rest
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("malformed GONE '{line}'")))?;
                Ok(Reply::Gone { id })
            }
            "RESULT" => {
                let mut words = rest.split_whitespace();
                let id: JobId = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Protocol(format!("malformed RESULT '{line}'")))?;
                let len: usize = words
                    .next()
                    .and_then(|w| w.parse().ok())
                    .ok_or_else(|| ClientError::Protocol(format!("malformed RESULT '{line}'")))?;
                let mut payload = vec![0u8; len];
                self.reader.read_exact(&mut payload)?;
                Ok(Reply::Result { id, payload })
            }
            "METRICS" | "FLEET" => {
                let len: usize = rest
                    .trim()
                    .parse()
                    .map_err(|_| ClientError::Protocol(format!("malformed {verb} '{line}'")))?;
                let mut payload = vec![0u8; len];
                self.reader.read_exact(&mut payload)?;
                let text = String::from_utf8(payload)
                    .map_err(|_| ClientError::Protocol(format!("{verb} payload is not UTF-8")))?;
                Ok(if verb == "METRICS" {
                    Reply::Metrics { text }
                } else {
                    Reply::Fleet { text }
                })
            }
            "ERR" => Ok(Reply::Err(rest.to_string())),
            _ => Err(ClientError::Protocol(format!("unknown reply '{line}'"))),
        }
    }
}

/// Polls the coordinator's `FLEET` status until at least `workers` workers
/// are live (the handshake the tests, benches and smoke harness use before
/// submitting: heartbeats are periodic, so a freshly spawned worker is not
/// registered instantaneously).
///
/// # Errors
///
/// I/O failures, protocol violations, and [`ClientError::Timeout`] (reported
/// with job id 0 — there is no job yet) when the fleet does not reach the
/// requested size in time.
pub fn wait_for_live_workers(
    addr: &str,
    workers: usize,
    poll: Duration,
    timeout: Duration,
) -> Result<(), ClientError> {
    let deadline = Instant::now() + timeout;
    let mut client = Client::connect(addr)?;
    loop {
        let text = client.fleet_status()?;
        let live = text
            .lines()
            .find_map(|line| {
                let mut words = line.split_whitespace();
                (words.next() == Some("workers"))
                    .then(|| {
                        words
                            .skip_while(|w| *w != "live")
                            .nth(1)
                            .and_then(|w| w.parse::<usize>().ok())
                    })
                    .flatten()
            })
            .ok_or_else(|| ClientError::Protocol("fleet status without a workers line".into()))?;
        if live >= workers {
            return Ok(());
        }
        if Instant::now() >= deadline {
            return Err(ClientError::Timeout { id: 0 });
        }
        std::thread::sleep(poll);
    }
}
