//! The job scheduler: a bounded job table dispatching onto a
//! [`kecss_runtime::JobPool`].
//!
//! Backpressure is enforced at submission: at most `queue_depth` jobs may be
//! *in flight* (queued or running) at once; submissions beyond that are
//! rejected with [`kecss::Error::JobQueueFull`] — the server turns this into
//! a `BUSY` response — **without touching the jobs already in flight**.
//!
//! Determinism: the scheduler stores whatever bytes [`crate::job::run`]
//! produced. Since that function is pure in the job spec, the scheduler's
//! concurrency (worker count, dispatch order, interleaving) cannot influence
//! result payloads — only *when* they become available. See DESIGN.md §9.

use crate::job::{self, JobSpec};
use kecss_obs::{Counter, Gauge, Histogram};
use kecss_runtime::{Executor, JobPool};
use std::collections::HashMap;
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Cached handles into the global registry, resolved once: the submit path
/// is a hot path (~50 µs per job end to end), so per-call name lookups are
/// not acceptable there.
struct Metrics {
    submitted: Arc<Counter>,
    rejected: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    cancelled: Arc<Counter>,
    inflight: Arc<Gauge>,
    wait_ns: Arc<Histogram>,
    run_ns: Arc<Histogram>,
    submit_to_done_ns: Arc<Histogram>,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        submitted: kecss_obs::counter("server_jobs_submitted_total"),
        rejected: kecss_obs::counter("server_jobs_rejected_total"),
        completed: kecss_obs::counter_with("server_jobs_total", &[("state", "completed")]),
        failed: kecss_obs::counter_with("server_jobs_total", &[("state", "failed")]),
        cancelled: kecss_obs::counter_with("server_jobs_total", &[("state", "cancelled")]),
        inflight: kecss_obs::gauge("server_inflight_jobs"),
        wait_ns: kecss_obs::histogram("server_job_wait_ns"),
        run_ns: kecss_obs::histogram("server_job_run_ns"),
        submit_to_done_ns: kecss_obs::histogram("server_submit_to_done_ns"),
    })
}

/// `Instant::now()` only when recording is on: keeps the disabled/no-op
/// configuration free of clock reads on the job hot path.
fn now_if_recording() -> Option<Instant> {
    kecss_obs::enabled().then(Instant::now)
}

fn elapsed_ns(from: Option<Instant>, to: Option<Instant>) -> Option<u64> {
    let (from, to) = (from?, to?);
    u64::try_from(to.saturating_duration_since(from).as_nanos()).ok()
}

/// Submission and claim timestamps of an in-flight job (observability only —
/// never read by the job itself, so payload bytes cannot depend on them).
struct JobTimes {
    submitted: Option<Instant>,
    started: Option<Instant>,
}

/// A job's service-assigned identifier (dense, starting at 1).
pub type JobId = u64;

/// The lifecycle state of a job, as reported by `STATUS`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// Claimed by a worker.
    Running,
    /// Finished with a result payload.
    Done,
    /// Finished with an error.
    Failed,
    /// Cancelled while still queued.
    Cancelled,
}

impl JobStatus {
    /// The protocol's upper-case state word.
    pub fn wire_name(&self) -> &'static str {
        match self {
            JobStatus::Queued => "QUEUED",
            JobStatus::Running => "RUNNING",
            JobStatus::Done => "DONE",
            JobStatus::Failed => "FAILED",
            JobStatus::Cancelled => "CANCELLED",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobStatus::Done | JobStatus::Failed | JobStatus::Cancelled
        )
    }
}

/// The coordinator-side lifecycle of a fleet job (DESIGN.md §13).
///
/// This extends [`JobStatus`] with `Assigned` — the window between the
/// coordinator picking a worker and that worker acknowledging the dispatch —
/// because the fleet has a failure mode the standalone scheduler does not:
/// the chosen worker can die before (or while) running the job. The two
/// "loss" transitions back to `Queued` are what retry-on-worker-loss uses;
/// they are legal **only** from the non-terminal assigned/running states, so
/// a delivered result can never be un-delivered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FleetState {
    /// Accepted by the coordinator, not yet assigned to a worker.
    Queued,
    /// A live worker was chosen; the dispatch is in flight.
    Assigned,
    /// The worker acknowledged the job and is solving it.
    Running,
    /// A result payload arrived from a worker.
    Done,
    /// The job failed (solver error, or the retry budget was exhausted).
    Failed,
    /// Cancelled while still queued.
    Cancelled,
}

impl FleetState {
    /// Every state, for exhaustive transition-table tests.
    pub const ALL: [FleetState; 6] = [
        FleetState::Queued,
        FleetState::Assigned,
        FleetState::Running,
        FleetState::Done,
        FleetState::Failed,
        FleetState::Cancelled,
    ];

    /// The protocol's upper-case state word (`STATUS`/`WAIT` replies and the
    /// `FLEET` status text).
    pub fn wire_name(&self) -> &'static str {
        match self {
            FleetState::Queued => "QUEUED",
            FleetState::Assigned => "ASSIGNED",
            FleetState::Running => "RUNNING",
            FleetState::Done => "DONE",
            FleetState::Failed => "FAILED",
            FleetState::Cancelled => "CANCELLED",
        }
    }

    /// Whether the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            FleetState::Done | FleetState::Failed | FleetState::Cancelled
        )
    }

    /// The transition table. Exactly these moves are legal:
    ///
    /// ```text
    /// Queued   -> Assigned          (dispatcher picked a live worker)
    /// Queued   -> Cancelled         (client CANCEL while queued)
    /// Assigned -> Running           (worker acknowledged the dispatch)
    /// Assigned -> Queued            (worker lost or BUSY before it started)
    /// Assigned -> Failed            (worker rejected the spec, or retries spent)
    /// Running  -> Done              (payload delivered)
    /// Running  -> Failed            (solver error, or retries spent)
    /// Running  -> Queued            (worker lost mid-run; re-dispatch)
    /// ```
    ///
    /// Everything else — including self-loops and any move out of a terminal
    /// state — is illegal; the coordinator panics rather than corrupt the
    /// table.
    pub fn can_transition(self, to: FleetState) -> bool {
        use FleetState::*;
        matches!(
            (self, to),
            (Queued, Assigned)
                | (Queued, Cancelled)
                | (Assigned, Running)
                | (Assigned, Queued)
                | (Assigned, Failed)
                | (Running, Done)
                | (Running, Failed)
                | (Running, Queued)
        )
    }
}

/// A job's terminal outcome, as fetched by `RESULT`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// The result payload (shared while it lives in the table; evicted by
    /// [`Scheduler::take_result`] once fetched).
    Done(Arc<Vec<u8>>),
    /// The failure message.
    Failed(String),
    /// The job was cancelled before it ran.
    Cancelled,
    /// The job completed, but its payload was already fetched and evicted
    /// from the table ([`Scheduler::take_result`]); the server answers
    /// `GONE`. Bounds a long-lived server's memory: results live in the
    /// table only until their one fetch.
    Gone,
}

/// One slot of the job table.
enum Slot {
    Queued(Box<JobFn>),
    Running,
    Finished(Outcome),
}

/// The work a queued job will perform when a worker claims it.
type JobFn = dyn FnOnce() -> Result<Vec<u8>, String> + Send;

/// Aggregate counters, returned by [`Scheduler::summary`] and printed by the
/// server on exit.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeSummary {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that finished with a payload.
    pub completed: u64,
    /// Jobs that finished with an error.
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Submissions rejected with `BUSY`.
    pub rejected: u64,
}

struct Table {
    next_id: JobId,
    slots: HashMap<JobId, Slot>,
    /// Observability timestamps, removed when a job goes terminal.
    times: HashMap<JobId, JobTimes>,
    /// Jobs queued or running; the quantity the depth bound applies to.
    inflight: usize,
    /// Set by [`Scheduler::close`]: no further submissions are admitted.
    /// Checked under the same lock that admits jobs, so a drain that starts
    /// after `close` can never miss a concurrently-admitted job.
    closed: bool,
    summary: ServeSummary,
}

/// Instrumentation invoked on a pool worker right after it claims a job
/// (status `Running`) and before the job's work runs. Production servers pass
/// `None`; the integration tests use it to hold a worker deterministically so
/// backpressure and cancellation can be exercised without timing races.
pub type StartHook = Arc<dyn Fn(JobId) + Send + Sync>;

/// Callback invoked (outside every scheduler lock) each time a job reaches a
/// terminal state. The readiness loop installs one to get push-on-complete
/// `RESULT WAIT` delivery: the hook enqueues the id and wakes the poller, so
/// no thread ever polls the job table.
pub type CompletionHook = Arc<dyn Fn(JobId) + Send + Sync>;

struct State {
    table: Mutex<Table>,
    /// Signalled whenever a job reaches a terminal state.
    changed: Condvar,
    queue_depth: usize,
    start_hook: Option<StartHook>,
    /// See [`CompletionHook`]. Behind its own lock (not the table lock): the
    /// hook is installed once at serve start and read on each completion.
    completion_hook: Mutex<Option<CompletionHook>>,
}

impl State {
    /// Fires the completion hook for `id`. Call with **no** scheduler lock
    /// held: the hook wakes the event loop, which may immediately call back
    /// into the table.
    fn notify_terminal(&self, id: JobId) {
        let hook = self
            .completion_hook
            .lock()
            .expect("completion hook lock poisoned")
            .clone();
        if let Some(hook) = hook {
            hook(id);
        }
    }
}

/// The scheduler: job table + worker pool. Cheap to share via `Arc`.
pub struct Scheduler {
    state: Arc<State>,
    pool: JobPool,
}

impl Scheduler {
    /// Creates a scheduler with `threads` pool workers and an in-flight bound
    /// of `queue_depth` jobs (both at least 1).
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        Scheduler::with_start_hook(threads, queue_depth, None)
    }

    /// Same as [`Scheduler::new`] with a [`StartHook`] attached.
    pub fn with_start_hook(
        threads: usize,
        queue_depth: usize,
        start_hook: Option<StartHook>,
    ) -> Self {
        Scheduler {
            state: Arc::new(State {
                table: Mutex::new(Table {
                    next_id: 1,
                    slots: HashMap::new(),
                    times: HashMap::new(),
                    inflight: 0,
                    closed: false,
                    summary: ServeSummary::default(),
                }),
                changed: Condvar::new(),
                queue_depth: queue_depth.max(1),
                start_hook,
                completion_hook: Mutex::new(None),
            }),
            pool: JobPool::new(threads),
        }
    }

    /// The in-flight bound.
    pub fn queue_depth(&self) -> usize {
        self.state.queue_depth
    }

    /// Jobs currently queued or running (the quantity the depth bound
    /// applies to). The readiness loop's shutdown drain spins on this
    /// reaching zero — woken by the completion hook, not by polling.
    pub fn inflight(&self) -> usize {
        self.state
            .table
            .lock()
            .expect("scheduler lock poisoned")
            .inflight
    }

    /// Installs the [`CompletionHook`], replacing any previous one.
    pub fn set_completion_hook(&self, hook: CompletionHook) {
        *self
            .state
            .completion_hook
            .lock()
            .expect("completion hook lock poisoned") = Some(hook);
    }

    /// Submits a solver job. Every job runs [`job::run`] with a sequential
    /// within-job executor: the service parallelizes *across* jobs (one pool
    /// worker each), which keeps worker counts predictable and results
    /// byte-deterministic either way.
    ///
    /// # Errors
    ///
    /// [`kecss::Error::JobQueueFull`] when `queue_depth` jobs are already in
    /// flight.
    pub fn submit(&self, spec: JobSpec) -> kecss::error::Result<JobId> {
        self.submit_with(Box::new(move || job::run(&spec, &Executor::Sequential)))
    }

    /// Submits an arbitrary job closure (the seam the tests and benches use
    /// to inject blocking or instant jobs).
    ///
    /// # Errors
    ///
    /// [`kecss::Error::JobQueueFull`] when `queue_depth` jobs are already in
    /// flight.
    pub fn submit_with(&self, work: Box<JobFn>) -> kecss::error::Result<JobId> {
        let id = {
            let mut table = self.state.table.lock().expect("scheduler lock poisoned");
            if table.closed {
                return Err(kecss::Error::ServiceShuttingDown);
            }
            if table.inflight >= self.state.queue_depth {
                table.summary.rejected += 1;
                metrics().rejected.inc();
                return Err(kecss::Error::JobQueueFull {
                    depth: self.state.queue_depth,
                });
            }
            let id = table.next_id;
            table.next_id += 1;
            table.inflight += 1;
            table.summary.submitted += 1;
            table.slots.insert(id, Slot::Queued(work));
            table.times.insert(
                id,
                JobTimes {
                    submitted: now_if_recording(),
                    started: None,
                },
            );
            metrics().submitted.inc();
            metrics().inflight.set(table.inflight as i64);
            id
        };
        let state = Arc::clone(&self.state);
        self.pool.submit(Box::new(move || execute(&state, id)));
        Ok(id)
    }

    /// The job's current lifecycle state, or `None` for an unknown id.
    pub fn status(&self, id: JobId) -> Option<JobStatus> {
        let table = self.state.table.lock().expect("scheduler lock poisoned");
        table.slots.get(&id).map(|slot| match slot {
            Slot::Queued(_) => JobStatus::Queued,
            Slot::Running => JobStatus::Running,
            // An evicted payload is still a completed job.
            Slot::Finished(Outcome::Done(_) | Outcome::Gone) => JobStatus::Done,
            Slot::Finished(Outcome::Failed(_)) => JobStatus::Failed,
            Slot::Finished(Outcome::Cancelled) => JobStatus::Cancelled,
        })
    }

    /// The job's terminal outcome, or `None` while it is still in flight (or
    /// for an unknown id — disambiguate with [`Scheduler::status`]). Never
    /// evicts; an already-evicted payload reads as [`Outcome::Gone`].
    pub fn outcome(&self, id: JobId) -> Option<Outcome> {
        let table = self.state.table.lock().expect("scheduler lock poisoned");
        match table.slots.get(&id) {
            Some(Slot::Finished(outcome)) => Some(outcome.clone()),
            _ => None,
        }
    }

    /// Fetched-once variant of [`Scheduler::outcome`]: returns the terminal
    /// outcome and, when it is a payload, **drops it from the job table** —
    /// the next call (and every later one) returns [`Outcome::Gone`]. This
    /// is what the server's `RESULT` handler uses, so a long-lived server
    /// retains each result only until its first fetch. `Failed` and
    /// `Cancelled` outcomes are small and kept for repeat diagnosis.
    pub fn take_result(&self, id: JobId) -> Option<Outcome> {
        let mut table = self.state.table.lock().expect("scheduler lock poisoned");
        match table.slots.get_mut(&id) {
            Some(Slot::Finished(outcome)) => {
                let fetched = match outcome {
                    Outcome::Done(_) => std::mem::replace(outcome, Outcome::Gone),
                    other => other.clone(),
                };
                Some(fetched)
            }
            _ => None,
        }
    }

    /// Blocks until the job reaches a terminal state and returns its outcome
    /// (`None` for an unknown id).
    pub fn wait(&self, id: JobId) -> Option<Outcome> {
        let mut table = self.state.table.lock().expect("scheduler lock poisoned");
        loop {
            match table.slots.get(&id) {
                None => return None,
                Some(Slot::Finished(outcome)) => return Some(outcome.clone()),
                Some(_) => {
                    table = self
                        .state
                        .changed
                        .wait(table)
                        .expect("scheduler lock poisoned");
                }
            }
        }
    }

    /// Cancels a queued job. Running jobs are left to complete (results are
    /// never torn); terminal jobs are immutable.
    ///
    /// # Errors
    ///
    /// A human-readable message naming the state that prevented cancellation.
    pub fn cancel(&self, id: JobId) -> Result<(), String> {
        let mut table = self.state.table.lock().expect("scheduler lock poisoned");
        match table.slots.get_mut(&id) {
            None => Err(format!("unknown job {id}")),
            Some(slot @ Slot::Queued(_)) => {
                *slot = Slot::Finished(Outcome::Cancelled);
                table.inflight -= 1;
                table.summary.cancelled += 1;
                table.times.remove(&id);
                metrics().cancelled.inc();
                metrics().inflight.set(table.inflight as i64);
                drop(table);
                self.state.changed.notify_all();
                self.state.notify_terminal(id);
                Ok(())
            }
            Some(Slot::Running) => Err(format!("job {id} is already running")),
            Some(Slot::Finished(_)) => Err(format!("job {id} already finished")),
        }
    }

    /// Refuses all further submissions (they fail with
    /// [`kecss::Error::ServiceShuttingDown`]). Taken under the admission
    /// lock, so after `close` returns, the set of admitted jobs is final and
    /// a subsequent [`Scheduler::drain`] waits for exactly that set — no
    /// submission can slip between the shutdown decision and the drain.
    pub fn close(&self) {
        self.state
            .table
            .lock()
            .expect("scheduler lock poisoned")
            .closed = true;
    }

    /// Blocks until no job is queued or running.
    pub fn drain(&self) {
        let mut table = self.state.table.lock().expect("scheduler lock poisoned");
        while table.inflight > 0 {
            table = self
                .state
                .changed
                .wait(table)
                .expect("scheduler lock poisoned");
        }
    }

    /// A snapshot of the aggregate counters.
    pub fn summary(&self) -> ServeSummary {
        self.state
            .table
            .lock()
            .expect("scheduler lock poisoned")
            .summary
    }

    /// Drains in-flight jobs, stops the pool workers and returns the final
    /// counters.
    pub fn shutdown(self) -> ServeSummary {
        self.drain();
        let summary = self.summary();
        self.pool.shutdown();
        summary
    }
}

/// The pool-side half of a job: claim the slot (unless it was cancelled
/// while queued), run the work outside the lock, store the outcome.
fn execute(state: &State, id: JobId) {
    let work = {
        let mut table = state.table.lock().expect("scheduler lock poisoned");
        match table.slots.get_mut(&id) {
            // Cancelled (or somehow vanished) while queued: nothing to run.
            Some(slot @ Slot::Queued(_)) => {
                let Slot::Queued(work) = std::mem::replace(slot, Slot::Running) else {
                    unreachable!("matched Slot::Queued above")
                };
                let started = now_if_recording();
                if let Some(times) = table.times.get_mut(&id) {
                    times.started = started;
                    if let Some(wait) = elapsed_ns(times.submitted, started) {
                        metrics().wait_ns.record(wait);
                    }
                }
                work
            }
            _ => return,
        }
    };
    if let Some(hook) = &state.start_hook {
        hook(id);
    }
    // A panicking job must not take the worker (and with it the scheduler's
    // in-flight accounting) down: catch the unwind and record it as a
    // failure. The job closure is moved in whole, so no shared state can be
    // observed in a torn intermediate state.
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(work));
    let outcome = match result {
        Ok(Ok(payload)) => Outcome::Done(Arc::new(payload)),
        Ok(Err(message)) => Outcome::Failed(message),
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            Outcome::Failed(format!("job panicked: {message}"))
        }
    };
    let finished = now_if_recording();
    let mut table = state.table.lock().expect("scheduler lock poisoned");
    match &outcome {
        Outcome::Done(_) => {
            table.summary.completed += 1;
            metrics().completed.inc();
        }
        Outcome::Failed(_) => {
            table.summary.failed += 1;
            metrics().failed.inc();
        }
        // A job never *finishes* as Cancelled/Gone here: Cancelled is set by
        // `cancel` while queued, Gone only by `take_result` after the fact.
        Outcome::Cancelled | Outcome::Gone => {}
    }
    if let Some(times) = table.times.remove(&id) {
        if let Some(run) = elapsed_ns(times.started, finished) {
            metrics().run_ns.record(run);
        }
        if let Some(total) = elapsed_ns(times.submitted, finished) {
            metrics().submit_to_done_ns.record(total);
        }
    }
    table.slots.insert(id, Slot::Finished(outcome));
    table.inflight -= 1;
    metrics().inflight.set(table.inflight as i64);
    drop(table);
    state.changed.notify_all();
    state.notify_terminal(id);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;

    /// A job that blocks until the returned sender is dropped or signalled.
    fn blocking_job(scheduler: &Scheduler) -> (JobId, mpsc::Sender<()>) {
        let (tx, rx) = mpsc::channel::<()>();
        let id = scheduler
            .submit_with(Box::new(move || {
                // Returns on signal or on sender drop; either unblocks.
                let _ = rx.recv();
                Ok(b"blocked-job".to_vec())
            }))
            .unwrap();
        (id, tx)
    }

    /// Spin-waits until the job has been claimed by a worker (submission and
    /// claiming race, so tests that assert on `Running` must wait for it).
    fn wait_until_running(scheduler: &Scheduler, id: JobId) {
        while scheduler.status(id) != Some(JobStatus::Running) {
            assert!(
                !scheduler.status(id).unwrap().is_terminal(),
                "job {id} finished before it could be observed running"
            );
            std::thread::yield_now();
        }
    }

    /// The fleet lifecycle's full transition table, checked pair by pair:
    /// exactly the eight documented moves are legal, everything else —
    /// self-loops, skips like Queued→Running or Queued→Done, and any move
    /// out of a terminal state — is rejected.
    #[test]
    fn fleet_state_transition_table_is_exactly_the_documented_one() {
        use FleetState::*;
        let legal = [
            (Queued, Assigned),
            (Queued, Cancelled),
            (Assigned, Running),
            (Assigned, Queued),
            (Assigned, Failed),
            (Running, Done),
            (Running, Failed),
            (Running, Queued),
        ];
        for from in FleetState::ALL {
            for to in FleetState::ALL {
                let expected = legal.contains(&(from, to));
                assert_eq!(
                    from.can_transition(to),
                    expected,
                    "{from:?} -> {to:?} should be {}",
                    if expected { "legal" } else { "illegal" }
                );
            }
        }
    }

    #[test]
    fn fleet_terminal_states_admit_no_transitions() {
        for from in FleetState::ALL.into_iter().filter(FleetState::is_terminal) {
            for to in FleetState::ALL {
                assert!(
                    !from.can_transition(to),
                    "terminal {from:?} must not move to {to:?}"
                );
            }
        }
        // And the terminal set is exactly {Done, Failed, Cancelled}.
        let terminal: Vec<_> = FleetState::ALL
            .into_iter()
            .filter(FleetState::is_terminal)
            .collect();
        assert_eq!(
            terminal,
            [FleetState::Done, FleetState::Failed, FleetState::Cancelled]
        );
    }

    #[test]
    fn fleet_state_wire_names_extend_job_status_wire_names() {
        // Every standalone state keeps its wire word in the fleet; ASSIGNED
        // is the single fleet-only addition clients may newly observe.
        assert_eq!(
            FleetState::Queued.wire_name(),
            JobStatus::Queued.wire_name()
        );
        assert_eq!(
            FleetState::Running.wire_name(),
            JobStatus::Running.wire_name()
        );
        assert_eq!(FleetState::Done.wire_name(), JobStatus::Done.wire_name());
        assert_eq!(
            FleetState::Failed.wire_name(),
            JobStatus::Failed.wire_name()
        );
        assert_eq!(
            FleetState::Cancelled.wire_name(),
            JobStatus::Cancelled.wire_name()
        );
        assert_eq!(FleetState::Assigned.wire_name(), "ASSIGNED");
    }

    #[test]
    fn jobs_run_and_results_are_fetchable() {
        let scheduler = Scheduler::new(2, 8);
        let id = scheduler
            .submit_with(Box::new(|| Ok(b"payload".to_vec())))
            .unwrap();
        match scheduler.wait(id) {
            Some(Outcome::Done(bytes)) => assert_eq!(bytes.as_slice(), b"payload"),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(scheduler.status(id), Some(JobStatus::Done));
        assert_eq!(scheduler.status(999), None);
        let summary = scheduler.shutdown();
        assert_eq!(summary.submitted, 1);
        assert_eq!(summary.completed, 1);
    }

    #[test]
    fn queue_overflow_rejects_without_touching_inflight_jobs() {
        let scheduler = Scheduler::new(1, 2);
        let (a, tx_a) = blocking_job(&scheduler);
        let (b, tx_b) = blocking_job(&scheduler);
        // Depth 2 is exhausted: the third submission must bounce.
        let err = scheduler
            .submit_with(Box::new(|| Ok(Vec::new())))
            .unwrap_err();
        assert_eq!(err, kecss::Error::JobQueueFull { depth: 2 });
        // The in-flight jobs are unaffected and still complete.
        drop(tx_a);
        drop(tx_b);
        assert!(matches!(scheduler.wait(a), Some(Outcome::Done(_))));
        assert!(matches!(scheduler.wait(b), Some(Outcome::Done(_))));
        let summary = scheduler.shutdown();
        assert_eq!(summary.submitted, 2);
        assert_eq!(summary.rejected, 1);
        assert_eq!(summary.completed, 2);
    }

    #[test]
    fn cancelling_a_queued_job_frees_its_slot() {
        let scheduler = Scheduler::new(1, 2);
        let (running, tx) = blocking_job(&scheduler);
        let (queued, _tx_queued) = blocking_job(&scheduler);
        // The single worker is blocked on `running`, so `queued` is still
        // queued and cancellable; `running` is not.
        wait_until_running(&scheduler, running);
        scheduler.cancel(queued).unwrap();
        assert_eq!(scheduler.status(queued), Some(JobStatus::Cancelled));
        assert_eq!(scheduler.wait(queued), Some(Outcome::Cancelled));
        assert!(scheduler.cancel(running).is_err());
        assert!(scheduler.cancel(42).is_err());
        // The freed slot accepts a new job immediately.
        let c = scheduler
            .submit_with(Box::new(|| Ok(b"after-cancel".to_vec())))
            .unwrap();
        drop(tx);
        assert!(matches!(scheduler.wait(c), Some(Outcome::Done(_))));
        assert!(scheduler.cancel(c).is_err(), "terminal jobs are immutable");
        let summary = scheduler.shutdown();
        assert_eq!(summary.cancelled, 1);
        assert_eq!(summary.completed, 2);
    }

    #[test]
    fn take_result_evicts_payloads_once_fetched() {
        let scheduler = Scheduler::new(1, 4);
        let id = scheduler
            .submit_with(Box::new(|| Ok(b"big payload".to_vec())))
            .unwrap();
        scheduler.wait(id);
        // Peeking never evicts.
        assert!(matches!(scheduler.outcome(id), Some(Outcome::Done(_))));
        // The first take returns the payload and drops it from the table.
        match scheduler.take_result(id) {
            Some(Outcome::Done(bytes)) => assert_eq!(bytes.as_slice(), b"big payload"),
            other => panic!("unexpected {other:?}"),
        }
        // Every later fetch sees Gone; the job still reads as Done.
        assert_eq!(scheduler.take_result(id), Some(Outcome::Gone));
        assert_eq!(scheduler.outcome(id), Some(Outcome::Gone));
        assert_eq!(scheduler.status(id), Some(JobStatus::Done));
        // Failures are kept for repeat diagnosis.
        let failed = scheduler
            .submit_with(Box::new(|| Err("boom".into())))
            .unwrap();
        scheduler.wait(failed);
        assert_eq!(
            scheduler.take_result(failed),
            Some(Outcome::Failed("boom".into()))
        );
        assert_eq!(
            scheduler.take_result(failed),
            Some(Outcome::Failed("boom".into()))
        );
        // In-flight and unknown ids read as None, as with `outcome`.
        assert_eq!(scheduler.take_result(999), None);
        scheduler.shutdown();
    }

    #[test]
    fn panicking_jobs_fail_without_wedging_the_scheduler() {
        let scheduler = Scheduler::new(1, 4);
        let id = scheduler.submit_with(Box::new(|| panic!("boom"))).unwrap();
        match scheduler.wait(id) {
            Some(Outcome::Failed(msg)) => {
                assert!(msg.contains("panicked") && msg.contains("boom"), "{msg}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The worker survived: later jobs run, and drain/shutdown return.
        let ok = scheduler
            .submit_with(Box::new(|| Ok(b"after-panic".to_vec())))
            .unwrap();
        assert!(matches!(scheduler.wait(ok), Some(Outcome::Done(_))));
        let summary = scheduler.shutdown();
        assert_eq!(summary.failed, 1);
        assert_eq!(summary.completed, 1);
    }

    #[test]
    fn closed_scheduler_refuses_submissions_but_drains_accepted_jobs() {
        let scheduler = Scheduler::new(1, 4);
        let (id, tx) = blocking_job(&scheduler);
        scheduler.close();
        assert_eq!(
            scheduler
                .submit_with(Box::new(|| Ok(Vec::new())))
                .unwrap_err(),
            kecss::Error::ServiceShuttingDown
        );
        drop(tx);
        assert!(matches!(scheduler.wait(id), Some(Outcome::Done(_))));
        let summary = scheduler.shutdown();
        assert_eq!(summary.submitted, 1);
        assert_eq!(summary.completed, 1);
    }

    #[test]
    fn failed_jobs_store_their_message() {
        let scheduler = Scheduler::new(1, 4);
        let id = scheduler
            .submit_with(Box::new(|| Err("no such instance".into())))
            .unwrap();
        assert_eq!(
            scheduler.wait(id),
            Some(Outcome::Failed("no such instance".into()))
        );
        assert_eq!(scheduler.status(id), Some(JobStatus::Failed));
        assert_eq!(scheduler.shutdown().failed, 1);
    }

    #[test]
    fn drain_waits_for_all_inflight_jobs() {
        let scheduler = Scheduler::new(4, 64);
        for _ in 0..32 {
            scheduler
                .submit_with(Box::new(|| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    Ok(Vec::new())
                }))
                .unwrap();
        }
        scheduler.drain();
        let summary = scheduler.summary();
        assert_eq!(summary.completed, 32);
        // After a drain, the full depth is available again.
        assert!(scheduler.submit_with(Box::new(|| Ok(Vec::new()))).is_ok());
        scheduler.shutdown();
    }

    #[test]
    fn completion_hook_fires_on_every_terminal_transition() {
        let scheduler = Scheduler::new(1, 4);
        let seen = Arc::new(Mutex::new(Vec::new()));
        let sink = Arc::clone(&seen);
        scheduler.set_completion_hook(Arc::new(move |id| {
            sink.lock().unwrap().push(id);
        }));
        let done = scheduler.submit_with(Box::new(|| Ok(Vec::new()))).unwrap();
        scheduler.wait(done);
        let failed = scheduler.submit_with(Box::new(|| Err("x".into()))).unwrap();
        scheduler.wait(failed);
        // Cancellation is a terminal transition too: hold the single worker
        // so a second job stays queued and cancellable.
        let (running, tx) = blocking_job(&scheduler);
        wait_until_running(&scheduler, running);
        let (queued, _tx_queued) = blocking_job(&scheduler);
        scheduler.cancel(queued).unwrap();
        drop(tx);
        scheduler.wait(running);
        scheduler.shutdown();
        let seen = seen.lock().unwrap().clone();
        for id in [done, failed, queued, running] {
            assert!(seen.contains(&id), "hook missed job {id}: {seen:?}");
        }
    }

    #[test]
    fn outcome_is_none_while_in_flight() {
        let scheduler = Scheduler::new(1, 2);
        let (id, tx) = blocking_job(&scheduler);
        assert_eq!(scheduler.outcome(id), None);
        assert!(!scheduler.status(id).unwrap().is_terminal());
        drop(tx);
        assert!(scheduler.wait(id).is_some());
        assert!(scheduler.status(id).unwrap().is_terminal());
        scheduler.shutdown();
    }
}
