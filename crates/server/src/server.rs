//! The TCP front-end: the standalone server role on the readiness loop.
//!
//! Accepting, framing and reply delivery all happen on the single
//! [`crate::event_loop`] thread (DESIGN.md §14); the actual solving happens
//! on the scheduler's worker pool, so the event thread never blocks. Both
//! wire modes — the text line protocol and `KGW1` binary frames — are served
//! on the same port, sniffed from the first bytes of each connection.
//! `SHUTDOWN` stops accepting and refuses further submissions, then
//! [`Server::run`] drains the in-flight jobs before returning — nothing that
//! was accepted is ever dropped.

use crate::event_loop::{run_event_loop, EventLoopConfig, Service, ServiceReply};
use crate::protocol::{Request, Response};
use crate::scheduler::{CompletionHook, JobId, Outcome, Scheduler, ServeSummary};
use std::net::{SocketAddr, TcpListener};
use std::sync::Arc;

pub use polling::Backend;

/// Server configuration (the CLI's `kecss serve` flags).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The address to bind, e.g. `127.0.0.1:7461` (port 0 picks one).
    pub addr: String,
    /// Scheduler pool workers.
    pub threads: usize,
    /// Maximum jobs in flight (queued + running) before `BUSY`.
    pub queue_depth: usize,
    /// Maximum requests a single connection may issue before the server
    /// answers `ERR` and closes it (0 means unlimited). Bounds the damage a
    /// stuck client loop can do to a shared server.
    pub max_requests_per_conn: usize,
    /// Maximum unsent reply bytes buffered for one connection before the
    /// slow-client policy answers `ERR` and closes it. Bounds the memory a
    /// stalled reader can pin.
    pub write_queue_limit: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7461".into(),
            threads: 1,
            queue_depth: 16,
            max_requests_per_conn: 0,
            write_queue_limit: 16 << 20,
        }
    }
}

/// A bound, not-yet-running server. Splitting bind from run lets callers
/// learn the ephemeral port (`--addr 127.0.0.1:0`) before the blocking event
/// loop starts.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    loop_config: EventLoopConfig,
}

impl Server {
    /// Binds the listener and spins up the scheduler pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        Server::bind_with(config, Scheduler::new(config.threads, config.queue_depth))
    }

    /// Same as [`Server::bind`] with a caller-constructed scheduler (the seam
    /// the integration tests use to attach a
    /// [`crate::scheduler::StartHook`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(config: &ServerConfig, scheduler: Scheduler) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            scheduler: Arc::new(scheduler),
            loop_config: EventLoopConfig {
                max_requests_per_conn: config.max_requests_per_conn,
                write_queue_limit: config.write_queue_limit.max(1),
                backend: None,
            },
        })
    }

    /// Overrides the readiness backend (tests drive the portable `poll(2)`
    /// fallback through this; production uses the platform default).
    pub fn set_backend(&mut self, backend: polling::Backend) {
        self.loop_config.backend = Some(backend);
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the bound address (it just bound it).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Runs the readiness loop until a `SHUTDOWN` request arrives, then
    /// drains the in-flight jobs and returns the final counters.
    ///
    /// # Panics
    ///
    /// Panics if the readiness poller cannot be constructed (fd exhaustion).
    pub fn run(self) -> ServeSummary {
        let service: Arc<dyn Service> = Arc::new(ServerService {
            scheduler: Arc::clone(&self.scheduler),
        });
        run_event_loop(self.listener, &service, &self.loop_config)
            .expect("readiness loop failed to start");
        // The loop exits only once the service is idle; the drain is a
        // belt-and-braces barrier before reading the final counters.
        self.scheduler.drain();
        self.scheduler.summary()
    }

    /// Spawns [`Server::run`] on a background thread (the form the tests and
    /// the in-process harness use).
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, thread }
    }
}

/// A running background server.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<ServeSummary>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down (send `SHUTDOWN` first) and returns
    /// its final counters.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn join(self) -> ServeSummary {
        self.thread.join().expect("server thread panicked")
    }
}

/// The standalone role behind the readiness loop: scheduler-backed request
/// handling. Metrics are recorded out-of-band only: the response bytes for
/// every job-facing verb are exactly what they were before instrumentation
/// (DESIGN.md §11), and per-verb counters fire identically for text and
/// binary connections.
struct ServerService {
    scheduler: Arc<Scheduler>,
}

impl ServerService {
    /// Maps a fetched terminal outcome to its reply.
    fn outcome_response(id: JobId, outcome: Outcome) -> Response {
        match outcome {
            Outcome::Done(payload) => Response::Result { id, payload },
            Outcome::Gone => Response::Gone(id),
            Outcome::Failed(message) => Response::Err(format!("job {id} failed: {message}")),
            Outcome::Cancelled => Response::Err(kecss::Error::JobCancelled { job: id }.to_string()),
        }
    }
}

/// Counts the reply-classification metrics (`BUSY`/`GONE`/request-`ERR`),
/// shared by immediate and pushed replies of both roles.
pub(crate) fn classify_response(response: &Response) {
    if !kecss_obs::enabled() {
        return;
    }
    match response {
        Response::Busy(_) => kecss_obs::counter("server_reply_busy_total").inc(),
        Response::Gone(_) => kecss_obs::counter("server_reply_gone_total").inc(),
        Response::Err(_) => {
            kecss_obs::counter_with("server_reply_err_total", &[("cause", "request")]).inc();
        }
        _ => {}
    }
}

impl Service for ServerService {
    fn respond(&self, request: Request) -> ServiceReply {
        kecss_obs::counter_with("server_requests_total", &[("verb", request.verb())]).inc();
        let reply = match request {
            // Admission control lives in the scheduler, under its table
            // lock: after a SHUTDOWN closes the scheduler, this returns
            // `ServiceShuttingDown`, and any submission admitted before the
            // close is visible to the shutdown drain. The wait-flagged
            // variant additionally parks the connection for the terminal
            // push — but only when the job was actually admitted.
            Request::Submit(spec) => match self.scheduler.submit(spec) {
                Ok(id) => ServiceReply::Line(Response::Ok(format!("{id} QUEUED"))),
                Err(kecss::Error::JobQueueFull { depth }) => {
                    ServiceReply::Line(Response::Busy(depth as u64))
                }
                Err(other) => ServiceReply::Line(Response::Err(other.to_string())),
            },
            Request::SubmitWait(spec) => match self.scheduler.submit(spec) {
                Ok(id) => ServiceReply::LineAndSubscribe(Response::Ok(format!("{id} QUEUED")), id),
                Err(kecss::Error::JobQueueFull { depth }) => {
                    ServiceReply::Line(Response::Busy(depth as u64))
                }
                Err(other) => ServiceReply::Line(Response::Err(other.to_string())),
            },
            Request::Status(id) => match self.scheduler.status(id) {
                Some(status) => {
                    ServiceReply::Line(Response::Ok(format!("{id} {}", status.wire_name())))
                }
                None => ServiceReply::Line(Response::Err(format!("unknown job {id}"))),
            },
            Request::Result(id) => {
                match (self.scheduler.status(id), self.scheduler.take_result(id)) {
                    (None, _) => ServiceReply::Line(Response::Err(format!("unknown job {id}"))),
                    (Some(status), None) => ServiceReply::Line(Response::Wait {
                        id,
                        state: status.wire_name(),
                    }),
                    // Fetched-once: `take_result` dropped the payload from
                    // the table; a repeat RESULT for this id answers GONE.
                    (_, Some(outcome)) => {
                        ServiceReply::Line(ServerService::outcome_response(id, outcome))
                    }
                }
            }
            Request::ResultWait(id) => match self.scheduler.status(id) {
                None => ServiceReply::Line(Response::Err(format!("unknown job {id}"))),
                // Known job: park the connection. Already-terminal jobs are
                // answered by the subscribe-time re-check in the loop.
                Some(_) => ServiceReply::Subscribe(id),
            },
            Request::Cancel(id) => match self.scheduler.cancel(id) {
                Ok(()) => ServiceReply::Line(Response::Ok(format!("{id} CANCELLED"))),
                Err(message) => ServiceReply::Line(Response::Err(message)),
            },
            Request::Metrics => {
                // Framed with the byte length, then the text exposition
                // verbatim (it is multi-line, so line framing alone cannot
                // carry it).
                let text = kecss_obs::Registry::global().render();
                ServiceReply::Line(Response::Metrics(Arc::new(text.into_bytes())))
            }
            // Fleet verbs are the coordinator's alone: a standalone server
            // (and a worker, which serves this same path) refuses them, so a
            // client pointed at the wrong role finds out immediately.
            Request::Heartbeat { .. } | Request::Fleet => ServiceReply::Line(Response::Err(
                "not a fleet coordinator (HEARTBEAT/FLEET need `kecss serve --role coordinator`)"
                    .into(),
            )),
            Request::Shutdown => {
                // Close the scheduler first (authoritative, under the
                // admission lock); the loop stops accepting and drains.
                // Everything admitted up to the close is served; everything
                // after is refused.
                self.scheduler.close();
                ServiceReply::Shutdown(Response::Ok("SHUTDOWN".into()))
            }
        };
        if let ServiceReply::Line(response)
        | ServiceReply::Shutdown(response)
        | ServiceReply::LineAndSubscribe(response, _) = &reply
        {
            classify_response(response);
        }
        reply
    }

    fn result_reply(&self, id: JobId) -> Option<Response> {
        if !self.scheduler.status(id)?.is_terminal() {
            return None;
        }
        let outcome = self.scheduler.take_result(id)?;
        let response = ServerService::outcome_response(id, outcome);
        classify_response(&response);
        Some(response)
    }

    fn idle(&self) -> bool {
        self.scheduler.inflight() == 0
    }

    fn install_completion_hook(&self, hook: CompletionHook) {
        self.scheduler.set_completion_hook(hook);
    }
}

/// Formats a one-line human summary (used by the CLI and the binary).
pub fn summary_line(summary: &ServeSummary) -> String {
    format!(
        "served {} jobs: {} completed, {} failed, {} cancelled, {} rejected busy",
        summary.submitted, summary.completed, summary.failed, summary.cancelled, summary.rejected
    )
}
