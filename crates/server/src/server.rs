//! The TCP front-end: accept loop, per-connection request handling, and the
//! shutdown/drain lifecycle.
//!
//! One OS thread per connection keeps the implementation std-only and the
//! request path trivially ordered: a connection's requests are answered in
//! submission order, while the actual solving happens on the scheduler's
//! worker pool. `SHUTDOWN` stops the accept loop and refuses further
//! submissions, then [`Server::run`] drains the in-flight jobs before
//! returning — nothing that was accepted is ever dropped.

use crate::protocol::Request;
use crate::scheduler::{Outcome, Scheduler, ServeSummary};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Server configuration (the CLI's `kecss serve` flags).
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// The address to bind, e.g. `127.0.0.1:7461` (port 0 picks one).
    pub addr: String,
    /// Scheduler pool workers.
    pub threads: usize,
    /// Maximum jobs in flight (queued + running) before `BUSY`.
    pub queue_depth: usize,
    /// Maximum requests a single connection may issue before the server
    /// answers `ERR` and closes it (0 means unlimited). Bounds the damage a
    /// stuck client loop can do to a shared server.
    pub max_requests_per_conn: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7461".into(),
            threads: 1,
            queue_depth: 16,
            max_requests_per_conn: 0,
        }
    }
}

/// A bound, not-yet-running server. Splitting bind from run lets callers
/// learn the ephemeral port (`--addr 127.0.0.1:0`) before the blocking accept
/// loop starts.
pub struct Server {
    listener: TcpListener,
    scheduler: Arc<Scheduler>,
    shutting_down: Arc<AtomicBool>,
    max_requests_per_conn: usize,
}

impl Server {
    /// Binds the listener and spins up the scheduler pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        Server::bind_with(config, Scheduler::new(config.threads, config.queue_depth))
    }

    /// Same as [`Server::bind`] with a caller-constructed scheduler (the seam
    /// the integration tests use to attach a
    /// [`crate::scheduler::StartHook`]).
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind_with(config: &ServerConfig, scheduler: Scheduler) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            scheduler: Arc::new(scheduler),
            shutting_down: Arc::new(AtomicBool::new(false)),
            max_requests_per_conn: config.max_requests_per_conn,
        })
    }

    /// The actually-bound address (resolves port 0).
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the bound address (it just bound it).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Runs the accept loop until a `SHUTDOWN` request arrives, then drains
    /// the in-flight jobs and returns the final counters.
    pub fn run(self) -> ServeSummary {
        let addr = self.local_addr();
        for stream in self.listener.incoming() {
            if self.shutting_down.load(Ordering::SeqCst) {
                break;
            }
            let Ok(stream) = stream else { continue };
            let _ = stream.set_nodelay(true);
            let scheduler = Arc::clone(&self.scheduler);
            let shutting_down = Arc::clone(&self.shutting_down);
            let max_requests = self.max_requests_per_conn;
            // Connection threads are detached: they end when their client
            // disconnects, and they never outlive useful work (after the
            // drain below, every request they can still make is answered
            // from the immutable job table or refused).
            std::thread::spawn(move || {
                serve_line_connection(stream, addr, max_requests, |request| {
                    respond(request, &scheduler, &shutting_down)
                });
            });
        }
        self.scheduler.drain();
        self.scheduler.summary()
    }

    /// Spawns [`Server::run`] on a background thread (the form the tests and
    /// the in-process harness use).
    pub fn spawn(self) -> ServerHandle {
        let addr = self.local_addr();
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { addr, thread }
    }
}

/// A running background server.
pub struct ServerHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<ServeSummary>,
}

impl ServerHandle {
    /// The server's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the server to shut down (send `SHUTDOWN` first) and returns
    /// its final counters.
    ///
    /// # Panics
    ///
    /// Panics if the server thread panicked.
    pub fn join(self) -> ServeSummary {
        self.thread.join().expect("server thread panicked")
    }
}

/// The longest request line the server will buffer (inline instances are the
/// only long requests; at [`crate::instance::MAX_INSTANCE_N`] edges-per-line
/// granularity this is generous). Bounding it keeps a malicious client from
/// growing the line buffer without ever sending a newline.
const MAX_REQUEST_LINE: u64 = 1 << 20;

/// Serves one connection: a loop of line-framed requests, answered by the
/// given responder. Returns when the client disconnects, after acknowledging
/// `SHUTDOWN`, or when a per-connection limit is exceeded (`ERR`, then
/// close). This loop is the single implementation of the wire framing,
/// shared by the standalone [`Server`] and the fleet
/// [`crate::coordinator::Coordinator`] — both roles speak byte-identical
/// framing by construction.
pub(crate) fn serve_line_connection<F>(
    stream: TcpStream,
    server_addr: SocketAddr,
    max_requests: usize,
    respond: F,
) where
    F: Fn(Request) -> Vec<u8>,
{
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::new(stream);
    let mut writer = write_half;
    let mut line = String::new();
    let mut served: usize = 0;
    loop {
        line.clear();
        match std::io::Read::take(&mut reader, MAX_REQUEST_LINE).read_line(&mut line) {
            Ok(0) | Err(_) => return, // disconnected
            Ok(_) => {}
        }
        if !line.ends_with('\n') && line.len() as u64 >= MAX_REQUEST_LINE {
            // The limit cut the line short: refuse and drop the connection
            // (resynchronizing mid-line is not worth the ambiguity).
            kecss_obs::counter_with("server_conn_limit_total", &[("kind", "line")]).inc();
            let _ = writer.write_all(b"ERR request line exceeds the size limit\n");
            return;
        }
        if max_requests != 0 && served >= max_requests {
            kecss_obs::counter_with("server_conn_limit_total", &[("kind", "requests")]).inc();
            let _ = writer
                .write_all(format!("ERR connection exceeded {max_requests} requests\n").as_bytes());
            return;
        }
        served += 1;
        let request = match Request::parse(line.trim_end()) {
            Ok(request) => request,
            Err(message) => {
                kecss_obs::counter_with("server_reply_err_total", &[("cause", "parse")]).inc();
                if writer
                    .write_all(format!("ERR {message}\n").as_bytes())
                    .is_err()
                {
                    return;
                }
                continue;
            }
        };
        let is_shutdown = request == Request::Shutdown;
        let response = respond(request);
        if writer.write_all(&response).is_err() {
            return;
        }
        if is_shutdown {
            // Wake the accept loop so it observes the flag. The dummy
            // connection is accepted, sees the flag, and is dropped.
            let _ = TcpStream::connect(server_addr);
            return;
        }
    }
}

/// Computes the full response bytes (header line, plus payload for RESULT
/// and METRICS). Metrics are recorded out-of-band only: the response bytes
/// for every job-facing verb are exactly what they were before
/// instrumentation (DESIGN.md §11).
fn respond(request: Request, scheduler: &Scheduler, shutting_down: &AtomicBool) -> Vec<u8> {
    let verb = match &request {
        Request::Submit(_) => "SUBMIT",
        Request::Status(_) => "STATUS",
        Request::Result(_) => "RESULT",
        Request::Cancel(_) => "CANCEL",
        Request::Metrics => "METRICS",
        Request::Heartbeat { .. } => "HEARTBEAT",
        Request::Fleet => "FLEET",
        Request::Shutdown => "SHUTDOWN",
    };
    kecss_obs::counter_with("server_requests_total", &[("verb", verb)]).inc();
    let response = respond_inner(request, scheduler, shutting_down);
    if kecss_obs::enabled() {
        match response.first() {
            Some(b'B') => kecss_obs::counter("server_reply_busy_total").inc(),
            Some(b'G') => kecss_obs::counter("server_reply_gone_total").inc(),
            Some(b'E') => {
                kecss_obs::counter_with("server_reply_err_total", &[("cause", "request")]).inc();
            }
            _ => {}
        }
    }
    response
}

/// The uninstrumented response computation (see [`respond`]). The first byte
/// of each reply verb is distinct (`OK`/`WAIT`/`RESULT`/`METRICS` vs `BUSY`,
/// `GONE`, `ERR`), which is what [`respond`] classifies on.
fn respond_inner(request: Request, scheduler: &Scheduler, shutting_down: &AtomicBool) -> Vec<u8> {
    match request {
        Request::Submit(spec) => {
            // Admission control lives in the scheduler, under its table lock:
            // after a SHUTDOWN closes the scheduler, this returns
            // `ServiceShuttingDown`, and any submission admitted before the
            // close is visible to the shutdown drain. No check against the
            // (advisory, accept-loop-only) atomic flag here — that would race
            // with the drain.
            match scheduler.submit(spec) {
                Ok(id) => format!("OK {id} QUEUED\n").into_bytes(),
                Err(kecss::Error::JobQueueFull { depth }) => format!("BUSY {depth}\n").into_bytes(),
                Err(other) => format!("ERR {other}\n").into_bytes(),
            }
        }
        Request::Status(id) => match scheduler.status(id) {
            Some(status) => format!("OK {id} {}\n", status.wire_name()).into_bytes(),
            None => format!("ERR unknown job {id}\n").into_bytes(),
        },
        Request::Result(id) => match (scheduler.status(id), scheduler.take_result(id)) {
            (None, _) => format!("ERR unknown job {id}\n").into_bytes(),
            (Some(status), None) => format!("WAIT {id} {}\n", status.wire_name()).into_bytes(),
            (_, Some(Outcome::Done(payload))) => {
                // Fetched-once: `take_result` dropped the payload from the
                // table; a repeat RESULT for this id answers GONE.
                let mut out = format!("RESULT {id} {}\n", payload.len()).into_bytes();
                out.extend_from_slice(&payload);
                out
            }
            (_, Some(Outcome::Gone)) => format!("GONE {id}\n").into_bytes(),
            (_, Some(Outcome::Failed(message))) => {
                format!("ERR job {id} failed: {message}\n").into_bytes()
            }
            (_, Some(Outcome::Cancelled)) => {
                format!("ERR {}\n", kecss::Error::JobCancelled { job: id }).into_bytes()
            }
        },
        Request::Cancel(id) => match scheduler.cancel(id) {
            Ok(()) => format!("OK {id} CANCELLED\n").into_bytes(),
            Err(message) => format!("ERR {message}\n").into_bytes(),
        },
        Request::Metrics => {
            // Framed like RESULT: a header with the byte length, then the
            // text exposition verbatim (it is multi-line, so line framing
            // alone cannot carry it).
            let text = kecss_obs::Registry::global().render();
            let mut out = format!("METRICS {}\n", text.len()).into_bytes();
            out.extend_from_slice(text.as_bytes());
            out
        }
        // Fleet verbs are the coordinator's alone: a standalone server (and
        // a worker, which serves this same respond path) refuses them, so a
        // client pointed at the wrong role finds out immediately.
        Request::Heartbeat { .. } | Request::Fleet => {
            b"ERR not a fleet coordinator (HEARTBEAT/FLEET need `kecss serve --role coordinator`)\n"
                .to_vec()
        }
        Request::Shutdown => {
            // Close the scheduler first (authoritative, under the admission
            // lock), then flag the accept loop. Everything admitted up to the
            // close is drained by `Server::run`; everything after is refused.
            scheduler.close();
            shutting_down.store(true, Ordering::SeqCst);
            b"OK SHUTDOWN\n".to_vec()
        }
    }
}

/// Formats a one-line human summary (used by the CLI and the binary).
pub fn summary_line(summary: &ServeSummary) -> String {
    format!(
        "served {} jobs: {} completed, {} failed, {} cancelled, {} rejected busy",
        summary.submitted, summary.completed, summary.failed, summary.cancelled, summary.rejected
    )
}
