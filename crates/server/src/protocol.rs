//! The wire protocol: line-framed requests, length-prefixed result payloads.
//!
//! Every request is a single UTF-8 line (terminated by `\n`); every response
//! is a single header line, except a successful `RESULT` whose header
//! `RESULT <id> <len>` is followed by exactly `<len>` payload bytes. The full
//! grammar lives in DESIGN.md §9; in short:
//!
//! ```text
//! SUBMIT <instance> <k> <algorithm> <enumerator> <seed>   -> OK <id> QUEUED | BUSY <depth> | ERR <msg>
//! STATUS <id>                                             -> OK <id> <STATE> | ERR <msg>
//! RESULT <id>    -> RESULT <id> <len>\n<payload> | WAIT <id> <STATE> | GONE <id> | ERR <msg>
//! CANCEL <id>                                             -> OK <id> CANCELLED | ERR <msg>
//! METRICS        -> METRICS <len>\n<text exposition>
//! SHUTDOWN                                                -> OK SHUTDOWN
//! ```
//!
//! `<STATE>` is one of `QUEUED`, `RUNNING`, `DONE`, `FAILED`, `CANCELLED`.
//! Result payloads are **fetched-once**: a successful `RESULT` evicts the
//! payload from the job table (bounding a long-lived server's memory), and
//! every later `RESULT` for that id answers `GONE <id>` while `STATUS` still
//! reports `DONE`.

use crate::instance::InstanceSpec;
use crate::job::{Algorithm, JobSpec};
use kecss::cuts::EnumeratorPolicy;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a job for scheduling.
    Submit(JobSpec),
    /// Query a job's lifecycle state.
    Status(u64),
    /// Fetch a finished job's result payload.
    Result(u64),
    /// Cancel a queued job (running jobs complete; done jobs are immutable).
    Cancel(u64),
    /// Fetch the process-wide metrics registry as a text exposition.
    Metrics,
    /// A worker's combined registration + liveness beat (coordinator only;
    /// a standalone or worker server answers `ERR`). The first beat from an
    /// unknown (or previously lost) worker id registers it.
    Heartbeat {
        /// The worker's stable identifier (one whitespace-free token).
        worker: String,
        /// The address the worker serves jobs on, where the coordinator
        /// dispatches.
        addr: String,
    },
    /// Fetch the coordinator's fleet status text (framed like `METRICS`;
    /// coordinator only).
    Fleet,
    /// Drain the queue and stop the server.
    Shutdown,
}

impl Request {
    /// Parses one request line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns the human-readable message the server sends back as
    /// `ERR <msg>`.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut words = line.split_whitespace();
        let verb = words.next().ok_or("empty request")?;
        let rest: Vec<&str> = words.collect();
        match verb {
            "SUBMIT" => {
                let [instance, k, algorithm, enumerator, seed] = rest.as_slice() else {
                    return Err(format!(
                        "SUBMIT expects 5 fields '<instance> <k> <algorithm> <enumerator> \
                         <seed>', got {}",
                        rest.len()
                    ));
                };
                let instance = InstanceSpec::parse(instance)?;
                let k: usize = k
                    .parse()
                    .map_err(|_| format!("SUBMIT: malformed k '{k}'"))?;
                let algorithm = Algorithm::parse(algorithm)
                    .ok_or_else(|| format!("SUBMIT: unknown algorithm '{algorithm}'"))?;
                let enumerator = EnumeratorPolicy::parse(enumerator)
                    .ok_or_else(|| format!("SUBMIT: unknown enumerator '{enumerator}'"))?;
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("SUBMIT: malformed seed '{seed}'"))?;
                Ok(Request::Submit(JobSpec {
                    instance,
                    k,
                    algorithm,
                    enumerator,
                    seed,
                }))
            }
            "STATUS" | "RESULT" | "CANCEL" => {
                let [id] = rest.as_slice() else {
                    return Err(format!("{verb} expects exactly one job id"));
                };
                let id: u64 = id
                    .parse()
                    .map_err(|_| format!("{verb}: malformed job id '{id}'"))?;
                Ok(match verb {
                    "STATUS" => Request::Status(id),
                    "RESULT" => Request::Result(id),
                    _ => Request::Cancel(id),
                })
            }
            "METRICS" => {
                if rest.is_empty() {
                    Ok(Request::Metrics)
                } else {
                    Err("METRICS takes no arguments".into())
                }
            }
            "HEARTBEAT" => {
                let [worker, addr] = rest.as_slice() else {
                    return Err("HEARTBEAT expects 2 fields '<worker-id> <addr>'".into());
                };
                Ok(Request::Heartbeat {
                    worker: (*worker).to_string(),
                    addr: (*addr).to_string(),
                })
            }
            "FLEET" => {
                if rest.is_empty() {
                    Ok(Request::Fleet)
                } else {
                    Err("FLEET takes no arguments".into())
                }
            }
            "SHUTDOWN" => {
                if rest.is_empty() {
                    Ok(Request::Shutdown)
                } else {
                    Err("SHUTDOWN takes no arguments".into())
                }
            }
            other => Err(format!(
                "unknown request '{other}' (expected SUBMIT, STATUS, RESULT, CANCEL, METRICS, \
                 HEARTBEAT, FLEET or SHUTDOWN)"
            )),
        }
    }

    /// The canonical request line (inverse of [`Request::parse`]).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit(spec) => format!("SUBMIT {}", spec.canonical()),
            Request::Status(id) => format!("STATUS {id}"),
            Request::Result(id) => format!("RESULT {id}"),
            Request::Cancel(id) => format!("CANCEL {id}"),
            Request::Metrics => "METRICS".into(),
            Request::Heartbeat { worker, addr } => format!("HEARTBEAT {worker} {addr}"),
            Request::Fleet => "FLEET".into(),
            Request::Shutdown => "SHUTDOWN".into(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Family;

    #[test]
    fn submit_round_trips() {
        let line = "SUBMIT hypercube:64 6 kecss auto 3";
        let req = Request::parse(line).unwrap();
        match &req {
            Request::Submit(spec) => {
                assert_eq!(
                    spec.instance,
                    InstanceSpec::Family {
                        family: Family::Hypercube,
                        n: 64,
                        max_weight: 1
                    }
                );
                assert_eq!((spec.k, spec.seed), (6, 3));
                assert_eq!(spec.algorithm, Algorithm::KEcss);
                assert_eq!(spec.enumerator, EnumeratorPolicy::Auto);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(req.to_line(), line);
    }

    #[test]
    fn control_requests_round_trip() {
        for line in [
            "STATUS 7",
            "RESULT 0",
            "CANCEL 12",
            "METRICS",
            "FLEET",
            "HEARTBEAT w1 127.0.0.1:7461",
            "SHUTDOWN",
        ] {
            let req = Request::parse(line).unwrap();
            assert_eq!(req.to_line(), line, "{line}");
        }
        assert_eq!(Request::parse("STATUS 7").unwrap(), Request::Status(7));
        assert_eq!(
            Request::parse("HEARTBEAT w1 127.0.0.1:7461").unwrap(),
            Request::Heartbeat {
                worker: "w1".into(),
                addr: "127.0.0.1:7461".into()
            }
        );
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for (line, needle) in [
            ("", "empty"),
            ("FROBNICATE", "unknown request"),
            ("SUBMIT", "5 fields"),
            ("SUBMIT ring:20 2 kecss auto", "5 fields"),
            ("SUBMIT nope:20 2 kecss auto 1", "unknown family"),
            ("SUBMIT ring:20 x kecss auto 1", "malformed k"),
            ("SUBMIT ring:20 2 magic auto 1", "unknown algorithm"),
            ("SUBMIT ring:20 2 kecss magic 1", "unknown enumerator"),
            ("SUBMIT ring:20 2 kecss auto x", "malformed seed"),
            ("STATUS", "one job id"),
            ("STATUS seven", "malformed job id"),
            ("RESULT 1 2", "one job id"),
            ("METRICS all", "no arguments"),
            ("HEARTBEAT w1", "2 fields"),
            ("HEARTBEAT w1 addr extra", "2 fields"),
            ("FLEET all", "no arguments"),
            ("SHUTDOWN now", "no arguments"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "'{line}': {err}");
        }
    }
}
