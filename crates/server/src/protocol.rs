//! The wire protocol: line-framed requests, length-prefixed result payloads.
//!
//! Every request is a single UTF-8 line (terminated by `\n`); every response
//! is a single header line, except a successful `RESULT` whose header
//! `RESULT <id> <len>` is followed by exactly `<len>` payload bytes. The full
//! grammar lives in DESIGN.md §9; in short:
//!
//! ```text
//! SUBMIT <instance> <k> <algorithm> <enumerator> <seed>   -> OK <id> QUEUED | BUSY <depth> | ERR <msg>
//! STATUS <id>                                             -> OK <id> <STATE> | ERR <msg>
//! RESULT <id>    -> RESULT <id> <len>\n<payload> | WAIT <id> <STATE> | GONE <id> | ERR <msg>
//! RESULT WAIT <id>  -> RESULT <id> <len>\n<payload> | GONE <id> | ERR <msg>   (pushed on completion)
//! CANCEL <id>                                             -> OK <id> CANCELLED | ERR <msg>
//! METRICS        -> METRICS <len>\n<text exposition>
//! SHUTDOWN                                                -> OK SHUTDOWN
//! ```
//!
//! `<STATE>` is one of `QUEUED`, `RUNNING`, `DONE`, `FAILED`, `CANCELLED`.
//! Result payloads are **fetched-once**: a successful `RESULT` evicts the
//! payload from the job table (bounding a long-lived server's memory), and
//! every later `RESULT` for that id answers `GONE <id>` while `STATUS` still
//! reports `DONE`.
//!
//! `RESULT WAIT <id>` is the push variant: instead of answering `WAIT` for an
//! unfinished job, the server parks the connection's request and pushes the
//! `RESULT`/`GONE`/`ERR` reply the moment the job reaches a terminal state —
//! no client polls anywhere in the system. The same requests and responses
//! also travel as `KGW1` binary frames (see [`crate::wire`]); this module's
//! [`Response`] enum is the single source of truth for both renderings.

use crate::instance::InstanceSpec;
use crate::job::{Algorithm, JobSpec};
use kecss::cuts::EnumeratorPolicy;
use std::sync::Arc;

/// A parsed request line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Request {
    /// Submit a job for scheduling.
    Submit(JobSpec),
    /// Submit a job **and** subscribe to its terminal reply in one request:
    /// the server acks `OK <id> QUEUED` and then pushes the
    /// `RESULT`/`GONE`/`ERR` the moment the job finishes. Only the `KGW1`
    /// binary framing can spell this (the [`crate::wire::FLAG_SUBMIT_WAIT`]
    /// header bit); the text grammar never parses to it, and
    /// [`Request::to_line`] renders the plain `SUBMIT` (a text client gets
    /// the same effect from `SUBMIT` + `RESULT WAIT`).
    SubmitWait(JobSpec),
    /// Query a job's lifecycle state.
    Status(u64),
    /// Fetch a finished job's result payload.
    Result(u64),
    /// Fetch a job's result payload, blocking until the job finishes: the
    /// reply is pushed to the connection when the job reaches a terminal
    /// state instead of answering `WAIT` immediately.
    ResultWait(u64),
    /// Cancel a queued job (running jobs complete; done jobs are immutable).
    Cancel(u64),
    /// Fetch the process-wide metrics registry as a text exposition.
    Metrics,
    /// A worker's combined registration + liveness beat (coordinator only;
    /// a standalone or worker server answers `ERR`). The first beat from an
    /// unknown (or previously lost) worker id registers it.
    Heartbeat {
        /// The worker's stable identifier (one whitespace-free token).
        worker: String,
        /// The address the worker serves jobs on, where the coordinator
        /// dispatches.
        addr: String,
    },
    /// Fetch the coordinator's fleet status text (framed like `METRICS`;
    /// coordinator only).
    Fleet,
    /// Drain the queue and stop the server.
    Shutdown,
}

impl Request {
    /// Parses one request line (without the trailing newline).
    ///
    /// # Errors
    ///
    /// Returns the human-readable message the server sends back as
    /// `ERR <msg>`.
    pub fn parse(line: &str) -> Result<Self, String> {
        let mut words = line.split_whitespace();
        let verb = words.next().ok_or("empty request")?;
        let rest: Vec<&str> = words.collect();
        match verb {
            "SUBMIT" => {
                let [instance, k, algorithm, enumerator, seed] = rest.as_slice() else {
                    return Err(format!(
                        "SUBMIT expects 5 fields '<instance> <k> <algorithm> <enumerator> \
                         <seed>', got {}",
                        rest.len()
                    ));
                };
                let instance = InstanceSpec::parse(instance)?;
                let k: usize = k
                    .parse()
                    .map_err(|_| format!("SUBMIT: malformed k '{k}'"))?;
                let algorithm = Algorithm::parse(algorithm)
                    .ok_or_else(|| format!("SUBMIT: unknown algorithm '{algorithm}'"))?;
                let enumerator = EnumeratorPolicy::parse(enumerator)
                    .ok_or_else(|| format!("SUBMIT: unknown enumerator '{enumerator}'"))?;
                let seed: u64 = seed
                    .parse()
                    .map_err(|_| format!("SUBMIT: malformed seed '{seed}'"))?;
                Ok(Request::Submit(JobSpec {
                    instance,
                    k,
                    algorithm,
                    enumerator,
                    seed,
                }))
            }
            "STATUS" | "RESULT" | "CANCEL" => {
                if verb == "RESULT" {
                    if let ["WAIT", id] = rest.as_slice() {
                        let id: u64 = id
                            .parse()
                            .map_err(|_| format!("RESULT WAIT: malformed job id '{id}'"))?;
                        return Ok(Request::ResultWait(id));
                    }
                }
                let [id] = rest.as_slice() else {
                    return Err(format!("{verb} expects exactly one job id"));
                };
                let id: u64 = id
                    .parse()
                    .map_err(|_| format!("{verb}: malformed job id '{id}'"))?;
                Ok(match verb {
                    "STATUS" => Request::Status(id),
                    "RESULT" => Request::Result(id),
                    _ => Request::Cancel(id),
                })
            }
            "METRICS" => {
                if rest.is_empty() {
                    Ok(Request::Metrics)
                } else {
                    Err("METRICS takes no arguments".into())
                }
            }
            "HEARTBEAT" => {
                let [worker, addr] = rest.as_slice() else {
                    return Err("HEARTBEAT expects 2 fields '<worker-id> <addr>'".into());
                };
                Ok(Request::Heartbeat {
                    worker: (*worker).to_string(),
                    addr: (*addr).to_string(),
                })
            }
            "FLEET" => {
                if rest.is_empty() {
                    Ok(Request::Fleet)
                } else {
                    Err("FLEET takes no arguments".into())
                }
            }
            "SHUTDOWN" => {
                if rest.is_empty() {
                    Ok(Request::Shutdown)
                } else {
                    Err("SHUTDOWN takes no arguments".into())
                }
            }
            other => Err(format!(
                "unknown request '{other}' (expected SUBMIT, STATUS, RESULT, CANCEL, METRICS, \
                 HEARTBEAT, FLEET or SHUTDOWN)"
            )),
        }
    }

    /// The verb label used by the per-verb request counters
    /// (`server_requests_total{verb=...}` / `fleet_requests_total{verb=...}`).
    /// `RESULT WAIT` counts under `RESULT` and the wait-flagged binary
    /// submit under `SUBMIT`: they are the same fetch/submit, so smoke tests
    /// asserting exact per-verb counts hold whichever variant (and whichever
    /// framing, text or binary) a client uses.
    pub fn verb(&self) -> &'static str {
        match self {
            Request::Submit(_) | Request::SubmitWait(_) => "SUBMIT",
            Request::Status(_) => "STATUS",
            Request::Result(_) | Request::ResultWait(_) => "RESULT",
            Request::Cancel(_) => "CANCEL",
            Request::Metrics => "METRICS",
            Request::Heartbeat { .. } => "HEARTBEAT",
            Request::Fleet => "FLEET",
            Request::Shutdown => "SHUTDOWN",
        }
    }

    /// The canonical request line (inverse of [`Request::parse`]).
    pub fn to_line(&self) -> String {
        match self {
            Request::Submit(spec) | Request::SubmitWait(spec) => {
                format!("SUBMIT {}", spec.canonical())
            }
            Request::Status(id) => format!("STATUS {id}"),
            Request::Result(id) => format!("RESULT {id}"),
            Request::ResultWait(id) => format!("RESULT WAIT {id}"),
            Request::Cancel(id) => format!("CANCEL {id}"),
            Request::Metrics => "METRICS".into(),
            Request::Heartbeat { worker, addr } => format!("HEARTBEAT {worker} {addr}"),
            Request::Fleet => "FLEET".into(),
            Request::Shutdown => "SHUTDOWN".into(),
        }
    }
}

/// A typed server reply: the single source of truth both renderings share.
///
/// [`Response::render_text`] produces the exact byte strings of the line
/// protocol (unchanged since DESIGN.md §9); [`crate::wire::encode_response`]
/// produces the equivalent `KGW1` frame. Result and METRICS/FLEET payloads
/// are carried as shared `Arc`s so a pushed result is never copied per
/// subscriber.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Response {
    /// `OK <words>` — acknowledgement; `words` is everything after `OK `.
    Ok(String),
    /// `BUSY <depth>` — the admission queue is full.
    Busy(u64),
    /// `WAIT <id> <STATE>` — the job exists but has not finished.
    Wait {
        /// The job id.
        id: u64,
        /// The lifecycle state's wire name.
        state: &'static str,
    },
    /// `RESULT <id> <len>` + payload bytes.
    Result {
        /// The job id.
        id: u64,
        /// The result payload.
        payload: Arc<Vec<u8>>,
    },
    /// `GONE <id>` — the payload was already fetched (fetched-once).
    Gone(u64),
    /// `ERR <msg>`.
    Err(String),
    /// `METRICS <len>` + text exposition.
    Metrics(Arc<Vec<u8>>),
    /// `FLEET <len>` + fleet status text.
    Fleet(Arc<Vec<u8>>),
}

impl Response {
    /// Renders the response in the text line protocol, byte-exact with the
    /// pre-readiness-loop server.
    pub fn render_text(&self) -> Vec<u8> {
        match self {
            Response::Ok(words) => format!("OK {words}\n").into_bytes(),
            Response::Busy(depth) => format!("BUSY {depth}\n").into_bytes(),
            Response::Wait { id, state } => format!("WAIT {id} {state}\n").into_bytes(),
            Response::Result { id, payload } => {
                let mut out = format!("RESULT {id} {}\n", payload.len()).into_bytes();
                out.extend_from_slice(payload);
                out
            }
            Response::Gone(id) => format!("GONE {id}\n").into_bytes(),
            Response::Err(msg) => format!("ERR {msg}\n").into_bytes(),
            Response::Metrics(text) => {
                let mut out = format!("METRICS {}\n", text.len()).into_bytes();
                out.extend_from_slice(text);
                out
            }
            Response::Fleet(text) => {
                let mut out = format!("FLEET {}\n", text.len()).into_bytes();
                out.extend_from_slice(text);
                out
            }
        }
    }

    /// True for `ERR` responses (the reply-classification counters key on
    /// this).
    pub fn is_err(&self) -> bool {
        matches!(self, Response::Err(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Family;

    #[test]
    fn submit_round_trips() {
        let line = "SUBMIT hypercube:64 6 kecss auto 3";
        let req = Request::parse(line).unwrap();
        match &req {
            Request::Submit(spec) => {
                assert_eq!(
                    spec.instance,
                    InstanceSpec::Family {
                        family: Family::Hypercube,
                        n: 64,
                        max_weight: 1
                    }
                );
                assert_eq!((spec.k, spec.seed), (6, 3));
                assert_eq!(spec.algorithm, Algorithm::KEcss);
                assert_eq!(spec.enumerator, EnumeratorPolicy::Auto);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(req.to_line(), line);
    }

    #[test]
    fn control_requests_round_trip() {
        for line in [
            "STATUS 7",
            "RESULT 0",
            "CANCEL 12",
            "METRICS",
            "FLEET",
            "HEARTBEAT w1 127.0.0.1:7461",
            "SHUTDOWN",
        ] {
            let req = Request::parse(line).unwrap();
            assert_eq!(req.to_line(), line, "{line}");
        }
        assert_eq!(Request::parse("STATUS 7").unwrap(), Request::Status(7));
        assert_eq!(
            Request::parse("HEARTBEAT w1 127.0.0.1:7461").unwrap(),
            Request::Heartbeat {
                worker: "w1".into(),
                addr: "127.0.0.1:7461".into()
            }
        );
    }

    #[test]
    fn result_wait_round_trips_and_shares_the_result_verb() {
        let req = Request::parse("RESULT WAIT 9").unwrap();
        assert_eq!(req, Request::ResultWait(9));
        assert_eq!(req.to_line(), "RESULT WAIT 9");
        assert_eq!(req.verb(), "RESULT");
        assert_eq!(Request::Result(9).verb(), "RESULT");
        let err = Request::parse("RESULT WAIT nine").unwrap_err();
        assert!(err.contains("malformed job id"), "{err}");
        // Two non-WAIT arguments still read as the arity error.
        let err = Request::parse("RESULT 1 2").unwrap_err();
        assert!(err.contains("one job id"), "{err}");
    }

    #[test]
    fn responses_render_the_exact_line_protocol_bytes() {
        let payload = Arc::new(b"# kecss job result v1\n".to_vec());
        for (response, expect) in [
            (Response::Ok("3 QUEUED".into()), b"OK 3 QUEUED\n".to_vec()),
            (Response::Busy(16), b"BUSY 16\n".to_vec()),
            (
                Response::Wait {
                    id: 4,
                    state: "RUNNING",
                },
                b"WAIT 4 RUNNING\n".to_vec(),
            ),
            (
                Response::Result {
                    id: 7,
                    payload: Arc::clone(&payload),
                },
                [b"RESULT 7 22\n".to_vec(), payload.as_ref().clone()].concat(),
            ),
            (Response::Gone(7), b"GONE 7\n".to_vec()),
            (Response::Err("nope".into()), b"ERR nope\n".to_vec()),
            (
                Response::Metrics(Arc::new(b"# TYPE x counter\n".to_vec())),
                b"METRICS 17\n# TYPE x counter\n".to_vec(),
            ),
            (
                Response::Fleet(Arc::new(b"workers 0 live 0\n".to_vec())),
                b"FLEET 17\nworkers 0 live 0\n".to_vec(),
            ),
        ] {
            assert_eq!(response.render_text(), expect, "{response:?}");
        }
        assert!(Response::Err("x".into()).is_err());
        assert!(!Response::Gone(1).is_err());
    }

    #[test]
    fn malformed_requests_are_rejected_with_messages() {
        for (line, needle) in [
            ("", "empty"),
            ("FROBNICATE", "unknown request"),
            ("SUBMIT", "5 fields"),
            ("SUBMIT ring:20 2 kecss auto", "5 fields"),
            ("SUBMIT nope:20 2 kecss auto 1", "unknown family"),
            ("SUBMIT ring:20 x kecss auto 1", "malformed k"),
            ("SUBMIT ring:20 2 magic auto 1", "unknown algorithm"),
            ("SUBMIT ring:20 2 kecss magic 1", "unknown enumerator"),
            ("SUBMIT ring:20 2 kecss auto x", "malformed seed"),
            ("STATUS", "one job id"),
            ("STATUS seven", "malformed job id"),
            ("RESULT 1 2", "one job id"),
            ("METRICS all", "no arguments"),
            ("HEARTBEAT w1", "2 fields"),
            ("HEARTBEAT w1 addr extra", "2 fields"),
            ("FLEET all", "no arguments"),
            ("SHUTDOWN now", "no arguments"),
        ] {
            let err = Request::parse(line).unwrap_err();
            assert!(err.contains(needle), "'{line}': {err}");
        }
    }
}
