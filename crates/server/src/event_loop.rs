//! The readiness loop: one thread, every connection (DESIGN.md §14).
//!
//! The previous front-end spawned an OS thread per accepted socket; this
//! module replaces it with a single non-blocking loop over a level-triggered
//! [`polling::Poller`] (epoll on Linux, portable `poll(2)` fallback). Every
//! role — standalone server, worker, coordinator — serves on this loop; the
//! role-specific request handling sits behind the [`Service`] trait.
//!
//! Per-connection state machine:
//!
//! ```text
//!   Sniff ──("KGW1")──> Binary ──┐
//!     │                          ├──> decode request ──> Service::respond
//!     └──(anything else)> Text ──┘          │
//!                                           ├─ Line(r)      -> queue reply bytes
//!                                           ├─ Subscribe(id)-> park until completion
//!                                           └─ Shutdown(r)  -> queue, drop listener, drain
//! ```
//!
//! **The event thread never blocks**: solver work runs on the scheduler's
//! `kecss_runtime::JobPool` (or on fleet workers); reads and writes are
//! nonblocking with pending bytes parked in per-connection buffers.
//!
//! **Push-on-complete**: a `RESULT WAIT` subscribes its connection to the
//! job id. The [`Service`] installs a completion hook into its job table;
//! when a job goes terminal the hook pushes the id onto a ready list and
//! [`polling::Poller::notify`]s the loop, which delivers the reply — no code
//! path anywhere polls for results. The hook-fires-before-subscribe race is
//! closed by re-checking [`Service::result_reply`] immediately after
//! registering a waiter.
//!
//! **Backpressure**: each connection's unsent reply bytes are bounded by
//! [`EventLoopConfig::write_queue_limit`]. A reader stalled past that bound
//! gets its queue replaced by one final `ERR` and the connection closed
//! (counted under `server_conn_limit_total{kind="write"}`) — one stalled
//! client can neither wedge the loop nor grow the server's memory.
//!
//! **Determinism**: the loop orders replies, never payload bytes. Payloads
//! are produced by the pure [`crate::job::run`] and stored by the scheduler;
//! text and binary framing both serialize the same [`Response`] values, so
//! connection interleaving and wire mode cannot influence result bytes.

use crate::protocol::{Request, Response};
use crate::scheduler::{CompletionHook, JobId};
use crate::wire;
use polling::{Backend, Event, Interest, Poller};
use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The longest text request line the server will buffer (inline instances
/// are the only long requests). Bounding it keeps a malicious client from
/// growing the read buffer without ever sending a newline.
pub const MAX_REQUEST_LINE: usize = 1 << 20;

/// How long the loop keeps flushing pending replies to slow readers after
/// the shutdown drain completes, before closing them unconditionally.
const SHUTDOWN_FLUSH_CAP: Duration = Duration::from_secs(5);

/// What the loop should do with a handled request.
pub enum ServiceReply {
    /// Answer immediately.
    Line(Response),
    /// Park the request: push [`Service::result_reply`] when job `id`
    /// reaches a terminal state (`RESULT WAIT` on a live job).
    Subscribe(JobId),
    /// Answer immediately **and** park for job `id`'s terminal push (the
    /// wait-flagged binary `SUBMIT`: the ack and the result subscription
    /// from one request).
    LineAndSubscribe(Response, JobId),
    /// Answer, then stop accepting, drain in-flight jobs and exit the loop.
    Shutdown(Response),
}

/// The role-specific half of the front-end: the standalone server and the
/// fleet coordinator each implement this over their job table. All methods
/// are called from the event thread except the completion hook, which job
/// workers fire; implementations count their own per-verb and per-reply
/// metrics so text and binary connections are indistinguishable to
/// observability.
pub trait Service: Send + Sync {
    /// Handles one request. Must not block on job completion — return
    /// [`ServiceReply::Subscribe`] for that.
    fn respond(&self, request: Request) -> ServiceReply;

    /// The pushed reply for a subscribed job, or `None` while the job is
    /// still in flight. Called once per subscribed connection, in
    /// subscription order; fetched-once result semantics apply (the first
    /// caller takes the payload, later ones see `GONE`).
    fn result_reply(&self, id: JobId) -> Option<Response>;

    /// True when no job is queued or running (the shutdown drain's exit
    /// condition).
    fn idle(&self) -> bool;

    /// Installs the completion hook the loop uses for push delivery and
    /// drain wakeups. Called once before the loop starts.
    fn install_completion_hook(&self, hook: CompletionHook);
}

/// Loop configuration (a subset of the role configs).
#[derive(Clone, Debug)]
pub struct EventLoopConfig {
    /// Maximum requests a single connection may issue before the server
    /// answers `ERR` and closes it (0 = unlimited).
    pub max_requests_per_conn: usize,
    /// Maximum unsent reply bytes buffered per connection before the
    /// slow-client policy closes it.
    pub write_queue_limit: usize,
    /// Readiness backend override (`None` = platform default). The tests use
    /// this to drive the portable `poll(2)` fallback on Linux.
    pub backend: Option<Backend>,
}

impl Default for EventLoopConfig {
    fn default() -> Self {
        EventLoopConfig {
            max_requests_per_conn: 0,
            write_queue_limit: 16 << 20,
            backend: None,
        }
    }
}

/// Wire mode of one connection.
enum Mode {
    /// Undecided: fewer than 4 bytes seen and they could still be the
    /// binary preamble.
    Sniff,
    /// Line-framed text (the default; byte-compatible with every prior PR).
    Text,
    /// `KGW1` binary frames.
    Binary,
}

/// Per-connection state.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet parsed into a complete request.
    buf: Vec<u8>,
    /// Rendered replies not yet written to the socket.
    out: Vec<u8>,
    /// How much of `out` has already been written.
    out_pos: usize,
    mode: Mode,
    /// Requests handled (for `max_requests_per_conn`).
    served: usize,
    /// Close once `out` is flushed.
    closing: bool,
    /// Whether the poller registration currently includes write interest.
    wants_write: bool,
}

impl Conn {
    fn pending_out(&self) -> usize {
        self.out.len() - self.out_pos
    }
}

/// The poller key reserved for the listener.
const LISTENER_KEY: usize = 0;

/// Runs the readiness loop until a `SHUTDOWN` request has been answered and
/// the service has drained. Consumes the listener (it is dropped the moment
/// shutdown begins, so late connects are refused by the OS).
///
/// # Errors
///
/// Propagates poller-construction and listener-registration failures; per
/// connection I/O errors just close that connection.
pub fn run_event_loop(
    listener: TcpListener,
    service: &Arc<dyn Service>,
    config: &EventLoopConfig,
) -> std::io::Result<()> {
    let poller = Arc::new(match config.backend {
        Some(backend) => Poller::with_backend(backend)?,
        None => Poller::new()?,
    });
    listener.set_nonblocking(true)?;
    poller.add(listener.as_raw_fd(), LISTENER_KEY, Interest::READABLE)?;
    let mut listener = Some(listener);

    // Completed job ids, pushed by pool workers, drained by the loop.
    let ready: Arc<Mutex<Vec<JobId>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let ready = Arc::clone(&ready);
        let waker = Arc::clone(&poller);
        service.install_completion_hook(Arc::new(move |id| {
            ready.lock().expect("ready list poisoned").push(id);
            let _ = waker.notify();
        }));
    }

    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut waiters: HashMap<JobId, Vec<usize>> = HashMap::new();
    let mut next_key: usize = LISTENER_KEY + 1;
    let mut events: Vec<Event> = Vec::new();
    let mut shutting_down = false;
    let mut flush_deadline: Option<Instant> = None;

    loop {
        // Exit: shutdown requested, every accepted job terminal, every
        // pushed reply delivered, and every queued byte flushed (or the
        // flush cap for stalled readers has lapsed).
        if shutting_down && service.idle() && ready.lock().expect("ready list poisoned").is_empty()
        {
            let unflushed = conns.values().any(|c| c.pending_out() > 0);
            let expired = flush_deadline.is_some_and(|d| Instant::now() >= d);
            if !unflushed || expired {
                return Ok(());
            }
        }

        let timeout = if shutting_down {
            // Belt and braces: re-check the drain condition periodically
            // even if a wakeup is lost.
            Some(Duration::from_millis(100))
        } else {
            None
        };
        poller.wait(&mut events, timeout)?;

        let round: Vec<Event> = std::mem::take(&mut events);
        for event in round {
            if event.key == LISTENER_KEY {
                accept_ready(&poller, &mut listener, &mut conns, &mut next_key);
                continue;
            }
            let Some(conn) = conns.get_mut(&event.key) else {
                continue;
            };
            let mut dead = false;
            if event.readable && conn.closing {
                // Drain and discard: a closing connection's socket must not
                // keep reporting readable forever (level-triggered).
                dead = !discard_input(conn);
            } else if event.readable {
                dead = !read_ready(
                    conn,
                    service,
                    config,
                    &mut waiters,
                    event.key,
                    &mut shutting_down,
                );
                if shutting_down && listener.is_some() {
                    // Stop accepting the moment shutdown is requested; the
                    // OS refuses late connects once the fd closes.
                    if let Some(l) = listener.take() {
                        let _ = poller.delete(l.as_raw_fd());
                    }
                }
            }
            if !dead && (event.writable || conn.pending_out() > 0) {
                dead = !flush_conn(conn);
            }
            if dead || (conn.closing && conn.pending_out() == 0) {
                let conn = conns.remove(&event.key).expect("conn exists");
                let _ = poller.delete(conn.stream.as_raw_fd());
            } else {
                sync_write_interest(&poller, event.key, conn);
            }
        }

        // Deliver push-on-complete replies for jobs that went terminal.
        let done: Vec<JobId> = std::mem::take(&mut *ready.lock().expect("ready list poisoned"));
        for id in done {
            let Some(keys) = waiters.remove(&id) else {
                continue;
            };
            for key in keys {
                // A waiter whose connection died must not consume the
                // payload: skip it before calling `result_reply`.
                let Some(conn) = conns.get_mut(&key) else {
                    continue;
                };
                let Some(reply) = service.result_reply(id) else {
                    // Not terminal after all (cannot happen for hook-pushed
                    // ids, but a lost entry must not wedge the waiter).
                    waiters.entry(id).or_default().push(key);
                    continue;
                };
                queue_reply(conn, config, &reply);
                if !flush_conn(conn) || (conn.closing && conn.pending_out() == 0) {
                    let conn = conns.remove(&key).expect("conn exists");
                    let _ = poller.delete(conn.stream.as_raw_fd());
                } else {
                    sync_write_interest(&poller, key, conn);
                }
            }
        }

        if shutting_down && flush_deadline.is_none() {
            flush_deadline = Some(Instant::now() + SHUTDOWN_FLUSH_CAP);
        }
    }
}

/// Accepts every pending connection (level-triggered: stop at `WouldBlock`).
fn accept_ready(
    poller: &Poller,
    listener: &mut Option<TcpListener>,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
) {
    let Some(listener) = listener.as_ref() else {
        return;
    };
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                let _ = stream.set_nodelay(true);
                let key = *next_key;
                *next_key += 1;
                if poller
                    .add(stream.as_raw_fd(), key, Interest::READABLE)
                    .is_err()
                {
                    // fd exhaustion or similar: drop the connection, keep
                    // serving the others.
                    kecss_obs::counter_with("server_conn_limit_total", &[("kind", "register")])
                        .inc();
                    continue;
                }
                conns.insert(
                    key,
                    Conn {
                        stream,
                        buf: Vec::new(),
                        out: Vec::new(),
                        out_pos: 0,
                        mode: Mode::Sniff,
                        served: 0,
                        closing: false,
                        wants_write: false,
                    },
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
    }
}

/// Reads and discards a closing connection's input so a level-triggered
/// readable socket cannot spin the loop. Returns `false` when the peer is
/// gone.
fn discard_input(conn: &mut Conn) -> bool {
    let mut chunk = [0u8; 4096];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(_) => continue,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Reads whatever the socket has, parses complete requests and dispatches
/// them. Returns `false` when the connection is dead (EOF or I/O error).
fn read_ready(
    conn: &mut Conn,
    service: &Arc<dyn Service>,
    config: &EventLoopConfig,
    waiters: &mut HashMap<JobId, Vec<usize>>,
    key: usize,
    shutting_down: &mut bool,
) -> bool {
    let mut chunk = [0u8; 64 * 1024];
    loop {
        match conn.stream.read(&mut chunk) {
            Ok(0) => return false,
            Ok(n) => {
                conn.buf.extend_from_slice(&chunk[..n]);
                if !process_buffer(conn, service, config, waiters, key, shutting_down) {
                    return false;
                }
                if conn.closing {
                    return true;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
}

/// Parses and dispatches every complete request currently buffered. Returns
/// `false` to drop the connection immediately (unrecoverable framing).
fn process_buffer(
    conn: &mut Conn,
    service: &Arc<dyn Service>,
    config: &EventLoopConfig,
    waiters: &mut HashMap<JobId, Vec<usize>>,
    key: usize,
    shutting_down: &mut bool,
) -> bool {
    loop {
        if conn.closing {
            return true;
        }
        match conn.mode {
            Mode::Sniff => {
                if conn.buf.first().is_some_and(|b| *b != wire::PREAMBLE[0]) {
                    conn.mode = Mode::Text;
                    continue;
                }
                if conn.buf.len() < wire::PREAMBLE.len() {
                    return true; // need more bytes
                }
                if conn.buf[..4] == wire::PREAMBLE {
                    conn.buf.drain(..4);
                    conn.mode = Mode::Binary;
                } else {
                    // Starts with 'K' but is not the preamble: no text verb
                    // does, so let the text parser produce its error.
                    conn.mode = Mode::Text;
                }
            }
            Mode::Text => {
                let Some(pos) = conn.buf.iter().position(|b| *b == b'\n') else {
                    if conn.buf.len() >= MAX_REQUEST_LINE {
                        // The limit cut the line short: refuse and drop
                        // (resynchronizing mid-line is not worth the
                        // ambiguity).
                        kecss_obs::counter_with("server_conn_limit_total", &[("kind", "line")])
                            .inc();
                        queue_raw(conn, config, b"ERR request line exceeds the size limit\n");
                        conn.closing = true;
                    }
                    return true;
                };
                let line: Vec<u8> = conn.buf.drain(..=pos).collect();
                if !check_request_budget(conn, config) {
                    return true;
                }
                let Ok(text) = std::str::from_utf8(&line) else {
                    return false; // not a text protocol client after all
                };
                match Request::parse(text.trim_end()) {
                    Ok(request) => {
                        dispatch(conn, service, config, waiters, key, shutting_down, request);
                    }
                    Err(message) => {
                        kecss_obs::counter_with("server_reply_err_total", &[("cause", "parse")])
                            .inc();
                        queue_raw(conn, config, format!("ERR {message}\n").as_bytes());
                    }
                }
            }
            Mode::Binary => {
                if conn.buf.len() < wire::FRAME_HEADER_BYTES {
                    return true;
                }
                let header: [u8; wire::FRAME_HEADER_BYTES] = conn.buf[..wire::FRAME_HEADER_BYTES]
                    .try_into()
                    .expect("sized");
                let (opcode, flags, body_len) = match wire::parse_frame_header(&header) {
                    Ok(parsed) => parsed,
                    Err(message) => {
                        // An over-cap frame cannot be skipped (its length is
                        // the lie); answer and drop.
                        kecss_obs::counter_with("server_conn_limit_total", &[("kind", "frame")])
                            .inc();
                        queue_reply(conn, config, &Response::Err(message));
                        conn.closing = true;
                        return true;
                    }
                };
                if conn.buf.len() < wire::FRAME_HEADER_BYTES + body_len {
                    return true; // frame body still in flight
                }
                let body: Vec<u8> = conn
                    .buf
                    .drain(..wire::FRAME_HEADER_BYTES + body_len)
                    .skip(wire::FRAME_HEADER_BYTES)
                    .collect();
                if !check_request_budget(conn, config) {
                    return true;
                }
                match wire::decode_request(opcode, flags, &body) {
                    Ok(request) => {
                        dispatch(conn, service, config, waiters, key, shutting_down, request);
                    }
                    Err(message) => {
                        kecss_obs::counter_with("server_reply_err_total", &[("cause", "parse")])
                            .inc();
                        queue_reply(conn, config, &Response::Err(message));
                    }
                }
            }
        }
    }
}

/// Enforces `max_requests_per_conn`; queues the refusal and closes when the
/// budget is spent. Returns `false` when the request must not be served.
fn check_request_budget(conn: &mut Conn, config: &EventLoopConfig) -> bool {
    let max = config.max_requests_per_conn;
    if max != 0 && conn.served >= max {
        kecss_obs::counter_with("server_conn_limit_total", &[("kind", "requests")]).inc();
        queue_reply(
            conn,
            config,
            &Response::Err(format!("connection exceeded {max} requests")),
        );
        conn.closing = true;
        return false;
    }
    conn.served += 1;
    true
}

/// Hands one parsed request to the service and queues the reply (or parks a
/// subscription).
fn dispatch(
    conn: &mut Conn,
    service: &Arc<dyn Service>,
    config: &EventLoopConfig,
    waiters: &mut HashMap<JobId, Vec<usize>>,
    key: usize,
    shutting_down: &mut bool,
    request: Request,
) {
    match service.respond(request) {
        ServiceReply::Line(response) => queue_reply(conn, config, &response),
        ServiceReply::Subscribe(id) => subscribe(conn, service, config, waiters, key, id),
        ServiceReply::LineAndSubscribe(response, id) => {
            // Ack first so the wire order is always ack-then-result, then
            // park exactly like a RESULT WAIT.
            queue_reply(conn, config, &response);
            subscribe(conn, service, config, waiters, key, id);
        }
        ServiceReply::Shutdown(response) => {
            queue_reply(conn, config, &response);
            *shutting_down = true;
        }
    }
}

/// Parks connection `key` for job `id`'s terminal push, closing the
/// completed-before-subscribed race: the completion hook may have fired (and
/// been drained) before the waiter was registered, so check the terminal
/// state now. If the job completes between registration and this check, both
/// the check and the hook see it — the fetched-once table makes the second
/// delivery a GONE, and `waiters` is emptied for this id either way before
/// any duplicate could queue.
fn subscribe(
    conn: &mut Conn,
    service: &Arc<dyn Service>,
    config: &EventLoopConfig,
    waiters: &mut HashMap<JobId, Vec<usize>>,
    key: usize,
    id: JobId,
) {
    waiters.entry(id).or_default().push(key);
    if let Some(response) = service.result_reply(id) {
        if let Some(keys) = waiters.get_mut(&id) {
            keys.retain(|k| *k != key);
            if keys.is_empty() {
                waiters.remove(&id);
            }
        }
        queue_reply(conn, config, &response);
    }
}

/// Renders a [`Response`] in the connection's wire mode and queues it.
fn queue_reply(conn: &mut Conn, config: &EventLoopConfig, response: &Response) {
    let bytes = match conn.mode {
        Mode::Binary => wire::encode_response(response),
        // A connection that never sent a byte (Sniff) is answered in text.
        Mode::Text | Mode::Sniff => response.render_text(),
    };
    queue_raw(conn, config, &bytes);
}

/// Queues raw reply bytes, enforcing the slow-client write-queue bound: on
/// overflow the unsent queue is replaced by one final `ERR` and the
/// connection is marked closing. (The replaced bytes may include a torn
/// partial reply — the client was stalled past the bound and is being
/// disconnected; the `ERR` is best-effort diagnosis.)
fn queue_raw(conn: &mut Conn, config: &EventLoopConfig, bytes: &[u8]) {
    if conn.closing {
        return;
    }
    if conn.pending_out() + bytes.len() > config.write_queue_limit {
        kecss_obs::counter_with("server_conn_limit_total", &[("kind", "write")]).inc();
        conn.out.clear();
        conn.out_pos = 0;
        let err = Response::Err(format!(
            "write queue exceeded {} bytes; closing slow connection",
            config.write_queue_limit
        ));
        let bytes = match conn.mode {
            Mode::Binary => wire::encode_response(&err),
            Mode::Text | Mode::Sniff => err.render_text(),
        };
        conn.out.extend_from_slice(&bytes);
        conn.closing = true;
        return;
    }
    // Compact the consumed prefix occasionally so the buffer does not creep.
    if conn.out_pos > 0 && conn.out_pos == conn.out.len() {
        conn.out.clear();
        conn.out_pos = 0;
    }
    conn.out.extend_from_slice(bytes);
}

/// Writes as much of the pending queue as the socket accepts. Returns
/// `false` when the connection is dead.
fn flush_conn(conn: &mut Conn) -> bool {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => return false,
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return false,
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
    true
}

/// Keeps the poller's write interest in sync with whether the connection has
/// pending output.
fn sync_write_interest(poller: &Poller, key: usize, conn: &mut Conn) {
    let want = conn.pending_out() > 0;
    if want != conn.wants_write {
        let interest = if want {
            Interest::READABLE_WRITABLE
        } else {
            Interest::READABLE
        };
        if poller
            .modify(conn.stream.as_raw_fd(), key, interest)
            .is_ok()
        {
            conn.wants_write = want;
        }
    }
}
