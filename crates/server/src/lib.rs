//! `kecss_server` — a long-running solver service over the `kecss_runtime`
//! pool.
//!
//! The workspace's solvers are batch functions; this crate turns them into an
//! always-on request-serving layer (ROADMAP "Async / service front-end"):
//!
//! * [`protocol`] — the line-framed wire protocol (`SUBMIT`, `STATUS`,
//!   `RESULT`, `RESULT WAIT`, `CANCEL`, `METRICS`, `SHUTDOWN`) with
//!   length-prefixed result payloads and the typed [`protocol::Response`].
//! * [`wire`] — the `KGW1` binary frame mode: same requests and responses as
//!   length-prefixed frames, instances shipped as zero-parse `KGB1` edge
//!   records, negotiated per connection by a 4-byte preamble.
//! * [`event_loop`] — the single-threaded readiness loop (DESIGN.md §14)
//!   every role serves on: nonblocking sockets, per-connection state
//!   machines, bounded write queues, push-on-complete `RESULT WAIT`.
//! * [`instance`] — the `<family>:<n>` / `inline:` instance grammar and the
//!   family-generation policy shared with the CLI.
//! * [`job`] — job specs and the **pure job runner**: build instance → solve
//!   → verify exactly → serialize a canonical payload. Purity in the spec is
//!   what makes concurrent serving byte-deterministic (DESIGN.md §9).
//! * [`scheduler`] — a bounded job table over [`kecss_runtime::JobPool`]:
//!   at most `queue_depth` jobs in flight, `BUSY` beyond that, cancellation
//!   of queued jobs, drain-on-shutdown.
//! * [`server`] — the TCP accept loop (`kecss serve` / the `kecss_serve`
//!   binary).
//! * [`client`] — a blocking client (`kecss submit`, tests, CI smoke).
//! * [`coordinator`] / [`worker`] — the fleet control plane (DESIGN.md §13):
//!   a coordinator keeps this same client-facing protocol and dispatches
//!   jobs to registered workers over the same wire format, with an explicit
//!   job lifecycle ([`scheduler::FleetState`]), heartbeat-based failure
//!   detection, and retry-on-worker-loss — payloads stay byte-identical
//!   regardless of fleet size or worker death because [`job::run`] is pure
//!   in the spec.
//!
//! # Example (in-process, ephemeral port)
//!
//! ```
//! use kecss_server::client::Client;
//! use kecss_server::protocol::Request;
//! use kecss_server::server::{Server, ServerConfig};
//! use std::time::Duration;
//!
//! let server = Server::bind(&ServerConfig {
//!     addr: "127.0.0.1:0".into(),
//!     threads: 2,
//!     queue_depth: 8,
//!     ..ServerConfig::default()
//! })
//! .unwrap();
//! let handle = server.spawn();
//! let mut client = Client::connect(&handle.addr().to_string()).unwrap();
//! let Request::Submit(spec) = Request::parse("SUBMIT ring:20 2 2ecss auto 1").unwrap() else {
//!     unreachable!()
//! };
//! let id = client.submit(&spec).unwrap().expect("queue has room");
//! let payload = client
//!     .wait_result(id, Duration::from_millis(10), Duration::from_secs(60))
//!     .unwrap();
//! assert!(String::from_utf8(payload).unwrap().contains("verified k=2 yes"));
//! client.shutdown().unwrap();
//! assert_eq!(handle.join().completed, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod coordinator;
pub mod event_loop;
pub mod instance;
pub mod job;
pub mod protocol;
pub mod scheduler;
pub mod server;
pub mod wire;
pub mod worker;

pub use coordinator::{Coordinator, CoordinatorConfig, CoordinatorHandle, FleetSummary};
pub use scheduler::{FleetState, JobId, JobStatus, Outcome, Scheduler, ServeSummary};
pub use server::{Server, ServerConfig, ServerHandle};
pub use worker::{Worker, WorkerConfig, WorkerHandle};
