//! A fleet worker: the standalone [`Server`] plus a heartbeat thread that
//! registers with (and stays registered at) a coordinator.
//!
//! A worker *is* a server — the coordinator dispatches jobs to it with the
//! ordinary client protocol (`SUBMIT`, then one blocking `RESULT WAIT`), so
//! everything
//! the standalone server guarantees (bounded queue, `BUSY` backpressure,
//! byte-deterministic payloads, drain-on-shutdown) holds per worker with no
//! new code. The only addition is liveness: `HEARTBEAT <id> <addr>` every
//! interval, which doubles as registration — there is no separate enrolment
//! step, and a worker that restarts (or outlives a coordinator restart)
//! re-registers automatically on its next beat.

use crate::client::Client;
use crate::scheduler::ServeSummary;
use crate::server::{Server, ServerConfig};
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Worker configuration (the CLI's `kecss serve --role worker` flags).
#[derive(Clone, Debug)]
pub struct WorkerConfig {
    /// The job-serving address to bind (port 0 picks one).
    pub addr: String,
    /// The coordinator's client-facing address to register with.
    pub coordinator: String,
    /// The stable worker identifier sent in every heartbeat. Empty derives
    /// `worker-<port>` from the bound address — stable across heartbeats,
    /// unique per host.
    pub worker_id: String,
    /// Scheduler pool workers.
    pub threads: usize,
    /// Maximum jobs in flight before `BUSY` (the coordinator backs off and
    /// re-queues on `BUSY`, so a small depth is safe).
    pub queue_depth: usize,
    /// Heartbeat period. The coordinator's `heartbeat_timeout` should be a
    /// comfortable multiple of this (the default pairing is 500 ms beats
    /// against a 3 s timeout).
    pub heartbeat_interval: Duration,
    /// The address heartbeats advertise for dispatch. Empty advertises the
    /// bound address, which is right whenever the coordinator can dial it;
    /// set it when the bind address is not dialable from the coordinator
    /// (e.g. a `0.0.0.0` bind inside a container — advertise the service
    /// name, as `deployment/docker-compose.yml` does).
    pub advertise: String,
    /// Per-connection request limit (0 = unlimited), as on the server.
    pub max_requests_per_conn: usize,
}

impl Default for WorkerConfig {
    fn default() -> Self {
        WorkerConfig {
            addr: "127.0.0.1:0".into(),
            coordinator: "127.0.0.1:7460".into(),
            worker_id: String::new(),
            threads: 1,
            queue_depth: 16,
            heartbeat_interval: Duration::from_millis(500),
            advertise: String::new(),
            max_requests_per_conn: 0,
        }
    }
}

/// A bound, not-yet-running worker (bind/run split as on [`Server`]).
pub struct Worker {
    server: Server,
    worker_id: String,
    coordinator: String,
    heartbeat_interval: Duration,
    advertise: String,
}

impl Worker {
    /// Binds the job-serving listener and fixes the worker id.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: &WorkerConfig) -> std::io::Result<Worker> {
        let server = Server::bind(&ServerConfig {
            addr: config.addr.clone(),
            threads: config.threads,
            queue_depth: config.queue_depth,
            max_requests_per_conn: config.max_requests_per_conn,
            ..ServerConfig::default()
        })?;
        let worker_id = if config.worker_id.is_empty() {
            format!("worker-{}", server.local_addr().port())
        } else {
            config.worker_id.clone()
        };
        Ok(Worker {
            server,
            worker_id,
            coordinator: config.coordinator.clone(),
            heartbeat_interval: config.heartbeat_interval.max(Duration::from_millis(10)),
            advertise: config.advertise.clone(),
        })
    }

    /// The actually-bound job-serving address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.server.local_addr()
    }

    /// The worker id sent in heartbeats.
    pub fn worker_id(&self) -> &str {
        &self.worker_id
    }

    /// Runs the job server until a `SHUTDOWN` request arrives (the heartbeat
    /// thread runs alongside and stops with it), then returns the server's
    /// final counters.
    pub fn run(self) -> ServeSummary {
        let stop = Arc::new(AtomicBool::new(false));
        let heartbeats = {
            let stop = Arc::clone(&stop);
            let coordinator = self.coordinator.clone();
            let worker_id = self.worker_id.clone();
            let addr = if self.advertise.is_empty() {
                self.local_addr().to_string()
            } else {
                self.advertise.clone()
            };
            let interval = self.heartbeat_interval;
            std::thread::spawn(move || {
                heartbeat_loop(&coordinator, &worker_id, &addr, interval, &stop);
            })
        };
        let summary = self.server.run();
        stop.store(true, Ordering::SeqCst);
        let _ = heartbeats.join();
        summary
    }

    /// Spawns [`Worker::run`] on a background thread (tests, benches and the
    /// in-process harness).
    pub fn spawn(self) -> WorkerHandle {
        let addr = self.local_addr();
        let worker_id = self.worker_id.clone();
        let thread = std::thread::spawn(move || self.run());
        WorkerHandle {
            addr,
            worker_id,
            thread,
        }
    }
}

/// A running background worker.
pub struct WorkerHandle {
    addr: SocketAddr,
    worker_id: String,
    thread: std::thread::JoinHandle<ServeSummary>,
}

impl WorkerHandle {
    /// The worker's job-serving address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The worker id it registers under.
    pub fn worker_id(&self) -> &str {
        &self.worker_id
    }

    /// Waits for the worker to shut down (send `SHUTDOWN` to its serving
    /// address first) and returns its final counters.
    ///
    /// # Panics
    ///
    /// Panics if the worker thread panicked.
    pub fn join(self) -> ServeSummary {
        self.thread.join().expect("worker thread panicked")
    }
}

/// Sends `HEARTBEAT <id> <addr>` to the coordinator every `interval` over a
/// persistent connection, re-dialling after any failure. A missing or
/// restarting coordinator is tolerated indefinitely: the worker just keeps
/// trying, and its first successful beat (re-)registers it.
fn heartbeat_loop(
    coordinator: &str,
    worker_id: &str,
    addr: &str,
    interval: Duration,
    stop: &AtomicBool,
) {
    let sent = kecss_obs::counter("fleet_heartbeats_sent_total");
    let mut client: Option<Client> = None;
    while !stop.load(Ordering::SeqCst) {
        if client.is_none() {
            client = Client::connect(coordinator)
                .and_then(|mut c| {
                    // Bound the reply read so a wedged coordinator cannot
                    // wedge the heartbeat thread past a few intervals.
                    c.set_read_timeout(Some(interval.max(Duration::from_millis(100)) * 4))?;
                    Ok(c)
                })
                .ok();
        }
        if let Some(c) = client.as_mut() {
            match c.heartbeat(worker_id, addr) {
                Ok(_word) => sent.inc(),
                Err(_) => client = None,
            }
        }
        // Sleep in small slices so shutdown is prompt even with long
        // intervals.
        let mut remaining = interval;
        while !remaining.is_zero() && !stop.load(Ordering::SeqCst) {
            let slice = remaining.min(Duration::from_millis(20));
            std::thread::sleep(slice);
            remaining = remaining.saturating_sub(slice);
        }
    }
}
