//! Standalone service binary: `kecss_serve [--role standalone|coordinator|
//! worker] [--addr A] ...`. The `kecss serve` CLI subcommand is the same
//! service with the rest of the toolchain around it; this binary exists so a
//! deployment (e.g. `deployment/docker-compose.yml`) can ship the service
//! alone in any of the three fleet roles.

use kecss_server::coordinator::{fleet_summary_line, Coordinator, CoordinatorConfig};
use kecss_server::server::{summary_line, Server, ServerConfig};
use kecss_server::worker::{Worker, WorkerConfig};
use std::io::Write;
use std::time::Duration;

fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    std::process::exit(2);
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| fail(&format!("{flag} expects a number")))
}

fn main() {
    let mut role = "standalone".to_string();
    let mut addr: Option<String> = None;
    let mut threads: usize = 1;
    let mut queue_depth: usize = 16;
    let mut max_requests_per_conn: usize = 0;
    let mut write_queue_limit: usize = 16 << 20;
    let mut coordinator_addr = "127.0.0.1:7460".to_string();
    let mut worker_id = String::new();
    let mut advertise = String::new();
    let mut heartbeat_ms: u64 = 500;
    let mut heartbeat_timeout_ms: u64 = 3000;
    let mut max_retries: u32 = 5;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map(String::as_str);
        let need = |v: Option<&str>, flag: &str| -> String {
            v.unwrap_or_else(|| fail(&format!("flag {flag} is missing a value")))
                .to_string()
        };
        match args[i].as_str() {
            "--role" => role = need(value, "--role"),
            "--addr" => addr = Some(need(value, "--addr")),
            "--threads" => threads = parse_num("--threads", &need(value, "--threads")),
            "--queue-depth" => {
                queue_depth = parse_num("--queue-depth", &need(value, "--queue-depth"));
            }
            "--max-requests-per-conn" => {
                max_requests_per_conn = parse_num(
                    "--max-requests-per-conn",
                    &need(value, "--max-requests-per-conn"),
                );
            }
            "--write-queue-limit" => {
                write_queue_limit =
                    parse_num("--write-queue-limit", &need(value, "--write-queue-limit"));
            }
            "--coordinator" => coordinator_addr = need(value, "--coordinator"),
            "--worker-id" => worker_id = need(value, "--worker-id"),
            "--advertise" => advertise = need(value, "--advertise"),
            "--heartbeat-ms" => {
                heartbeat_ms = parse_num("--heartbeat-ms", &need(value, "--heartbeat-ms"));
            }
            "--heartbeat-timeout-ms" => {
                heartbeat_timeout_ms = parse_num(
                    "--heartbeat-timeout-ms",
                    &need(value, "--heartbeat-timeout-ms"),
                );
            }
            "--max-retries" => {
                max_retries = parse_num("--max-retries", &need(value, "--max-retries"));
            }
            "--help" | "-h" => {
                println!(
                    "kecss_serve — long-running k-ECSS solver service\n\n\
                     USAGE: kecss_serve [--role standalone|coordinator|worker]\n\
                     \u{20}                  [--addr HOST:PORT] [--threads T] [--queue-depth Q]\n\
                     \u{20}                  [--max-requests-per-conn N] [--write-queue-limit BYTES]\n\
                     \u{20}                  [--coordinator HOST:PORT] [--worker-id ID] [--advertise HOST:PORT]\n\
                     \u{20}                  [--heartbeat-ms MS]\n\
                     \u{20}                  [--heartbeat-timeout-ms MS] [--max-retries R]\n\n\
                     Protocol: see DESIGN.md §9, §11 and §13 \
                     (SUBMIT/STATUS/RESULT/CANCEL/METRICS/HEARTBEAT/FLEET/SHUTDOWN)."
                );
                return;
            }
            other => fail(&format!("unknown flag '{other}'")),
        }
        i += 2;
    }
    match role.as_str() {
        "standalone" => {
            let config = ServerConfig {
                addr: addr.unwrap_or_else(|| "127.0.0.1:7461".into()),
                threads,
                queue_depth,
                max_requests_per_conn,
                write_queue_limit,
            };
            let server = match Server::bind(&config) {
                Ok(server) => server,
                Err(e) => fail(&format!("cannot bind {}: {e}", config.addr)),
            };
            println!(
                "kecss_serve listening on {} (threads={}, queue-depth={})",
                server.local_addr(),
                config.threads.max(1),
                config.queue_depth.max(1)
            );
            let _ = std::io::stdout().flush();
            let summary = server.run();
            println!("{}", summary_line(&summary));
        }
        "coordinator" => {
            let config = CoordinatorConfig {
                addr: addr.unwrap_or_else(|| "127.0.0.1:7460".into()),
                queue_depth,
                heartbeat_timeout: Duration::from_millis(heartbeat_timeout_ms.max(1)),
                max_retries,
                max_requests_per_conn,
                write_queue_limit,
            };
            let coordinator = match Coordinator::bind(&config) {
                Ok(coordinator) => coordinator,
                Err(e) => fail(&format!("cannot bind {}: {e}", config.addr)),
            };
            println!(
                "kecss_serve coordinator listening on {} (queue-depth={}, \
                 heartbeat-timeout={heartbeat_timeout_ms}ms, max-retries={max_retries})",
                coordinator.local_addr(),
                config.queue_depth.max(1),
            );
            let _ = std::io::stdout().flush();
            let summary = coordinator.run();
            println!("{}", fleet_summary_line(&summary));
        }
        "worker" => {
            let config = WorkerConfig {
                addr: addr.unwrap_or_else(|| "127.0.0.1:0".into()),
                coordinator: coordinator_addr.clone(),
                worker_id,
                threads,
                queue_depth,
                heartbeat_interval: Duration::from_millis(heartbeat_ms.max(1)),
                advertise,
                max_requests_per_conn,
            };
            let worker = match Worker::bind(&config) {
                Ok(worker) => worker,
                Err(e) => fail(&format!("cannot bind {}: {e}", config.addr)),
            };
            println!(
                "kecss_serve worker {} listening on {} (coordinator={coordinator_addr}, \
                 heartbeat={heartbeat_ms}ms, threads={}, queue-depth={})",
                worker.worker_id(),
                worker.local_addr(),
                config.threads.max(1),
                config.queue_depth.max(1)
            );
            let _ = std::io::stdout().flush();
            let summary = worker.run();
            println!("{}", summary_line(&summary));
        }
        other => fail(&format!(
            "--role expects 'standalone', 'coordinator' or 'worker', got '{other}'"
        )),
    }
}
