//! Standalone server binary: `kecss_serve [--addr A] [--threads T]
//! [--queue-depth Q]`. The `kecss serve` CLI subcommand is the same server
//! with the rest of the toolchain around it; this binary exists so a
//! deployment can ship the service alone.

use kecss_server::server::{summary_line, Server, ServerConfig};

fn main() {
    let mut config = ServerConfig::default();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let value = args.get(i + 1).map(String::as_str);
        let need = |v: Option<&str>, flag: &str| -> String {
            v.unwrap_or_else(|| {
                eprintln!("error: flag {flag} is missing a value");
                std::process::exit(2);
            })
            .to_string()
        };
        match args[i].as_str() {
            "--addr" => config.addr = need(value, "--addr"),
            "--threads" => {
                config.threads = need(value, "--threads").parse().unwrap_or_else(|_| {
                    eprintln!("error: --threads expects a number");
                    std::process::exit(2);
                })
            }
            "--queue-depth" => {
                config.queue_depth = need(value, "--queue-depth").parse().unwrap_or_else(|_| {
                    eprintln!("error: --queue-depth expects a number");
                    std::process::exit(2);
                })
            }
            "--max-requests-per-conn" => {
                config.max_requests_per_conn = need(value, "--max-requests-per-conn")
                    .parse()
                    .unwrap_or_else(|_| {
                        eprintln!("error: --max-requests-per-conn expects a number");
                        std::process::exit(2);
                    })
            }
            "--help" | "-h" => {
                println!(
                    "kecss_serve — long-running k-ECSS solver service\n\n\
                     USAGE: kecss_serve [--addr HOST:PORT] [--threads T] [--queue-depth Q]\n\
                     \u{20}                  [--max-requests-per-conn N]\n\n\
                     Protocol: see DESIGN.md §9 and §11 \
                     (SUBMIT/STATUS/RESULT/CANCEL/METRICS/SHUTDOWN)."
                );
                return;
            }
            other => {
                eprintln!("error: unknown flag '{other}'");
                std::process::exit(2);
            }
        }
        i += 2;
    }
    let server = match Server::bind(&config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "kecss_serve listening on {} (threads={}, queue-depth={})",
        server.local_addr(),
        config.threads.max(1),
        config.queue_depth.max(1)
    );
    let summary = server.run();
    println!("{}", summary_line(&summary));
}
