//! `KGW1` binary frames: the zero-parse wire mode of the service protocol.
//!
//! A connection opts into binary mode by sending the 4-byte preamble
//! [`PREAMBLE`] (`"KGW1"`) as its very first bytes. No text verb starts with
//! `K`, so the server sniffs the mode from the first byte and the text
//! protocol stays byte-compatible on the same port. After the preamble, both
//! directions speak length-prefixed frames:
//!
//! ```text
//! frame   := opcode:u8  flags:u8  reserved:u16le  body_len:u32le  body
//! ```
//!
//! `reserved` is zero in this version and ignored on receipt. `flags` is a
//! bit set; the only assigned bit is [`FLAG_SUBMIT_WAIT`] (valid on `SUBMIT`
//! frames), which queues the job **and** parks the connection for the pushed
//! terminal reply in one request — the client reads the `OK <id> QUEUED` ack
//! and then blocks for the `RESULT`, with no second request. Unassigned flag
//! bits are ignored on receipt (reserved for extensions). `body_len` is
//! capped at [`MAX_FRAME_BODY`].
//!
//! Request opcodes mirror the text verbs one-to-one ([`req`]); response
//! opcodes mirror the reply headers ([`resp`]). The interesting body is the
//! binary `SUBMIT`: it ships the instance **inline as `KGB1` 16-byte edge
//! records** (`u:u32le v:u32le w:u64le`, the exact on-disk format of
//! `graphs::io`), so ingest is fixed-stride little-endian reads — no line
//! splitting, no integer-from-decimal parsing:
//!
//! ```text
//! submit  := k:u32le  algorithm:u8  enumerator:u8  instance_kind:u8  0:u8  seed:u64le  instance
//! instance(kind 0) := n:u64le  m:u64le  m × (u:u32le v:u32le w:u64le)    -- inline records
//! instance(kind 1) := utf8 canonical instance spec                        -- family / file
//! ```
//!
//! Kind-0 instances decode into [`InstanceSpec::Inline`] through **the same
//! validation** as the text parser (`u, v < n`, `u != v`, non-empty, `n` at
//! most [`MAX_INSTANCE_N`]), so a binary submit and a text submit of the same
//! instance are the same `JobSpec` — and therefore, by the job runner's
//! determinism, yield byte-identical result payloads.

use crate::instance::{InstanceSpec, MAX_INSTANCE_N};
use crate::job::{Algorithm, JobSpec};
use crate::protocol::{Request, Response};
use kecss::cuts::EnumeratorPolicy;
use std::sync::Arc;

/// The binary-mode preamble a client sends as its first 4 bytes.
pub const PREAMBLE: [u8; 4] = *b"KGW1";

/// Bytes in a frame header (`opcode + flags + reserved + body_len`).
pub const FRAME_HEADER_BYTES: usize = 8;

/// Frame-header flag bit: on a `SUBMIT` frame, also subscribe the connection
/// to the job's terminal reply (submit-and-wait in a single request). The
/// text protocol has no spelling for this — it is the binary mode's
/// round-trip saver.
pub const FLAG_SUBMIT_WAIT: u8 = 1;

/// The largest frame body either side accepts. A maximal inline instance
/// (2²⁰ vertices, a few edges per vertex) fits comfortably; anything larger
/// is a protocol error, not an allocation.
pub const MAX_FRAME_BODY: usize = 64 << 20;

/// Request opcodes (client → server).
pub mod req {
    /// `SUBMIT`.
    pub const SUBMIT: u8 = 1;
    /// `STATUS`.
    pub const STATUS: u8 = 2;
    /// `RESULT` (non-blocking fetch).
    pub const RESULT: u8 = 3;
    /// `RESULT WAIT` (push-on-complete subscription).
    pub const RESULT_WAIT: u8 = 4;
    /// `CANCEL`.
    pub const CANCEL: u8 = 5;
    /// `METRICS`.
    pub const METRICS: u8 = 6;
    /// `HEARTBEAT`.
    pub const HEARTBEAT: u8 = 7;
    /// `FLEET`.
    pub const FLEET: u8 = 8;
    /// `SHUTDOWN`.
    pub const SHUTDOWN: u8 = 9;
}

/// Response opcodes (server → client).
pub mod resp {
    /// `OK <words>`.
    pub const OK: u8 = 1;
    /// `BUSY <depth>`.
    pub const BUSY: u8 = 2;
    /// `WAIT <id> <STATE>`.
    pub const WAIT: u8 = 3;
    /// `RESULT <id>` + payload.
    pub const RESULT: u8 = 4;
    /// `GONE <id>`.
    pub const GONE: u8 = 5;
    /// `ERR <msg>`.
    pub const ERR: u8 = 6;
    /// `METRICS` + text exposition.
    pub const METRICS: u8 = 7;
    /// `FLEET` + status text.
    pub const FLEET: u8 = 8;
}

/// Instance-kind byte of a binary `SUBMIT`: inline `KGB1` records.
const INSTANCE_RECORDS: u8 = 0;
/// Instance-kind byte of a binary `SUBMIT`: canonical spec string.
const INSTANCE_SPEC: u8 = 1;

/// The `KGW1` enumerator-policy wire codes.
pub fn enumerator_wire_code(policy: EnumeratorPolicy) -> u8 {
    match policy {
        EnumeratorPolicy::Exact => 0,
        EnumeratorPolicy::Label => 1,
        EnumeratorPolicy::Contract => 2,
        EnumeratorPolicy::Ks => 3,
        EnumeratorPolicy::Auto => 4,
    }
}

/// Decodes an enumerator-policy wire code (inverse of
/// [`enumerator_wire_code`]).
pub fn enumerator_from_wire_code(code: u8) -> Option<EnumeratorPolicy> {
    Some(match code {
        0 => EnumeratorPolicy::Exact,
        1 => EnumeratorPolicy::Label,
        2 => EnumeratorPolicy::Contract,
        3 => EnumeratorPolicy::Ks,
        4 => EnumeratorPolicy::Auto,
        _ => return None,
    })
}

/// Parses a frame header; returns `(opcode, flags, body_len)`.
///
/// # Errors
///
/// Returns a human-readable message for an over-cap body length.
pub fn parse_frame_header(header: &[u8; FRAME_HEADER_BYTES]) -> Result<(u8, u8, usize), String> {
    let opcode = header[0];
    let flags = header[1];
    let body_len = u32::from_le_bytes([header[4], header[5], header[6], header[7]]) as usize;
    if body_len > MAX_FRAME_BODY {
        return Err(format!(
            "frame body of {body_len} bytes exceeds the {MAX_FRAME_BODY}-byte cap"
        ));
    }
    Ok((opcode, flags, body_len))
}

/// Wraps a body in a frame (header + body) with zero flags.
pub fn encode_frame(opcode: u8, body: &[u8]) -> Vec<u8> {
    encode_frame_flags(opcode, 0, body)
}

/// Wraps a body in a frame (header + body) with the given flag bits.
pub fn encode_frame_flags(opcode: u8, flags: u8, body: &[u8]) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_FRAME_BODY);
    let mut out = Vec::with_capacity(FRAME_HEADER_BYTES + body.len());
    out.push(opcode);
    out.push(flags);
    out.extend_from_slice(&0u16.to_le_bytes()); // reserved
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], String> {
        if self.buf.len() - self.pos < n {
            return Err(format!(
                "truncated frame body: needed {n} bytes for {what}, have {}",
                self.buf.len() - self.pos
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u8(&mut self, what: &str) -> Result<u8, String> {
        Ok(self.take(1, what)?[0])
    }

    fn u32(&mut self, what: &str) -> Result<u32, String> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self, what: &str) -> Result<u64, String> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn rest(&mut self) -> &'a [u8] {
        let slice = &self.buf[self.pos..];
        self.pos = self.buf.len();
        slice
    }

    fn utf8_rest(&mut self, what: &str) -> Result<&'a str, String> {
        std::str::from_utf8(self.rest()).map_err(|_| format!("{what} is not valid UTF-8"))
    }

    fn done(&self, what: &str) -> Result<(), String> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(format!(
                "{what} frame has {} trailing bytes",
                self.buf.len() - self.pos
            ))
        }
    }
}

/// Encodes a `SUBMIT` frame body (shared by the plain and the wait-flagged
/// submit).
fn encode_submit_body(spec: &crate::job::JobSpec) -> Vec<u8> {
    let mut body = Vec::new();
    body.extend_from_slice(&u32::try_from(spec.k).unwrap_or(u32::MAX).to_le_bytes());
    body.push(spec.algorithm.wire_code());
    body.push(enumerator_wire_code(spec.enumerator));
    match &spec.instance {
        InstanceSpec::Inline { n, edges } => {
            body.push(INSTANCE_RECORDS);
            body.push(0);
            body.extend_from_slice(&spec.seed.to_le_bytes());
            body.extend_from_slice(&(*n as u64).to_le_bytes());
            body.extend_from_slice(&(edges.len() as u64).to_le_bytes());
            for &(u, v, w) in edges {
                body.extend_from_slice(&(u as u32).to_le_bytes());
                body.extend_from_slice(&(v as u32).to_le_bytes());
                body.extend_from_slice(&w.to_le_bytes());
            }
        }
        other => {
            body.push(INSTANCE_SPEC);
            body.push(0);
            body.extend_from_slice(&spec.seed.to_le_bytes());
            body.extend_from_slice(other.canonical().as_bytes());
        }
    }
    body
}

/// Encodes a request as one binary frame (header included).
pub fn encode_request(request: &Request) -> Vec<u8> {
    match request {
        Request::Submit(spec) => encode_frame(req::SUBMIT, &encode_submit_body(spec)),
        Request::SubmitWait(spec) => {
            encode_frame_flags(req::SUBMIT, FLAG_SUBMIT_WAIT, &encode_submit_body(spec))
        }
        Request::Status(id) => encode_frame(req::STATUS, &id.to_le_bytes()),
        Request::Result(id) => encode_frame(req::RESULT, &id.to_le_bytes()),
        Request::ResultWait(id) => encode_frame(req::RESULT_WAIT, &id.to_le_bytes()),
        Request::Cancel(id) => encode_frame(req::CANCEL, &id.to_le_bytes()),
        Request::Metrics => encode_frame(req::METRICS, &[]),
        Request::Heartbeat { worker, addr } => {
            encode_frame(req::HEARTBEAT, format!("{worker} {addr}").as_bytes())
        }
        Request::Fleet => encode_frame(req::FLEET, &[]),
        Request::Shutdown => encode_frame(req::SHUTDOWN, &[]),
    }
}

/// Decodes a request frame body (inverse of [`encode_request`]).
///
/// `flags` comes from the frame header: the [`FLAG_SUBMIT_WAIT`] bit turns a
/// `SUBMIT` into [`Request::SubmitWait`]; unassigned bits are ignored.
///
/// # Errors
///
/// Returns the human-readable message the server sends back as an `ERR`
/// response — the binary analogue of [`Request::parse`] errors, with the
/// same validation rules for inline instances.
pub fn decode_request(opcode: u8, flags: u8, body: &[u8]) -> Result<Request, String> {
    let mut cur = Cursor::new(body);
    match opcode {
        req::SUBMIT => {
            let k = cur.u32("k")? as usize;
            let algorithm_code = cur.u8("algorithm")?;
            let algorithm = Algorithm::from_wire_code(algorithm_code)
                .ok_or_else(|| format!("SUBMIT: unknown algorithm code {algorithm_code}"))?;
            let enumerator_code = cur.u8("enumerator")?;
            let enumerator = enumerator_from_wire_code(enumerator_code)
                .ok_or_else(|| format!("SUBMIT: unknown enumerator code {enumerator_code}"))?;
            let kind = cur.u8("instance kind")?;
            cur.u8("reserved")?;
            let seed = cur.u64("seed")?;
            let instance = match kind {
                INSTANCE_RECORDS => decode_inline_records(&mut cur)?,
                INSTANCE_SPEC => InstanceSpec::parse(cur.utf8_rest("instance spec")?)?,
                other => return Err(format!("SUBMIT: unknown instance kind {other}")),
            };
            cur.done("SUBMIT")?;
            let spec = JobSpec {
                instance,
                k,
                algorithm,
                enumerator,
                seed,
            };
            Ok(if flags & FLAG_SUBMIT_WAIT != 0 {
                Request::SubmitWait(spec)
            } else {
                Request::Submit(spec)
            })
        }
        req::STATUS | req::RESULT | req::RESULT_WAIT | req::CANCEL => {
            let id = cur.u64("job id")?;
            cur.done("job-id")?;
            Ok(match opcode {
                req::STATUS => Request::Status(id),
                req::RESULT => Request::Result(id),
                req::RESULT_WAIT => Request::ResultWait(id),
                _ => Request::Cancel(id),
            })
        }
        req::METRICS => {
            cur.done("METRICS")?;
            Ok(Request::Metrics)
        }
        req::HEARTBEAT => {
            let text = cur.utf8_rest("HEARTBEAT body")?;
            let mut words = text.split_whitespace();
            match (words.next(), words.next(), words.next()) {
                (Some(worker), Some(addr), None) => Ok(Request::Heartbeat {
                    worker: worker.to_string(),
                    addr: addr.to_string(),
                }),
                _ => Err("HEARTBEAT expects 2 fields '<worker-id> <addr>'".into()),
            }
        }
        req::FLEET => {
            cur.done("FLEET")?;
            Ok(Request::Fleet)
        }
        req::SHUTDOWN => {
            cur.done("SHUTDOWN")?;
            Ok(Request::Shutdown)
        }
        other => Err(format!("unknown request opcode {other}")),
    }
}

/// The zero-parse ingest path: fixed-stride `KGB1` records straight into an
/// [`InstanceSpec::Inline`], validated exactly like the text parser.
fn decode_inline_records(cur: &mut Cursor<'_>) -> Result<InstanceSpec, String> {
    let n = cur.u64("vertex count")? as usize;
    if n > MAX_INSTANCE_N {
        return Err(format!(
            "requested vertex count {n} exceeds the service bound of {MAX_INSTANCE_N}"
        ));
    }
    let m = cur.u64("edge count")?;
    let records = cur.take(
        usize::try_from(m)
            .ok()
            .and_then(|m| m.checked_mul(16))
            .ok_or("edge count overflows the frame")?,
        "edge records",
    )?;
    let mut edges = Vec::with_capacity(m as usize);
    for (i, rec) in records.chunks_exact(16).enumerate() {
        let u = u32::from_le_bytes([rec[0], rec[1], rec[2], rec[3]]) as usize;
        let v = u32::from_le_bytes([rec[4], rec[5], rec[6], rec[7]]) as usize;
        let w = u64::from_le_bytes([
            rec[8], rec[9], rec[10], rec[11], rec[12], rec[13], rec[14], rec[15],
        ]);
        if u >= n || v >= n || u == v {
            return Err(format!(
                "inline edge {i}: invalid endpoints {u} {v} for n = {n}"
            ));
        }
        edges.push((u, v, w));
    }
    if edges.is_empty() {
        return Err("inline instance has no edges".into());
    }
    Ok(InstanceSpec::Inline { n, edges })
}

/// Encodes a response as one binary frame (header included).
pub fn encode_response(response: &Response) -> Vec<u8> {
    match response {
        Response::Ok(words) => encode_frame(resp::OK, words.as_bytes()),
        Response::Busy(depth) => encode_frame(resp::BUSY, &depth.to_le_bytes()),
        Response::Wait { id, state } => {
            let mut body = id.to_le_bytes().to_vec();
            body.extend_from_slice(state.as_bytes());
            encode_frame(resp::WAIT, &body)
        }
        Response::Result { id, payload } => {
            let mut body = Vec::with_capacity(8 + payload.len());
            body.extend_from_slice(&id.to_le_bytes());
            body.extend_from_slice(payload);
            encode_frame(resp::RESULT, &body)
        }
        Response::Gone(id) => encode_frame(resp::GONE, &id.to_le_bytes()),
        Response::Err(msg) => encode_frame(resp::ERR, msg.as_bytes()),
        Response::Metrics(text) => encode_frame(resp::METRICS, text),
        Response::Fleet(text) => encode_frame(resp::FLEET, text),
    }
}

/// Decodes a response frame body (inverse of [`encode_response`]; the
/// client side of binary mode).
///
/// # Errors
///
/// Returns a human-readable message for unknown opcodes or truncated bodies.
/// `WAIT` states decode to the static wire names, rejecting anything else.
pub fn decode_response(opcode: u8, body: &[u8]) -> Result<Response, String> {
    let mut cur = Cursor::new(body);
    match opcode {
        resp::OK => Ok(Response::Ok(cur.utf8_rest("OK body")?.to_string())),
        resp::BUSY => {
            let depth = cur.u64("depth")?;
            cur.done("BUSY")?;
            Ok(Response::Busy(depth))
        }
        resp::WAIT => {
            let id = cur.u64("job id")?;
            let state = match cur.utf8_rest("state")? {
                "QUEUED" => "QUEUED",
                "RUNNING" => "RUNNING",
                "DONE" => "DONE",
                "FAILED" => "FAILED",
                "CANCELLED" => "CANCELLED",
                other => return Err(format!("unknown job state '{other}'")),
            };
            Ok(Response::Wait { id, state })
        }
        resp::RESULT => {
            let id = cur.u64("job id")?;
            Ok(Response::Result {
                id,
                payload: Arc::new(cur.rest().to_vec()),
            })
        }
        resp::GONE => {
            let id = cur.u64("job id")?;
            cur.done("GONE")?;
            Ok(Response::Gone(id))
        }
        resp::ERR => Ok(Response::Err(cur.utf8_rest("ERR body")?.to_string())),
        resp::METRICS => Ok(Response::Metrics(Arc::new(cur.rest().to_vec()))),
        resp::FLEET => Ok(Response::Fleet(Arc::new(cur.rest().to_vec()))),
        other => Err(format!("unknown response opcode {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Family;

    fn decode_request_frame(frame: &[u8]) -> Result<Request, String> {
        let header: [u8; FRAME_HEADER_BYTES] = frame[..FRAME_HEADER_BYTES].try_into().unwrap();
        let (opcode, flags, body_len) = parse_frame_header(&header)?;
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + body_len);
        decode_request(opcode, flags, &frame[FRAME_HEADER_BYTES..])
    }

    fn decode_response_frame(frame: &[u8]) -> Result<Response, String> {
        let header: [u8; FRAME_HEADER_BYTES] = frame[..FRAME_HEADER_BYTES].try_into().unwrap();
        let (opcode, _flags, body_len) = parse_frame_header(&header)?;
        assert_eq!(frame.len(), FRAME_HEADER_BYTES + body_len);
        decode_response(opcode, &frame[FRAME_HEADER_BYTES..])
    }

    #[test]
    fn requests_round_trip_through_frames() {
        let inline = Request::Submit(JobSpec {
            instance: InstanceSpec::parse("inline:4:0-1-1,1-2-1,2-3-9,3-0-1").unwrap(),
            k: 2,
            algorithm: Algorithm::KEcss,
            enumerator: EnumeratorPolicy::Auto,
            seed: 7,
        });
        let family = Request::Submit(JobSpec {
            instance: InstanceSpec::Family {
                family: Family::RingOfCliques,
                n: 20,
                max_weight: 1,
            },
            k: 2,
            algorithm: Algorithm::TwoEcss,
            enumerator: EnumeratorPolicy::Ks,
            seed: 0,
        });
        let Request::Submit(wait_spec) = &inline else {
            unreachable!("built as Submit above")
        };
        let submit_wait = Request::SubmitWait(wait_spec.clone());
        for request in [
            inline,
            family,
            submit_wait,
            Request::Status(3),
            Request::Result(u64::MAX - 1),
            Request::ResultWait(5),
            Request::Cancel(0),
            Request::Metrics,
            Request::Heartbeat {
                worker: "w1".into(),
                addr: "127.0.0.1:9".into(),
            },
            Request::Fleet,
            Request::Shutdown,
        ] {
            let frame = encode_request(&request);
            assert_eq!(
                decode_request_frame(&frame).unwrap(),
                request,
                "{request:?}"
            );
        }
    }

    #[test]
    fn responses_round_trip_through_frames() {
        for response in [
            Response::Ok("3 QUEUED".into()),
            Response::Busy(17),
            Response::Wait {
                id: 4,
                state: "RUNNING",
            },
            Response::Result {
                id: 9,
                payload: Arc::new(b"payload bytes".to_vec()),
            },
            Response::Gone(9),
            Response::Err("unknown job 12".into()),
            Response::Metrics(Arc::new(b"# metrics\n".to_vec())),
            Response::Fleet(Arc::new(b"workers 1 live 1\n".to_vec())),
        ] {
            let frame = encode_response(&response);
            assert_eq!(
                decode_response_frame(&frame).unwrap(),
                response,
                "{response:?}"
            );
        }
    }

    #[test]
    fn submit_records_share_the_text_validation() {
        // Build a frame by hand with an out-of-range endpoint: same message
        // as the text parser.
        let mut body = vec![];
        body.extend_from_slice(&2u32.to_le_bytes());
        body.push(Algorithm::KEcss.wire_code());
        body.push(enumerator_wire_code(EnumeratorPolicy::Auto));
        body.push(0); // inline records
        body.push(0);
        body.extend_from_slice(&1u64.to_le_bytes()); // seed
        body.extend_from_slice(&3u64.to_le_bytes()); // n
        body.extend_from_slice(&1u64.to_le_bytes()); // m
        body.extend_from_slice(&0u32.to_le_bytes());
        body.extend_from_slice(&9u32.to_le_bytes()); // v = 9 >= n = 3
        body.extend_from_slice(&1u64.to_le_bytes());
        let err = decode_request(req::SUBMIT, 0, &body).unwrap_err();
        assert!(err.contains("invalid endpoints 0 9 for n = 3"), "{err}");

        // Zero edges are rejected like the text parser's empty list.
        let mut empty = body[..body.len() - 16].to_vec();
        let m_at = empty.len() - 8;
        empty[m_at..].copy_from_slice(&0u64.to_le_bytes());
        let err = decode_request(req::SUBMIT, 0, &empty).unwrap_err();
        assert!(err.contains("no edges"), "{err}");

        // Over-cap n is rejected without allocating.
        let mut huge = body.clone();
        let n_at = huge.len() - 16 - 16;
        huge[n_at..n_at + 8].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = decode_request(req::SUBMIT, 0, &huge).unwrap_err();
        assert!(err.contains("exceeds the service bound"), "{err}");
    }

    #[test]
    fn malformed_frames_are_rejected_with_messages() {
        assert!(decode_request(200, 0, &[]).unwrap_err().contains("opcode"));
        assert!(decode_response(0, &[]).unwrap_err().contains("opcode"));
        // Truncated id.
        assert!(decode_request(req::STATUS, 0, &[1, 2, 3])
            .unwrap_err()
            .contains("truncated"));
        // Trailing garbage.
        let mut long = 5u64.to_le_bytes().to_vec();
        long.push(0);
        assert!(decode_request(req::CANCEL, 0, &long)
            .unwrap_err()
            .contains("trailing"));
        // Over-cap body length in the header.
        let mut header = [0u8; FRAME_HEADER_BYTES];
        header[0] = req::SUBMIT;
        header[4..].copy_from_slice(&(u32::MAX).to_le_bytes());
        assert!(parse_frame_header(&header).unwrap_err().contains("exceeds"));
        // Unknown WAIT state.
        let mut wait = 1u64.to_le_bytes().to_vec();
        wait.extend_from_slice(b"LIMBO");
        assert!(decode_response(resp::WAIT, &wait)
            .unwrap_err()
            .contains("unknown job state"));
    }
}
