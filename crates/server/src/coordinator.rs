//! The fleet control plane: a coordinator that speaks the **same**
//! client-facing protocol as the standalone server, but dispatches every job
//! to a registered worker over that same wire format (DESIGN.md §13).
//!
//! # Design
//!
//! * **Clients see no new protocol.** `SUBMIT`/`STATUS`/`RESULT`/`CANCEL`/
//!   `METRICS`/`SHUTDOWN` behave exactly as against a standalone server; the
//!   only client-visible novelty is the additive `ASSIGNED` state word and
//!   the coordinator-only `FLEET` status verb.
//! * **Workers are plain servers.** The coordinator is a protocol *client*
//!   of each worker: a dispatch is a `SUBMIT` to the chosen worker followed
//!   by one blocking `RESULT WAIT` — the worker pushes the payload when the
//!   job completes, so no coordinator code path polls. Workers register by
//!   sending `HEARTBEAT <id> <addr>` periodically; a worker whose beats stop
//!   for longer than the configured timeout is deregistered and its
//!   in-flight jobs re-queued.
//! * **Lifecycle.** Every job walks the [`FleetState`] machine
//!   (`QUEUED → ASSIGNED → RUNNING → DONE/FAILED`, with the two loss
//!   transitions back to `QUEUED`); illegal transitions panic rather than
//!   corrupt the table.
//! * **Determinism under failure.** [`crate::job::run`] is pure in the spec,
//!   so *which* worker runs a job — and how many times it is re-dispatched —
//!   cannot change the payload bytes. Deterministic assignment
//!   (`splitmix64(job id)` over the sorted live-worker set) additionally
//!   pins *where* a job runs for a given fleet shape, which keeps scheduling
//!   reproducible, but byte-identical results need only purity. See the
//!   determinism argument in DESIGN.md §13.
//!
//! # Retry semantics
//!
//! A worker loss (heartbeat timeout, connection failure, or read timeout)
//! re-queues the lost worker's non-terminal jobs and bumps their retry
//! count; a job whose retry count exceeds `max_retries` fails instead. A
//! `BUSY` answer from a worker is *not* a retry — the job simply returns to
//! the queue with a short back-off. Each (re)assignment bumps the job's
//! epoch; a dispatch thread only writes back under its own epoch, so a
//! stale dispatcher racing a re-queue can never clobber the table.

use crate::client::{Client, ClientError, Reply};
use crate::event_loop::{run_event_loop, EventLoopConfig, Service, ServiceReply};
use crate::job::JobSpec;
use crate::protocol::{Request, Response};
use crate::scheduler::{CompletionHook, FleetState, JobId, Outcome};
use crate::server::classify_response;
use kecss_obs::{Counter, Gauge, Histogram};
use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Cached handles into the global registry (the fixed-name fleet series);
/// per-worker labelled series are resolved on demand — dispatch is a
/// millisecond-scale path, not the scheduler's ~50 µs submit path.
struct Metrics {
    workers_live: Arc<Gauge>,
    retries: Arc<Counter>,
    completed: Arc<Counter>,
    failed: Arc<Counter>,
    cancelled: Arc<Counter>,
    assignment_wait_ns: Arc<Histogram>,
    heartbeat_gap_ns: Arc<Histogram>,
}

fn metrics() -> &'static Metrics {
    static METRICS: OnceLock<Metrics> = OnceLock::new();
    METRICS.get_or_init(|| Metrics {
        workers_live: kecss_obs::gauge("fleet_workers_live"),
        retries: kecss_obs::counter("fleet_job_retries_total"),
        completed: kecss_obs::counter_with("fleet_jobs_total", &[("state", "completed")]),
        failed: kecss_obs::counter_with("fleet_jobs_total", &[("state", "failed")]),
        cancelled: kecss_obs::counter_with("fleet_jobs_total", &[("state", "cancelled")]),
        assignment_wait_ns: kecss_obs::histogram("fleet_assignment_wait_ns"),
        heartbeat_gap_ns: kecss_obs::histogram("fleet_heartbeat_gap_ns"),
    })
}

/// Coordinator configuration (the CLI's `kecss serve --role coordinator`
/// flags).
#[derive(Clone, Debug)]
pub struct CoordinatorConfig {
    /// The client-facing address to bind (port 0 picks one).
    pub addr: String,
    /// Maximum jobs in flight (queued + assigned + running) before `BUSY`.
    pub queue_depth: usize,
    /// A worker whose last heartbeat is older than this is deregistered and
    /// its jobs re-queued.
    pub heartbeat_timeout: Duration,
    /// Worker-loss re-queues a job tolerates before failing.
    pub max_retries: u32,
    /// Per-connection request limit (0 = unlimited), as on the server.
    pub max_requests_per_conn: usize,
    /// Per-connection unsent-reply bound (the slow-client policy), as on the
    /// server.
    pub write_queue_limit: usize,
}

impl Default for CoordinatorConfig {
    fn default() -> Self {
        CoordinatorConfig {
            addr: "127.0.0.1:7460".into(),
            queue_depth: 64,
            heartbeat_timeout: Duration::from_secs(3),
            max_retries: 5,
            max_requests_per_conn: 0,
            write_queue_limit: 16 << 20,
        }
    }
}

/// Aggregate fleet counters, returned by [`Coordinator::run`] and rendered
/// in the `FLEET` status text.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FleetSummary {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs that finished with a payload.
    pub completed: u64,
    /// Jobs that finished with an error (including exhausted retries).
    pub failed: u64,
    /// Jobs cancelled while queued.
    pub cancelled: u64,
    /// Submissions rejected with `BUSY`.
    pub rejected: u64,
    /// Worker-loss (or `BUSY`) re-queues across all jobs.
    pub retries: u64,
}

/// One fleet job's table entry.
struct FleetJob {
    spec: JobSpec,
    state: FleetState,
    /// The worker currently (or last) responsible, by id.
    worker: Option<String>,
    /// Bumped on every (re)assignment and every re-queue; a dispatch thread
    /// writes back only under its own epoch.
    epoch: u64,
    /// Worker-loss re-queues so far (`BUSY` back-offs do not count).
    retries: u32,
    /// Earliest next dispatch (the `BUSY` back-off).
    not_before: Instant,
    /// Set while non-terminal; consumed into the assignment-wait histogram.
    submitted_at: Instant,
    /// The terminal outcome, with the server's fetched-once semantics.
    outcome: Option<Outcome>,
}

impl FleetJob {
    /// Moves the job to `to`, enforcing the [`FleetState`] transition table.
    fn transition(&mut self, to: FleetState) {
        assert!(
            self.state.can_transition(to),
            "illegal fleet transition {:?} -> {to:?}",
            self.state
        );
        self.state = to;
    }
}

/// One registered worker.
struct WorkerEntry {
    addr: String,
    last_beat: Instant,
    live: bool,
    /// Jobs ever dispatched to this worker.
    dispatched: u64,
    /// Jobs currently assigned/running on this worker.
    inflight: u64,
}

struct FleetTable {
    next_id: JobId,
    /// `BTreeMap` so the FIFO dispatch scan and the `FLEET` text are in
    /// job-id order.
    jobs: BTreeMap<JobId, FleetJob>,
    /// `BTreeMap` so "the sorted live-worker set" is the iteration order.
    workers: BTreeMap<String, WorkerEntry>,
    /// Jobs queued + assigned + running; the depth bound applies to this.
    inflight: usize,
    closed: bool,
    /// Set (under the lock) by everything that makes new dispatch work —
    /// submission, registration, a worker-loss re-queue, shutdown — and
    /// cleared by the dispatcher after each scan. A `Condvar` notification
    /// fired between the dispatcher's scan and its wait is otherwise lost,
    /// and the job would sit queued until the next sweep tick.
    kicked: bool,
    /// Job ids that reached a terminal state since the last flush. Every
    /// code path that drops the table lock after a terminal transition takes
    /// this buffer and fires [`Shared::notify_terminals`] with it, which
    /// wakes the readiness loop for push delivery and the shutdown drain.
    pending_terminal: Vec<JobId>,
    summary: FleetSummary,
}

impl FleetTable {
    fn live_workers(&self) -> Vec<(String, String)> {
        self.workers
            .iter()
            .filter(|(_, w)| w.live)
            .map(|(id, w)| (id.clone(), w.addr.clone()))
            .collect()
    }

    fn update_live_gauge(&self) {
        let live = self.workers.values().filter(|w| w.live).count();
        metrics().workers_live.set(live as i64);
    }

    /// Marks a job terminal: transition, store the outcome, maintain the
    /// in-flight count, counters and per-worker gauges.
    fn finish(&mut self, id: JobId, to: FleetState, outcome: Outcome) {
        let job = self.jobs.get_mut(&id).expect("finishing a known job");
        if let Some(worker) = job.worker.take() {
            if let Some(entry) = self.workers.get_mut(&worker) {
                entry.inflight = entry.inflight.saturating_sub(1);
                worker_inflight_gauge(&worker).set(entry.inflight as i64);
            }
        }
        job.transition(to);
        job.outcome = Some(outcome);
        self.inflight -= 1;
        self.pending_terminal.push(id);
        match to {
            FleetState::Done => {
                self.summary.completed += 1;
                metrics().completed.inc();
            }
            FleetState::Failed => {
                self.summary.failed += 1;
                metrics().failed.inc();
            }
            FleetState::Cancelled => {
                self.summary.cancelled += 1;
                metrics().cancelled.inc();
            }
            _ => unreachable!("finish is only called with terminal states"),
        }
    }

    /// Returns every non-terminal job owned by `worker` to the queue (or
    /// fails it when its retry budget is spent). The loss path shared by the
    /// heartbeat sweep and dispatch-side connection failures.
    fn requeue_worker_jobs(&mut self, worker: &str, max_retries: u32, cause: &str) {
        let ids: Vec<JobId> = self
            .jobs
            .iter()
            .filter(|(_, j)| !j.state.is_terminal() && j.worker.as_deref() == Some(worker))
            .map(|(id, _)| *id)
            .collect();
        for id in ids {
            self.summary.retries += 1;
            metrics().retries.inc();
            let job = self.jobs.get_mut(&id).expect("job id just enumerated");
            job.epoch += 1;
            job.retries += 1;
            job.worker = None;
            if let Some(entry) = self.workers.get_mut(worker) {
                entry.inflight = entry.inflight.saturating_sub(1);
                worker_inflight_gauge(worker).set(entry.inflight as i64);
            }
            if job.retries > max_retries {
                let retries = job.retries;
                // `finish` re-derives the worker/inflight bookkeeping; the
                // worker was already detached above, so transition directly.
                job.transition(FleetState::Failed);
                job.outcome = Some(Outcome::Failed(format!(
                    "worker lost {retries} times (last: {cause}); retry budget {max_retries} spent"
                )));
                self.inflight -= 1;
                self.pending_terminal.push(id);
                self.summary.failed += 1;
                metrics().failed.inc();
            } else {
                job.transition(FleetState::Queued);
                job.not_before = Instant::now();
            }
        }
    }
}

fn worker_inflight_gauge(worker: &str) -> Arc<Gauge> {
    kecss_obs::gauge_with("fleet_worker_inflight", &[("worker", worker)])
}

fn worker_dispatched_counter(worker: &str) -> Arc<Counter> {
    kecss_obs::counter_with("fleet_worker_dispatched_total", &[("worker", worker)])
}

struct Shared {
    table: Mutex<FleetTable>,
    /// Signalled whenever a job reaches a terminal state (drain, waiters).
    changed: Condvar,
    /// Signalled whenever dispatch-relevant state changes (submission,
    /// registration, re-queue).
    dispatch: Condvar,
    /// Stops the dispatcher thread (set after the shutdown drain).
    stop: AtomicBool,
    /// The readiness loop's completion hook (push delivery + drain wakeups),
    /// installed once before the loop starts serving.
    completion_hook: Mutex<Option<CompletionHook>>,
    config: CoordinatorConfig,
}

impl Shared {
    /// Fires the loop's completion hook for every buffered terminal id.
    /// Callers take [`FleetTable::pending_terminal`] while still holding the
    /// table lock and call this after dropping it, so the hook (which takes
    /// its own locks) never nests inside the table lock.
    fn notify_terminals(&self, ids: Vec<JobId>) {
        if ids.is_empty() {
            return;
        }
        let hook = self
            .completion_hook
            .lock()
            .expect("completion hook lock poisoned")
            .clone();
        if let Some(hook) = hook {
            for id in ids {
                hook(id);
            }
        }
    }
}

/// The deterministic assignment hash: splitmix64, the same finalizer the
/// solver seeds go through. The *value* only matters in that it is a fixed
/// pure function of the job id — assignment is then reproducible for a
/// given sorted live-worker set.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A bound, not-yet-running coordinator (bind/run split as on [`crate::Server`]).
pub struct Coordinator {
    listener: TcpListener,
    shared: Arc<Shared>,
    loop_config: EventLoopConfig,
}

impl Coordinator {
    /// Binds the client-facing listener.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn bind(config: &CoordinatorConfig) -> std::io::Result<Coordinator> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Coordinator {
            listener,
            shared: Arc::new(Shared {
                table: Mutex::new(FleetTable {
                    next_id: 1,
                    jobs: BTreeMap::new(),
                    workers: BTreeMap::new(),
                    inflight: 0,
                    closed: false,
                    kicked: false,
                    pending_terminal: Vec::new(),
                    summary: FleetSummary::default(),
                }),
                changed: Condvar::new(),
                dispatch: Condvar::new(),
                stop: AtomicBool::new(false),
                completion_hook: Mutex::new(None),
                config: CoordinatorConfig {
                    queue_depth: config.queue_depth.max(1),
                    ..config.clone()
                },
            }),
            loop_config: EventLoopConfig {
                max_requests_per_conn: config.max_requests_per_conn,
                write_queue_limit: config.write_queue_limit.max(1),
                backend: None,
            },
        })
    }

    /// The actually-bound client-facing address (resolves port 0).
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the bound address (it just bound it).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("listener has an address")
    }

    /// Runs the readiness loop and the dispatcher until a `SHUTDOWN` request
    /// arrives, then drains the in-flight jobs and returns the final
    /// counters. The drain needs live workers to make progress; a fleet shut
    /// down with queued jobs and no workers waits until a worker registers
    /// (heartbeats on already-open connections are still served during the
    /// drain; only *new* connects are refused).
    ///
    /// # Panics
    ///
    /// Panics if the readiness poller cannot be constructed (fd exhaustion).
    pub fn run(self) -> FleetSummary {
        let dispatcher = {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || dispatcher_loop(&shared))
        };
        let service: Arc<dyn Service> = Arc::new(CoordinatorService {
            shared: Arc::clone(&self.shared),
        });
        // The loop returns only once every admitted job is terminal (its
        // drain condition asks `CoordinatorService::idle`); dispatch and
        // retries keep running on the threads behind it meanwhile.
        run_event_loop(self.listener, &service, &self.loop_config)
            .expect("readiness loop failed to start");
        let summary = self
            .shared
            .table
            .lock()
            .expect("coordinator lock poisoned")
            .summary;
        self.shared.stop.store(true, Ordering::SeqCst);
        {
            let mut table = self.shared.table.lock().expect("coordinator lock poisoned");
            table.kicked = true;
        }
        self.shared.dispatch.notify_all();
        let _ = dispatcher.join();
        summary
    }

    /// Spawns [`Coordinator::run`] on a background thread (tests, benches
    /// and the in-process harness).
    pub fn spawn(self) -> CoordinatorHandle {
        let addr = self.local_addr();
        let thread = std::thread::spawn(move || self.run());
        CoordinatorHandle { addr, thread }
    }
}

/// A running background coordinator.
pub struct CoordinatorHandle {
    addr: SocketAddr,
    thread: std::thread::JoinHandle<FleetSummary>,
}

impl CoordinatorHandle {
    /// The coordinator's client-facing address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the coordinator to shut down (send `SHUTDOWN` first) and
    /// returns its final counters.
    ///
    /// # Panics
    ///
    /// Panics if the coordinator thread panicked.
    pub fn join(self) -> FleetSummary {
        self.thread.join().expect("coordinator thread panicked")
    }
}

/// The dispatcher: one loop that (1) sweeps heartbeat-expired workers and
/// re-queues their jobs, (2) assigns queued jobs to live workers
/// deterministically, spawning one dispatch thread per assignment.
fn dispatcher_loop(shared: &Arc<Shared>) {
    // The sweep cadence bounds loss-detection latency; a quarter of the
    // timeout keeps detection prompt without busy-waiting.
    let tick = (shared.config.heartbeat_timeout / 4)
        .clamp(Duration::from_millis(5), Duration::from_millis(250));
    loop {
        let mut dispatched: Vec<(JobId, u64, String, String, JobSpec)> = Vec::new();
        let terminal_ids;
        {
            let mut table = shared.table.lock().expect("coordinator lock poisoned");
            if shared.stop.load(Ordering::SeqCst) {
                return;
            }
            let now = Instant::now();
            // 1. Heartbeat sweep.
            let lost: Vec<String> = table
                .workers
                .iter()
                .filter(|(_, w)| {
                    w.live && now.duration_since(w.last_beat) > shared.config.heartbeat_timeout
                })
                .map(|(id, _)| id.clone())
                .collect();
            for worker in &lost {
                table
                    .workers
                    .get_mut(worker)
                    .expect("worker enumerated")
                    .live = false;
                table.requeue_worker_jobs(worker, shared.config.max_retries, "heartbeat timeout");
            }
            if !lost.is_empty() {
                table.update_live_gauge();
                shared.changed.notify_all();
            }
            // 2. Deterministic assignment over the sorted live-worker set.
            let live = table.live_workers();
            if !live.is_empty() {
                let ready: Vec<JobId> = table
                    .jobs
                    .iter()
                    .filter(|(_, j)| j.state == FleetState::Queued && j.not_before <= now)
                    .map(|(id, _)| *id)
                    .collect();
                for id in ready {
                    let (worker, worker_addr) =
                        &live[(splitmix64(id) % live.len() as u64) as usize];
                    let job = table.jobs.get_mut(&id).expect("job id just enumerated");
                    job.transition(FleetState::Assigned);
                    job.worker = Some(worker.clone());
                    job.epoch += 1;
                    let epoch = job.epoch;
                    let spec = job.spec.clone();
                    if kecss_obs::enabled() {
                        if let Ok(ns) =
                            u64::try_from(now.duration_since(job.submitted_at).as_nanos())
                        {
                            metrics().assignment_wait_ns.record(ns);
                        }
                    }
                    let entry = table.workers.get_mut(worker).expect("live worker exists");
                    entry.dispatched += 1;
                    entry.inflight += 1;
                    worker_dispatched_counter(worker).inc();
                    worker_inflight_gauge(worker).set(entry.inflight as i64);
                    dispatched.push((id, epoch, worker.clone(), worker_addr.clone(), spec));
                }
            }
            // A sweep may have failed jobs past their retry budget: wake any
            // parked `RESULT WAIT` subscribers (and the drain) for them.
            terminal_ids = std::mem::take(&mut table.pending_terminal);
        }
        shared.notify_terminals(terminal_ids);
        for (id, epoch, worker, worker_addr, spec) in dispatched {
            let shared = Arc::clone(shared);
            std::thread::spawn(move || {
                dispatch_job(&shared, id, epoch, &worker, &worker_addr, spec)
            });
        }
        let mut table = shared.table.lock().expect("coordinator lock poisoned");
        if !table.kicked {
            // Nothing arrived while the lock was released for the spawns.
            // Wake no later than the earliest `BUSY` back-off deadline (a
            // backed-off job has no notification coming), else at the sweep
            // tick. Queued jobs with no live worker get no special wake:
            // registration kicks.
            let now = Instant::now();
            let wait = if table.workers.values().any(|w| w.live) {
                table
                    .jobs
                    .values()
                    .filter(|j| j.state == FleetState::Queued)
                    .map(|j| {
                        j.not_before
                            .saturating_duration_since(now)
                            .max(Duration::from_millis(1))
                    })
                    .min()
                    .map_or(tick, |d| d.min(tick))
            } else {
                tick
            };
            table = shared
                .dispatch
                .wait_timeout(table, wait)
                .expect("coordinator lock poisoned")
                .0;
        }
        table.kicked = false;
    }
}

/// One dispatch: act as a protocol client of the chosen worker — `SUBMIT`,
/// then one blocking `RESULT WAIT` (the worker pushes on completion). All
/// table write-backs are epoch-guarded.
fn dispatch_job(
    shared: &Arc<Shared>,
    id: JobId,
    epoch: u64,
    worker: &str,
    worker_addr: &str,
    spec: JobSpec,
) {
    match try_dispatch(shared, id, epoch, worker_addr, spec) {
        Ok(()) => {}
        Err(DispatchEnd::WorkerLost(cause)) => {
            let mut table = shared.table.lock().expect("coordinator lock poisoned");
            // Only act if the table still believes this dispatch: the
            // heartbeat sweep may have re-queued the job already.
            let current = table.jobs.get(&id).is_some_and(|j| j.epoch == epoch);
            if current {
                if let Some(entry) = table.workers.get_mut(worker) {
                    entry.live = false;
                }
                table.requeue_worker_jobs(worker, shared.config.max_retries, &cause);
                table.update_live_gauge();
                table.kicked = true;
                let terminal_ids = std::mem::take(&mut table.pending_terminal);
                drop(table);
                shared.changed.notify_all();
                shared.dispatch.notify_all();
                shared.notify_terminals(terminal_ids);
            }
        }
        Err(DispatchEnd::Busy) => {
            let mut table = shared.table.lock().expect("coordinator lock poisoned");
            if table.jobs.get(&id).is_some_and(|j| j.epoch == epoch) {
                if let Some(entry) = table.workers.get_mut(worker) {
                    entry.inflight = entry.inflight.saturating_sub(1);
                    worker_inflight_gauge(worker).set(entry.inflight as i64);
                }
                let job = table.jobs.get_mut(&id).expect("epoch-checked job exists");
                job.worker = None;
                job.epoch += 1;
                job.transition(FleetState::Queued);
                // Back off briefly so a saturated worker is not hammered.
                job.not_before = Instant::now() + Duration::from_millis(25);
            }
        }
    }
}

/// Why a dispatch attempt ended without delivering a terminal outcome.
enum DispatchEnd {
    /// The worker is unreachable, hung past the read timeout, or answered
    /// outside the protocol: treat as a loss and re-queue.
    WorkerLost(String),
    /// The worker's queue is full: back off, no retry charged.
    Busy,
}

fn try_dispatch(
    shared: &Arc<Shared>,
    id: JobId,
    epoch: u64,
    worker_addr: &str,
    spec: JobSpec,
) -> Result<(), DispatchEnd> {
    let lost = |e: ClientError| DispatchEnd::WorkerLost(e.to_string());
    let mut client = Client::connect(worker_addr).map_err(lost)?;
    // A healthy worker answers `SUBMIT` immediately (solving happens on its
    // pool): a read that blocks past the heartbeat timeout here means the
    // worker is gone, not slow.
    client
        .set_read_timeout(Some(shared.config.heartbeat_timeout))
        .map_err(lost)?;
    let worker_job = match client.submit(&spec) {
        Ok(Ok(worker_job)) => worker_job,
        Ok(Err(_depth)) => return Err(DispatchEnd::Busy),
        // The worker rejected the spec outright (`ERR`): re-submitting
        // elsewhere cannot help, the job fails now.
        Err(ClientError::Server(message)) => {
            let mut table = shared.table.lock().expect("coordinator lock poisoned");
            if table.jobs.get(&id).is_some_and(|j| j.epoch == epoch) {
                table.finish(id, FleetState::Failed, Outcome::Failed(message));
                let terminal_ids = std::mem::take(&mut table.pending_terminal);
                drop(table);
                shared.changed.notify_all();
                shared.notify_terminals(terminal_ids);
            }
            return Ok(());
        }
        Err(e) => return Err(lost(e)),
    };
    // The worker accepted the job onto its pool: that ack is the fleet's
    // RUNNING hop. The push model has no later intermediate report to learn
    // it from — the next thing this connection hears is the terminal result.
    {
        let mut table = shared.table.lock().expect("coordinator lock poisoned");
        let started = table
            .jobs
            .get_mut(&id)
            .filter(|j| j.epoch == epoch && j.state == FleetState::Assigned)
            .map(|job| job.transition(FleetState::Running))
            .is_some();
        drop(table);
        if started {
            shared.changed.notify_all();
        }
    }
    // `RESULT WAIT` answers exactly once, when the job is terminal: the read
    // must be unbounded (solve time is the job's, not the protocol's). A
    // worker that *dies* surfaces as EOF/reset here and is handled as a
    // loss; a worker silently black-holed by the network (no FIN, no RST) is
    // detected by the heartbeat sweep instead, which re-queues the job under
    // a new epoch — this thread's eventual write-back is then discarded by
    // the epoch guard.
    client.set_read_timeout(None).map_err(lost)?;
    match client.request(&Request::ResultWait(worker_job)) {
        Ok(Reply::Result { payload, .. }) => {
            let mut table = shared.table.lock().expect("coordinator lock poisoned");
            if table.jobs.get(&id).is_some_and(|j| j.epoch == epoch) {
                // The machine records the RUNNING hop the push model no
                // longer observes directly.
                let job = table.jobs.get_mut(&id).expect("epoch-checked job exists");
                if job.state == FleetState::Assigned {
                    job.transition(FleetState::Running);
                }
                table.finish(id, FleetState::Done, Outcome::Done(Arc::new(payload)));
                let terminal_ids = std::mem::take(&mut table.pending_terminal);
                drop(table);
                shared.changed.notify_all();
                shared.notify_terminals(terminal_ids);
            }
            Ok(())
        }
        Ok(Reply::Err(message)) => {
            // The worker executed the job and it failed (solver error or
            // worker-side cancellation): terminal, not a loss.
            let failure = message
                .strip_prefix(&format!("job {worker_job} failed: "))
                .unwrap_or(&message)
                .to_string();
            let mut table = shared.table.lock().expect("coordinator lock poisoned");
            if table.jobs.get(&id).is_some_and(|j| j.epoch == epoch) {
                let job = table.jobs.get_mut(&id).expect("epoch-checked job exists");
                if job.state == FleetState::Assigned {
                    job.transition(FleetState::Running);
                }
                table.finish(id, FleetState::Failed, Outcome::Failed(failure));
                let terminal_ids = std::mem::take(&mut table.pending_terminal);
                drop(table);
                shared.changed.notify_all();
                shared.notify_terminals(terminal_ids);
            }
            Ok(())
        }
        Ok(other) => Err(DispatchEnd::WorkerLost(format!(
            "worker answered outside the protocol: {other:?}"
        ))),
        Err(e) => Err(lost(e)),
    }
}

/// The fetched-once terminal reply for a fleet job, or `None` while it is in
/// flight: `Done` is consumed into `Gone` on first fetch; `Failed` and
/// `Cancelled` are repeatable diagnoses (unchanged since DESIGN.md §13).
fn fleet_outcome_response(id: JobId, job: &mut FleetJob) -> Option<Response> {
    let outcome = job.outcome.as_mut()?;
    Some(match outcome {
        Outcome::Done(_) => {
            let Outcome::Done(payload) = std::mem::replace(outcome, Outcome::Gone) else {
                unreachable!("matched Outcome::Done above")
            };
            Response::Result { id, payload }
        }
        Outcome::Gone => Response::Gone(id),
        Outcome::Failed(message) => Response::Err(format!("job {id} failed: {message}")),
        Outcome::Cancelled => Response::Err(kecss::Error::JobCancelled { job: id }.to_string()),
    })
}

/// The coordinator role behind the readiness loop: the coordinator-side
/// analogue of the server's responder — same verbs, same reply bytes, same
/// fetched-once `RESULT` semantics, with the fleet table instead of the
/// scheduler behind it.
struct CoordinatorService {
    shared: Arc<Shared>,
}

impl CoordinatorService {
    /// Admits one submission into the fleet table (or refuses it). With
    /// `wait` the admitted reply also parks the connection for the terminal
    /// push — refusals never subscribe.
    fn admit(&self, spec: JobSpec, wait: bool) -> ServiceReply {
        let shared = &self.shared;
        let mut table = shared.table.lock().expect("coordinator lock poisoned");
        if table.closed {
            return ServiceReply::Line(Response::Err(
                kecss::Error::ServiceShuttingDown.to_string(),
            ));
        }
        if table.inflight >= shared.config.queue_depth {
            table.summary.rejected += 1;
            return ServiceReply::Line(Response::Busy(shared.config.queue_depth as u64));
        }
        let id = table.next_id;
        table.next_id += 1;
        table.inflight += 1;
        table.summary.submitted += 1;
        let now = Instant::now();
        table.jobs.insert(
            id,
            FleetJob {
                spec,
                state: FleetState::Queued,
                worker: None,
                epoch: 0,
                retries: 0,
                not_before: now,
                submitted_at: now,
                outcome: None,
            },
        );
        table.kicked = true;
        drop(table);
        shared.dispatch.notify_all();
        let ack = Response::Ok(format!("{id} QUEUED"));
        if wait {
            ServiceReply::LineAndSubscribe(ack, id)
        } else {
            ServiceReply::Line(ack)
        }
    }
}

impl Service for CoordinatorService {
    fn respond(&self, request: Request) -> ServiceReply {
        kecss_obs::counter_with("fleet_requests_total", &[("verb", request.verb())]).inc();
        let shared = &self.shared;
        let reply = match request {
            Request::Submit(spec) => self.admit(spec, false),
            Request::SubmitWait(spec) => self.admit(spec, true),
            Request::Status(id) => {
                let table = shared.table.lock().expect("coordinator lock poisoned");
                match table.jobs.get(&id) {
                    Some(job) => {
                        ServiceReply::Line(Response::Ok(format!("{id} {}", job.state.wire_name())))
                    }
                    None => ServiceReply::Line(Response::Err(format!("unknown job {id}"))),
                }
            }
            Request::Result(id) => {
                let mut table = shared.table.lock().expect("coordinator lock poisoned");
                match table.jobs.get_mut(&id) {
                    None => ServiceReply::Line(Response::Err(format!("unknown job {id}"))),
                    Some(job) => match fleet_outcome_response(id, job) {
                        Some(response) => ServiceReply::Line(response),
                        None => ServiceReply::Line(Response::Wait {
                            id,
                            state: job.state.wire_name(),
                        }),
                    },
                }
            }
            Request::ResultWait(id) => {
                let table = shared.table.lock().expect("coordinator lock poisoned");
                match table.jobs.get(&id) {
                    None => ServiceReply::Line(Response::Err(format!("unknown job {id}"))),
                    // Known job: park the connection. Already-terminal jobs
                    // are answered by the subscribe-time re-check in the
                    // loop.
                    Some(_) => ServiceReply::Subscribe(id),
                }
            }
            Request::Cancel(id) => {
                let mut table = shared.table.lock().expect("coordinator lock poisoned");
                match table.jobs.get(&id).map(|job| job.state) {
                    None => ServiceReply::Line(Response::Err(format!("unknown job {id}"))),
                    Some(FleetState::Queued) => {
                        table.finish(id, FleetState::Cancelled, Outcome::Cancelled);
                        let terminal_ids = std::mem::take(&mut table.pending_terminal);
                        drop(table);
                        shared.changed.notify_all();
                        shared.notify_terminals(terminal_ids);
                        ServiceReply::Line(Response::Ok(format!("{id} CANCELLED")))
                    }
                    Some(state) if state.is_terminal() => {
                        ServiceReply::Line(Response::Err(format!("job {id} already finished")))
                    }
                    Some(state) => ServiceReply::Line(Response::Err(format!(
                        "job {id} is already {}",
                        state.wire_name().to_lowercase()
                    ))),
                }
            }
            Request::Metrics => {
                let text = kecss_obs::Registry::global().render();
                ServiceReply::Line(Response::Metrics(Arc::new(text.into_bytes())))
            }
            Request::Heartbeat { worker, addr } => {
                let mut table = shared.table.lock().expect("coordinator lock poisoned");
                let now = Instant::now();
                let registered = match table.workers.get_mut(&worker) {
                    Some(entry) => {
                        let was_dead = !entry.live;
                        if kecss_obs::enabled() && !was_dead {
                            if let Ok(ns) =
                                u64::try_from(now.duration_since(entry.last_beat).as_nanos())
                            {
                                metrics().heartbeat_gap_ns.record(ns);
                            }
                        }
                        entry.addr = addr;
                        entry.last_beat = now;
                        entry.live = true;
                        was_dead
                    }
                    None => {
                        table.workers.insert(
                            worker.clone(),
                            WorkerEntry {
                                addr,
                                last_beat: now,
                                live: true,
                                dispatched: 0,
                                inflight: 0,
                            },
                        );
                        true
                    }
                };
                if registered {
                    table.kicked = true;
                }
                table.update_live_gauge();
                drop(table);
                if registered {
                    shared.dispatch.notify_all();
                }
                let word = if registered { "REGISTERED" } else { "ALIVE" };
                ServiceReply::Line(Response::Ok(format!("{worker} {word}")))
            }
            Request::Fleet => {
                let table = shared.table.lock().expect("coordinator lock poisoned");
                let text = render_fleet(&table);
                ServiceReply::Line(Response::Fleet(Arc::new(text.into_bytes())))
            }
            Request::Shutdown => {
                shared
                    .table
                    .lock()
                    .expect("coordinator lock poisoned")
                    .closed = true;
                ServiceReply::Shutdown(Response::Ok("SHUTDOWN".into()))
            }
        };
        if let ServiceReply::Line(response)
        | ServiceReply::Shutdown(response)
        | ServiceReply::LineAndSubscribe(response, _) = &reply
        {
            classify_response(response);
        }
        reply
    }

    fn result_reply(&self, id: JobId) -> Option<Response> {
        let mut table = self.shared.table.lock().expect("coordinator lock poisoned");
        let job = table.jobs.get_mut(&id)?;
        let response = fleet_outcome_response(id, job)?;
        classify_response(&response);
        Some(response)
    }

    fn idle(&self) -> bool {
        self.shared
            .table
            .lock()
            .expect("coordinator lock poisoned")
            .inflight
            == 0
    }

    fn install_completion_hook(&self, hook: CompletionHook) {
        *self
            .shared
            .completion_hook
            .lock()
            .expect("completion hook lock poisoned") = Some(hook);
    }
}

/// Renders the machine-parseable `FLEET` status text (grammar in
/// DESIGN.md §13).
fn render_fleet(table: &FleetTable) -> String {
    let now = Instant::now();
    let mut text = String::from("# kecss fleet status v1\n");
    let live = table.workers.values().filter(|w| w.live).count();
    text.push_str(&format!("workers {} live {live}\n", table.workers.len()));
    for (id, w) in &table.workers {
        text.push_str(&format!(
            "worker {id} {} {} inflight {} dispatched {} age_ms {}\n",
            w.addr,
            if w.live { "live" } else { "dead" },
            w.inflight,
            w.dispatched,
            now.duration_since(w.last_beat).as_millis(),
        ));
    }
    let s = table.summary;
    text.push_str(&format!(
        "jobs submitted {} completed {} failed {} cancelled {} rejected {} retries {}\n",
        s.submitted, s.completed, s.failed, s.cancelled, s.rejected, s.retries
    ));
    let count = |state: FleetState| table.jobs.values().filter(|j| j.state == state).count();
    text.push_str(&format!(
        "inflight {} queued {} assigned {} running {}\n",
        table.inflight,
        count(FleetState::Queued),
        count(FleetState::Assigned),
        count(FleetState::Running),
    ));
    for (id, job) in table.jobs.iter().filter(|(_, j)| !j.state.is_terminal()) {
        text.push_str(&format!(
            "job {id} {} worker {} retries {}\n",
            job.state.wire_name(),
            job.worker.as_deref().unwrap_or("-"),
            job.retries,
        ));
    }
    text
}

/// Formats a one-line human summary (the CLI and the binary print it on
/// exit, mirroring [`crate::server::summary_line`]).
pub fn fleet_summary_line(summary: &FleetSummary) -> String {
    format!(
        "fleet served {} jobs: {} completed, {} failed, {} cancelled, {} rejected busy, {} retries",
        summary.submitted,
        summary.completed,
        summary.failed,
        summary.cancelled,
        summary.rejected,
        summary.retries
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix64_is_a_fixed_function() {
        // The assignment hash must never drift: these values pin it.
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(2), 0x9758_35DE_1C97_56CE);
        assert_eq!(splitmix64(3), 0x1D0B_14E4_DB01_8FED);
    }

    #[test]
    fn fleet_text_renders_workers_jobs_and_counters() {
        let now = Instant::now();
        let mut table = FleetTable {
            next_id: 3,
            jobs: BTreeMap::new(),
            workers: BTreeMap::new(),
            inflight: 1,
            closed: false,
            kicked: false,
            pending_terminal: Vec::new(),
            summary: FleetSummary {
                submitted: 2,
                completed: 1,
                retries: 1,
                ..FleetSummary::default()
            },
        };
        table.workers.insert(
            "w1".into(),
            WorkerEntry {
                addr: "127.0.0.1:9000".into(),
                last_beat: now,
                live: true,
                dispatched: 2,
                inflight: 1,
            },
        );
        table.workers.insert(
            "w2".into(),
            WorkerEntry {
                addr: "127.0.0.1:9001".into(),
                last_beat: now,
                live: false,
                dispatched: 1,
                inflight: 0,
            },
        );
        let spec = crate::job::JobSpec {
            instance: crate::instance::InstanceSpec::parse("ring:20").unwrap(),
            k: 2,
            algorithm: crate::job::Algorithm::TwoEcss,
            enumerator: kecss::cuts::EnumeratorPolicy::Auto,
            seed: 1,
        };
        table.jobs.insert(
            2,
            FleetJob {
                spec,
                state: FleetState::Running,
                worker: Some("w1".into()),
                epoch: 2,
                retries: 1,
                not_before: now,
                submitted_at: now,
                outcome: None,
            },
        );
        let text = render_fleet(&table);
        assert!(text.starts_with("# kecss fleet status v1\n"), "{text}");
        assert!(text.contains("workers 2 live 1"), "{text}");
        assert!(
            text.contains("worker w1 127.0.0.1:9000 live inflight 1 dispatched 2"),
            "{text}"
        );
        assert!(text.contains("worker w2 127.0.0.1:9001 dead"), "{text}");
        assert!(
            text.contains("jobs submitted 2 completed 1 failed 0 cancelled 0 rejected 0 retries 1"),
            "{text}"
        );
        assert!(
            text.contains("inflight 1 queued 0 assigned 0 running 1"),
            "{text}"
        );
        assert!(text.contains("job 2 RUNNING worker w1 retries 1"), "{text}");
    }

    #[test]
    fn requeue_fails_jobs_past_their_retry_budget() {
        let now = Instant::now();
        let spec = crate::job::JobSpec {
            instance: crate::instance::InstanceSpec::parse("ring:20").unwrap(),
            k: 2,
            algorithm: crate::job::Algorithm::TwoEcss,
            enumerator: kecss::cuts::EnumeratorPolicy::Auto,
            seed: 1,
        };
        let mut table = FleetTable {
            next_id: 2,
            jobs: BTreeMap::new(),
            workers: BTreeMap::new(),
            inflight: 1,
            closed: false,
            kicked: false,
            pending_terminal: Vec::new(),
            summary: FleetSummary::default(),
        };
        table.workers.insert(
            "w1".into(),
            WorkerEntry {
                addr: "127.0.0.1:9000".into(),
                last_beat: now,
                live: false,
                dispatched: 1,
                inflight: 1,
            },
        );
        table.jobs.insert(
            1,
            FleetJob {
                spec,
                state: FleetState::Running,
                worker: Some("w1".into()),
                epoch: 1,
                retries: 0,
                not_before: now,
                submitted_at: now,
                outcome: None,
            },
        );
        // Budget 1: the first loss re-queues...
        table.requeue_worker_jobs("w1", 1, "test loss");
        assert_eq!(table.jobs[&1].state, FleetState::Queued);
        assert_eq!(table.jobs[&1].retries, 1);
        assert_eq!(table.summary.retries, 1);
        // ...the second exhausts the budget and fails the job.
        let job = table.jobs.get_mut(&1).unwrap();
        job.transition(FleetState::Assigned);
        job.worker = Some("w1".into());
        table.requeue_worker_jobs("w1", 1, "test loss again");
        assert_eq!(table.jobs[&1].state, FleetState::Failed);
        assert!(matches!(table.jobs[&1].outcome, Some(Outcome::Failed(_))));
        assert_eq!(table.inflight, 0);
        assert_eq!(table.summary.failed, 1);
        assert_eq!(table.summary.retries, 2);
    }
}
