//! Job specifications and the pure job runner.
//!
//! A job is a self-contained solver request: an instance spec, a connectivity
//! target, an algorithm, a cut-enumerator policy and a seed. [`run`] turns a
//! spec into a **byte-deterministic result payload** — it builds the
//! instance, solves it, verifies the solution exactly and serializes
//! everything into a canonical text form. Because `run` is a pure function of
//! the spec (every random choice flows from the spec's seed, and the
//! within-job executor is fixed), the payload is identical no matter when,
//! where, or concurrently with what the job executes. That is the whole
//! determinism argument for the service: the scheduler may reorder jobs
//! freely, but it never touches the bytes (DESIGN.md §9).

use crate::instance::InstanceSpec;
use graphs::{mst, EdgeSet, Graph};
use kecss::baselines::{greedy, thurimella};
use kecss::cuts::EnumeratorPolicy;
use kecss::{kecss as kecss_alg, three_ecss, two_ecss, verification};
use kecss_runtime::Executor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::fmt;

/// The algorithms a job can run (the same set the CLI's `solve` offers).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// Weighted 2-ECSS (Theorem 1.1).
    TwoEcss,
    /// Weighted k-ECSS (Theorem 1.2); uses the job's `k`.
    KEcss,
    /// Unweighted 3-ECSS (Theorem 1.3).
    ThreeEcss,
    /// Weighted 3-ECSS (Section 5.4 remark).
    ThreeEcssWeighted,
    /// Sequential greedy k-ECSS baseline.
    Greedy,
    /// Thurimella sparse-certificate baseline (unweighted 2-approximation).
    Thurimella,
    /// Minimum spanning tree only (no fault tolerance; for comparison).
    MstOnly,
}

impl Algorithm {
    /// Parses an algorithm name as used by the CLI flags and the protocol.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "2ecss" => Some(Algorithm::TwoEcss),
            "kecss" => Some(Algorithm::KEcss),
            "3ecss" => Some(Algorithm::ThreeEcss),
            "3ecss-weighted" => Some(Algorithm::ThreeEcssWeighted),
            "greedy" => Some(Algorithm::Greedy),
            "thurimella" => Some(Algorithm::Thurimella),
            "mst" => Some(Algorithm::MstOnly),
            _ => None,
        }
    }

    /// The canonical algorithm name (inverse of [`Algorithm::parse`]).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::TwoEcss => "2ecss",
            Algorithm::KEcss => "kecss",
            Algorithm::ThreeEcss => "3ecss",
            Algorithm::ThreeEcssWeighted => "3ecss-weighted",
            Algorithm::Greedy => "greedy",
            Algorithm::Thurimella => "thurimella",
            Algorithm::MstOnly => "mst",
        }
    }

    /// The algorithm's `KGW1` binary wire code (see [`crate::wire`]).
    pub fn wire_code(&self) -> u8 {
        match self {
            Algorithm::TwoEcss => 0,
            Algorithm::KEcss => 1,
            Algorithm::ThreeEcss => 2,
            Algorithm::ThreeEcssWeighted => 3,
            Algorithm::Greedy => 4,
            Algorithm::Thurimella => 5,
            Algorithm::MstOnly => 6,
        }
    }

    /// Decodes a `KGW1` wire code (inverse of [`Algorithm::wire_code`]).
    pub fn from_wire_code(code: u8) -> Option<Self> {
        Some(match code {
            0 => Algorithm::TwoEcss,
            1 => Algorithm::KEcss,
            2 => Algorithm::ThreeEcss,
            3 => Algorithm::ThreeEcssWeighted,
            4 => Algorithm::Greedy,
            5 => Algorithm::Thurimella,
            6 => Algorithm::MstOnly,
            _ => return None,
        })
    }

    /// The connectivity this algorithm actually certifies for a requested
    /// target `k` (the fixed-k algorithms ignore the request).
    pub fn certified_k(&self, k: usize) -> usize {
        match self {
            Algorithm::TwoEcss => 2,
            Algorithm::ThreeEcss | Algorithm::ThreeEcssWeighted => 3,
            Algorithm::MstOnly => 1,
            Algorithm::KEcss | Algorithm::Greedy | Algorithm::Thurimella => k,
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A fully-specified solver job: the unit of work the service schedules.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// The instance to solve.
    pub instance: InstanceSpec,
    /// The connectivity target.
    pub k: usize,
    /// The algorithm to run.
    pub algorithm: Algorithm,
    /// The cut-enumeration strategy for the algorithms that enumerate cuts.
    pub enumerator: EnumeratorPolicy,
    /// The seed; instance generation and the solver derive all randomness
    /// from it (with distinct salts).
    pub seed: u64,
}

impl JobSpec {
    /// The canonical single-line form: the argument part of a `SUBMIT` line.
    pub fn canonical(&self) -> String {
        format!(
            "{} {} {} {} {}",
            self.instance.canonical(),
            self.k,
            self.algorithm,
            self.enumerator.name(),
            self.seed
        )
    }
}

/// Salt applied to the job seed before it seeds the solver, so the solver's
/// RNG stream is independent of the one that generated the instance (the same
/// discipline as the CLI sweep driver).
pub const SOLVER_SEED_SALT: u64 = 0x0005_EED5_01CE;

/// Salt applied to the job seed before it seeds the verifier's label
/// sampling.
pub const VERIFY_SEED_SALT: u64 = 0x0007_E21F_1E55;

/// Runs `algorithm` on `graph`; returns the edge set, the charged CONGEST
/// rounds (`None` for purely sequential baselines) and a display label.
///
/// `exec` parallelizes the cut-verification phases of the algorithms that
/// have them (`kecss`, `greedy`); results are bit-identical for every
/// executor. This dispatch is shared by the CLI `solve` command and the
/// service job runner.
///
/// # Errors
///
/// Propagates the solver's [`kecss::Error`].
pub fn dispatch(
    graph: &Graph,
    algorithm: Algorithm,
    k: usize,
    seed: u64,
    exec: &Executor,
    policy: EnumeratorPolicy,
) -> kecss::error::Result<(EdgeSet, Option<u64>, &'static str)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Ok(match algorithm {
        Algorithm::TwoEcss => {
            let sol = two_ecss::solve(graph, &mut rng)?;
            (
                sol.subgraph,
                Some(sol.ledger.total()),
                "weighted 2-ECSS (Theorem 1.1)",
            )
        }
        Algorithm::KEcss => {
            let enumerator = policy.build();
            let sol = kecss_alg::solve_with_exec_enumerator(
                graph,
                k,
                &mut rng,
                exec,
                enumerator.as_ref(),
            )?;
            (
                sol.subgraph,
                Some(sol.ledger.total()),
                "weighted k-ECSS (Theorem 1.2)",
            )
        }
        Algorithm::ThreeEcss => {
            let sol = three_ecss::solve(graph, &mut rng)?;
            (
                sol.subgraph,
                Some(sol.ledger.total()),
                "unweighted 3-ECSS (Theorem 1.3)",
            )
        }
        Algorithm::ThreeEcssWeighted => {
            let sol = three_ecss::solve_weighted(graph, &mut rng)?;
            (
                sol.subgraph,
                Some(sol.ledger.total()),
                "weighted 3-ECSS (Section 5.4)",
            )
        }
        Algorithm::Greedy => {
            let enumerator = policy.build();
            let sol = greedy::k_ecss_with_enumerator(graph, k, exec, enumerator.as_ref())?;
            (sol.edges, None, "sequential greedy k-ECSS")
        }
        Algorithm::Thurimella => {
            let sol = thurimella::sparse_certificate(graph, k);
            (
                sol.edges,
                Some(sol.ledger.total()),
                "Thurimella sparse certificate [36]",
            )
        }
        Algorithm::MstOnly => {
            let _solve_span = kecss_obs::span("solve");
            let tree = {
                let _span = kecss_obs::span("mst");
                mst::kruskal(graph)
            };
            (tree, None, "minimum spanning tree")
        }
    })
}

/// Runs a job to completion and serializes its result payload.
///
/// The payload is a canonical UTF-8 text block: the echoed spec, instance and
/// solution statistics, the exact verification verdict, the solver's
/// round-accounting breakdown, and the selected edge list (one `edge u v w`
/// line per edge, in edge-set order). It is a **pure function of the spec**:
/// submitting the same spec twice — sequentially, concurrently, or on servers
/// with different thread counts — yields byte-identical payloads.
///
/// # Errors
///
/// Returns a human-readable message when the instance spec cannot be built or
/// the solver rejects the instance.
pub fn run(spec: &JobSpec, exec: &Executor) -> Result<Vec<u8>, String> {
    let _job_span = kecss_obs::span("job");
    let graph = {
        let _span = kecss_obs::span("ingest");
        spec.instance.build(spec.k, spec.seed)?
    };
    let (edges, rounds, label) = dispatch(
        &graph,
        spec.algorithm,
        spec.k,
        spec.seed ^ SOLVER_SEED_SALT,
        exec,
        spec.enumerator,
    )
    .map_err(|e| e.to_string())?;
    let target = spec.algorithm.certified_k(spec.k).max(1);
    let mut verify_rng = ChaCha8Rng::seed_from_u64(spec.seed ^ VERIFY_SEED_SALT);
    let verdict = {
        let _span = kecss_obs::span("verify");
        verification::verify_exact(&graph, &edges, target, &mut verify_rng)
    };

    // Export the per-job round accounting into the registry so the engine's
    // rounds are visible outside result payloads (observability only; the
    // payload text below is exactly what it was before instrumentation).
    if kecss_obs::enabled() {
        if let Some(solver_rounds) = rounds {
            kecss_obs::counter_with("congest_rounds_total", &[("phase", "solver")])
                .add(solver_rounds);
        }
        kecss_obs::counter_with("congest_rounds_total", &[("phase", "verify")])
            .add(verdict.ledger.total());
    }

    let mut out = String::new();
    out.push_str("# kecss job result v1\n");
    out.push_str(&format!("spec {}\n", spec.canonical()));
    out.push_str(&format!("algorithm {label}\n"));
    out.push_str(&format!(
        "instance n={} m={} weight={}\n",
        graph.n(),
        graph.m(),
        graph.total_weight()
    ));
    out.push_str(&format!(
        "solution edges={} weight={}\n",
        edges.len(),
        graph.weight_of(&edges)
    ));
    out.push_str(&format!(
        "verified k={target} {}\n",
        if verdict.accepted { "yes" } else { "NO" }
    ));
    out.push_str(&format!(
        "rounds solver={} verify={}\n",
        rounds.map_or_else(|| "-".to_string(), |r| r.to_string()),
        verdict.ledger.total()
    ));
    for (phase, charged) in verdict.ledger.breakdown() {
        out.push_str(&format!("phase {phase} {charged}\n"));
    }
    for id in edges.iter() {
        let e = graph.edge(id);
        out.push_str(&format!("edge {} {} {}\n", e.u, e.v, e.weight));
    }
    Ok(out.into_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::Family;

    fn ring_spec(seed: u64) -> JobSpec {
        JobSpec {
            instance: InstanceSpec::Family {
                family: Family::RingOfCliques,
                n: 20,
                max_weight: 1,
            },
            k: 2,
            algorithm: Algorithm::TwoEcss,
            enumerator: EnumeratorPolicy::Auto,
            seed,
        }
    }

    #[test]
    fn algorithm_names_round_trip() {
        for algorithm in [
            Algorithm::TwoEcss,
            Algorithm::KEcss,
            Algorithm::ThreeEcss,
            Algorithm::ThreeEcssWeighted,
            Algorithm::Greedy,
            Algorithm::Thurimella,
            Algorithm::MstOnly,
        ] {
            assert_eq!(Algorithm::parse(algorithm.name()), Some(algorithm));
            assert_eq!(
                Algorithm::from_wire_code(algorithm.wire_code()),
                Some(algorithm)
            );
        }
        assert_eq!(Algorithm::parse("magic"), None);
        assert_eq!(Algorithm::from_wire_code(7), None);
    }

    #[test]
    fn payloads_are_byte_deterministic_and_verified() {
        let a = run(&ring_spec(5), &Executor::Sequential).unwrap();
        let b = run(&ring_spec(5), &Executor::from_threads(4)).unwrap();
        assert_eq!(a, b, "payloads must not depend on the executor");
        let text = String::from_utf8(a).unwrap();
        assert!(text.contains("verified k=2 yes"), "{text}");
        assert!(text.contains("rounds solver="), "{text}");
        assert!(text.lines().filter(|l| l.starts_with("edge ")).count() > 0);
        // A different seed gives a different instance, hence different bytes.
        let c = run(&ring_spec(6), &Executor::Sequential).unwrap();
        assert_ne!(c, b);
    }

    #[test]
    fn inline_instances_solve_end_to_end() {
        let spec = JobSpec {
            instance: InstanceSpec::parse("inline:4:0-1-1,1-2-1,2-3-1,3-0-1,0-2-5").unwrap(),
            k: 2,
            algorithm: Algorithm::KEcss,
            enumerator: EnumeratorPolicy::Auto,
            seed: 3,
        };
        let text = String::from_utf8(run(&spec, &Executor::Sequential).unwrap()).unwrap();
        assert!(text.contains("verified k=2 yes"), "{text}");
    }

    #[test]
    fn failing_jobs_report_the_solver_error() {
        // A cycle is only 2-edge-connected; asking for k = 3 must fail with
        // the solver's message, not a panic.
        let spec = JobSpec {
            instance: InstanceSpec::parse("inline:4:0-1-1,1-2-1,2-3-1,3-0-1").unwrap(),
            k: 3,
            algorithm: Algorithm::KEcss,
            enumerator: EnumeratorPolicy::Auto,
            seed: 1,
        };
        let err = run(&spec, &Executor::Sequential).unwrap_err();
        assert!(err.contains("2-edge-connected"), "{err}");
    }

    #[test]
    fn certified_k_pins_the_fixed_target_algorithms() {
        assert_eq!(Algorithm::TwoEcss.certified_k(5), 2);
        assert_eq!(Algorithm::ThreeEcss.certified_k(5), 3);
        assert_eq!(Algorithm::MstOnly.certified_k(5), 1);
        assert_eq!(Algorithm::KEcss.certified_k(5), 5);
    }
}
