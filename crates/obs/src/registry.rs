//! The metric registry: named counters, gauges and power-of-two histograms,
//! plus the Prometheus-style text exposition behind the `METRICS` wire verb.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of histogram buckets: one per bit length (0..=64).
///
/// Bucket `0` holds the value `0`; bucket `i >= 1` holds values in
/// `[2^(i-1), 2^i - 1]` — i.e. values whose bit length is `i`.
pub const BUCKETS: usize = 65;

/// A monotonically increasing `u64` metric.
#[derive(Debug, Default)]
pub struct Counter {
    cell: AtomicU64,
}

impl Counter {
    /// Adds `1`.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (a no-op while recording is disabled).
    #[inline]
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Reads the current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A settable signed metric (queue depths, in-flight totals).
#[derive(Debug, Default)]
pub struct Gauge {
    cell: AtomicI64,
}

impl Gauge {
    /// Stores an absolute value (a no-op while recording is disabled).
    #[inline]
    pub fn set(&self, v: i64) {
        if crate::enabled() {
            self.cell.store(v, Ordering::Relaxed);
        }
    }

    /// Adds a signed delta (a no-op while recording is disabled).
    #[inline]
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.cell.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Subtracts a signed delta (a no-op while recording is disabled).
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.add(-delta);
    }

    /// Reads the current value.
    #[must_use]
    pub fn get(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// A histogram with power-of-two buckets over `u64` observations.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
    count: AtomicU64,
}

/// A point-in-time copy of a [`Histogram`]'s state.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`BUCKETS`] for the layout).
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed values (wrapping on overflow).
    pub sum: u64,
    /// Total number of observations.
    pub count: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
            count: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Maps a value to its bucket: the value's bit length, so `0 -> 0`,
    /// `1 -> 1`, `2..=3 -> 2`, ..., `u64::MAX -> 64`.
    #[must_use]
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// The largest value bucket `i` admits (`u64::MAX` for the last bucket).
    #[must_use]
    pub fn bucket_upper_bound(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }

    /// Records one observation (a no-op while recording is disabled).
    #[inline]
    pub fn record(&self, v: u64) {
        if crate::enabled() {
            self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Copies the current state out.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
        }
    }
}

/// A fully qualified metric identity: sanitized name + sorted label pairs.
type Key = (String, Vec<(String, String)>);

/// The metric table. Most code uses the process-global instance via
/// [`Registry::global`] (or the crate-level shorthands); tests that need
/// isolation can build their own with [`Registry::new`].
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<Key, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<Key, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<Key, Arc<Histogram>>>,
}

/// Rewrites `raw` into the exposition-format name charset
/// (`[a-zA-Z0-9_:]`, not starting with a digit); invalid bytes become `_`.
fn sanitize_name(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for (i, c) in raw.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        out.push(if ok { c } else { '_' });
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escapes a label value for the text exposition: `\` -> `\\`, `"` -> `\"`,
/// newline -> `\n`.
fn escape_label_value(raw: &str) -> String {
    let mut out = String::with_capacity(raw.len());
    for c in raw.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Builds the canonical key: sanitized name, labels sanitized/escaped and
/// sorted by label name so label order at the call site never matters.
fn make_key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut owned: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (sanitize_name(k), escape_label_value(v)))
        .collect();
    owned.sort();
    (sanitize_name(name), owned)
}

/// Formats the `{k="v",...}` suffix (empty string when there are no labels).
fn render_labels(labels: &[(String, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
    format!("{{{}}}", body.join(","))
}

fn get_or_insert<T: Default>(
    map: &RwLock<BTreeMap<Key, Arc<T>>>,
    name: &str,
    labels: &[(&str, &str)],
) -> Arc<T> {
    let key = make_key(name, labels);
    if let Some(found) = map.read().expect("registry lock").get(&key) {
        return Arc::clone(found);
    }
    Arc::clone(
        map.write()
            .expect("registry lock")
            .entry(key)
            .or_insert_with(|| Arc::new(T::default())),
    )
}

impl Registry {
    /// Builds an empty, private registry (tests; the shared one is
    /// [`Registry::global`]).
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-global registry every instrumented crate records into.
    #[must_use]
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::default)
    }

    /// Returns the counter `name` (no labels), registering it on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counter_with(name, &[])
    }

    /// Returns the counter `name{labels}`, registering it on first use.
    /// Label order at the call site is irrelevant; values are escaped.
    #[must_use]
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        get_or_insert(&self.counters, name, labels)
    }

    /// Returns the gauge `name` (no labels), registering it on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauge_with(name, &[])
    }

    /// Returns the gauge `name{labels}`, registering it on first use.
    #[must_use]
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name, labels)
    }

    /// Returns the histogram `name` (no labels), registering it on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &[])
    }

    /// Returns the histogram `name{labels}`, registering it on first use.
    #[must_use]
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name, labels)
    }

    /// Renders the whole registry as a Prometheus-style text exposition.
    ///
    /// The output is deterministic for identical state: metric families are
    /// sorted by name, series within a family by label set, and one `# TYPE`
    /// line precedes each family. Histograms render cumulative
    /// `_bucket{le=...}` series (power-of-two upper bounds up to the highest
    /// non-empty bucket, then `+Inf`) plus `_sum` and `_count`.
    #[must_use]
    pub fn render(&self) -> String {
        // (family name, kind rank) -> rendered series lines. The kind rank
        // only breaks ties if one name was (incorrectly) used for two kinds.
        let mut families: BTreeMap<(String, u8), Vec<String>> = BTreeMap::new();

        for (key, c) in self.counters.read().expect("registry lock").iter() {
            let line = format!("{}{} {}", key.0, render_labels(&key.1), c.get());
            families.entry((key.0.clone(), 0)).or_default().push(line);
        }
        for (key, g) in self.gauges.read().expect("registry lock").iter() {
            let line = format!("{}{} {}", key.0, render_labels(&key.1), g.get());
            families.entry((key.0.clone(), 1)).or_default().push(line);
        }
        for (key, h) in self.histograms.read().expect("registry lock").iter() {
            let snap = h.snapshot();
            let lines = families.entry((key.0.clone(), 2)).or_default();
            let highest = snap
                .buckets
                .iter()
                .rposition(|&n| n != 0)
                .map_or(0, |i| i.min(BUCKETS - 2));
            let mut cumulative = 0u64;
            for (i, &n) in snap.buckets.iter().enumerate().take(highest + 1) {
                cumulative += n;
                let mut with_le = key.1.clone();
                with_le.push(("le".into(), Histogram::bucket_upper_bound(i).to_string()));
                with_le.sort_by(|a, b| a.0.cmp(&b.0));
                lines.push(format!(
                    "{}_bucket{} {}",
                    key.0,
                    render_labels(&with_le),
                    cumulative
                ));
            }
            let mut with_inf = key.1.clone();
            with_inf.push(("le".into(), "+Inf".into()));
            with_inf.sort_by(|a, b| a.0.cmp(&b.0));
            lines.push(format!(
                "{}_bucket{} {}",
                key.0,
                render_labels(&with_inf),
                snap.count
            ));
            lines.push(format!(
                "{}_sum{} {}",
                key.0,
                render_labels(&key.1),
                snap.sum
            ));
            lines.push(format!(
                "{}_count{} {}",
                key.0,
                render_labels(&key.1),
                snap.count
            ));
        }

        let mut out = String::new();
        for ((name, kind), lines) in &families {
            let kind_word = ["counter", "gauge", "histogram"][*kind as usize];
            let _ = writeln!(out, "# TYPE {name} {kind_word}");
            for line in lines {
                out.push_str(line);
                out.push('\n');
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        // The satellite's required edge cases: 0, 1, 2^n - 1, 2^n, u64::MAX.
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        for n in 1..=63u32 {
            let pow = 1u64 << n;
            assert_eq!(Histogram::bucket_index(pow - 1), n as usize);
            assert_eq!(Histogram::bucket_index(pow), n as usize + 1);
        }
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_index(u64::MAX - 1), 64);
    }

    #[test]
    fn bucket_upper_bounds_partition_the_domain() {
        assert_eq!(Histogram::bucket_upper_bound(0), 0);
        assert_eq!(Histogram::bucket_upper_bound(1), 1);
        assert_eq!(Histogram::bucket_upper_bound(2), 3);
        assert_eq!(Histogram::bucket_upper_bound(63), (1u64 << 63) - 1);
        assert_eq!(Histogram::bucket_upper_bound(64), u64::MAX);
        for i in 0..BUCKETS {
            assert_eq!(Histogram::bucket_index(Histogram::bucket_upper_bound(i)), i);
            if i > 0 {
                let lower = Histogram::bucket_upper_bound(i - 1).wrapping_add(1);
                assert_eq!(Histogram::bucket_index(lower), i);
            }
        }
    }

    #[test]
    fn histogram_records_into_expected_buckets() {
        let _serial = crate::test_guard();
        let r = Registry::new();
        let h = r.histogram("edges_ns");
        for v in [0u64, 1, 3, 4, u64::MAX] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(
            snap.sum,
            0u64.wrapping_add(1 + 3 + 4).wrapping_add(u64::MAX)
        );
        assert_eq!(snap.buckets[0], 1);
        assert_eq!(snap.buckets[1], 1);
        assert_eq!(snap.buckets[2], 1);
        assert_eq!(snap.buckets[3], 1);
        assert_eq!(snap.buckets[64], 1);
    }

    #[test]
    fn counter_and_gauge_roundtrip() {
        let _serial = crate::test_guard();
        let r = Registry::new();
        let c = r.counter_with("reqs_total", &[("verb", "SUBMIT")]);
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Same name+labels in any order resolves to the same cell.
        let again = r.counter_with("reqs_total", &[("verb", "SUBMIT")]);
        assert_eq!(again.get(), 5);

        let g = r.gauge("depth");
        g.set(7);
        g.add(2);
        g.sub(4);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn render_is_sorted_and_stable() {
        let _serial = crate::test_guard();
        let r = Registry::new();
        r.counter_with("zz_total", &[("b", "2")]).inc();
        r.counter_with("zz_total", &[("a", "1")]).inc();
        r.counter("aa_total").add(3);
        r.gauge("mm_depth").set(-2);
        let first = r.render();
        let second = r.render();
        assert_eq!(first, second, "identical state must render identically");
        let lines: Vec<&str> = first.lines().collect();
        assert_eq!(
            lines,
            vec![
                "# TYPE aa_total counter",
                "aa_total 3",
                "# TYPE mm_depth gauge",
                "mm_depth -2",
                "# TYPE zz_total counter",
                "zz_total{a=\"1\"} 1",
                "zz_total{b=\"2\"} 1",
            ]
        );
    }

    #[test]
    fn render_escapes_label_values_and_sanitizes_names() {
        let _serial = crate::test_guard();
        let r = Registry::new();
        r.counter_with("weird name-total", &[("path", "a\\b\"c\nd")])
            .inc();
        let text = r.render();
        assert!(text.contains("# TYPE weird_name_total counter"));
        assert!(
            text.contains("weird_name_total{path=\"a\\\\b\\\"c\\nd\"} 1"),
            "escaped exposition line missing from:\n{text}"
        );
        // The escaped form stays one physical line.
        assert_eq!(text.lines().count(), 2);
    }

    #[test]
    fn render_histogram_exposition() {
        let _serial = crate::test_guard();
        let r = Registry::new();
        let h = r.histogram_with("lat_ns", &[("op", "submit")]);
        h.record(0);
        h.record(2);
        h.record(3);
        h.record(9);
        let text = r.render();
        let expected = "\
# TYPE lat_ns histogram
lat_ns_bucket{le=\"0\",op=\"submit\"} 1
lat_ns_bucket{le=\"1\",op=\"submit\"} 1
lat_ns_bucket{le=\"3\",op=\"submit\"} 3
lat_ns_bucket{le=\"7\",op=\"submit\"} 3
lat_ns_bucket{le=\"15\",op=\"submit\"} 4
lat_ns_bucket{le=\"+Inf\",op=\"submit\"} 4
lat_ns_sum{op=\"submit\"} 14
lat_ns_count{op=\"submit\"} 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn disabled_recording_is_a_no_op() {
        let _serial = crate::test_guard();
        let r = Registry::new();
        let c = r.counter("toggled_total");
        let h = r.histogram("toggled_ns");
        let was = crate::set_enabled(false);
        c.inc();
        h.record(10);
        crate::set_enabled(was);
        if was {
            assert_eq!(c.get(), 0);
            assert_eq!(h.snapshot().count, 0);
            c.inc();
            assert_eq!(c.get(), 1);
        }
    }
}
