//! RAII phase timers on a thread-local span stack.
//!
//! A [`span`] pushes its name onto the current thread's stack and starts a
//! monotonic timer; dropping the guard pops the stack, records the duration
//! into the global `span_duration_ns{span="<path>"}` histogram, and — when a
//! trace sink is installed — streams one JSONL line describing the span.
//!
//! Spans are observational only: they never feed back into the computation
//! they time, so enabling or disabling them cannot change any result bytes.

use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// The active span names on this thread, outermost first.
    static SPAN_STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// The nesting depth of the current thread's span stack (0 outside spans).
#[must_use]
pub fn span_depth() -> usize {
    SPAN_STACK.with(|stack| stack.borrow().len())
}

/// An active span; ends (and records) when dropped.
///
/// Obtain one from [`span`]. The guard is inert when recording is disabled,
/// costing only the `enabled()` check.
#[must_use = "a span measures the scope it lives in; bind it to a guard variable"]
pub struct SpanGuard {
    /// `Some` only when the span actually pushed onto the stack.
    armed: Option<Armed>,
}

struct Armed {
    /// Slash-joined path from the stack root, e.g. `solve/augment/enumerate`.
    path: String,
    depth: usize,
    start: Instant,
}

/// Opens a span named `name` nested under the thread's current span (if any).
pub fn span(name: &str) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard { armed: None };
    }
    let (path, depth) = SPAN_STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        stack.push(name.to_string());
        (stack.join("/"), stack.len())
    });
    SpanGuard {
        armed: Some(Armed {
            path,
            depth,
            start: Instant::now(),
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(armed) = self.armed.take() else {
            return;
        };
        let duration_ns = u64::try_from(armed.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        SPAN_STACK.with(|stack| {
            stack.borrow_mut().pop();
        });
        crate::histogram_with("span_duration_ns", &[("span", &armed.path)]).record(duration_ns);
        crate::trace::emit_span(&armed.path, armed.depth, armed.start, duration_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_unwind() {
        let _serial = crate::test_guard();
        if !crate::enabled() {
            return; // the process started with recording compiled out
        }
        assert_eq!(span_depth(), 0);
        {
            let _outer = span("outer");
            assert_eq!(span_depth(), 1);
            {
                let _inner = span("inner");
                assert_eq!(span_depth(), 2);
            }
            assert_eq!(span_depth(), 1);
        }
        assert_eq!(span_depth(), 0);
        let h = crate::histogram_with("span_duration_ns", &[("span", "outer/inner")]);
        assert!(h.snapshot().count >= 1, "nested span must record its path");
    }

    #[test]
    fn disabled_spans_do_not_touch_the_stack() {
        let _serial = crate::test_guard();
        let was = crate::set_enabled(false);
        {
            let _guard = span("ghost");
            assert_eq!(span_depth(), 0);
        }
        crate::set_enabled(was);
    }
}
