//! `kecss_obs` — std-only observability for the k-ECSS workspace.
//!
//! The service and the solvers were operationally blind: no counters, no
//! latency history, no queue-depth gauge — the only introspection was the
//! per-job `RoundLedger` buried inside result payloads. This crate is the
//! shared layer every other crate instruments itself with (DESIGN.md §11):
//!
//! * [`Registry`] — a process-global table of named **counters**, **gauges**
//!   and power-of-two-bucket **histograms**, rendered on demand as a
//!   Prometheus-style text exposition (the `METRICS` wire verb).
//! * [`span`] — RAII phase timers kept on a thread-local span stack; a
//!   finished span records its duration into a `span_duration_ns` histogram
//!   and, when a trace sink is installed, streams one JSONL line.
//! * [`install_trace_sink`] — a structured event sink (`kecss solve --trace`)
//!   emitting spans and ad-hoc [`event`]s as JSON Lines.
//!
//! # Out-of-band by construction
//!
//! Nothing in this crate feeds back into solver state: recording is atomic
//! stores on the side, spans only read the monotonic clock, and the sink only
//! ever *writes*. Result payloads and protocol replies are byte-identical
//! with instrumentation enabled, disabled ([`set_enabled`]) or compiled out
//! (the `noop` feature) — `tests/determinism.rs` proves it.
//!
//! The crate is std-only (atomics + `Instant`), matching the workspace's
//! no-crates.io discipline.
//!
//! # Example
//!
//! ```
//! use kecss_obs::Registry;
//!
//! let requests = kecss_obs::counter_with("doc_requests_total", &[("verb", "SUBMIT")]);
//! requests.inc();
//! let latency = kecss_obs::histogram("doc_latency_ns");
//! latency.record(1_500);
//! {
//!     let _guard = kecss_obs::span("doc_phase");
//!     // ... timed work ...
//! }
//! let text = Registry::global().render();
//! assert!(text.contains("doc_requests_total{verb=\"SUBMIT\"} 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod registry;
mod span;
mod trace;

pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, Registry, BUCKETS};
pub use span::{span, span_depth, SpanGuard};
pub use trace::{clear_trace_sink, event, install_trace_sink, trace_active};

use std::sync::atomic::{AtomicBool, Ordering};

/// Serializes unit tests that flip or depend on the process-wide toggle.
#[cfg(test)]
pub(crate) fn test_guard() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Process-wide recording switch (default: enabled). Flipping it never
/// changes any payload bytes — only whether the side tables move.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Returns whether recording is active. With the `noop` feature this is a
/// constant `false` and the optimizer removes every recording path.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    if cfg!(feature = "noop") {
        return false;
    }
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off process-wide (counters, gauges, histograms,
/// spans and the trace sink all honour it). Returns the previous value.
pub fn set_enabled(on: bool) -> bool {
    ENABLED.swap(on, Ordering::Relaxed)
}

/// Shorthand for [`Registry::global`]`.counter(name)`.
#[must_use]
pub fn counter(name: &str) -> std::sync::Arc<Counter> {
    Registry::global().counter(name)
}

/// Shorthand for [`Registry::global`]`.counter_with(name, labels)`.
#[must_use]
pub fn counter_with(name: &str, labels: &[(&str, &str)]) -> std::sync::Arc<Counter> {
    Registry::global().counter_with(name, labels)
}

/// Shorthand for [`Registry::global`]`.gauge(name)`.
#[must_use]
pub fn gauge(name: &str) -> std::sync::Arc<Gauge> {
    Registry::global().gauge(name)
}

/// Shorthand for [`Registry::global`]`.gauge_with(name, labels)`.
#[must_use]
pub fn gauge_with(name: &str, labels: &[(&str, &str)]) -> std::sync::Arc<Gauge> {
    Registry::global().gauge_with(name, labels)
}

/// Shorthand for [`Registry::global`]`.histogram(name)`.
#[must_use]
pub fn histogram(name: &str) -> std::sync::Arc<Histogram> {
    Registry::global().histogram(name)
}

/// Shorthand for [`Registry::global`]`.histogram_with(name, labels)`.
#[must_use]
pub fn histogram_with(name: &str, labels: &[(&str, &str)]) -> std::sync::Arc<Histogram> {
    Registry::global().histogram_with(name, labels)
}
