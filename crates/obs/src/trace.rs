//! The structured event sink: spans and ad-hoc events as JSON Lines.
//!
//! One sink is installed process-wide ([`install_trace_sink`]); until then
//! emitting is free apart from one relaxed atomic load. Each record is a
//! single JSON object per line (the schema is documented in DESIGN.md §11):
//!
//! ```text
//! {"type":"span","path":"solve/mst","depth":2,"thread":"main","start_us":12,"dur_ns":3400}
//! {"type":"event","name":"enum_fallback","thread":"w0","at_us":99,"fields":{"to":"contract"}}
//! ```
//!
//! Timestamps are microseconds since the first record of the process (a
//! monotonic epoch), so traces never depend on wall-clock time.

use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Cheap "is a sink installed" flag so uninstrumented runs skip the mutex.
static SINK_ACTIVE: AtomicBool = AtomicBool::new(false);

fn sink() -> &'static Mutex<Option<Box<dyn Write + Send>>> {
    static SINK: OnceLock<Mutex<Option<Box<dyn Write + Send>>>> = OnceLock::new();
    SINK.get_or_init(|| Mutex::new(None))
}

/// The process epoch traces are timestamped against.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Installs `writer` as the process-wide trace sink, replacing (and
/// flushing) any previous one. Spans and events stream to it as JSONL.
pub fn install_trace_sink(writer: Box<dyn Write + Send>) {
    let mut slot = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(mut old) = slot.replace(writer) {
        let _ = old.flush();
    }
    SINK_ACTIVE.store(true, Ordering::Release);
}

/// Removes the current sink (flushing it). Subsequent spans stop streaming.
pub fn clear_trace_sink() {
    let mut slot = sink().lock().unwrap_or_else(PoisonError::into_inner);
    SINK_ACTIVE.store(false, Ordering::Release);
    if let Some(mut old) = slot.take() {
        let _ = old.flush();
    }
}

/// Whether a sink is installed and recording is enabled.
#[must_use]
pub fn trace_active() -> bool {
    crate::enabled() && SINK_ACTIVE.load(Ordering::Acquire)
}

/// Escapes a string for inclusion in a JSON string literal.
fn push_json_escaped(out: &mut String, raw: &str) {
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn thread_name() -> String {
    std::thread::current().name().map_or_else(
        || format!("{:?}", std::thread::current().id()),
        String::from,
    )
}

fn write_line(line: &str) {
    let mut slot = sink().lock().unwrap_or_else(PoisonError::into_inner);
    if let Some(writer) = slot.as_mut() {
        let failed = writer.write_all(line.as_bytes()).is_err() || writer.write_all(b"\n").is_err();
        if failed {
            // A broken sink (closed pipe, full disk) must never take the
            // solver down: drop it and stop streaming.
            *slot = None;
            SINK_ACTIVE.store(false, Ordering::Release);
        }
    }
}

/// Streams one finished span (called by [`crate::SpanGuard`]'s drop).
pub(crate) fn emit_span(path: &str, depth: usize, start: Instant, duration_ns: u64) {
    if !trace_active() {
        return;
    }
    let start_us = start.saturating_duration_since(epoch()).as_micros();
    let mut line = String::with_capacity(96);
    line.push_str("{\"type\":\"span\",\"path\":\"");
    push_json_escaped(&mut line, path);
    line.push_str("\",\"depth\":");
    line.push_str(&depth.to_string());
    line.push_str(",\"thread\":\"");
    push_json_escaped(&mut line, &thread_name());
    line.push_str("\",\"start_us\":");
    line.push_str(&start_us.to_string());
    line.push_str(",\"dur_ns\":");
    line.push_str(&duration_ns.to_string());
    line.push('}');
    write_line(&line);
}

/// Streams one ad-hoc event with string fields, timestamped now.
pub fn event(name: &str, fields: &[(&str, &str)]) {
    if !trace_active() {
        return;
    }
    let at_us = Instant::now()
        .saturating_duration_since(epoch())
        .as_micros();
    let mut line = String::with_capacity(96);
    line.push_str("{\"type\":\"event\",\"name\":\"");
    push_json_escaped(&mut line, name);
    line.push_str("\",\"thread\":\"");
    push_json_escaped(&mut line, &thread_name());
    line.push_str("\",\"at_us\":");
    line.push_str(&at_us.to_string());
    line.push_str(",\"fields\":{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            line.push(',');
        }
        line.push('"');
        push_json_escaped(&mut line, k);
        line.push_str("\":\"");
        push_json_escaped(&mut line, v);
        line.push('"');
    }
    line.push_str("}}");
    write_line(&line);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    /// A Vec<u8> sink shareable with the test body.
    #[derive(Clone, Default)]
    struct Buffer(Arc<Mutex<Vec<u8>>>);

    impl Write for Buffer {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().unwrap().extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn spans_and_events_stream_as_jsonl() {
        let _serial = crate::test_guard();
        if !crate::enabled() {
            return;
        }
        let buffer = Buffer::default();
        install_trace_sink(Box::new(buffer.clone()));
        {
            let _outer = crate::span("trace_outer");
            let _inner = crate::span("trace_inner");
            event("note", &[("key", "va\"lue")]);
        }
        clear_trace_sink();
        let bytes = buffer.0.lock().unwrap().clone();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "event + two span records:\n{text}");
        assert!(lines[0].contains("\"type\":\"event\""));
        assert!(lines[0].contains("\"key\":\"va\\\"lue\""));
        assert!(lines[1].contains("\"path\":\"trace_outer/trace_inner\""));
        assert!(lines[1].contains("\"depth\":2"));
        assert!(lines[2].contains("\"path\":\"trace_outer\""));
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn no_sink_means_no_panic() {
        let _serial = crate::test_guard();
        clear_trace_sink();
        event("dropped", &[]);
        let _span = crate::span("unsunk");
    }
}
