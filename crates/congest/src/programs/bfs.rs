//! Distributed BFS-tree construction (the `O(D)`-round preliminary of
//! Section 1.3 of the paper).

use crate::message::{Incoming, Message};
use crate::network::Outcome;
use crate::node::{NodeContext, NodeProgram, Outgoing, StepResult};
use graphs::{Graph, NodeId};

/// Per-node program that builds a BFS tree rooted at a globally known vertex.
///
/// Every vertex learns its BFS parent and hop distance from the root. The
/// construction takes `ecc(root) + O(1)` rounds: the root floods a wave, and
/// every vertex joins the tree the first time the wave reaches it.
///
/// # Example
///
/// ```
/// use graphs::generators;
/// use congest::{Network, programs::bfs::DistributedBfs};
///
/// let g = generators::path(5, 1);
/// let net = Network::new(&g);
/// let outcome = net.run(DistributedBfs::programs(&g, 0), 50).unwrap();
/// let (parents, dists) = DistributedBfs::extract(&outcome);
/// assert_eq!(dists, vec![0, 1, 2, 3, 4]);
/// assert_eq!(parents[4], Some(3));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistributedBfs {
    root: NodeId,
    /// Distance from the root once joined.
    dist: Option<u64>,
    /// BFS parent once joined (`None` for the root).
    parent: Option<NodeId>,
}

impl DistributedBfs {
    /// Creates the program vector for a graph: one program per vertex, all
    /// knowing the root's id (the paper elects the minimum-id vertex; any
    /// globally known rule works).
    pub fn programs(graph: &Graph, root: NodeId) -> Vec<Self> {
        assert!(root < graph.n(), "root out of range");
        (0..graph.n())
            .map(|_| DistributedBfs {
                root,
                dist: None,
                parent: None,
            })
            .collect()
    }

    /// The BFS parent of this vertex (`None` for the root or if unreached).
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }

    /// The BFS distance of this vertex, if reached.
    pub fn dist(&self) -> Option<u64> {
        self.dist
    }

    /// Convenience: collects `(parents, distances)` from a finished run.
    ///
    /// # Panics
    ///
    /// Panics if some vertex was never reached (the graph was disconnected).
    pub fn extract(outcome: &Outcome<Self>) -> (Vec<Option<NodeId>>, Vec<u64>) {
        let parents = outcome.nodes.iter().map(|p| p.parent).collect();
        let dists = outcome
            .nodes
            .iter()
            .map(|p| {
                p.dist
                    .expect("BFS did not reach every vertex; is the graph connected?")
            })
            .collect();
        (parents, dists)
    }

    fn join_and_forward(
        &mut self,
        ctx: &NodeContext,
        dist: u64,
        parent: Option<NodeId>,
    ) -> StepResult {
        self.dist = Some(dist);
        self.parent = parent;
        let out = ctx
            .neighbors
            .iter()
            .filter(|&&(v, _, _)| Some(v) != parent)
            .map(|&(v, _, _)| Outgoing::new(v, Message::new([dist + 1])))
            .collect();
        StepResult::send_and_halt(out)
    }
}

impl NodeProgram for DistributedBfs {
    fn init(&mut self, ctx: &NodeContext) -> StepResult {
        if ctx.id == self.root {
            self.join_and_forward(ctx, 0, None)
        } else {
            StepResult::idle()
        }
    }

    fn step(&mut self, ctx: &NodeContext, _round: u64, inbox: &[Incoming]) -> StepResult {
        if self.dist.is_some() {
            // Already joined; ignore late wavefront duplicates.
            return StepResult::halt();
        }
        // Join via the smallest-id sender among this round's offers (all offers
        // in the same round carry the same distance because the wave is
        // synchronous).
        let Some(best) = inbox.iter().min_by_key(|m| m.from) else {
            return StepResult::idle();
        };
        let dist = best.message.word(0).expect("BFS offer carries a distance");
        self.join_and_forward(ctx, dist, Some(best.from))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use graphs::{bfs as seq_bfs, generators};

    #[test]
    fn bfs_on_path_matches_sequential() {
        let g = generators::path(7, 1);
        let net = Network::new(&g);
        let outcome = net.run(DistributedBfs::programs(&g, 0), 100).unwrap();
        let (_, dists) = DistributedBfs::extract(&outcome);
        let reference = seq_bfs::bfs(&g, 0);
        for (v, &d) in dists.iter().enumerate() {
            assert_eq!(d as usize, reference.dist[v]);
        }
        // Construction takes ecc(root) + O(1) rounds.
        assert!(outcome.report.rounds as usize <= reference.eccentricity() + 2);
    }

    #[test]
    fn bfs_rounds_scale_with_diameter_not_n() {
        // A 4x25 torus-like grid: n = 100 but diameter ~ 14.
        let g = generators::grid(4, 25, 1);
        let d = seq_bfs::diameter(&g).unwrap();
        let net = Network::new(&g);
        let outcome = net.run(DistributedBfs::programs(&g, 0), 10_000).unwrap();
        assert!(outcome.report.rounds as usize <= d + 2);
    }

    #[test]
    fn bfs_parents_form_a_tree() {
        let g = generators::torus(4, 4, 1);
        let net = Network::new(&g);
        let outcome = net.run(DistributedBfs::programs(&g, 3), 100).unwrap();
        let (parents, dists) = DistributedBfs::extract(&outcome);
        assert_eq!(parents.iter().filter(|p| p.is_none()).count(), 1);
        for v in 0..g.n() {
            if let Some(p) = parents[v] {
                assert_eq!(dists[v], dists[p] + 1, "parent of {v} must be one level up");
            } else {
                assert_eq!(v, 3);
            }
        }
    }

    #[test]
    fn bfs_distances_agree_for_every_root_on_random_graph() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
        let g = generators::random_k_edge_connected(24, 2, 20, &mut rng);
        for root in [0, 5, 23] {
            let net = Network::new(&g);
            let outcome = net.run(DistributedBfs::programs(&g, root), 1000).unwrap();
            let (_, dists) = DistributedBfs::extract(&outcome);
            let reference = seq_bfs::bfs(&g, root);
            for (v, &d) in dists.iter().enumerate() {
                assert_eq!(d as usize, reference.dist[v]);
            }
        }
    }
}
