//! Distributed sampling of a random b-bit circulation
//! (Pritchard–Thurimella cycle-space sampling, Lemma 5.5 of the paper).
//!
//! Given a spanning tree `T` of a subgraph `H`, every non-tree edge of `H`
//! draws an independent random `b`-bit label, and every tree edge receives the
//! XOR of the labels of the non-tree edges whose fundamental cycle contains
//! it. The paper computes these labels in `O(depth(T))` rounds with a single
//! leaf-to-root scan; this module is the genuine message-passing version:
//!
//! * **round 1** — for each non-tree edge of `H`, the endpoint with the
//!   smaller id draws the label and sends it across the edge;
//! * **rounds 2…depth+2** — every vertex, once it has heard from all its tree
//!   children, sends to its parent the XOR of (a) the labels of its incident
//!   non-tree edges and (b) the values received from its children. That value
//!   is exactly the label of its parent tree edge.
//!
//! The per-edge labels let any pair of vertices decide "is `{e, f}` a cut
//! pair?" locally (Property 5.1), which is the primitive behind the
//! unweighted 3-ECSS algorithm of Section 5.

use crate::message::{Incoming, Message};
use crate::network::Outcome;
use crate::node::{NodeContext, NodeProgram, Outgoing, StepResult};
use graphs::{EdgeId, EdgeSet, Graph, NodeId, RootedTree};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Per-node program computing the circulation labels of its incident edges.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CirculationLabeling {
    /// Tree parent (`None` for the root).
    parent: Option<NodeId>,
    /// Number of tree children still to hear from.
    pending_children: usize,
    /// Tree children.
    children: Vec<NodeId>,
    /// Non-tree H-edges incident to this vertex: `(edge, other endpoint,
    /// label if already known)`. The endpoint with the smaller vertex id owns
    /// the label and sends it in round 1.
    non_tree: Vec<(EdgeId, NodeId, Option<u64>)>,
    /// The label of the tree edge towards the parent, once computed.
    parent_edge: Option<EdgeId>,
    parent_label: Option<u64>,
    /// Accumulated XOR (incident non-tree labels + children contributions).
    acc: u64,
    sent_up: bool,
    label_mask: u64,
    seed: u64,
}

impl CirculationLabeling {
    /// Builds the program vector for sampling a `bits`-bit circulation of the
    /// subgraph `h` of `graph`, over the rooted spanning tree `tree` of `h`.
    ///
    /// `master_seed` derives each vertex's private randomness, so runs are
    /// reproducible.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64, or if `tree` does not span
    /// the graph.
    pub fn programs(
        graph: &Graph,
        h: &EdgeSet,
        tree: &RootedTree,
        bits: u32,
        master_seed: u64,
    ) -> Vec<Self> {
        assert!(
            (1..=64).contains(&bits),
            "label width must be between 1 and 64 bits"
        );
        assert_eq!(tree.len(), graph.n(), "the tree must span the graph");
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let tree_edges = tree.edge_set(graph);
        (0..graph.n())
            .map(|v| {
                let non_tree = graph
                    .neighbors(v)
                    .iter()
                    .filter(|&&(_, e)| h.contains(e) && !tree_edges.contains(e))
                    .map(|&(u, e)| (e, u, None))
                    .collect();
                CirculationLabeling {
                    parent: tree.parent(v),
                    pending_children: tree.children(v).len(),
                    children: tree.children(v).to_vec(),
                    non_tree,
                    parent_edge: tree.parent_edge(v),
                    parent_label: None,
                    acc: 0,
                    sent_up: false,
                    label_mask: mask,
                    seed: master_seed ^ (v as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                }
            })
            .collect()
    }

    /// The label of the tree edge towards this vertex's parent (`None` for the
    /// root), available after the run.
    pub fn parent_edge_label(&self) -> Option<(EdgeId, u64)> {
        match (self.parent_edge, self.parent_label) {
            (Some(e), Some(l)) => Some((e, l)),
            _ => None,
        }
    }

    /// The labels of the incident non-tree edges known to this vertex after
    /// the run.
    pub fn non_tree_labels(&self) -> Vec<(EdgeId, u64)> {
        self.non_tree
            .iter()
            .filter_map(|&(e, _, l)| l.map(|l| (e, l)))
            .collect()
    }

    /// Collects the full labelling (one label per edge of `H`) from a finished
    /// run.
    pub fn collect_labels(outcome: &Outcome<Self>, graph: &Graph) -> Vec<Option<u64>> {
        let mut labels = vec![None; graph.m()];
        for node in &outcome.nodes {
            if let Some((e, l)) = node.parent_edge_label() {
                labels[e.index()] = Some(l);
            }
            for (e, l) in node.non_tree_labels() {
                labels[e.index()] = Some(l);
            }
        }
        labels
    }

    fn try_send_up(&mut self, ctx: &NodeContext) -> StepResult {
        let all_non_tree_known = self.non_tree.iter().all(|(_, _, l)| l.is_some());
        if self.pending_children > 0 || !all_non_tree_known || self.sent_up {
            return if self.sent_up {
                StepResult::halt()
            } else {
                StepResult::idle()
            };
        }
        self.sent_up = true;
        let _ = ctx;
        match self.parent {
            Some(p) => {
                self.parent_label = Some(self.acc & self.label_mask);
                StepResult::send_and_halt(vec![Outgoing::new(p, Message::new([self.acc]))])
            }
            None => StepResult::halt(),
        }
    }
}

impl NodeProgram for CirculationLabeling {
    fn init(&mut self, ctx: &NodeContext) -> StepResult {
        // Round 1: the smaller endpoint of each non-tree edge draws the label
        // and sends it across.
        let mut rng = ChaCha8Rng::seed_from_u64(self.seed);
        let mut out = Vec::new();
        for entry in &mut self.non_tree {
            let (edge, other, label_slot) = (entry.0, entry.1, &mut entry.2);
            if ctx.id < other {
                let label = rng.gen::<u64>() & self.label_mask;
                *label_slot = Some(label);
                self.acc ^= label;
                out.push(Outgoing::new(
                    other,
                    Message::new([edge.index() as u64, label]),
                ));
            }
        }
        // Leaves with no non-tree edges could already report, but the network
        // delivers round-1 messages first; defer the upward send to `step`.
        StepResult::send(out)
    }

    fn step(&mut self, ctx: &NodeContext, _round: u64, inbox: &[Incoming]) -> StepResult {
        for m in inbox {
            if m.message.len() == 2 {
                // A non-tree label from the owning endpoint.
                let edge = EdgeId(m.message.word(0).expect("edge id") as usize);
                let label = m.message.word(1).expect("label");
                if let Some(entry) = self.non_tree.iter_mut().find(|(e, _, _)| *e == edge) {
                    entry.2 = Some(label);
                    self.acc ^= label;
                }
            } else if m.message.len() == 1 && self.children.contains(&m.from) {
                // A child's subtree XOR.
                self.acc ^= m.message.word(0).expect("subtree xor");
                self.pending_children -= 1;
            }
        }
        self.try_send_up(ctx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use graphs::{connectivity, generators};

    fn run_labelling(graph: &Graph, h: &EdgeSet, seed: u64) -> (Vec<Option<u64>>, u64) {
        let bfs = graphs::bfs::bfs_in(graph, h, 0);
        let tree = RootedTree::new(graph, &bfs.tree_edges(graph), 0);
        let net = Network::new(graph);
        let programs = CirculationLabeling::programs(graph, h, &tree, 64, seed);
        let outcome = net.run(programs, 10_000).expect("labelling terminates");
        (
            CirculationLabeling::collect_labels(&outcome, graph),
            outcome.report.rounds,
        )
    }

    #[test]
    fn every_h_edge_gets_a_label() {
        let g = generators::cycle(8, 1);
        let h = g.full_edge_set();
        let (labels, _) = run_labelling(&g, &h, 1);
        for id in h.iter() {
            assert!(labels[id.index()].is_some(), "edge {id:?} has no label");
        }
    }

    #[test]
    fn labels_classify_cut_pairs_exactly() {
        use rand::SeedableRng as _;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_k_edge_connected(14, 2, 6, &mut rng);
        let h = g.full_edge_set();
        let (labels, _) = run_labelling(&g, &h, 7);
        let ids: Vec<EdgeId> = h.iter().collect();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                let same = labels[ids[i].index()] == labels[ids[j].index()];
                let cut = !connectivity::is_connected_after_removal(&g, &h, &[ids[i], ids[j]]);
                assert_eq!(same, cut, "pair ({:?}, {:?})", ids[i], ids[j]);
            }
        }
    }

    #[test]
    fn rounds_are_bounded_by_tree_depth() {
        let g = generators::cycle(30, 1);
        let h = g.full_edge_set();
        let bfs = graphs::bfs::bfs_in(&g, &h, 0);
        let tree = RootedTree::new(&g, &bfs.tree_edges(&g), 0);
        let net = Network::new(&g);
        let programs = CirculationLabeling::programs(&g, &h, &tree, 64, 3);
        let outcome = net.run(programs, 10_000).unwrap();
        assert!(
            outcome.report.rounds <= tree.height() as u64 + 3,
            "labelling must finish within ~depth rounds (got {} for depth {})",
            outcome.report.rounds,
            tree.height()
        );
        assert!(outcome.report.max_message_words <= 2);
    }

    #[test]
    fn three_edge_connected_graph_has_all_distinct_labels() {
        let g = generators::complete(7, 1);
        let h = g.full_edge_set();
        let (labels, _) = run_labelling(&g, &h, 11);
        let mut seen = std::collections::HashSet::new();
        for id in h.iter() {
            assert!(
                seen.insert(labels[id.index()].unwrap()),
                "unexpected label collision in K7"
            );
        }
    }

    #[test]
    fn narrow_labels_respect_the_width() {
        let g = generators::cycle(6, 1);
        let h = g.full_edge_set();
        let bfs = graphs::bfs::bfs_in(&g, &h, 0);
        let tree = RootedTree::new(&g, &bfs.tree_edges(&g), 0);
        let net = Network::new(&g);
        let programs = CirculationLabeling::programs(&g, &h, &tree, 4, 9);
        let outcome = net.run(programs, 1000).unwrap();
        let labels = CirculationLabeling::collect_labels(&outcome, &g);
        for id in h.iter() {
            assert!(labels[id.index()].unwrap() < 16);
        }
    }
}
