//! Collective operations over a rooted spanning tree: pipelined broadcast and
//! convergecast.
//!
//! These are the workhorses behind Claims 3.1/3.2 of the paper: distributing
//! `ℓ` distinct `O(log n)`-bit items from the root of a BFS tree to every
//! vertex takes `O(D + ℓ)` rounds with pipelining, and aggregating a value
//! towards the root takes `O(D)` rounds. The implementations here are genuine
//! message-passing programs; the accounting model charges the same costs.

use crate::message::{Incoming, Message};
use crate::network::Outcome;
use crate::node::{NodeContext, NodeProgram, Outgoing, StepResult};
use graphs::{EdgeSet, Graph, NodeId, RootedTree};

/// Tree structure local to one vertex: its parent and children in a rooted
/// spanning tree, as supplied to the collective programs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LocalTree {
    /// Parent in the tree, `None` for the root.
    pub parent: Option<NodeId>,
    /// Children in the tree.
    pub children: Vec<NodeId>,
}

/// Builds per-vertex [`LocalTree`] descriptions from a [`RootedTree`].
pub fn local_trees(tree: &RootedTree, n: usize) -> Vec<LocalTree> {
    (0..n)
        .map(|v| LocalTree {
            parent: tree.parent(v),
            children: tree.children(v).to_vec(),
        })
        .collect()
}

/// Pipelined broadcast: the root holds `ℓ` items and every vertex must learn
/// all of them. Takes `depth + ℓ + O(1)` rounds.
///
/// # Example
///
/// ```
/// use graphs::{generators, mst, RootedTree};
/// use congest::{Network, programs::collective::{PipelinedBroadcast, local_trees}};
///
/// let g = generators::cycle(6, 1);
/// let t = RootedTree::new(&g, &mst::kruskal(&g), 0);
/// let net = Network::new(&g);
/// let programs = PipelinedBroadcast::programs(&local_trees(&t, g.n()), vec![10, 20, 30]);
/// let outcome = net.run(programs, 100).unwrap();
/// assert!(outcome.nodes.iter().all(|p| p.received() == &[10, 20, 30]));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PipelinedBroadcast {
    tree: LocalTree,
    /// Items still to forward to children (in order).
    to_forward: std::collections::VecDeque<u64>,
    /// All items received (or originated, at the root), in order.
    received: Vec<u64>,
    /// Total number of items expected.
    expected: usize,
    forwarded: usize,
}

impl PipelinedBroadcast {
    /// Creates the program vector. `items` are the values held by the root;
    /// every vertex is told how many items to expect (the count itself can be
    /// broadcast in `O(D)` rounds beforehand).
    pub fn programs(trees: &[LocalTree], items: Vec<u64>) -> Vec<Self> {
        let expected = items.len();
        trees
            .iter()
            .map(|t| {
                let is_root = t.parent.is_none();
                PipelinedBroadcast {
                    tree: t.clone(),
                    to_forward: if is_root {
                        items.iter().copied().collect()
                    } else {
                        Default::default()
                    },
                    received: if is_root { items.clone() } else { Vec::new() },
                    expected,
                    forwarded: 0,
                }
            })
            .collect()
    }

    /// The items this vertex has received, in pipeline order.
    pub fn received(&self) -> &[u64] {
        &self.received
    }

    fn pump(&mut self) -> StepResult {
        let mut out = Vec::new();
        if let Some(item) = self.to_forward.pop_front() {
            for &c in &self.tree.children {
                out.push(Outgoing::new(c, Message::new([item])));
            }
            self.forwarded += 1;
        }
        let all_received = self.received.len() == self.expected;
        let all_forwarded = self.forwarded == self.expected || self.tree.children.is_empty();
        if all_received && all_forwarded && self.to_forward.is_empty() {
            StepResult::send_and_halt(out)
        } else {
            StepResult::send(out)
        }
    }
}

impl NodeProgram for PipelinedBroadcast {
    fn init(&mut self, _ctx: &NodeContext) -> StepResult {
        self.pump()
    }

    fn step(&mut self, _ctx: &NodeContext, _round: u64, inbox: &[Incoming]) -> StepResult {
        for m in inbox {
            if Some(m.from) == self.tree.parent {
                if let Some(item) = m.message.word(0) {
                    self.received.push(item);
                    self.to_forward.push_back(item);
                }
            }
        }
        self.pump()
    }
}

/// Convergecast of a sum towards the root: every vertex holds a value, and at
/// the end the root knows the sum over all vertices. Takes `height + O(1)`
/// rounds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SumConvergecast {
    tree: LocalTree,
    pending_children: usize,
    /// The total at the root after the run (partial sums elsewhere).
    total: u64,
    sent: bool,
}

impl SumConvergecast {
    /// Creates the program vector from per-vertex tree structure and values.
    ///
    /// # Panics
    ///
    /// Panics if `trees` and `values` have different lengths.
    pub fn programs(trees: &[LocalTree], values: &[u64]) -> Vec<Self> {
        assert_eq!(trees.len(), values.len(), "one value per vertex required");
        trees
            .iter()
            .zip(values)
            .map(|(t, &value)| SumConvergecast {
                tree: t.clone(),
                pending_children: t.children.len(),
                total: value,
                sent: false,
            })
            .collect()
    }

    /// The aggregated total known to this vertex (meaningful at the root).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Extracts the root's total from a finished run.
    pub fn root_total(outcome: &Outcome<Self>) -> u64 {
        outcome
            .nodes
            .iter()
            .find(|p| p.tree.parent.is_none())
            .map(|p| p.total)
            .expect("a rooted tree has a root")
    }

    fn try_send_up(&mut self) -> StepResult {
        if self.pending_children == 0 && !self.sent {
            self.sent = true;
            match self.tree.parent {
                Some(p) => {
                    StepResult::send_and_halt(vec![Outgoing::new(p, Message::new([self.total]))])
                }
                None => StepResult::halt(),
            }
        } else if self.sent {
            StepResult::halt()
        } else {
            StepResult::idle()
        }
    }
}

impl NodeProgram for SumConvergecast {
    fn init(&mut self, _ctx: &NodeContext) -> StepResult {
        self.try_send_up()
    }

    fn step(&mut self, _ctx: &NodeContext, _round: u64, inbox: &[Incoming]) -> StepResult {
        for m in inbox {
            if self.tree.children.contains(&m.from) {
                self.total += m.message.word(0).unwrap_or(0);
                self.pending_children -= 1;
            }
        }
        self.try_send_up()
    }
}

/// Constructs a rooted spanning tree of `graph` (restricted to `edges`) for
/// use with the collective programs, rooted at `root`.
pub fn spanning_tree_for(graph: &Graph, edges: &EdgeSet, root: NodeId) -> RootedTree {
    let bfs = graphs::bfs::bfs_in(graph, edges, root);
    RootedTree::new(graph, &bfs.tree_edges(graph), root)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use graphs::{generators, mst};

    fn tree_of(g: &Graph) -> RootedTree {
        RootedTree::new(g, &mst::kruskal(g), 0)
    }

    #[test]
    fn broadcast_delivers_all_items_in_order() {
        let g = generators::path(6, 1);
        let t = tree_of(&g);
        let items = vec![5, 6, 7, 8];
        let net = Network::new(&g);
        let programs = PipelinedBroadcast::programs(&local_trees(&t, g.n()), items.clone());
        let outcome = net.run(programs, 200).unwrap();
        for p in &outcome.nodes {
            assert_eq!(p.received(), items.as_slice());
        }
    }

    #[test]
    fn broadcast_round_complexity_is_depth_plus_items() {
        let g = generators::path(20, 1);
        let t = tree_of(&g);
        let depth = t.height() as u64;
        let items: Vec<u64> = (0..15).collect();
        let net = Network::new(&g);
        let programs = PipelinedBroadcast::programs(&local_trees(&t, g.n()), items.clone());
        let outcome = net.run(programs, 1000).unwrap();
        let rounds = outcome.report.rounds;
        assert!(
            rounds >= depth && rounds <= depth + items.len() as u64 + 3,
            "pipelined broadcast should take ~depth + items rounds, got {rounds} (depth {depth})"
        );
    }

    #[test]
    fn broadcast_of_empty_item_list_terminates() {
        let g = generators::cycle(5, 1);
        let t = tree_of(&g);
        let net = Network::new(&g);
        let programs = PipelinedBroadcast::programs(&local_trees(&t, g.n()), vec![]);
        let outcome = net.run(programs, 50).unwrap();
        assert!(outcome.nodes.iter().all(|p| p.received().is_empty()));
    }

    #[test]
    fn convergecast_sums_all_values() {
        let g = generators::grid(4, 5, 1);
        let t = tree_of(&g);
        let values: Vec<u64> = (0..g.n() as u64).collect();
        let expected: u64 = values.iter().sum();
        let net = Network::new(&g);
        let programs = SumConvergecast::programs(&local_trees(&t, g.n()), &values);
        let outcome = net.run(programs, 200).unwrap();
        assert_eq!(SumConvergecast::root_total(&outcome), expected);
    }

    #[test]
    fn convergecast_round_complexity_is_tree_height() {
        let g = generators::path(30, 1);
        let t = tree_of(&g);
        let values = vec![1u64; g.n()];
        let net = Network::new(&g);
        let programs = SumConvergecast::programs(&local_trees(&t, g.n()), &values);
        let outcome = net.run(programs, 500).unwrap();
        assert_eq!(SumConvergecast::root_total(&outcome), 30);
        assert!(outcome.report.rounds <= t.height() as u64 + 2);
    }

    #[test]
    fn spanning_tree_for_builds_bfs_tree() {
        let g = generators::cycle(8, 1);
        let t = spanning_tree_for(&g, &g.full_edge_set(), 0);
        assert_eq!(t.len(), 8);
        assert_eq!(t.height(), 4);
    }
}
