//! Genuine message-passing node programs for the standard CONGEST building
//! blocks used by the paper: BFS-tree construction, leader election,
//! pipelined tree broadcast / convergecast, and a Borůvka-style distributed
//! MST.
//!
//! These exist for two reasons: they make the simulator a real CONGEST
//! substrate rather than a round calculator, and they let tests cross-check
//! the [`crate::accounting`] cost model against actually-executed round
//! counts (e.g. BFS construction takes `Θ(D)` measured rounds, the pipelined
//! broadcast of `ℓ` items takes `Θ(depth + ℓ)` measured rounds).

pub mod bfs;
pub mod boruvka;
pub mod circulation;
pub mod collective;
pub mod flood;
