//! Leader election by flooding the maximum id.
//!
//! The paper's preliminaries elect the minimum-id vertex as the BFS root; this
//! program is the standard flooding election, run for a number of rounds that
//! upper-bounds the diameter (vertices know `n`, and `n - 1 ≥ D`).

use crate::message::{Incoming, Message};
use crate::node::{NodeContext, NodeProgram, Outgoing, StepResult};

/// Per-node flooding leader election: after the run, every vertex knows the
/// minimum vertex id in the network (the elected leader / BFS root).
///
/// Vertices forward improvements only, so the message complexity is `O(m·n)`
/// worst case but far less in practice; the round complexity is exactly the
/// round budget, `n` (a safe upper bound on the diameter), because vertices
/// cannot detect quiescence locally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FloodMinElection {
    best: u64,
    rounds_budget: u64,
}

impl FloodMinElection {
    /// Creates the program vector for a network of `n` vertices.
    pub fn programs(n: usize) -> Vec<Self> {
        (0..n)
            .map(|v| FloodMinElection {
                best: v as u64,
                rounds_budget: n as u64,
            })
            .collect()
    }

    /// The leader this vertex decided on (valid after the run terminates).
    pub fn leader(&self) -> u64 {
        self.best
    }
}

impl NodeProgram for FloodMinElection {
    fn init(&mut self, ctx: &NodeContext) -> StepResult {
        let out = ctx
            .neighbors
            .iter()
            .map(|&(v, _, _)| Outgoing::new(v, Message::new([self.best])))
            .collect();
        StepResult::send(out)
    }

    fn step(&mut self, ctx: &NodeContext, round: u64, inbox: &[Incoming]) -> StepResult {
        let incoming_best = inbox
            .iter()
            .filter_map(|m| m.message.word(0))
            .min()
            .unwrap_or(self.best);
        let improved = incoming_best < self.best;
        if improved {
            self.best = incoming_best;
        }
        let outgoing = if improved {
            ctx.neighbors
                .iter()
                .map(|&(v, _, _)| Outgoing::new(v, Message::new([self.best])))
                .collect()
        } else {
            Vec::new()
        };
        if round >= self.rounds_budget {
            StepResult::send_and_halt(outgoing)
        } else {
            StepResult::send(outgoing)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use graphs::generators;

    #[test]
    fn every_vertex_elects_vertex_zero() {
        let g = generators::cycle(9, 1);
        let net = Network::new(&g);
        let outcome = net.run(FloodMinElection::programs(g.n()), 100).unwrap();
        assert!(outcome.nodes.iter().all(|p| p.leader() == 0));
    }

    #[test]
    fn election_works_on_ring_of_cliques() {
        let g = generators::ring_of_cliques(4, 3, 2, 1);
        let net = Network::new(&g);
        let outcome = net.run(FloodMinElection::programs(g.n()), 200).unwrap();
        assert!(outcome.nodes.iter().all(|p| p.leader() == 0));
        // Round complexity is the fixed budget n.
        assert_eq!(outcome.report.rounds, g.n() as u64);
    }

    #[test]
    fn messages_are_single_word() {
        let g = generators::complete(6, 1);
        let net = Network::new(&g);
        let outcome = net.run(FloodMinElection::programs(g.n()), 100).unwrap();
        assert_eq!(outcome.report.max_message_words, 1);
    }
}
