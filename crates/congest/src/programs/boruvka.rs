//! A Borůvka-style distributed minimum spanning tree.
//!
//! The paper uses the Kutten–Peleg MST algorithm (`O(D + √n log* n)` rounds)
//! as a black box; its fragment machinery is intricate, so the simulator ships
//! a simpler but genuinely distributed Borůvka algorithm: `O(log n)` phases,
//! each consisting of a bounded flood inside fragments to agree on the
//! fragment's minimum outgoing edge and on the merged fragment identifier.
//! The round complexity is `O(n log n)` in the worst case — the accounting
//! model in [`crate::accounting`] charges the Kutten–Peleg cost for the
//! higher-level algorithms, as documented in DESIGN.md — but the *output* is
//! exactly the MST, and every message fits the CONGEST budget.

use crate::message::{Incoming, Message};
use crate::network::Outcome;
use crate::node::{NodeContext, NodeProgram, Outgoing, StepResult};
use graphs::{EdgeId, EdgeSet, Graph, NodeId, Weight};

/// Edge ordering key used to make the MST unique: `(weight, edge id)`.
type EdgeKey = (Weight, u64);

const INFINITY: EdgeKey = (u64::MAX, u64::MAX);

/// Distributed Borůvka MST program.
///
/// After the run, [`DistributedBoruvka::mst_edges`] collects the edge set of
/// the unique MST under the `(weight, edge id)` ordering, which matches
/// [`graphs::mst::kruskal`] exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DistributedBoruvka {
    /// Current fragment identifier (starts as the vertex's own id).
    fragment: u64,
    /// Fragment ids of the neighbors, refreshed at the start of each phase.
    neighbor_fragment: std::collections::HashMap<NodeId, u64>,
    /// Best (minimum-key) outgoing edge known for this fragment this phase.
    best: EdgeKey,
    /// Incident edges selected into the MST.
    chosen: EdgeSet,
    /// Number of phases to run (`ceil(log2 n) + 1`).
    phases: u64,
    /// Rounds per phase (fixed schedule).
    phase_len: u64,
    n: u64,
}

impl DistributedBoruvka {
    /// Creates the program vector for the given graph.
    pub fn programs(graph: &Graph) -> Vec<Self> {
        let n = graph.n() as u64;
        let phases = (64 - n.max(2).leading_zeros() as u64) + 1;
        // Schedule per phase:
        //   round 1                : exchange fragment ids with neighbors
        //   rounds 2 ..= n+1       : flood the fragment's best outgoing edge
        //   round n+2              : the owner of the best edge notifies the
        //                            other endpoint (merge request)
        //   rounds n+3 ..= 2n+2    : flood the merged fragment id
        let phase_len = 2 * n + 2;
        (0..graph.n())
            .map(|v| DistributedBoruvka {
                fragment: v as u64,
                neighbor_fragment: Default::default(),
                best: INFINITY,
                chosen: graph.empty_edge_set(),
                phases,
                phase_len,
                n,
            })
            .collect()
    }

    /// The MST edge set accumulated across all vertices of a finished run.
    pub fn mst_edges(outcome: &Outcome<Self>, graph: &Graph) -> EdgeSet {
        let mut set = graph.empty_edge_set();
        for p in &outcome.nodes {
            set.union_with(&p.chosen);
        }
        set
    }

    /// Upper bound on the number of rounds the program needs.
    pub fn round_budget(graph: &Graph) -> u64 {
        let n = graph.n() as u64;
        let phases = (64 - n.max(2).leading_zeros() as u64) + 1;
        (2 * n + 2) * phases + 2
    }

    fn mst_neighbors<'a>(&'a self, ctx: &'a NodeContext) -> impl Iterator<Item = NodeId> + 'a {
        ctx.neighbors
            .iter()
            .filter(|(_, e, _)| self.chosen.contains(*e))
            .map(|&(v, _, _)| v)
    }

    /// Local candidate for the fragment's minimum outgoing edge.
    fn local_best(&self, ctx: &NodeContext) -> EdgeKey {
        ctx.neighbors
            .iter()
            .filter(|(v, _, _)| self.neighbor_fragment.get(v).copied() != Some(self.fragment))
            .map(|&(_, e, w)| (w, e.index() as u64))
            .min()
            .unwrap_or(INFINITY)
    }

    fn send_to_all<F>(&self, ctx: &NodeContext, make: F) -> Vec<Outgoing>
    where
        F: Fn() -> Message,
    {
        ctx.neighbors
            .iter()
            .map(|&(v, _, _)| Outgoing::new(v, make()))
            .collect()
    }
}

impl NodeProgram for DistributedBoruvka {
    fn init(&mut self, ctx: &NodeContext) -> StepResult {
        // Kick off phase 1 by announcing the initial fragment id.
        StepResult::send(self.send_to_all(ctx, || Message::new([self.fragment])))
    }

    fn step(&mut self, ctx: &NodeContext, round: u64, inbox: &[Incoming]) -> StepResult {
        let total_rounds = self.phase_len * self.phases;
        if round > total_rounds {
            return StepResult::halt();
        }
        let r = (round - 1) % self.phase_len; // position within the phase
        let n = self.n;

        let mut out = Vec::new();

        if r == 0 {
            // Round 1 of a phase: the inbox holds the neighbors' fragment ids
            // (sent at the end of the previous phase, or at init).
            self.neighbor_fragment.clear();
            for m in inbox {
                if let Some(f) = m.message.word(0) {
                    self.neighbor_fragment.insert(m.from, f);
                }
            }
            self.best = self.local_best(ctx);
            // Start the best-edge flood along MST (fragment-internal) edges.
            let best = self.best;
            for v in self.mst_neighbors(ctx).collect::<Vec<_>>() {
                out.push(Outgoing::new(v, Message::new([best.0, best.1])));
            }
        } else if (1..n).contains(&r) {
            // Flooding the fragment's minimum outgoing edge.
            let mut improved = false;
            for m in inbox {
                if let (Some(w), Some(id)) = (m.message.word(0), m.message.word(1)) {
                    if (w, id) < self.best {
                        self.best = (w, id);
                        improved = true;
                    }
                }
            }
            if improved {
                let best = self.best;
                for v in self.mst_neighbors(ctx).collect::<Vec<_>>() {
                    out.push(Outgoing::new(v, Message::new([best.0, best.1])));
                }
            }
        } else if r == n {
            // Absorb the final flood messages, then the owner of the fragment's
            // best outgoing edge adds it and notifies the other endpoint.
            for m in inbox {
                if let (Some(w), Some(id)) = (m.message.word(0), m.message.word(1)) {
                    if (w, id) < self.best {
                        self.best = (w, id);
                    }
                }
            }
            if self.best != INFINITY {
                let edge = EdgeId(self.best.1 as usize);
                if let Some(&(other, _, _)) = ctx.neighbors.iter().find(|(_, e, _)| *e == edge) {
                    // Only the endpoint inside the fragment that selected this
                    // edge "owns" it; both endpoints may own it if the two
                    // fragments picked the same edge, which is fine.
                    if self.neighbor_fragment.get(&other).copied() != Some(self.fragment) {
                        self.chosen.insert(edge);
                        out.push(Outgoing::new(
                            other,
                            Message::new([u64::MAX, edge.index() as u64]),
                        ));
                    }
                }
            }
        } else if r == n + 1 {
            // Merge requests arrive: mark the edge as chosen on this side too,
            // then start flooding the merged fragment id (minimum of ids seen).
            for m in inbox {
                if m.message.word(0) == Some(u64::MAX) {
                    if let Some(id) = m.message.word(1) {
                        self.chosen.insert(EdgeId(id as usize));
                    }
                }
            }
            let fragment = self.fragment;
            for v in self.mst_neighbors(ctx).collect::<Vec<_>>() {
                out.push(Outgoing::new(v, Message::new([fragment])));
            }
        } else {
            // Fragment-id consensus flood over the (possibly enlarged) MST edges.
            let mut improved = false;
            for m in inbox {
                if let Some(f) = m.message.word(0) {
                    if f < self.fragment {
                        self.fragment = f;
                        improved = true;
                    }
                }
            }
            let is_last_round_of_phase = r == self.phase_len - 1;
            if improved || is_last_round_of_phase {
                // Forward improvements; on the last round also announce the
                // final fragment id to *all* neighbors so the next phase can
                // classify outgoing edges.
                let fragment = self.fragment;
                if is_last_round_of_phase {
                    out.extend(self.send_to_all(ctx, || Message::new([fragment])));
                } else {
                    for v in self.mst_neighbors(ctx).collect::<Vec<_>>() {
                        out.push(Outgoing::new(v, Message::new([fragment])));
                    }
                }
            }
        }

        if round >= total_rounds {
            StepResult::send_and_halt(out)
        } else {
            StepResult::send(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use graphs::{connectivity, generators, mst};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn run_boruvka(g: &Graph) -> EdgeSet {
        let net = Network::new(g);
        let budget = DistributedBoruvka::round_budget(g) + 10;
        let outcome = net
            .run(DistributedBoruvka::programs(g), budget)
            .expect("boruvka terminates");
        DistributedBoruvka::mst_edges(&outcome, g)
    }

    #[test]
    fn boruvka_matches_kruskal_on_cycle_with_distinct_weights() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 3);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 4);
        g.add_edge(3, 4, 2);
        g.add_edge(4, 0, 5);
        let dist = run_boruvka(&g);
        let seq = mst::kruskal(&g);
        assert_eq!(dist, seq);
    }

    #[test]
    fn boruvka_matches_kruskal_with_ties() {
        let g = generators::complete(7, 4);
        let dist = run_boruvka(&g);
        let seq = mst::kruskal(&g);
        assert_eq!(dist.len(), 6);
        assert_eq!(
            graphs::mst::forest_weight(&g, &dist),
            graphs::mst::forest_weight(&g, &seq)
        );
        assert!(connectivity::is_connected_in(&g, &dist));
    }

    #[test]
    fn boruvka_on_random_weighted_graphs_matches_kruskal_weight() {
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        for n in [8, 16, 25] {
            let g = generators::random_weighted_k_edge_connected(n, 2, n, 40, &mut rng);
            let dist = run_boruvka(&g);
            let seq = mst::kruskal(&g);
            assert_eq!(dist.len(), n - 1, "spanning tree size for n = {n}");
            assert!(connectivity::is_connected_in(&g, &dist));
            assert_eq!(
                graphs::mst::forest_weight(&g, &dist),
                graphs::mst::forest_weight(&g, &seq),
                "MST weight mismatch for n = {n}"
            );
        }
    }

    #[test]
    fn messages_respect_congest_budget() {
        let g = generators::torus(3, 4, 1);
        let net = Network::new(&g);
        let budget = DistributedBoruvka::round_budget(&g) + 10;
        let outcome = net.run(DistributedBoruvka::programs(&g), budget).unwrap();
        assert!(outcome.report.max_message_words <= 2);
    }
}
