//! The synchronous round executor.

use crate::message::{Incoming, Message};
use crate::node::{NodeContext, NodeProgram, StepResult};
use graphs::{Graph, NodeId};
use std::fmt;

/// Statistics of a completed (or aborted) run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Number of synchronous rounds executed.
    pub rounds: u64,
    /// Total number of messages delivered.
    pub messages: u64,
    /// Total number of words across all messages.
    pub words: u64,
    /// The largest message observed, in words.
    pub max_message_words: u64,
}

impl RunReport {
    /// Folds another report into this one: the counters add up and the maxima
    /// take the maximum.
    ///
    /// This is the aggregation used by the `kecss_runtime` parallel engine
    /// (merging per-chunk message statistics in deterministic chunk order)
    /// and by sweep drivers (merging per-instance reports into a grid total).
    pub fn merge(&mut self, other: &RunReport) {
        self.rounds += other.rounds;
        self.messages += other.messages;
        self.words += other.words;
        self.max_message_words = self.max_message_words.max(other.max_message_words);
    }
}

/// The result of running a set of node programs to completion: the final
/// program states plus the run statistics.
pub struct Outcome<P> {
    /// The per-node programs in their final states, indexed by vertex id.
    pub nodes: Vec<P>,
    /// Round and message statistics.
    pub report: RunReport,
}

impl<P> fmt::Debug for Outcome<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Outcome")
            .field("report", &self.report)
            .finish_non_exhaustive()
    }
}

/// Errors raised by the network executor.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetworkError {
    /// A node attempted to send to a vertex that is not its neighbor.
    NotANeighbor {
        /// The sending vertex.
        from: NodeId,
        /// The intended recipient.
        to: NodeId,
    },
    /// A message exceeded the per-message word budget (CONGEST bandwidth).
    MessageTooLarge {
        /// The sending vertex.
        from: NodeId,
        /// The intended recipient.
        to: NodeId,
        /// The size of the offending message, in words.
        words: usize,
        /// The enforced budget.
        budget: usize,
    },
    /// The run did not terminate within the round limit.
    RoundLimitExceeded {
        /// The limit that was exceeded.
        limit: u64,
    },
    /// The number of programs did not match the number of vertices.
    WrongProgramCount {
        /// Programs supplied.
        got: usize,
        /// Vertices in the network.
        expected: usize,
    },
}

impl fmt::Display for NetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetworkError::NotANeighbor { from, to } => {
                write!(f, "vertex {from} attempted to send to non-neighbor {to}")
            }
            NetworkError::MessageTooLarge {
                from,
                to,
                words,
                budget,
            } => write!(
                f,
                "message from {from} to {to} has {words} words, exceeding the budget of {budget}"
            ),
            NetworkError::RoundLimitExceeded { limit } => {
                write!(f, "run did not terminate within {limit} rounds")
            }
            NetworkError::WrongProgramCount { got, expected } => {
                write!(f, "got {got} programs for a network of {expected} vertices")
            }
        }
    }
}

impl std::error::Error for NetworkError {}

/// A synchronous CONGEST network over a communication graph.
///
/// The executor is deterministic: inboxes are sorted by sender id, nodes are
/// stepped in vertex order, and messages sent in round `r` are delivered at
/// the start of round `r + 1`.
#[derive(Clone, Debug)]
pub struct Network {
    contexts: Vec<NodeContext>,
    word_budget: usize,
}

impl Network {
    /// Creates a network whose topology is `graph`, with the default message
    /// word budget ([`Message::DEFAULT_WORD_BUDGET`]).
    pub fn new(graph: &Graph) -> Self {
        Self::with_word_budget(graph, Message::DEFAULT_WORD_BUDGET)
    }

    /// Creates a network with an explicit per-message word budget.
    ///
    /// # Panics
    ///
    /// Panics if `word_budget` is zero.
    pub fn with_word_budget(graph: &Graph, word_budget: usize) -> Self {
        assert!(word_budget >= 1, "word budget must be at least one word");
        // One CSR build up front, then every per-vertex context is filled
        // from a contiguous adjacency slice.
        graph.freeze();
        let contexts = (0..graph.n())
            .map(|v| NodeContext {
                id: v,
                n: graph.n(),
                neighbors: graph
                    .neighbors(v)
                    .iter()
                    .map(|&(u, e)| (u, e, graphs::Graph::weight(graph, e)))
                    .collect(),
            })
            .collect();
        Network {
            contexts,
            word_budget,
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.contexts.len()
    }

    /// The per-message word budget being enforced.
    pub fn word_budget(&self) -> usize {
        self.word_budget
    }

    /// The local context of vertex `v`.
    pub fn context(&self, v: NodeId) -> &NodeContext {
        &self.contexts[v]
    }

    /// All per-vertex contexts, indexed by vertex id.
    ///
    /// This is the executor seam used by the `kecss_runtime` parallel round
    /// engine: workers borrow the contexts of their chunk while the network
    /// itself stays shared and immutable.
    pub fn contexts(&self) -> &[NodeContext] {
        &self.contexts
    }

    /// Runs one program per vertex until all have terminated or `max_rounds`
    /// is reached.
    ///
    /// Takes `&self`: a run never mutates the topology, so one `Network` can
    /// drive many (including concurrent) runs without cloning.
    ///
    /// # Errors
    ///
    /// Returns an error if the program count is wrong, a program violates the
    /// CONGEST constraints (sends to a non-neighbor or exceeds the word
    /// budget), or termination does not happen within `max_rounds`.
    pub fn run<P: NodeProgram>(
        &self,
        mut programs: Vec<P>,
        max_rounds: u64,
    ) -> Result<Outcome<P>, NetworkError> {
        let n = self.contexts.len();
        if programs.len() != n {
            return Err(NetworkError::WrongProgramCount {
                got: programs.len(),
                expected: n,
            });
        }
        let mut report = RunReport::default();
        let mut done = vec![false; n];
        // Live/undelivered counters replace the former O(n) per-round scans
        // of the done flags and inboxes; the loop condition is equivalent
        // (`undelivered` counts exactly the messages swapped into `inboxes`).
        let mut live = n;
        // inboxes[v] = messages to deliver to v at the start of the next round.
        let mut inboxes: Vec<Vec<Incoming>> = vec![Vec::new(); n];

        // Initialization "round zero": no inbox, typically only initiators act.
        let mut pending: Vec<Vec<Incoming>> = vec![Vec::new(); n];
        for v in 0..n {
            let result = programs[v].init(&self.contexts[v]);
            self.collect(v, result.outgoing, &mut pending, &mut report)?;
            if result.done {
                done[v] = true;
                live -= 1;
            }
        }
        std::mem::swap(&mut inboxes, &mut pending);
        let mut undelivered = report.messages;

        while live > 0 || undelivered > 0 {
            if report.rounds >= max_rounds {
                return Err(NetworkError::RoundLimitExceeded { limit: max_rounds });
            }
            report.rounds += 1;
            for ib in pending.iter_mut() {
                ib.clear();
            }
            let sent_before = report.messages;
            for v in 0..n {
                if done[v] && inboxes[v].is_empty() {
                    continue;
                }
                inboxes[v].sort_by_key(|m| m.from);
                let result: StepResult =
                    programs[v].step(&self.contexts[v], report.rounds, &inboxes[v]);
                self.collect(v, result.outgoing, &mut pending, &mut report)?;
                if result.done && !done[v] {
                    done[v] = true;
                    live -= 1;
                }
            }
            for ib in inboxes.iter_mut() {
                ib.clear();
            }
            std::mem::swap(&mut inboxes, &mut pending);
            undelivered = report.messages - sent_before;
        }

        Ok(Outcome {
            nodes: programs,
            report,
        })
    }

    fn collect(
        &self,
        from: NodeId,
        outgoing: Vec<crate::node::Outgoing>,
        pending: &mut [Vec<Incoming>],
        report: &mut RunReport,
    ) -> Result<(), NetworkError> {
        for out in outgoing {
            let to = out.to;
            if self.contexts[from].edge_to(to).is_none() {
                return Err(NetworkError::NotANeighbor { from, to });
            }
            let words = out.message.len();
            if words > self.word_budget {
                return Err(NetworkError::MessageTooLarge {
                    from,
                    to,
                    words,
                    budget: self.word_budget,
                });
            }
            report.messages += 1;
            report.words += words as u64;
            report.max_message_words = report.max_message_words.max(words as u64);
            pending[to].push(Incoming {
                from,
                message: out.message,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::Outgoing;
    use graphs::generators;

    /// A trivial program: the initiator (vertex 0) sends a token along the
    /// path; everyone halts after forwarding it.
    struct Relay {
        has_token: bool,
    }

    impl NodeProgram for Relay {
        fn init(&mut self, ctx: &NodeContext) -> StepResult {
            if ctx.id == 0 {
                self.has_token = true;
                let out = ctx
                    .neighbors
                    .iter()
                    .filter(|(v, _, _)| *v > ctx.id)
                    .map(|&(v, _, _)| Outgoing::new(v, Message::from(1u64)))
                    .collect();
                StepResult::send_and_halt(out)
            } else {
                StepResult::idle()
            }
        }

        fn step(&mut self, ctx: &NodeContext, _round: u64, inbox: &[Incoming]) -> StepResult {
            if inbox.is_empty() {
                return StepResult::idle();
            }
            self.has_token = true;
            let out = ctx
                .neighbors
                .iter()
                .filter(|(v, _, _)| *v > ctx.id)
                .map(|&(v, _, _)| Outgoing::new(v, Message::from(1u64)))
                .collect();
            StepResult::send_and_halt(out)
        }
    }

    #[test]
    fn token_relay_along_path_takes_n_minus_one_rounds() {
        let g = generators::path(6, 1);
        let net = Network::new(&g);
        let programs = (0..6).map(|_| Relay { has_token: false }).collect();
        let outcome = net.run(programs, 100).expect("relay terminates");
        assert!(outcome.nodes.iter().all(|p| p.has_token));
        assert_eq!(outcome.report.rounds, 5);
        assert_eq!(outcome.report.messages, 5);
        assert_eq!(outcome.report.max_message_words, 1);
    }

    #[test]
    fn wrong_program_count_is_rejected() {
        let g = generators::path(3, 1);
        let net = Network::new(&g);
        let programs: Vec<Relay> = vec![];
        let err = net.run(programs, 10).unwrap_err();
        assert!(matches!(
            err,
            NetworkError::WrongProgramCount {
                expected: 3,
                got: 0
            }
        ));
    }

    struct TooChatty;
    impl NodeProgram for TooChatty {
        fn init(&mut self, ctx: &NodeContext) -> StepResult {
            if ctx.id == 0 {
                let msg = Message::new(vec![0; 64]);
                StepResult::send_and_halt(vec![Outgoing::new(ctx.neighbors[0].0, msg)])
            } else {
                StepResult::halt()
            }
        }
        fn step(&mut self, _: &NodeContext, _: u64, _: &[Incoming]) -> StepResult {
            StepResult::halt()
        }
    }

    #[test]
    fn oversized_messages_are_rejected() {
        let g = generators::path(2, 1);
        let net = Network::new(&g);
        let err = net.run(vec![TooChatty, TooChatty], 10).unwrap_err();
        assert!(matches!(
            err,
            NetworkError::MessageTooLarge { words: 64, .. }
        ));
    }

    struct SendsToStranger;
    impl NodeProgram for SendsToStranger {
        fn init(&mut self, ctx: &NodeContext) -> StepResult {
            if ctx.id == 0 {
                StepResult::send_and_halt(vec![Outgoing::new(2, Message::empty())])
            } else {
                StepResult::halt()
            }
        }
        fn step(&mut self, _: &NodeContext, _: u64, _: &[Incoming]) -> StepResult {
            StepResult::halt()
        }
    }

    #[test]
    fn sending_to_non_neighbor_is_rejected() {
        let g = generators::path(3, 1); // 0-1-2: vertex 2 is not adjacent to 0.
        let net = Network::new(&g);
        let programs = vec![SendsToStranger, SendsToStranger, SendsToStranger];
        let err = net.run(programs, 10).unwrap_err();
        assert_eq!(err, NetworkError::NotANeighbor { from: 0, to: 2 });
    }

    struct NeverHalts;
    impl NodeProgram for NeverHalts {
        fn step(&mut self, _: &NodeContext, _: u64, _: &[Incoming]) -> StepResult {
            StepResult::idle()
        }
    }

    #[test]
    fn round_limit_is_enforced() {
        let g = generators::path(2, 1);
        let net = Network::new(&g);
        let err = net.run(vec![NeverHalts, NeverHalts], 7).unwrap_err();
        assert_eq!(err, NetworkError::RoundLimitExceeded { limit: 7 });
    }

    #[test]
    fn error_display_is_informative() {
        let e = NetworkError::NotANeighbor { from: 1, to: 9 };
        assert!(e.to_string().contains("non-neighbor"));
        let e = NetworkError::MessageTooLarge {
            from: 0,
            to: 1,
            words: 8,
            budget: 3,
        };
        assert!(e.to_string().contains("budget"));
        let e = NetworkError::RoundLimitExceeded { limit: 5 };
        assert!(e.to_string().contains('5'));
        let e = NetworkError::WrongProgramCount {
            got: 1,
            expected: 2,
        };
        assert!(e.to_string().contains("programs"));
    }

    #[test]
    fn word_budget_is_configurable() {
        let g = generators::path(2, 1);
        let net = Network::with_word_budget(&g, 8);
        assert_eq!(net.word_budget(), 8);
        assert_eq!(net.n(), 2);
        assert_eq!(net.context(0).n, 2);
    }
}
