//! Round-cost accounting for algorithms expressed as compositions of
//! communication primitives.
//!
//! The algorithms of the paper are analysed as sequences of standard CONGEST
//! building blocks with proven round costs (Section 1.3 and Claims 3.1/3.2):
//! building a BFS tree takes `O(D)` rounds, distributing `ℓ` messages over it
//! takes `O(D + ℓ)` rounds, the Kutten–Peleg MST takes `O(D + √n log* n)`
//! rounds, a pipelined scan of a segment takes rounds proportional to the
//! segment diameter, and so on. The higher-level algorithms in the `kecss`
//! crate execute their logic on explicit per-vertex knowledge while charging
//! these primitive costs to a [`RoundLedger`], so that the *measured* round
//! counts reported in EXPERIMENTS.md scale exactly as the theorems state.
//!
//! [`CostModel`] centralizes the primitive costs so every algorithm charges
//! them consistently; the ledger records a named breakdown for the benchmark
//! reports.

use std::collections::BTreeMap;
use std::fmt;

/// The per-primitive round costs for a particular network.
///
/// Costs use the concrete constants of the cited constructions (not the
/// asymptotic form): e.g. broadcasting `ℓ` distinct items over a BFS tree of
/// depth ≤ D takes `D + ℓ` rounds with standard pipelining.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CostModel {
    /// Number of vertices in the network.
    pub n: usize,
    /// Hop diameter of the network.
    pub diameter: usize,
}

impl CostModel {
    /// Creates a cost model for a network with `n` vertices and hop diameter
    /// `diameter`.
    pub fn new(n: usize, diameter: usize) -> Self {
        CostModel { n, diameter }
    }

    /// `⌈√n⌉`, the segment/fragment size parameter used throughout Section 3.
    pub fn sqrt_n(&self) -> u64 {
        (self.n as f64).sqrt().ceil() as u64
    }

    /// `⌈log₂ n⌉` (at least 1), the label width / phase count parameter.
    pub fn log_n(&self) -> u64 {
        (usize::BITS - self.n.max(2).leading_zeros()) as u64
    }

    /// Iterated logarithm `log* n`: the number of times `log₂` must be applied
    /// before the value drops to at most 2.
    pub fn log_star_n(&self) -> u64 {
        let mut x = self.n as f64;
        let mut count = 0u64;
        while x > 2.0 {
            x = x.log2();
            count += 1;
        }
        count.max(1)
    }

    /// Rounds to construct a BFS tree from a known root: `D` (plus one round
    /// of slack for the wake-up).
    pub fn bfs_construction(&self) -> u64 {
        self.diameter as u64 + 1
    }

    /// Rounds to distribute `items` distinct `O(log n)`-bit values from
    /// anywhere in a BFS tree to all vertices (pipelined broadcast):
    /// `O(D + items)`.
    pub fn broadcast(&self, items: u64) -> u64 {
        self.diameter as u64 + items
    }

    /// Rounds to aggregate `items` distinct values towards the root of a BFS
    /// tree (pipelined convergecast): `O(D + items)`.
    pub fn convergecast(&self, items: u64) -> u64 {
        self.diameter as u64 + items
    }

    /// Rounds for the Kutten–Peleg MST algorithm: `O(D + √n log* n)`.
    pub fn mst_kutten_peleg(&self) -> u64 {
        self.diameter as u64 + self.sqrt_n() * self.log_star_n()
    }

    /// Rounds for a pipelined scan (upcast or downcast) within a single
    /// segment of diameter `segment_diameter`.
    pub fn segment_scan(&self, segment_diameter: u64) -> u64 {
        segment_diameter.max(1)
    }

    /// Rounds to exchange one message between the two endpoints of an edge.
    pub fn edge_exchange(&self) -> u64 {
        1
    }

    /// Rounds for the Pritchard–Thurimella cycle-space labelling of a
    /// subgraph whose spanning tree has depth `tree_depth` (`O(D)` when the
    /// tree is a BFS tree): one leaf-to-root scan.
    pub fn cycle_space_labelling(&self, tree_depth: u64) -> u64 {
        tree_depth.max(1) + 1
    }
}

/// A named, ordered record of charged rounds.
///
/// # Example
///
/// ```
/// use congest::{CostModel, RoundLedger};
///
/// let model = CostModel::new(100, 10);
/// let mut ledger = RoundLedger::new(model);
/// ledger.charge("mst", model.mst_kutten_peleg());
/// ledger.charge("broadcast", model.broadcast(5));
/// assert_eq!(ledger.total(), model.mst_kutten_peleg() + model.broadcast(5));
/// assert_eq!(ledger.breakdown().len(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct RoundLedger {
    model: CostModel,
    total: u64,
    by_phase: BTreeMap<String, u64>,
}

impl RoundLedger {
    /// Creates an empty ledger for the given cost model.
    pub fn new(model: CostModel) -> Self {
        RoundLedger {
            model,
            total: 0,
            by_phase: BTreeMap::new(),
        }
    }

    /// The cost model this ledger charges against.
    pub fn model(&self) -> CostModel {
        self.model
    }

    /// Charges `rounds` rounds to the named phase.
    pub fn charge(&mut self, phase: &str, rounds: u64) {
        self.total += rounds;
        *self.by_phase.entry(phase.to_string()).or_insert(0) += rounds;
    }

    /// Total rounds charged so far.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Rounds charged to a particular phase (0 if never charged).
    pub fn phase(&self, phase: &str) -> u64 {
        self.by_phase.get(phase).copied().unwrap_or(0)
    }

    /// The per-phase breakdown, sorted by phase name.
    pub fn breakdown(&self) -> Vec<(String, u64)> {
        self.by_phase.iter().map(|(k, v)| (k.clone(), *v)).collect()
    }

    /// Merges another ledger into this one (summing phase-wise).
    pub fn absorb(&mut self, other: &RoundLedger) {
        for (phase, rounds) in &other.by_phase {
            self.charge(phase, *rounds);
        }
    }
}

impl fmt::Display for RoundLedger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "total rounds: {}", self.total)?;
        for (phase, rounds) in &self.by_phase {
            writeln!(f, "  {phase}: {rounds}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_model_parameters() {
        let m = CostModel::new(100, 7);
        assert_eq!(m.sqrt_n(), 10);
        assert_eq!(m.log_n(), 7);
        assert!(m.log_star_n() >= 2 && m.log_star_n() <= 4);
        assert_eq!(m.bfs_construction(), 8);
        assert_eq!(m.broadcast(3), 10);
        assert_eq!(m.convergecast(0), 7);
        assert_eq!(m.edge_exchange(), 1);
        assert_eq!(m.segment_scan(0), 1);
        assert_eq!(m.segment_scan(12), 12);
        assert_eq!(m.cycle_space_labelling(7), 8);
    }

    #[test]
    fn mst_cost_is_at_least_diameter_and_sqrt_n() {
        let m = CostModel::new(10_000, 5);
        assert!(m.mst_kutten_peleg() >= 5);
        assert!(m.mst_kutten_peleg() >= 100);
    }

    #[test]
    fn log_star_of_small_and_large() {
        assert_eq!(CostModel::new(2, 1).log_star_n(), 1);
        assert!(CostModel::new(1 << 20, 1).log_star_n() <= 5);
    }

    #[test]
    fn ledger_accumulates_and_breaks_down() {
        let m = CostModel::new(16, 3);
        let mut ledger = RoundLedger::new(m);
        ledger.charge("a", 5);
        ledger.charge("b", 7);
        ledger.charge("a", 2);
        assert_eq!(ledger.total(), 14);
        assert_eq!(ledger.phase("a"), 7);
        assert_eq!(ledger.phase("b"), 7);
        assert_eq!(ledger.phase("missing"), 0);
        assert_eq!(
            ledger.breakdown(),
            vec![("a".to_string(), 7), ("b".to_string(), 7)]
        );
        assert_eq!(ledger.model(), m);
    }

    #[test]
    fn ledger_absorb_merges_phasewise() {
        let m = CostModel::new(16, 3);
        let mut a = RoundLedger::new(m);
        a.charge("x", 1);
        let mut b = RoundLedger::new(m);
        b.charge("x", 2);
        b.charge("y", 3);
        a.absorb(&b);
        assert_eq!(a.total(), 6);
        assert_eq!(a.phase("x"), 3);
        assert_eq!(a.phase("y"), 3);
    }

    #[test]
    fn ledger_display_lists_phases() {
        let mut l = RoundLedger::new(CostModel::new(4, 2));
        l.charge("phase", 9);
        let s = l.to_string();
        assert!(s.contains("total rounds: 9"));
        assert!(s.contains("phase: 9"));
    }
}
