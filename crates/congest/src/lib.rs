//! A synchronous CONGEST-model simulator.
//!
//! The CONGEST model ([Peleg, *Distributed Computing: A Locality-Sensitive
//! Approach*]) is the setting of the paper reproduced by this workspace: the
//! input graph *is* the communication network, computation proceeds in
//! synchronous rounds, and in each round every vertex may send one message of
//! `O(log n)` bits over each incident edge.
//!
//! This crate provides:
//!
//! * [`Network`] — a deterministic round-by-round executor for per-node
//!   programs ([`NodeProgram`]) with message-size enforcement and round /
//!   message counters.
//! * [`programs`] — genuine message-passing implementations of the building
//!   blocks the paper uses: BFS-tree construction, leader election by
//!   flooding, tree broadcast / convergecast (including the pipelined
//!   `O(D + ℓ)` variant), and a Borůvka-style distributed MST.
//! * [`accounting`] — the round-cost model used by the higher-level k-ECSS
//!   algorithms in the `kecss` crate. The paper's algorithms are analysed as
//!   compositions of communication primitives with proven round costs; the
//!   [`accounting::RoundLedger`] charges exactly those costs per invocation
//!   and keeps a per-phase breakdown, so that measured round counts scale the
//!   way the theorems state. Where both a message-level program and an
//!   accounting entry exist (BFS, broadcast, convergecast, MST), tests check
//!   they are consistent.
//!
//! # Example
//!
//! ```
//! use graphs::generators;
//! use congest::{Network, programs::bfs::DistributedBfs};
//!
//! let g = generators::cycle(8, 1);
//! let net = Network::new(&g);
//! let outcome = net.run(DistributedBfs::programs(&g, 0), 100).expect("bfs terminates");
//! // The BFS tree of a cycle has depth n/2 and construction takes Theta(D) rounds.
//! assert!(outcome.report.rounds >= 4 && outcome.report.rounds <= 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod accounting;
pub mod message;
pub mod network;
pub mod node;
pub mod programs;

pub use accounting::{CostModel, RoundLedger};
pub use message::{Incoming, Message};
pub use network::{Network, NetworkError, Outcome, RunReport};
pub use node::{NodeContext, NodeProgram, Outgoing, StepResult};

// The `kecss_runtime` parallel round engine shares the network and moves
// messages between worker threads; lock the auto-trait guarantees in at
// compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Network>();
    assert_send_sync::<NodeContext>();
    assert_send_sync::<Message>();
    assert_send_sync::<Incoming>();
    assert_send_sync::<RunReport>();
};
