//! Per-node programs and their execution context.

use crate::message::{Incoming, Message};
use graphs::{EdgeId, NodeId, Weight};

/// Static, local knowledge a vertex has in the CONGEST model: its own id, the
/// number of vertices, and the ids / edge ids / weights of its incident edges.
///
/// This is exactly the initial knowledge the paper grants each vertex
/// (Section 1.3): "Initially all the vertices know the ids of their neighbors
/// and the weights of the edges adjacent to them".
#[derive(Clone, Debug)]
pub struct NodeContext {
    /// This vertex's id.
    pub id: NodeId,
    /// Number of vertices in the network (the paper assumes `n` is known; it
    /// can be learned in `O(D)` rounds otherwise).
    pub n: usize,
    /// Incident edges as `(neighbor, edge id, weight)` triples.
    pub neighbors: Vec<(NodeId, EdgeId, Weight)>,
}

impl NodeContext {
    /// Degree of this vertex.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// The edge id and weight of the edge towards `neighbor`, if adjacent.
    pub fn edge_to(&self, neighbor: NodeId) -> Option<(EdgeId, Weight)> {
        self.neighbors
            .iter()
            .find(|(v, _, _)| *v == neighbor)
            .map(|&(_, e, w)| (e, w))
    }
}

/// A message queued for sending to a specific neighbor at the end of a round.
#[derive(Clone, Debug)]
pub struct Outgoing {
    /// The neighbor to deliver to (must be adjacent; enforced by the network).
    pub to: NodeId,
    /// The payload.
    pub message: Message,
}

impl Outgoing {
    /// Convenience constructor.
    pub fn new(to: NodeId, message: Message) -> Self {
        Outgoing { to, message }
    }
}

/// What a node did in one round.
#[derive(Clone, Debug, Default)]
pub struct StepResult {
    /// Messages to deliver at the beginning of the next round.
    pub outgoing: Vec<Outgoing>,
    /// Whether this node has terminated. A terminated node is no longer
    /// stepped, and the run finishes when every node has terminated.
    pub done: bool,
}

impl StepResult {
    /// A step that sends nothing and keeps running.
    pub fn idle() -> Self {
        StepResult {
            outgoing: Vec::new(),
            done: false,
        }
    }

    /// A step that sends nothing and terminates the node.
    pub fn halt() -> Self {
        StepResult {
            outgoing: Vec::new(),
            done: true,
        }
    }

    /// A step that sends the given messages and keeps running.
    pub fn send(outgoing: Vec<Outgoing>) -> Self {
        StepResult {
            outgoing,
            done: false,
        }
    }

    /// A step that sends the given messages and terminates the node.
    pub fn send_and_halt(outgoing: Vec<Outgoing>) -> Self {
        StepResult {
            outgoing,
            done: true,
        }
    }
}

/// A per-node program executed by the [`crate::Network`].
///
/// One instance of the program exists per vertex. In every round the network
/// delivers the messages sent to this vertex in the previous round and calls
/// [`NodeProgram::step`]; the program performs arbitrary local computation
/// (free in the CONGEST model) and returns the messages to send.
pub trait NodeProgram {
    /// Called once before round 1 with no inbox; typically used by initiator
    /// vertices (e.g. the BFS root) to send their first messages.
    fn init(&mut self, ctx: &NodeContext) -> StepResult {
        let _ = ctx;
        StepResult::idle()
    }

    /// Called once per round with the messages received at the start of the
    /// round.
    fn step(&mut self, ctx: &NodeContext, round: u64, inbox: &[Incoming]) -> StepResult;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_context_edge_lookup() {
        let ctx = NodeContext {
            id: 0,
            n: 3,
            neighbors: vec![(1, EdgeId(0), 5), (2, EdgeId(1), 7)],
        };
        assert_eq!(ctx.degree(), 2);
        assert_eq!(ctx.edge_to(2), Some((EdgeId(1), 7)));
        assert_eq!(ctx.edge_to(0), None);
    }

    #[test]
    fn step_result_constructors() {
        assert!(!StepResult::idle().done);
        assert!(StepResult::halt().done);
        let s = StepResult::send(vec![Outgoing::new(1, Message::empty())]);
        assert_eq!(s.outgoing.len(), 1);
        assert!(!s.done);
        let s = StepResult::send_and_halt(vec![Outgoing::new(1, Message::empty())]);
        assert!(s.done);
    }
}
