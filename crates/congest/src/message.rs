//! Messages exchanged over edges in the CONGEST model.

use std::fmt;

/// A single CONGEST message: a short sequence of machine words.
///
/// In the CONGEST model a message carries `O(log n)` bits per round per edge.
/// A machine word (`u64`) comfortably holds a vertex id, an edge id, a weight
/// polynomial in `n`, or a random label of `O(log n)` bits, so the simulator
/// measures message size in *words* and the [`crate::Network`] enforces a
/// configurable per-message word budget (default
/// [`Message::DEFAULT_WORD_BUDGET`]).
///
/// # Example
///
/// ```
/// use congest::Message;
///
/// let m = Message::new([7, 42]);
/// assert_eq!(m.words(), &[7, 42]);
/// assert_eq!(m.len(), 2);
/// assert_eq!(m.word(1), Some(42));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Message {
    words: Vec<u64>,
}

impl Message {
    /// The default number of `u64` words a single message may carry.
    ///
    /// Three words correspond to "a constant number of ids/weights", the
    /// budget every message of the paper's algorithms fits in (e.g. an edge
    /// identified by its two endpoints plus one value).
    pub const DEFAULT_WORD_BUDGET: usize = 3;

    /// Creates a message from its words.
    pub fn new<I>(words: I) -> Self
    where
        I: IntoIterator<Item = u64>,
    {
        Message {
            words: words.into_iter().collect(),
        }
    }

    /// An empty message (a pure "pulse"); still counts as one message.
    pub fn empty() -> Self {
        Message { words: Vec::new() }
    }

    /// The words of the message.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the message carries no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// The `i`-th word, if present.
    pub fn word(&self, i: usize) -> Option<u64> {
        self.words.get(i).copied()
    }
}

impl fmt::Debug for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Message{:?}", self.words)
    }
}

impl From<u64> for Message {
    fn from(value: u64) -> Self {
        Message::new([value])
    }
}

impl From<Vec<u64>> for Message {
    fn from(words: Vec<u64>) -> Self {
        Message { words }
    }
}

/// A message received by a node, tagged with the sender.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Incoming {
    /// The vertex id of the sender (a neighbor in the communication graph).
    pub from: graphs::NodeId,
    /// The message payload.
    pub message: Message,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = Message::new([1, 2, 3]);
        assert_eq!(m.len(), 3);
        assert!(!m.is_empty());
        assert_eq!(m.word(0), Some(1));
        assert_eq!(m.word(3), None);
        let e = Message::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
    }

    #[test]
    fn conversions() {
        let a: Message = 9u64.into();
        assert_eq!(a.words(), &[9]);
        let b: Message = vec![4, 5].into();
        assert_eq!(b.words(), &[4, 5]);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", Message::empty()).is_empty());
    }
}
