//! Workspace-seam smoke test: ledger accounting plus one genuine
//! message-passing run through the public API only.

use congest::{programs::bfs::DistributedBfs, CostModel, Network, RoundLedger};
use graphs::generators;

#[test]
fn ledger_accounting_adds_up() {
    let model = CostModel::new(100, 10);
    let mut ledger = RoundLedger::new(model);
    ledger.charge("setup/bfs", model.bfs_construction());
    ledger.charge("solve/broadcast", model.broadcast(5));
    ledger.charge("solve/mst", model.mst_kutten_peleg());
    assert_eq!(
        ledger.total(),
        model.bfs_construction() + model.broadcast(5) + model.mst_kutten_peleg()
    );
    assert_eq!(ledger.phase("setup/bfs"), model.bfs_construction());
    let breakdown = ledger.breakdown();
    assert_eq!(breakdown.len(), 3);
    assert_eq!(
        breakdown.iter().map(|(_, r)| r).sum::<u64>(),
        ledger.total()
    );

    // Absorbing a ledger merges phase-wise.
    let mut other = RoundLedger::new(model);
    other.charge("solve/mst", 7);
    ledger.absorb(&other);
    assert_eq!(ledger.phase("solve/mst"), model.mst_kutten_peleg() + 7);
}

#[test]
fn bfs_program_runs_on_a_cycle() {
    let g = generators::cycle(8, 1);
    let net = Network::new(&g);
    let outcome = net
        .run(DistributedBfs::programs(&g, 0), 100)
        .expect("bfs terminates");
    // The cycle's BFS tree from any root has depth n/2 = 4.
    assert!(outcome.report.rounds >= 4);
    let (_, dists) = DistributedBfs::extract(&outcome);
    assert_eq!(dists.iter().copied().max(), Some(4));
}
