//! Workspace-seam smoke test: runs the headline solvers on one small
//! fixed-seed instance through the public API only.

use graphs::{connectivity, generators};
use kecss::{three_ecss, two_ecss};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn two_ecss_on_fixed_seed_instance() {
    let mut rng = ChaCha8Rng::seed_from_u64(11);
    let g = generators::random_weighted_k_edge_connected(24, 2, 20, 40, &mut rng);
    let sol = two_ecss::solve(&g, &mut rng).expect("instance is 2-edge-connected");
    assert!(connectivity::is_k_edge_connected_in(&g, &sol.subgraph, 2));
    assert!(sol.weight >= g.weight_of(&sol.tree));
    assert!(sol.ledger.total() > 0, "rounds must be charged");
}

#[test]
fn three_ecss_on_fixed_seed_instance() {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = generators::random_k_edge_connected(18, 3, 24, &mut rng);
    let sol = three_ecss::solve(&g, &mut rng).expect("instance is 3-edge-connected");
    assert!(connectivity::is_k_edge_connected_in(&g, &sol.subgraph, 3));
    assert!(sol.ledger.total() > 0);
}

#[test]
fn solver_rejects_underconnected_input() {
    let mut rng = ChaCha8Rng::seed_from_u64(17);
    let g = generators::path(6, 1);
    assert!(two_ecss::solve(&g, &mut rng).is_err());
}
