//! Enumeration of the small cuts that the augmentation algorithms must cover,
//! behind a pluggable [`CutEnumerator`] strategy architecture.
//!
//! `Aug_k` (Section 4) covers all cuts of size `k - 1` of a
//! `(k-1)`-edge-connected spanning subgraph `H`. Three strategies enumerate
//! those cuts, all sharing one contract — every candidate is *verified* by an
//! exact removal test (batch-parallel through a [`kecss_runtime::Executor`]),
//! so reported cuts are exact rather than w.h.p.:
//!
//! * [`ExactEnumerator`] — the specialized enumerators for sizes 1–3:
//!   bridges (Tarjan), cut pairs via cycle-space label classes (Section 5.2),
//!   and label triples XOR-ing to zero (Corollary 5.3).
//! * [`LabelEnumerator`] — the *general* label-class enumerator for arbitrary
//!   size: sample a random cycle-space labelling
//!   ([`Circulation::xor_zero_subsets`]) and enumerate the size-`s` edge
//!   subsets whose labels XOR to zero. An induced cut XORs to zero with
//!   certainty (a circulation crosses every cut evenly), so after
//!   verification this enumerator is **deterministically complete** for the
//!   induced cuts — its only failure mode is combinatorial cost, bounded by a
//!   candidate budget.
//! * [`ContractEnumerator`] — flat Karger-style repeated contraction (plus
//!   deterministic vertex-star and edge-pair seeds): `Θ(n² log n)`
//!   independent trials, each contracting from the full graph. Kept as the
//!   ablation baseline for the recursive variant below.
//! * [`KargerSteinEnumerator`] — the recursive Karger–Stein variant
//!   (DESIGN.md §12): contract to `⌈n/√2⌉ + 1` super-vertices, recurse twice
//!   with seeds derived from the recursion *path*, enumerate bipartitions
//!   exhaustively at the base. Sharing contraction prefixes cuts the total
//!   work to `O(n² log² n)` per repetition round; the independent repetition
//!   roots run on the [`Executor`] with results merged in path order, so
//!   `Threaded(n)` stays bit-identical to `Sequential`. Complete w.h.p.;
//!   `Aug_k` additionally certifies the augmented subgraph exactly and
//!   re-enumerates with fresh randomness on a miss, so the pipeline's
//!   *output* is always exact (the same contract the flat fallback had).
//!
//! [`AutoEnumerator`] picks per size: exact specializations for `1..=3`, the
//! label enumerator above that, Karger–Stein when the label budget trips.
//! This lifts the former `k <= 4` cap of the whole k-ECSS pipeline: any `k`
//! is now reachable (DESIGN.md §6).
//!
//! Because a `(k-1)`-edge-connected graph has at most `binom(n, 2)` minimum
//! cuts (the paper cites [19, 6]), the enumeration is polynomial in the
//! regime the driver uses it in (`size = λ(H)`); the verification step only
//! runs on filtered candidates, so false positives cost little.

mod karger_stein;

pub use karger_stein::KargerSteinEnumerator;

use crate::cycle_space::Circulation;
use crate::error::{Error, Result};
use graphs::{connectivity, dsu::DisjointSets, EdgeId, EdgeSet, Graph, NodeId, RootedTree};
use kecss_runtime::Executor;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;

/// The largest cut size the [`ExactEnumerator`] specializations handle.
/// Larger sizes go through [`LabelEnumerator`] / [`ContractEnumerator`]
/// (which is what [`AutoEnumerator`] arranges), so this is **not** a cap on
/// the pipeline's `k` any more.
pub const EXACT_MAX_CUT_SIZE: usize = 3;

/// Default budget on label-class candidate visits before the pool counts as
/// "exploded" and [`AutoEnumerator`] falls back to contraction.
pub const DEFAULT_LABEL_BUDGET: u64 = 4_000_000;

/// A single cut: the edge ids, sorted.
pub type Cut = Vec<EdgeId>;

/// Whether removing `cut` from the subgraph `(V, h)` disconnects it.
pub fn disconnects(graph: &Graph, h: &EdgeSet, cut: &[EdgeId]) -> bool {
    !connectivity::is_connected_after_removal(graph, h, cut)
}

/// Whether the edge `e` (an edge of `graph`, not necessarily of `h`) covers
/// the cut `cut` of the subgraph `(V, h)`: i.e. `(h \ cut) ∪ {e}` is
/// connected (Definition 2.1).
pub fn covers(graph: &Graph, h: &EdgeSet, cut: &[EdgeId], e: EdgeId) -> bool {
    let mut sub = h.clone();
    for c in cut {
        sub.remove(*c);
    }
    sub.insert(e);
    connectivity::is_connected_in(graph, &sub)
}

/// A strategy for enumerating the cuts of exactly `size` edges of a connected
/// subgraph `(V, h)`.
///
/// # Contract
///
/// * The result is sorted (each cut's ids ascending, cuts in lexicographic
///   order) and every reported cut is *verified*: its removal genuinely
///   disconnects `(V, h)`.
/// * When `h` is `size`-edge-connected — the regime the `Aug_k` driver always
///   calls from — the cuts of size `size` are exactly the minimum cuts, and
///   every implementation aims to report all of them ([`ExactEnumerator`] and
///   [`LabelEnumerator`] deterministically, [`ContractEnumerator`] w.h.p.).
///   When `h` has smaller cuts, non-induced edge subsets that happen to
///   disconnect (e.g. a bridge plus an arbitrary edge) are *not* reported,
///   matching the pre-refactor behavior.
/// * `salt` perturbs any internal randomness; implementations must be
///   deterministic functions of `(graph, h, size, salt)`, so results are
///   bit-identical for every `exec` (DESIGN.md §8). Either keep all RNG
///   draws on the calling thread, or — like [`KargerSteinEnumerator`] — give
///   every parallel work item an RNG seeded purely from `(salt, item path)`
///   and merge results in item order (DESIGN.md §12). Retrying with a fresh
///   `salt` re-rolls a randomized enumerator (and escalates its effort);
///   deterministic enumerators may ignore it.
///
/// # Errors
///
/// * [`Error::InvalidCutRequest`] if `size == 0`, `h` is disconnected, or the
///   strategy does not implement the requested size;
/// * [`Error::CandidateOverflow`] if a candidate budget was exceeded.
pub trait CutEnumerator: Sync {
    /// The strategy's display name (`exact`, `label`, `contract`, `auto`).
    fn name(&self) -> &'static str;

    /// Enumerates every cut of exactly `size` edges of `(V, h)`, verifying
    /// the candidates' removal tests through `exec`.
    fn cuts(
        &self,
        graph: &Graph,
        h: &EdgeSet,
        size: usize,
        salt: u64,
        exec: &Executor,
    ) -> Result<Vec<Cut>>;
}

/// Which [`CutEnumerator`] strategy to use; the CLI's `--enumerator` flag
/// parses into this.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EnumeratorPolicy {
    /// [`ExactEnumerator`]: sizes 1–3 only.
    Exact,
    /// [`LabelEnumerator`]: any size, bounded by the candidate budget.
    Label,
    /// [`ContractEnumerator`]: any size, randomized flat contraction.
    Contract,
    /// [`KargerSteinEnumerator`]: any size, recursive contraction.
    Ks,
    /// [`AutoEnumerator`]: exact below 4, label above, Karger–Stein fallback.
    #[default]
    Auto,
}

impl EnumeratorPolicy {
    /// Parses a policy name as used by the CLI flag.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "exact" => Some(EnumeratorPolicy::Exact),
            "label" => Some(EnumeratorPolicy::Label),
            "contract" => Some(EnumeratorPolicy::Contract),
            "ks" => Some(EnumeratorPolicy::Ks),
            "auto" => Some(EnumeratorPolicy::Auto),
            _ => None,
        }
    }

    /// The policy's canonical name.
    pub fn name(self) -> &'static str {
        match self {
            EnumeratorPolicy::Exact => "exact",
            EnumeratorPolicy::Label => "label",
            EnumeratorPolicy::Contract => "contract",
            EnumeratorPolicy::Ks => "ks",
            EnumeratorPolicy::Auto => "auto",
        }
    }

    /// Builds the corresponding enumerator with default parameters.
    pub fn build(self) -> Box<dyn CutEnumerator + Send + Sync> {
        match self {
            EnumeratorPolicy::Exact => Box::new(ExactEnumerator),
            EnumeratorPolicy::Label => Box::new(LabelEnumerator::default()),
            EnumeratorPolicy::Contract => Box::new(ContractEnumerator::default()),
            EnumeratorPolicy::Ks => Box::new(KargerSteinEnumerator::default()),
            EnumeratorPolicy::Auto => Box::new(AutoEnumerator::default()),
        }
    }
}

/// Validates the common preconditions shared by every enumerator.
fn check_request(graph: &Graph, h: &EdgeSet, size: usize) -> Result<()> {
    if size == 0 {
        return Err(Error::InvalidCutRequest {
            reason: "cut size must be at least 1".into(),
        });
    }
    if !connectivity::is_connected_in(graph, h) {
        return Err(Error::InvalidCutRequest {
            reason: "cut enumeration requires a connected subgraph".into(),
        });
    }
    Ok(())
}

/// Keeps the candidates whose removal disconnects `(V, h)`, running the
/// (independent) removal tests through `exec` in batches. Counts the batch
/// in the per-strategy `solver_enum_*` metrics (observation only — the
/// verdicts and their order are untouched).
fn verify_candidates(
    graph: &Graph,
    h: &EdgeSet,
    candidates: Vec<Cut>,
    exec: &Executor,
    strategy: &'static str,
) -> Vec<Cut> {
    kecss_obs::counter_with("solver_enum_candidates_total", &[("strategy", strategy)])
        .add(candidates.len() as u64);
    let verdicts = exec.map(&candidates, |cut| disconnects(graph, h, cut));
    let out: Vec<Cut> = candidates
        .into_iter()
        .zip(verdicts)
        .filter_map(|(cut, is_cut)| is_cut.then_some(cut))
        .collect();
    kecss_obs::counter_with("solver_enum_cuts_total", &[("strategy", strategy)])
        .add(out.len() as u64);
    out
}

/// The base seed of the enumeration labellings. With `salt = 0` the sampled
/// circulation is bit-identical to the pre-refactor enumerators'.
const LABEL_SEED: u64 = 0x6b65_6373_735f_6375;

fn labels_for(graph: &Graph, h: &EdgeSet, salt: u64) -> Circulation {
    // The seed is arbitrary: label equality is only used to *filter*
    // candidates, every candidate is verified exactly, and real induced cuts
    // always pass the filter (one-sided error). `salt` re-rolls the labels on
    // certification retries.
    let mut rng = ChaCha8Rng::seed_from_u64(LABEL_SEED ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let bfs = graphs::bfs::bfs_in(graph, h, 0);
    let tree = RootedTree::new(graph, &bfs.tree_edges(graph), bfs.root);
    Circulation::sample(graph, h, &tree, 64, &mut rng)
}

/// The exact specializations for cut sizes 1–3 (the pre-refactor
/// enumerators): bridges, label-class cut pairs, XOR-zero label triples.
///
/// Deterministically complete on its sizes; requests for size > 3 return
/// [`Error::InvalidCutRequest`] — use [`LabelEnumerator`],
/// [`ContractEnumerator`] or [`AutoEnumerator`] instead.
#[derive(Clone, Copy, Debug, Default)]
pub struct ExactEnumerator;

impl CutEnumerator for ExactEnumerator {
    fn name(&self) -> &'static str {
        "exact"
    }

    fn cuts(
        &self,
        graph: &Graph,
        h: &EdgeSet,
        size: usize,
        salt: u64,
        exec: &Executor,
    ) -> Result<Vec<Cut>> {
        check_request(graph, h, size)?;
        match size {
            1 => {
                let bridges: Vec<Cut> = connectivity::bridges_in(graph, h)
                    .into_iter()
                    .map(|b| vec![b])
                    .collect();
                let n = bridges.len() as u64;
                kecss_obs::counter_with("solver_enum_candidates_total", &[("strategy", "exact")])
                    .add(n);
                kecss_obs::counter_with("solver_enum_cuts_total", &[("strategy", "exact")]).add(n);
                Ok(bridges)
            }
            2 => Ok(cut_pairs(graph, h, salt, exec)),
            3 => Ok(cut_triples(graph, h, salt, exec)),
            _ => Err(Error::InvalidCutRequest {
                reason: format!(
                    "the exact enumerator handles cut sizes 1..={EXACT_MAX_CUT_SIZE}, \
                     got {size}; use the 'label', 'contract' or 'auto' strategy"
                ),
            }),
        }
    }
}

/// All cuts of size exactly 2 (cut pairs) of the connected subgraph `(V, h)`.
fn cut_pairs(graph: &Graph, h: &EdgeSet, salt: u64, exec: &Executor) -> Vec<Cut> {
    let circulation = labels_for(graph, h, salt);
    let mut candidates = Vec::new();
    for class in circulation.label_classes(h) {
        for i in 0..class.len() {
            for j in (i + 1)..class.len() {
                candidates.push(vec![class[i], class[j]]);
            }
        }
    }
    let mut out = verify_candidates(graph, h, candidates, exec, "exact");
    out.sort();
    out
}

/// All cuts of size exactly 3 of the connected subgraph `(V, h)`.
fn cut_triples(graph: &Graph, h: &EdgeSet, salt: u64, exec: &Executor) -> Vec<Cut> {
    let circulation = labels_for(graph, h, salt);
    let ids: Vec<EdgeId> = h.iter().collect();
    // label -> edges with that label, for completing pairs into XOR-zero triples.
    let mut by_label: std::collections::HashMap<u64, Vec<EdgeId>> =
        std::collections::HashMap::new();
    for &id in &ids {
        by_label
            .entry(circulation.label(id).expect("edge of h has a label"))
            .or_default()
            .push(id);
    }
    let mut candidates = Vec::new();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let a = ids[i];
            let b = ids[j];
            let want = circulation.label(a).unwrap() ^ circulation.label(b).unwrap();
            let Some(completions) = by_label.get(&want) else {
                continue;
            };
            for &c in completions {
                if c <= b {
                    continue;
                }
                candidates.push(vec![a, b, c]);
            }
        }
    }
    let mut out = verify_candidates(graph, h, candidates, exec, "exact");
    out.sort();
    out
}

/// The general cycle-space label enumerator for arbitrary cut size
/// (Corollary 5.3 generalized): enumerate the size-`s` edge subsets of `h`
/// whose sampled 64-bit labels XOR to zero, then verify each by an exact
/// removal test. Induced cuts XOR to zero with certainty, so the result is
/// deterministically complete for the induced cuts of `(V, h)` — at a
/// combinatorial candidate-generation cost of `O(binom(|h|, size - 1))`,
/// bounded by `budget`.
#[derive(Clone, Copy, Debug)]
pub struct LabelEnumerator {
    /// Maximum candidate visits before [`Error::CandidateOverflow`].
    pub budget: u64,
}

impl Default for LabelEnumerator {
    fn default() -> Self {
        LabelEnumerator {
            budget: DEFAULT_LABEL_BUDGET,
        }
    }
}

impl LabelEnumerator {
    /// A label enumerator with an explicit candidate budget.
    pub fn with_budget(budget: u64) -> Self {
        LabelEnumerator { budget }
    }
}

impl CutEnumerator for LabelEnumerator {
    fn name(&self) -> &'static str {
        "label"
    }

    fn cuts(
        &self,
        graph: &Graph,
        h: &EdgeSet,
        size: usize,
        salt: u64,
        exec: &Executor,
    ) -> Result<Vec<Cut>> {
        check_request(graph, h, size)?;
        let circulation = labels_for(graph, h, salt);
        let Some(candidates) = circulation.xor_zero_subsets(h, size, self.budget) else {
            kecss_obs::counter_with("solver_enum_overflow_total", &[("strategy", "label")]).inc();
            return Err(Error::CandidateOverflow {
                size,
                budget: self.budget,
            });
        };
        let mut out = verify_candidates(graph, h, candidates, exec, "label");
        out.sort();
        Ok(out)
    }
}

/// The base seed of the contraction trials (mixed with the salt).
const CONTRACT_SEED: u64 = 0xc027_7ac7_10e5_eed5;

/// `⌈log2 n⌉` (1 for `n <= 2`) — the integer log the contraction effort
/// formulas are built from, keeping the hot path float-free and
/// platform-independent.
pub(crate) fn ceil_log2(n: usize) -> u64 {
    u64::from(u64::BITS - (n.max(2) as u64 - 1).leading_zeros())
}

/// An integer upper bound on `⌈ln n⌉`: `⌈0.693 · ⌈log2 n⌉⌉`. Agrees with the
/// float formula at every power of two (in particular the bench workloads'
/// sizes) and is never smaller, so the w.h.p. trial-count argument carries
/// over unchanged.
pub(crate) fn ceil_ln(n: usize) -> u64 {
    (ceil_log2(n) * 693).div_ceil(1000)
}

/// Inserts the deterministic candidate seeds shared by the contraction
/// enumerators into `candidates`: vertex stars `δ(v)` and adjacent-pair
/// boundaries `δ({u, v})` whose crossing size matches. These cover the
/// common minimum cuts of near-regular graphs before any random trial runs.
fn seed_candidates(graph: &Graph, h: &EdgeSet, size: usize, candidates: &mut BTreeSet<Cut>) {
    let star = |v: NodeId| -> Vec<EdgeId> {
        graph
            .neighbors(v)
            .iter()
            .filter(|(_, id)| h.contains(*id))
            .map(|&(_, id)| id)
            .collect()
    };
    for v in 0..graph.n() {
        let mut s = star(v);
        if s.len() == size {
            s.sort();
            candidates.insert(s);
        }
    }
    for id in h.iter() {
        let e = graph.edge(id);
        let mut boundary: Vec<EdgeId> = star(e.u)
            .into_iter()
            .chain(star(e.v))
            .filter(|&b| {
                let be = graph.edge(b);
                !(be.has_endpoint(e.u) && be.has_endpoint(e.v))
            })
            .collect();
        if boundary.len() == size {
            boundary.sort();
            candidates.insert(boundary);
        }
    }
}

/// Flat Karger-style randomized contraction for arbitrary cut size:
/// repeatedly contract uniformly random edges of `h` until two
/// super-vertices remain; the crossing edges form an induced cut, kept when
/// its size matches. The deterministic candidate seeds of
/// [`seed_candidates`] run first. Every candidate is still verified by the
/// exact removal test.
///
/// With `trials = Θ(n² log n)` every minimum cut is found w.h.p. (each
/// survives one contraction with probability `≥ 2/(n(n-1))`); the default
/// trial count uses that formula. The `salt` doubles the trial count on each
/// certification retry (up to 32×) in addition to re-seeding the RNG, so the
/// `Aug_k` retry loop escalates rather than replays.
///
/// This is the ablation baseline for [`KargerSteinEnumerator`], which shares
/// contraction prefixes through recursion instead of restarting every trial
/// from the full graph. The trial loop reuses one shuffle order, one
/// [`DisjointSets`] forest and one cut buffer across all trials — no
/// per-trial allocation.
#[derive(Clone, Copy, Debug, Default)]
pub struct ContractEnumerator {
    /// Number of contraction trials; `None` uses [`ContractEnumerator::default_trials`].
    pub trials: Option<u64>,
}

impl ContractEnumerator {
    /// A contraction enumerator with an explicit trial count.
    pub fn with_trials(trials: u64) -> Self {
        ContractEnumerator {
            trials: Some(trials),
        }
    }

    /// The default trial count for an `n`-vertex subgraph: `2 n² ⌈ln n⌉`,
    /// at least 512, with the log computed by the integer bound [`ceil_ln`]
    /// (no floats on the hot path).
    pub fn default_trials(n: usize) -> u64 {
        let n = n as u64;
        (2 * n * n * ceil_ln(n as usize)).max(512)
    }
}

impl CutEnumerator for ContractEnumerator {
    fn name(&self) -> &'static str {
        "contract"
    }

    fn cuts(
        &self,
        graph: &Graph,
        h: &EdgeSet,
        size: usize,
        salt: u64,
        exec: &Executor,
    ) -> Result<Vec<Cut>> {
        check_request(graph, h, size)?;
        let n = graph.n();
        let ids: Vec<EdgeId> = h.iter().collect();
        // The endpoints of every edge of h, hoisted out of the trial loop.
        let ends: Vec<(NodeId, NodeId)> = ids
            .iter()
            .map(|&id| {
                let e = graph.edge(id);
                (e.u, e.v)
            })
            .collect();
        // BTreeSet: dedups across trials and yields candidates in sorted
        // (deterministic) order for the batch verification.
        let mut candidates: BTreeSet<Cut> = BTreeSet::new();
        seed_candidates(graph, h, size, &mut candidates);

        // Randomized contraction trials. All RNG draws stay on the calling
        // thread (DESIGN.md §8); only the removal verification parallelizes.
        // The shuffle order, the union-find forest and the candidate buffer
        // are allocated once and reset per trial.
        let base = self.trials.unwrap_or_else(|| Self::default_trials(n));
        let trials = base.saturating_mul(1u64 << salt.min(5));
        let mut rng =
            ChaCha8Rng::seed_from_u64(CONTRACT_SEED ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut order: Vec<usize> = (0..ids.len()).collect();
        let mut dsu = DisjointSets::new(n);
        let mut cut_buf: Cut = Vec::with_capacity(size);
        for trial in 0..trials {
            order.shuffle(&mut rng);
            if trial > 0 {
                dsu.reset();
            }
            for &i in &order {
                if dsu.component_count() == 2 {
                    break;
                }
                let (u, v) = ends[i];
                dsu.union(u, v);
            }
            if dsu.component_count() != 2 {
                continue;
            }
            cut_buf.clear();
            cut_buf.extend(
                ids.iter()
                    .zip(&ends)
                    .filter(|&(_, &(u, v))| dsu.find(u) != dsu.find(v))
                    .map(|(&id, _)| id),
            );
            if cut_buf.len() == size && !candidates.contains(cut_buf.as_slice()) {
                candidates.insert(cut_buf.clone());
            }
        }

        let candidates: Vec<Cut> = candidates.into_iter().collect();
        let mut out = verify_candidates(graph, h, candidates, exec, "contract");
        out.sort();
        Ok(out)
    }
}

/// The per-size policy: [`ExactEnumerator`] for sizes `1..=3`,
/// [`LabelEnumerator`] above, and the [`KargerSteinEnumerator`] fallback
/// when the label-class candidate pool explodes (the flat
/// [`ContractEnumerator`] stays available as the `contract` ablation
/// strategy). This is the default everywhere.
#[derive(Clone, Copy, Debug)]
pub struct AutoEnumerator {
    /// Budget for the label stage (see [`LabelEnumerator`]).
    pub label_budget: u64,
    /// Repetition override for the Karger–Stein fallback (see
    /// [`KargerSteinEnumerator`]).
    pub repetitions: Option<u64>,
}

impl Default for AutoEnumerator {
    fn default() -> Self {
        AutoEnumerator {
            label_budget: DEFAULT_LABEL_BUDGET,
            repetitions: None,
        }
    }
}

impl CutEnumerator for AutoEnumerator {
    fn name(&self) -> &'static str {
        "auto"
    }

    fn cuts(
        &self,
        graph: &Graph,
        h: &EdgeSet,
        size: usize,
        salt: u64,
        exec: &Executor,
    ) -> Result<Vec<Cut>> {
        if size <= EXACT_MAX_CUT_SIZE {
            return ExactEnumerator.cuts(graph, h, size, salt, exec);
        }
        match LabelEnumerator::with_budget(self.label_budget).cuts(graph, h, size, salt, exec) {
            Err(Error::CandidateOverflow { .. }) => {
                kecss_obs::counter_with(
                    "solver_enum_fallback_total",
                    &[("from", "label"), ("to", "ks")],
                )
                .inc();
                kecss_obs::event("enum_fallback", &[("from", "label"), ("to", "ks")]);
                KargerSteinEnumerator {
                    repetitions: self.repetitions,
                }
                .cuts(graph, h, size, salt, exec)
            }
            other => other,
        }
    }
}

/// Enumerates every cut of exactly `size` edges of the connected subgraph
/// `(V, h)` with the default [`AutoEnumerator`] policy.
///
/// The subgraph being `size`-edge-connected *or better is not required*:
/// cuts smaller than `size` may exist and are not reported; the augmentation
/// driver always calls this with `size = k - 1` on a `(k-1)`-edge-connected
/// `H`, where the reported cuts are exactly the minimum cuts.
///
/// # Errors
///
/// [`Error::InvalidCutRequest`] if `size` is 0 or `h` is disconnected.
pub fn cuts_of_size(graph: &Graph, h: &EdgeSet, size: usize) -> Result<Vec<Cut>> {
    cuts_of_size_with(graph, h, size, &Executor::Sequential)
}

/// Same as [`cuts_of_size`], verifying the filtered candidates through
/// `exec`: the removal test of each candidate is independent, so candidates
/// are checked in parallel. The result is bit-identical to the sequential
/// enumeration for every executor (candidates are generated, verified and
/// collected in a fixed order).
///
/// # Errors
///
/// Same conditions as [`cuts_of_size`].
pub fn cuts_of_size_with(
    graph: &Graph,
    h: &EdgeSet,
    size: usize,
    exec: &Executor,
) -> Result<Vec<Cut>> {
    AutoEnumerator::default().cuts(graph, h, size, 0, exec)
}

/// A family of cuts of a subgraph `H`, with the bipartition of each cut
/// precomputed so that "does edge `e` cover cut `C`?" is an `O(1)` query.
///
/// For a minimal cut `C` of a connected `H`, `H \ C` has exactly two
/// connected components; an edge covers the cut iff its endpoints lie in
/// different components.
#[derive(Clone, Debug)]
pub struct CutFamily {
    cuts: Vec<Cut>,
    /// `sides[c][v]` — the side of vertex `v` for cut `c`.
    sides: Vec<Vec<bool>>,
}

impl CutFamily {
    /// Enumerates all cuts of exactly `size` edges of `(V, h)` with the
    /// default [`AutoEnumerator`] and precomputes their bipartitions.
    ///
    /// # Errors
    ///
    /// Same conditions as [`cuts_of_size`].
    ///
    /// # Panics
    ///
    /// Panics if some enumerated cut does not split `H` into exactly two
    /// components (which cannot happen for minimum cuts of a
    /// `size`-edge-connected `H`).
    pub fn enumerate(graph: &Graph, h: &EdgeSet, size: usize) -> Result<Self> {
        Self::enumerate_with(graph, h, size, &Executor::Sequential)
    }

    /// Same as [`CutFamily::enumerate`], running both the candidate removal
    /// tests and the per-cut bipartitions through `exec` (each cut's
    /// bipartition is an independent connected-components computation).
    /// Bit-identical to the sequential enumeration for every executor.
    ///
    /// # Errors
    ///
    /// Same conditions as [`CutFamily::enumerate`].
    pub fn enumerate_with(
        graph: &Graph,
        h: &EdgeSet,
        size: usize,
        exec: &Executor,
    ) -> Result<Self> {
        Self::enumerate_with_enumerator(graph, h, size, &AutoEnumerator::default(), 0, exec)
    }

    /// The most general entry point: enumerate through an explicit
    /// [`CutEnumerator`] strategy and `salt`.
    ///
    /// # Errors
    ///
    /// Whatever `enumerator` returns for the request.
    pub fn enumerate_with_enumerator(
        graph: &Graph,
        h: &EdgeSet,
        size: usize,
        enumerator: &dyn CutEnumerator,
        salt: u64,
        exec: &Executor,
    ) -> Result<Self> {
        let cuts = enumerator.cuts(graph, h, size, salt, exec)?;
        Ok(Self::from_cuts_with(graph, h, cuts, exec))
    }

    /// Builds a family from explicitly provided cuts.
    ///
    /// # Panics
    ///
    /// Panics if some cut does not split `(V, h)` into exactly two components.
    pub fn from_cuts(graph: &Graph, h: &EdgeSet, cuts: Vec<Cut>) -> Self {
        Self::from_cuts_with(graph, h, cuts, &Executor::Sequential)
    }

    /// Same as [`CutFamily::from_cuts`], computing the bipartitions through
    /// `exec`.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CutFamily::from_cuts`].
    pub fn from_cuts_with(graph: &Graph, h: &EdgeSet, cuts: Vec<Cut>, exec: &Executor) -> Self {
        let sides = exec.map(&cuts, |cut| bipartition(graph, h, cut));
        CutFamily { cuts, sides }
    }

    /// Keeps only the cuts whose index satisfies `keep`, carrying their
    /// precomputed bipartitions along (no recomputation).
    pub fn retain(&mut self, mut keep: impl FnMut(usize) -> bool) {
        let flags: Vec<bool> = (0..self.cuts.len()).map(&mut keep).collect();
        let mut cut_index = 0;
        self.cuts.retain(|_| {
            cut_index += 1;
            flags[cut_index - 1]
        });
        let mut side_index = 0;
        self.sides.retain(|_| {
            side_index += 1;
            flags[side_index - 1]
        });
    }

    /// Number of cuts in the family.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// The `i`-th cut.
    pub fn cut(&self, i: usize) -> &[EdgeId] {
        &self.cuts[i]
    }

    /// All cuts.
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// Whether the edge with endpoints `u`, `v` covers the `i`-th cut.
    pub fn crossed_by(&self, i: usize, u: NodeId, v: NodeId) -> bool {
        self.sides[i][u] != self.sides[i][v]
    }

    /// The indices of the cuts covered by an edge `{u, v}`.
    pub fn covered_by(&self, u: NodeId, v: NodeId) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.crossed_by(i, u, v))
            .collect()
    }
}

/// The two-sided partition of `V` obtained by removing `cut` from `(V, h)`.
///
/// # Panics
///
/// Panics if the removal does not yield exactly two components.
fn bipartition(graph: &Graph, h: &EdgeSet, cut: &[EdgeId]) -> Vec<bool> {
    let mut sub = h.clone();
    for c in cut {
        sub.remove(*c);
    }
    let (labels, count) = connectivity::connected_components_in(graph, &sub);
    assert_eq!(
        count, 2,
        "a minimal cut must split the subgraph into exactly two components, got {count}"
    );
    let reference = labels[0];
    labels.iter().map(|&l| l == reference).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;

    /// Exhaustive ground truth: all `size`-subsets of `h` that disconnect
    /// and are *induced* (split into exactly two components). Shared with
    /// the `karger_stein` submodule's tests.
    pub(crate) fn naive_induced_cuts(g: &Graph, h: &EdgeSet, size: usize) -> Vec<Cut> {
        let ids: Vec<EdgeId> = h.iter().collect();
        let mut out = Vec::new();
        fn rec(
            g: &Graph,
            h: &EdgeSet,
            ids: &[EdgeId],
            size: usize,
            start: usize,
            subset: &mut Vec<EdgeId>,
            out: &mut Vec<Cut>,
        ) {
            if subset.len() == size {
                let mut sub = h.clone();
                for c in subset.iter() {
                    sub.remove(*c);
                }
                let (_, count) = connectivity::connected_components_in(g, &sub);
                if count == 2 {
                    out.push(subset.clone());
                }
                return;
            }
            for i in start..ids.len() {
                subset.push(ids[i]);
                rec(g, h, ids, size, i + 1, subset, out);
                subset.pop();
            }
        }
        let mut buf = Vec::new();
        rec(g, h, &ids, size, 0, &mut buf, &mut out);
        out.sort();
        out
    }

    #[test]
    fn bridges_are_the_size_one_cuts() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 1);
        let bridge = g.add_edge(2, 3, 1);
        let cuts = cuts_of_size(&g, &g.full_edge_set(), 1).unwrap();
        assert_eq!(cuts, vec![vec![bridge]]);
    }

    #[test]
    fn cycle_has_all_pairs_as_cuts() {
        let g = generators::cycle(5, 1);
        let cuts = cuts_of_size(&g, &g.full_edge_set(), 2).unwrap();
        assert_eq!(cuts.len(), 5 * 4 / 2);
    }

    #[test]
    fn cut_pairs_match_naive_enumeration() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for n in [8, 12] {
            let g = generators::random_k_edge_connected(n, 2, 4, &mut rng);
            let h = g.full_edge_set();
            let fast = cuts_of_size(&g, &h, 2).unwrap();
            let ids: Vec<EdgeId> = h.iter().collect();
            let mut naive = Vec::new();
            for i in 0..ids.len() {
                for j in (i + 1)..ids.len() {
                    if disconnects(&g, &h, &[ids[i], ids[j]]) {
                        naive.push(vec![ids[i], ids[j]]);
                    }
                }
            }
            naive.sort();
            assert_eq!(fast, naive, "n = {n}");
        }
    }

    #[test]
    fn triples_on_k4_are_the_vertex_stars() {
        // K4 is 3-edge-connected; its size-3 cuts are exactly the four
        // vertex-isolating cuts δ(v).
        let g = generators::complete(4, 1);
        let h = g.full_edge_set();
        assert_eq!(connectivity::edge_connectivity(&g), 3);
        let cuts = cuts_of_size(&g, &h, 3).unwrap();
        assert_eq!(cuts.len(), 4);
        for cut in &cuts {
            assert!(disconnects(&g, &h, cut));
            // A vertex star: all three edges share a vertex.
            let edges: Vec<_> = cut.iter().map(|&id| g.edge(id)).collect();
            let shared = (0..4).find(|&v| edges.iter().all(|e| e.has_endpoint(v)));
            assert!(shared.is_some(), "cut {cut:?} is not a vertex star");
        }
    }

    #[test]
    fn triples_match_naive_enumeration_on_random_graph() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::random_k_edge_connected(10, 3, 2, &mut rng);
        let h = g.full_edge_set();
        let fast = cuts_of_size(&g, &h, 3).unwrap();
        let ids: Vec<EdgeId> = h.iter().collect();
        let mut naive = Vec::new();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                for l in (j + 1)..ids.len() {
                    let cut = vec![ids[i], ids[j], ids[l]];
                    if disconnects(&g, &h, &cut) {
                        naive.push(cut);
                    }
                }
            }
        }
        naive.sort();
        assert_eq!(fast, naive);
    }

    #[test]
    fn covers_matches_definition() {
        let g = generators::cycle(6, 1);
        let h = g.full_edge_set();
        let cut = vec![EdgeId(0), EdgeId(3)];
        assert!(disconnects(&g, &h, &cut));
        // An edge of the cut itself covers it (re-inserting it reconnects).
        assert!(covers(&g, &h, &cut, EdgeId(0)));
    }

    #[test]
    fn cut_family_cover_queries_match_covers() {
        let mut g = graphs::Graph::new(6);
        // 6-cycle plus one chord.
        for v in 0..6 {
            g.add_edge(v, (v + 1) % 6, 1);
        }
        let chord = g.add_edge(0, 3, 1);
        let mut h = g.full_edge_set();
        h.remove(chord);
        let family = CutFamily::enumerate(&g, &h, 2).unwrap();
        assert_eq!(family.len(), 6 * 5 / 2);
        assert!(!family.is_empty());
        for i in 0..family.len() {
            let cut = family.cut(i).to_vec();
            let e = g.edge(chord);
            assert_eq!(
                family.crossed_by(i, e.u, e.v),
                covers(&g, &h, &cut, chord),
                "cut {cut:?}"
            );
        }
        let covered = family.covered_by(0, 3);
        assert!(!covered.is_empty());
    }

    #[test]
    fn zero_size_and_disconnected_requests_are_errors() {
        let g = generators::cycle(4, 1);
        let err = cuts_of_size(&g, &g.full_edge_set(), 0).unwrap_err();
        assert!(matches!(err, Error::InvalidCutRequest { .. }));
        let mut disconnected = Graph::new(4);
        disconnected.add_edge(0, 1, 1);
        disconnected.add_edge(2, 3, 1);
        let err = cuts_of_size(&disconnected, &disconnected.full_edge_set(), 1).unwrap_err();
        assert!(matches!(err, Error::InvalidCutRequest { .. }));
    }

    #[test]
    fn exact_enumerator_rejects_large_sizes_but_auto_handles_them() {
        let g = generators::torus(3, 4, 1);
        let h = g.full_edge_set();
        let exec = Executor::Sequential;
        let err = ExactEnumerator.cuts(&g, &h, 4, 0, &exec).unwrap_err();
        assert!(matches!(err, Error::InvalidCutRequest { .. }));
        // The 3x4 torus is 4-edge-connected; auto must enumerate its 4-cuts.
        let cuts = cuts_of_size(&g, &h, 4).unwrap();
        assert!(!cuts.is_empty());
        assert_eq!(cuts, naive_induced_cuts(&g, &h, 4));
    }

    #[test]
    fn label_enumerator_matches_naive_induced_cuts_size_four() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let g = generators::random_k_edge_connected(9, 4, 3, &mut rng);
        let h = g.full_edge_set();
        let cuts = LabelEnumerator::default()
            .cuts(&g, &h, 4, 0, &Executor::Sequential)
            .unwrap();
        assert_eq!(cuts, naive_induced_cuts(&g, &h, 4));
    }

    #[test]
    fn contract_enumerator_matches_naive_induced_cuts_size_four() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::random_k_edge_connected(9, 4, 3, &mut rng);
        let h = g.full_edge_set();
        let cuts = ContractEnumerator::default()
            .cuts(&g, &h, 4, 0, &Executor::Sequential)
            .unwrap();
        assert_eq!(cuts, naive_induced_cuts(&g, &h, 4));
    }

    #[test]
    fn label_budget_overflow_is_reported_and_auto_falls_back() {
        let g = generators::torus(3, 4, 1);
        let h = g.full_edge_set();
        let exec = Executor::Sequential;
        let tiny = LabelEnumerator::with_budget(8);
        let err = tiny.cuts(&g, &h, 4, 0, &exec).unwrap_err();
        assert!(matches!(err, Error::CandidateOverflow { size: 4, .. }));
        let auto = AutoEnumerator {
            label_budget: 8,
            repetitions: None,
        };
        let via_fallback = auto.cuts(&g, &h, 4, 0, &exec).unwrap();
        assert_eq!(via_fallback, naive_induced_cuts(&g, &h, 4));
    }

    #[test]
    fn strategies_agree_on_legacy_sizes() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(12);
        let exec = Executor::Sequential;
        for (n, k, size) in [(10, 2, 1), (10, 2, 2), (10, 3, 3)] {
            let g = generators::random_k_edge_connected(n, k, 4, &mut rng);
            let mut h = g.full_edge_set();
            if size < k {
                let id = h.iter().next().unwrap();
                let mut candidate = h.clone();
                candidate.remove(id);
                if connectivity::is_connected_in(&g, &candidate) {
                    h = candidate;
                }
            }
            let exact = ExactEnumerator.cuts(&g, &h, size, 0, &exec).unwrap();
            let label = LabelEnumerator::default()
                .cuts(&g, &h, size, 0, &exec)
                .unwrap();
            let contract = ContractEnumerator::default()
                .cuts(&g, &h, size, 0, &exec)
                .unwrap();
            assert_eq!(label, exact, "label vs exact, size {size}");
            assert_eq!(contract, exact, "contract vs exact, size {size}");
        }
    }

    #[test]
    fn salt_changes_labels_but_not_results() {
        let g = generators::torus(3, 4, 1);
        let h = g.full_edge_set();
        let exec = Executor::Sequential;
        let base = LabelEnumerator::default()
            .cuts(&g, &h, 4, 0, &exec)
            .unwrap();
        for salt in 1..4 {
            let salted = LabelEnumerator::default()
                .cuts(&g, &h, 4, salt, &exec)
                .unwrap();
            assert_eq!(salted, base, "salt {salt}");
        }
    }

    #[test]
    fn policy_parse_and_build_round_trip() {
        for (name, policy) in [
            ("exact", EnumeratorPolicy::Exact),
            ("label", EnumeratorPolicy::Label),
            ("contract", EnumeratorPolicy::Contract),
            ("ks", EnumeratorPolicy::Ks),
            ("auto", EnumeratorPolicy::Auto),
        ] {
            assert_eq!(EnumeratorPolicy::parse(name), Some(policy));
            assert_eq!(policy.name(), name);
            assert_eq!(policy.build().name(), name);
        }
        assert_eq!(EnumeratorPolicy::parse("magic"), None);
        assert_eq!(EnumeratorPolicy::default(), EnumeratorPolicy::Auto);
    }

    #[test]
    fn no_cut_pairs_in_three_connected_graph() {
        let g = generators::harary(3, 8, 1);
        assert!(cuts_of_size(&g, &g.full_edge_set(), 2).unwrap().is_empty());
    }

    #[test]
    fn parallel_enumeration_is_bit_identical_to_sequential() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for (n, k, size) in [(12, 2, 1), (12, 2, 2), (10, 3, 3), (9, 4, 4)] {
            let g = generators::random_k_edge_connected(n, k, 4, &mut rng);
            let mut h = g.full_edge_set();
            if size < k {
                // Drop one edge so smaller cuts exist without disconnecting.
                let id = h.iter().next().unwrap();
                let mut candidate = h.clone();
                candidate.remove(id);
                if connectivity::is_connected_in(&g, &candidate) {
                    h = candidate;
                }
            }
            let sequential = cuts_of_size(&g, &h, size).unwrap();
            for threads in [2, 4, 8] {
                let exec = Executor::from_threads(threads);
                assert_eq!(
                    cuts_of_size_with(&g, &h, size, &exec).unwrap(),
                    sequential,
                    "size = {size}, t = {threads}"
                );
                let fam_seq = CutFamily::enumerate(&g, &h, size).unwrap();
                let fam_par = CutFamily::enumerate_with(&g, &h, size, &exec).unwrap();
                assert_eq!(fam_par.cuts, fam_seq.cuts);
                assert_eq!(fam_par.sides, fam_seq.sides);
            }
        }
    }

    #[test]
    fn retain_keeps_cuts_and_sides_in_lockstep() {
        let g = generators::cycle(5, 1);
        let h = g.full_edge_set();
        let mut family = CutFamily::enumerate(&g, &h, 2).unwrap();
        let full = family.clone();
        assert_eq!(family.len(), 10);
        family.retain(|i| i % 3 == 0);
        assert_eq!(family.len(), 4);
        for (kept, original) in [(0usize, 0usize), (1, 3), (2, 6), (3, 9)] {
            assert_eq!(family.cut(kept), full.cut(original));
            assert_eq!(family.sides[kept], full.sides[original]);
        }
    }

    #[test]
    fn from_cuts_builds_family() {
        let g = generators::cycle(4, 1);
        let h = g.full_edge_set();
        let family = CutFamily::from_cuts(&g, &h, vec![vec![EdgeId(0), EdgeId(2)]]);
        assert_eq!(family.len(), 1);
        assert_eq!(family.cuts().len(), 1);
        assert!(family.crossed_by(0, 0, 2) || family.crossed_by(0, 1, 3));
    }
}
