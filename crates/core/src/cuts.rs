//! Enumeration of the small cuts that the augmentation algorithms must cover.
//!
//! `Aug_k` (Section 4) covers all cuts of size `k - 1` of a
//! `(k-1)`-edge-connected spanning subgraph `H`. This module enumerates those
//! cuts exactly:
//!
//! * size 1 — bridges (Tarjan);
//! * size 2 — cut pairs, found through cycle-space label classes (Section
//!   5.2) and then *verified* by an explicit removal test, so the result is
//!   exact rather than w.h.p.;
//! * size 3 — label triples XOR-ing to zero (the general induced-cut
//!   characterization of Corollary 5.3), verified the same way.
//!
//! Because a `(k-1)`-edge-connected graph has at most `binom(n, 2)` minimum
//! cuts (the paper cites [19, 6]), the enumeration is polynomial; the
//! verification step only runs on label-filtered candidates, so false
//! positives cost little. Supported cut sizes are `1..=MAX_CUT_SIZE`, i.e.
//! `k <= 4` for the full k-ECSS pipeline, which covers the regimes the
//! evaluation exercises (DESIGN.md §6).

use crate::cycle_space::Circulation;
use graphs::{connectivity, EdgeId, EdgeSet, Graph, NodeId, RootedTree};
use kecss_runtime::Executor;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The largest cut size [`cuts_of_size`] can enumerate (so the largest
/// supported `k` for the k-ECSS driver is `MAX_CUT_SIZE + 1`).
pub const MAX_CUT_SIZE: usize = 3;

/// A single cut: the edge ids, sorted.
pub type Cut = Vec<EdgeId>;

/// Whether removing `cut` from the subgraph `(V, h)` disconnects it.
pub fn disconnects(graph: &Graph, h: &EdgeSet, cut: &[EdgeId]) -> bool {
    !connectivity::is_connected_after_removal(graph, h, cut)
}

/// Whether the edge `e` (an edge of `graph`, not necessarily of `h`) covers
/// the cut `cut` of the subgraph `(V, h)`: i.e. `(h \ cut) ∪ {e}` is
/// connected (Definition 2.1).
pub fn covers(graph: &Graph, h: &EdgeSet, cut: &[EdgeId], e: EdgeId) -> bool {
    let mut sub = h.clone();
    for c in cut {
        sub.remove(*c);
    }
    sub.insert(e);
    connectivity::is_connected_in(graph, &sub)
}

/// Enumerates every cut of exactly `size` edges of the connected subgraph
/// `(V, h)`.
///
/// The subgraph must be `size`-edge-connected *or better is not required*:
/// cuts smaller than `size` may exist and are not reported; the augmentation
/// driver always calls this with `size = k - 1` on a `(k-1)`-edge-connected
/// `H`, where the reported cuts are exactly the minimum cuts.
///
/// # Panics
///
/// Panics if `size` is 0 or greater than [`MAX_CUT_SIZE`], or if `h` is
/// disconnected.
pub fn cuts_of_size(graph: &Graph, h: &EdgeSet, size: usize) -> Vec<Cut> {
    cuts_of_size_with(graph, h, size, &Executor::Sequential)
}

/// Same as [`cuts_of_size`], verifying the label-filtered candidates through
/// `exec`: the removal test of each candidate is independent, so candidates
/// are checked in parallel. The result is bit-identical to the sequential
/// enumeration for every executor (candidates are generated, verified and
/// collected in a fixed order).
///
/// # Panics
///
/// Same conditions as [`cuts_of_size`].
pub fn cuts_of_size_with(graph: &Graph, h: &EdgeSet, size: usize, exec: &Executor) -> Vec<Cut> {
    assert!(
        (1..=MAX_CUT_SIZE).contains(&size),
        "cut size {size} unsupported"
    );
    assert!(
        connectivity::is_connected_in(graph, h),
        "cut enumeration requires a connected subgraph"
    );
    match size {
        1 => connectivity::bridges_in(graph, h)
            .into_iter()
            .map(|b| vec![b])
            .collect(),
        2 => cut_pairs(graph, h, exec),
        3 => cut_triples(graph, h, exec),
        _ => unreachable!("guarded by the assertion above"),
    }
}

/// Keeps the candidates whose removal disconnects `(V, h)`, running the
/// (independent) removal tests through `exec` in batches.
fn verify_candidates(
    graph: &Graph,
    h: &EdgeSet,
    candidates: Vec<Cut>,
    exec: &Executor,
) -> Vec<Cut> {
    let verdicts = exec.map(&candidates, |cut| disconnects(graph, h, cut));
    candidates
        .into_iter()
        .zip(verdicts)
        .filter_map(|(cut, is_cut)| is_cut.then_some(cut))
        .collect()
}

fn labels_for(graph: &Graph, h: &EdgeSet) -> Circulation {
    // The seed is arbitrary: label equality is only used to *filter*
    // candidates, every candidate is verified exactly, and real cuts always
    // pass the filter (one-sided error).
    let mut rng = ChaCha8Rng::seed_from_u64(0x6b65_6373_735f_6375);
    let bfs = graphs::bfs::bfs_in(graph, h, 0);
    let tree = RootedTree::new(graph, &bfs.tree_edges(graph), bfs.root);
    Circulation::sample(graph, h, &tree, 64, &mut rng)
}

/// All cuts of size exactly 2 (cut pairs) of the connected subgraph `(V, h)`.
fn cut_pairs(graph: &Graph, h: &EdgeSet, exec: &Executor) -> Vec<Cut> {
    let circulation = labels_for(graph, h);
    let mut candidates = Vec::new();
    for class in circulation.label_classes(h) {
        for i in 0..class.len() {
            for j in (i + 1)..class.len() {
                candidates.push(vec![class[i], class[j]]);
            }
        }
    }
    let mut out = verify_candidates(graph, h, candidates, exec);
    out.sort();
    out
}

/// All cuts of size exactly 3 of the connected subgraph `(V, h)`.
fn cut_triples(graph: &Graph, h: &EdgeSet, exec: &Executor) -> Vec<Cut> {
    let circulation = labels_for(graph, h);
    let ids: Vec<EdgeId> = h.iter().collect();
    // label -> edges with that label, for completing pairs into XOR-zero triples.
    let mut by_label: std::collections::HashMap<u64, Vec<EdgeId>> =
        std::collections::HashMap::new();
    for &id in &ids {
        by_label
            .entry(circulation.label(id).expect("edge of h has a label"))
            .or_default()
            .push(id);
    }
    let mut candidates = Vec::new();
    for i in 0..ids.len() {
        for j in (i + 1)..ids.len() {
            let a = ids[i];
            let b = ids[j];
            let want = circulation.label(a).unwrap() ^ circulation.label(b).unwrap();
            let Some(completions) = by_label.get(&want) else {
                continue;
            };
            for &c in completions {
                if c <= b {
                    continue;
                }
                candidates.push(vec![a, b, c]);
            }
        }
    }
    let mut out = verify_candidates(graph, h, candidates, exec);
    out.sort();
    out
}

/// A family of cuts of a subgraph `H`, with the bipartition of each cut
/// precomputed so that "does edge `e` cover cut `C`?" is an `O(1)` query.
///
/// For a minimal cut `C` of a connected `H`, `H \ C` has exactly two
/// connected components; an edge covers the cut iff its endpoints lie in
/// different components.
#[derive(Clone, Debug)]
pub struct CutFamily {
    cuts: Vec<Cut>,
    /// `sides[c][v]` — the side of vertex `v` for cut `c`.
    sides: Vec<Vec<bool>>,
}

impl CutFamily {
    /// Enumerates all cuts of exactly `size` edges of `(V, h)` and
    /// precomputes their bipartitions.
    ///
    /// # Panics
    ///
    /// Same conditions as [`cuts_of_size`]; additionally panics if some
    /// enumerated cut does not split `H` into exactly two components (which
    /// cannot happen for minimum cuts of a `(size)`-edge-connected `H`).
    pub fn enumerate(graph: &Graph, h: &EdgeSet, size: usize) -> Self {
        Self::enumerate_with(graph, h, size, &Executor::Sequential)
    }

    /// Same as [`CutFamily::enumerate`], running both the candidate removal
    /// tests and the per-cut bipartitions through `exec` (each cut's
    /// bipartition is an independent connected-components computation).
    /// Bit-identical to the sequential enumeration for every executor.
    ///
    /// # Panics
    ///
    /// Same conditions as [`CutFamily::enumerate`].
    pub fn enumerate_with(graph: &Graph, h: &EdgeSet, size: usize, exec: &Executor) -> Self {
        let cuts = cuts_of_size_with(graph, h, size, exec);
        let sides = exec.map(&cuts, |cut| bipartition(graph, h, cut));
        CutFamily { cuts, sides }
    }

    /// Builds a family from explicitly provided cuts.
    ///
    /// # Panics
    ///
    /// Panics if some cut does not split `(V, h)` into exactly two components.
    pub fn from_cuts(graph: &Graph, h: &EdgeSet, cuts: Vec<Cut>) -> Self {
        let sides = cuts.iter().map(|cut| bipartition(graph, h, cut)).collect();
        CutFamily { cuts, sides }
    }

    /// Number of cuts in the family.
    pub fn len(&self) -> usize {
        self.cuts.len()
    }

    /// Whether the family is empty.
    pub fn is_empty(&self) -> bool {
        self.cuts.is_empty()
    }

    /// The `i`-th cut.
    pub fn cut(&self, i: usize) -> &[EdgeId] {
        &self.cuts[i]
    }

    /// All cuts.
    pub fn cuts(&self) -> &[Cut] {
        &self.cuts
    }

    /// Whether the edge with endpoints `u`, `v` covers the `i`-th cut.
    pub fn crossed_by(&self, i: usize, u: NodeId, v: NodeId) -> bool {
        self.sides[i][u] != self.sides[i][v]
    }

    /// The indices of the cuts covered by an edge `{u, v}`.
    pub fn covered_by(&self, u: NodeId, v: NodeId) -> Vec<usize> {
        (0..self.len())
            .filter(|&i| self.crossed_by(i, u, v))
            .collect()
    }
}

/// The two-sided partition of `V` obtained by removing `cut` from `(V, h)`.
///
/// # Panics
///
/// Panics if the removal does not yield exactly two components.
fn bipartition(graph: &Graph, h: &EdgeSet, cut: &[EdgeId]) -> Vec<bool> {
    let mut sub = h.clone();
    for c in cut {
        sub.remove(*c);
    }
    let (labels, count) = connectivity::connected_components_in(graph, &sub);
    assert_eq!(
        count, 2,
        "a minimal cut must split the subgraph into exactly two components, got {count}"
    );
    let reference = labels[0];
    labels.iter().map(|&l| l == reference).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;

    #[test]
    fn bridges_are_the_size_one_cuts() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 1);
        let bridge = g.add_edge(2, 3, 1);
        let cuts = cuts_of_size(&g, &g.full_edge_set(), 1);
        assert_eq!(cuts, vec![vec![bridge]]);
    }

    #[test]
    fn cycle_has_all_pairs_as_cuts() {
        let g = generators::cycle(5, 1);
        let cuts = cuts_of_size(&g, &g.full_edge_set(), 2);
        assert_eq!(cuts.len(), 5 * 4 / 2);
    }

    #[test]
    fn cut_pairs_match_naive_enumeration() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for n in [8, 12] {
            let g = generators::random_k_edge_connected(n, 2, 4, &mut rng);
            let h = g.full_edge_set();
            let fast = cuts_of_size(&g, &h, 2);
            let ids: Vec<EdgeId> = h.iter().collect();
            let mut naive = Vec::new();
            for i in 0..ids.len() {
                for j in (i + 1)..ids.len() {
                    if disconnects(&g, &h, &[ids[i], ids[j]]) {
                        naive.push(vec![ids[i], ids[j]]);
                    }
                }
            }
            naive.sort();
            assert_eq!(fast, naive, "n = {n}");
        }
    }

    #[test]
    fn triples_on_k4_are_the_vertex_stars() {
        // K4 is 3-edge-connected; its size-3 cuts are exactly the four
        // vertex-isolating cuts δ(v).
        let g = generators::complete(4, 1);
        let h = g.full_edge_set();
        assert_eq!(connectivity::edge_connectivity(&g), 3);
        let cuts = cuts_of_size(&g, &h, 3);
        assert_eq!(cuts.len(), 4);
        for cut in &cuts {
            assert!(disconnects(&g, &h, cut));
            // A vertex star: all three edges share a vertex.
            let edges: Vec<_> = cut.iter().map(|&id| g.edge(id)).collect();
            let shared = (0..4).find(|&v| edges.iter().all(|e| e.has_endpoint(v)));
            assert!(shared.is_some(), "cut {cut:?} is not a vertex star");
        }
    }

    #[test]
    fn triples_match_naive_enumeration_on_random_graph() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        let g = generators::random_k_edge_connected(10, 3, 2, &mut rng);
        let h = g.full_edge_set();
        let fast = cuts_of_size(&g, &h, 3);
        let ids: Vec<EdgeId> = h.iter().collect();
        let mut naive = Vec::new();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                for l in (j + 1)..ids.len() {
                    let cut = vec![ids[i], ids[j], ids[l]];
                    if disconnects(&g, &h, &cut) {
                        naive.push(cut);
                    }
                }
            }
        }
        naive.sort();
        assert_eq!(fast, naive);
    }

    #[test]
    fn covers_matches_definition() {
        let g = generators::cycle(6, 1);
        let h = g.full_edge_set();
        let cut = vec![EdgeId(0), EdgeId(3)];
        assert!(disconnects(&g, &h, &cut));
        // An edge of the cut itself covers it (re-inserting it reconnects).
        assert!(covers(&g, &h, &cut, EdgeId(0)));
    }

    #[test]
    fn cut_family_cover_queries_match_covers() {
        let mut g = graphs::Graph::new(6);
        // 6-cycle plus one chord.
        for v in 0..6 {
            g.add_edge(v, (v + 1) % 6, 1);
        }
        let chord = g.add_edge(0, 3, 1);
        let mut h = g.full_edge_set();
        h.remove(chord);
        let family = CutFamily::enumerate(&g, &h, 2);
        assert_eq!(family.len(), 6 * 5 / 2);
        assert!(!family.is_empty());
        for i in 0..family.len() {
            let cut = family.cut(i).to_vec();
            let e = g.edge(chord);
            assert_eq!(
                family.crossed_by(i, e.u, e.v),
                covers(&g, &h, &cut, chord),
                "cut {cut:?}"
            );
        }
        let covered = family.covered_by(0, 3);
        assert!(!covered.is_empty());
    }

    #[test]
    #[should_panic(expected = "unsupported")]
    fn oversized_cut_requests_are_rejected() {
        let g = generators::cycle(4, 1);
        cuts_of_size(&g, &g.full_edge_set(), 4);
    }

    #[test]
    fn no_cut_pairs_in_three_connected_graph() {
        let g = generators::harary(3, 8, 1);
        assert!(cuts_of_size(&g, &g.full_edge_set(), 2).is_empty());
    }

    #[test]
    fn parallel_enumeration_is_bit_identical_to_sequential() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(6);
        for (n, k, size) in [(12, 2, 1), (12, 2, 2), (10, 3, 3)] {
            let g = generators::random_k_edge_connected(n, k, 4, &mut rng);
            let mut h = g.full_edge_set();
            if size < k {
                // Drop one edge so smaller cuts exist without disconnecting.
                let id = h.iter().next().unwrap();
                let mut candidate = h.clone();
                candidate.remove(id);
                if connectivity::is_connected_in(&g, &candidate) {
                    h = candidate;
                }
            }
            let sequential = cuts_of_size(&g, &h, size);
            for threads in [2, 4, 8] {
                let exec = Executor::from_threads(threads);
                assert_eq!(
                    cuts_of_size_with(&g, &h, size, &exec),
                    sequential,
                    "size = {size}, t = {threads}"
                );
                let fam_seq = CutFamily::enumerate(&g, &h, size);
                let fam_par = CutFamily::enumerate_with(&g, &h, size, &exec);
                assert_eq!(fam_par.cuts, fam_seq.cuts);
                assert_eq!(fam_par.sides, fam_seq.sides);
            }
        }
    }

    #[test]
    fn from_cuts_builds_family() {
        let g = generators::cycle(4, 1);
        let h = g.full_edge_set();
        let family = CutFamily::from_cuts(&g, &h, vec![vec![EdgeId(0), EdgeId(2)]]);
        assert_eq!(family.len(), 1);
        assert_eq!(family.cuts().len(), 1);
        assert!(family.crossed_by(0, 0, 2) || family.crossed_by(0, 1, 3));
    }
}
