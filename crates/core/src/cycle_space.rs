//! Cycle-space sampling (Pritchard–Thurimella), Section 5.1 of the paper.
//!
//! A *binary circulation* is an edge set in which every vertex has even
//! degree; the fundamental cycles of any spanning tree form a basis of the
//! cycle space (Claim 5.2). Sampling a random `b`-bit circulation assigns
//! every edge a `b`-bit label `φ(e)` such that, with probability at least
//! `1 - 2^{-b}` per query (Corollary 5.3), a set of edges `F` is an induced
//! edge cut if and only if the XOR of its labels is zero. Specialized to cut
//! pairs in a 2-edge-connected graph (Property 5.1): `{e, f}` is a cut pair
//! iff `φ(e) = φ(f)`.
//!
//! The labels are computable distributively in `O(D)` rounds by a single
//! leaf-to-root scan of a BFS tree (Lemma 5.5); this module computes the same
//! labels centrally and the callers charge the `O(D)` cost to their round
//! ledger.

use graphs::{EdgeId, EdgeSet, Graph, RootedTree};
use rand::Rng;

/// A sampled random `b`-bit circulation over a 2-edge-connected subgraph `H`,
/// exposing the per-edge labels `φ(e)`.
#[derive(Clone, Debug)]
pub struct Circulation {
    labels: Vec<Option<u64>>,
    bits: u32,
}

impl Circulation {
    /// Samples a random `bits`-bit circulation of the subgraph `h` of `graph`,
    /// using `tree` (a spanning tree of `h`) as the fundamental-cycle basis.
    ///
    /// Every non-tree edge of `h` receives an independent uniform `bits`-bit
    /// label; every tree edge receives the XOR of the labels of the non-tree
    /// edges whose fundamental cycle contains it.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 64, or if `tree` contains an edge
    /// outside `h`.
    pub fn sample<R: Rng>(
        graph: &Graph,
        h: &EdgeSet,
        tree: &RootedTree,
        bits: u32,
        rng: &mut R,
    ) -> Self {
        assert!(
            (1..=64).contains(&bits),
            "label width must be between 1 and 64 bits"
        );
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1u64 << bits) - 1
        };
        let mut labels: Vec<Option<u64>> = vec![None; graph.m()];
        // Accumulate, per vertex, the XOR of the labels of incident non-tree edges.
        let mut acc = vec![0u64; graph.n()];
        let tree_edges = tree.edge_set(graph);
        for id in h.iter() {
            if tree_edges.contains(id) {
                assert!(h.contains(id), "tree edge outside H");
                continue;
            }
            let label = rng.gen::<u64>() & mask;
            labels[id.index()] = Some(label);
            let e = graph.edge(id);
            acc[e.u] ^= label;
            acc[e.v] ^= label;
        }
        // Tree edge {v, p(v)} label = XOR of acc over the subtree of v: a
        // non-tree edge contributes to the subtree XOR once iff exactly one of
        // its endpoints lies in the subtree, i.e. iff its fundamental cycle
        // uses the tree edge.
        let mut subtree = acc;
        for &v in tree.bfs_order().iter().rev() {
            if let Some(p) = tree.parent(v) {
                let edge = tree
                    .parent_edge(v)
                    .expect("non-root vertex has a parent edge");
                labels[edge.index()] = Some(subtree[v]);
                subtree[p] ^= subtree[v];
            }
        }
        Circulation { labels, bits }
    }

    /// The label width in bits.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// The label of an edge of `H`, or `None` for edges outside `H`.
    pub fn label(&self, edge: EdgeId) -> Option<u64> {
        self.labels.get(edge.index()).copied().flatten()
    }

    /// The XOR of the labels of a set of edges (all must belong to `H`).
    ///
    /// # Panics
    ///
    /// Panics if any edge has no label (is outside `H`).
    pub fn xor_of(&self, edges: &[EdgeId]) -> u64 {
        edges
            .iter()
            .map(|e| self.label(*e).expect("edge outside the labelled subgraph"))
            .fold(0, |a, b| a ^ b)
    }

    /// Groups the edges of `h` by label. Under Property 5.1 (which holds
    /// w.h.p. for `bits = Ω(log n)`), two edges of a 2-edge-connected `H`
    /// form a cut pair iff they share a label, so every group of size ≥ 2 is
    /// an equivalence class of cut pairs and the graph is 3-edge-connected iff
    /// all groups are singletons.
    pub fn label_classes(&self, h: &EdgeSet) -> Vec<Vec<EdgeId>> {
        let mut map: std::collections::HashMap<u64, Vec<EdgeId>> = std::collections::HashMap::new();
        for id in h.iter() {
            if let Some(l) = self.label(id) {
                map.entry(l).or_default().push(id);
            }
        }
        let mut classes: Vec<Vec<EdgeId>> = map.into_values().collect();
        classes.sort_by_key(|c| c.first().copied());
        classes
    }

    /// All cut pairs implied by the labels: every unordered pair within a
    /// label class of size ≥ 2.
    pub fn cut_pairs(&self, h: &EdgeSet) -> Vec<(EdgeId, EdgeId)> {
        let mut pairs = Vec::new();
        for class in self.label_classes(h) {
            for i in 0..class.len() {
                for j in (i + 1)..class.len() {
                    pairs.push((class[i], class[j]));
                }
            }
        }
        pairs
    }

    /// Enumerates every subset of exactly `size` edges of `h` whose labels
    /// XOR to zero — the generalized label-class characterization of
    /// Corollary 5.3: an *induced* cut always XORs to zero (a circulation
    /// crosses every cut an even number of times, with certainty), and a
    /// non-cut XORs to zero only with probability `2^{-bits}` per subset.
    /// The size-2 case degenerates to the label classes of
    /// [`Circulation::label_classes`]; size 3 to XOR-completing triples.
    ///
    /// Subsets are generated in lexicographic edge-id order: the first
    /// `size - 1` edges are chosen in increasing id order and the last edge
    /// is found by a label lookup, so the total work is
    /// `O(binom(|h|, size - 1))` plus the matches. `budget` caps the number
    /// of visited partial subsets and candidate completions; `None` is
    /// returned when the cap is exceeded (the candidate pool "explodes"),
    /// signalling the caller to fall back to a sampling enumerator.
    pub fn xor_zero_subsets(
        &self,
        h: &EdgeSet,
        size: usize,
        budget: u64,
    ) -> Option<Vec<Vec<EdgeId>>> {
        assert!(size >= 1, "subset size must be at least 1");
        let ids: Vec<EdgeId> = h.iter().collect();
        let labels: Vec<u64> = ids
            .iter()
            .map(|&id| self.label(id).expect("edge of h has a label"))
            .collect();
        let mut visited = 0u64;
        let mut out = Vec::new();
        if size == 1 {
            for (i, &label) in labels.iter().enumerate() {
                visited += 1;
                if visited > budget {
                    return None;
                }
                if label == 0 {
                    out.push(vec![ids[i]]);
                }
            }
            return Some(out);
        }
        // label -> indices into `ids` (increasing), for completing a prefix of
        // `size - 1` edges into an XOR-zero subset with one lookup.
        let mut by_label: std::collections::HashMap<u64, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, &label) in labels.iter().enumerate() {
            by_label.entry(label).or_default().push(i);
        }
        let mut prefix = Vec::with_capacity(size);
        let complete = extend_prefix(
            &ids,
            &labels,
            &by_label,
            size,
            0,
            0,
            &mut prefix,
            &mut visited,
            budget,
            &mut out,
        );
        complete.then_some(out)
    }
}

/// Recursive helper of [`Circulation::xor_zero_subsets`]: extends `prefix`
/// (already XOR-ing to `acc`) with edges at indices `>= start`, completing it
/// via the label lookup once `size - 1` edges are chosen. Returns `false` as
/// soon as `budget` visits are exceeded.
#[allow(clippy::too_many_arguments)]
fn extend_prefix(
    ids: &[EdgeId],
    labels: &[u64],
    by_label: &std::collections::HashMap<u64, Vec<usize>>,
    size: usize,
    start: usize,
    acc: u64,
    prefix: &mut Vec<EdgeId>,
    visited: &mut u64,
    budget: u64,
    out: &mut Vec<Vec<EdgeId>>,
) -> bool {
    if prefix.len() == size - 1 {
        // The last edge must carry label `acc` and come after the prefix.
        if let Some(completions) = by_label.get(&acc) {
            for &j in completions {
                *visited += 1;
                if *visited > budget {
                    return false;
                }
                if j >= start {
                    let mut subset = prefix.clone();
                    subset.push(ids[j]);
                    out.push(subset);
                }
            }
        }
        return true;
    }
    let needed = size - prefix.len(); // including the completing edge
    if ids.len() < needed {
        return true;
    }
    for i in start..=(ids.len() - needed) {
        *visited += 1;
        if *visited > budget {
            return false;
        }
        prefix.push(ids[i]);
        let ok = extend_prefix(
            ids,
            labels,
            by_label,
            size,
            i + 1,
            acc ^ labels[i],
            prefix,
            visited,
            budget,
            out,
        );
        prefix.pop();
        if !ok {
            return false;
        }
    }
    true
}

/// The number of CONGEST rounds charged for computing the labels
/// distributively: one leaf-to-root scan of the spanning tree plus the local
/// random choices (Lemma 5.5), i.e. `O(depth(tree))`.
pub fn labelling_rounds(tree: &RootedTree) -> u64 {
    tree.height() as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{connectivity, generators, mst};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn spanning_tree(graph: &Graph, h: &EdgeSet) -> RootedTree {
        let bfs = graphs::bfs::bfs_in(graph, h, 0);
        RootedTree::new(graph, &bfs.tree_edges(graph), 0)
    }

    /// Exact (slow) cut-pair test by removal.
    fn is_cut_pair(graph: &Graph, h: &EdgeSet, a: EdgeId, b: EdgeId) -> bool {
        !connectivity::is_connected_after_removal(graph, h, &[a, b])
    }

    #[test]
    fn cycle_graph_has_all_equal_labels() {
        let g = generators::cycle(6, 1);
        let h = g.full_edge_set();
        let tree = spanning_tree(&g, &h);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let c = Circulation::sample(&g, &h, &tree, 64, &mut rng);
        let labels: Vec<u64> = h.iter().map(|e| c.label(e).unwrap()).collect();
        assert!(
            labels.windows(2).all(|w| w[0] == w[1]),
            "every pair of cycle edges is a cut pair"
        );
        assert_eq!(c.cut_pairs(&h).len(), 6 * 5 / 2);
    }

    #[test]
    fn three_edge_connected_graph_has_distinct_labels() {
        let g = generators::complete(6, 1);
        let h = g.full_edge_set();
        let tree = spanning_tree(&g, &h);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let c = Circulation::sample(&g, &h, &tree, 64, &mut rng);
        assert!(
            c.cut_pairs(&h).is_empty(),
            "K6 is 5-edge-connected: no cut pairs"
        );
        assert!(c.label_classes(&h).iter().all(|cl| cl.len() == 1));
    }

    #[test]
    fn labels_match_exact_cut_pairs_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [8, 12, 16] {
            let g = generators::random_k_edge_connected(n, 2, 3, &mut rng);
            let h = g.full_edge_set();
            let tree = spanning_tree(&g, &h);
            let c = Circulation::sample(&g, &h, &tree, 64, &mut rng);
            // With 64-bit labels, false positives are vanishingly unlikely at
            // this size; check both directions pairwise.
            let ids: Vec<EdgeId> = h.iter().collect();
            for i in 0..ids.len() {
                for j in (i + 1)..ids.len() {
                    let same = c.label(ids[i]) == c.label(ids[j]);
                    let real = is_cut_pair(&g, &h, ids[i], ids[j]);
                    assert_eq!(same, real, "pair ({:?}, {:?}) n={n}", ids[i], ids[j]);
                }
            }
        }
    }

    #[test]
    fn xor_of_a_cut_is_zero() {
        // In the 6-cycle, any two edges form a cut; their XOR must be zero.
        let g = generators::cycle(6, 1);
        let h = g.full_edge_set();
        let tree = spanning_tree(&g, &h);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let c = Circulation::sample(&g, &h, &tree, 64, &mut rng);
        assert_eq!(c.xor_of(&[EdgeId(0), EdgeId(3)]), 0);
    }

    #[test]
    fn one_bit_labels_cannot_separate_everything() {
        // With b = 1 many non-cut pairs collide; this is the error-probability
        // regime that experiment E7 sweeps.
        let g = generators::complete(8, 1);
        let h = g.full_edge_set();
        let tree = spanning_tree(&g, &h);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let c = Circulation::sample(&g, &h, &tree, 1, &mut rng);
        // There are no real cut pairs, but with 1-bit labels collisions are
        // essentially certain among 28 edges.
        assert!(!c.cut_pairs(&h).is_empty());
    }

    #[test]
    fn labels_only_exist_for_h_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::cycle(5, 1);
        let mut h = g.full_edge_set();
        h.remove(EdgeId(4));
        // H is now a path (spanning, connected).
        let tree = spanning_tree(&g, &h);
        let c = Circulation::sample(&g, &h, &tree, 64, &mut rng);
        assert_eq!(c.label(EdgeId(4)), None);
        assert!(c.label(EdgeId(0)).is_some());
    }

    #[test]
    fn tree_edge_label_is_xor_of_covering_nontree_edges() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = generators::random_k_edge_connected(10, 2, 5, &mut rng);
        let h = g.full_edge_set();
        let tree_edges = mst::kruskal(&g);
        let tree = RootedTree::new(&g, &tree_edges, 0);
        let c = Circulation::sample(&g, &h, &tree, 64, &mut rng);
        for child in tree.edge_children() {
            let t = tree.parent_edge(child).unwrap();
            let mut expected = 0u64;
            for (id, e) in g.edges() {
                if tree_edges.contains(id) || !h.contains(id) {
                    continue;
                }
                if tree.path_edges(e.u, e.v).contains(&t) {
                    expected ^= c.label(id).unwrap();
                }
            }
            assert_eq!(c.label(t), Some(expected));
        }
    }

    #[test]
    fn labelling_rounds_is_tree_height() {
        let g = generators::path(9, 1);
        let tree = spanning_tree(&g, &g.full_edge_set());
        assert_eq!(labelling_rounds(&tree), 9);
    }

    #[test]
    #[should_panic(expected = "between 1 and 64")]
    fn zero_bit_labels_rejected() {
        let g = generators::cycle(4, 1);
        let h = g.full_edge_set();
        let tree = spanning_tree(&g, &h);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        Circulation::sample(&g, &h, &tree, 0, &mut rng);
    }
}
