//! Certified lower bounds on the optimum, used to measure approximation
//! ratios on instances too large for the exact solver.
//!
//! Every bound here is a true lower bound on the weight of *any* feasible
//! solution, so `algorithm_weight / lower_bound` is an upper bound on the real
//! approximation ratio.

use graphs::{mst, EdgeSet, Graph, RootedTree, Weight};

/// A lower bound on the weight of any k-edge-connected spanning subgraph of
/// `graph`: the maximum of
///
/// * the *degree bound* — every vertex needs at least `k` incident edges, so
///   OPT ≥ ⌈(Σ_v sum of the k cheapest weights incident to v) / 2⌉, and
/// * the *spanning bound* — every k-ECSS (k ≥ 1) is connected and spanning,
///   so OPT ≥ weight(MST).
///
/// # Panics
///
/// Panics if some vertex has degree smaller than `k` (then no k-ECSS exists).
pub fn k_ecss_lower_bound(graph: &Graph, k: usize) -> Weight {
    let degree_bound = degree_lower_bound(graph, k);
    let mst_bound = graph.weight_of(&mst::kruskal(graph));
    degree_bound.max(mst_bound)
}

/// The degree part of [`k_ecss_lower_bound`].
///
/// # Panics
///
/// Panics if some vertex has degree smaller than `k`.
pub fn degree_lower_bound(graph: &Graph, k: usize) -> Weight {
    let mut total: u128 = 0;
    for v in 0..graph.n() {
        let mut weights: Vec<Weight> = graph
            .neighbors(v)
            .iter()
            .map(|&(_, e)| graph.weight(e))
            .collect();
        assert!(
            weights.len() >= k,
            "vertex {v} has degree {} < k = {k}; no k-ECSS exists",
            weights.len()
        );
        weights.sort_unstable();
        total += weights.iter().take(k).map(|&w| w as u128).sum::<u128>();
    }
    (total.div_ceil(2)) as Weight
}

/// A lower bound on the weight of any augmentation making `tree_edges`
/// 2-edge-connected: for every tree edge `t`, any feasible augmentation must
/// contain some non-tree edge covering `t`, so OPT ≥ max_t (cheapest cover of
/// `t`). Additionally, edge-disjoint groups of tree edges whose cover sets are
/// disjoint would give a stronger bound; this function keeps the simple,
/// always-valid max-min bound.
pub fn tap_lower_bound(graph: &Graph, tree_edges: &EdgeSet) -> Weight {
    let tree = RootedTree::new(graph, tree_edges, 0);
    // cheapest_cover[child vertex] = min weight of a non-tree edge covering
    // the tree edge {child, parent(child)}.
    let mut cheapest = vec![Weight::MAX; graph.n()];
    for (id, e) in graph.edges() {
        if tree_edges.contains(id) {
            continue;
        }
        for child in tree.path_edge_children(e.u, e.v) {
            cheapest[child] = cheapest[child].min(e.weight);
        }
    }
    tree.edge_children()
        .map(|c| cheapest[c])
        .filter(|&w| w != Weight::MAX)
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn cycle_lower_bound_is_exact() {
        // The unique 2-ECSS of a cycle is the cycle itself.
        let g = generators::cycle(7, 3);
        assert_eq!(k_ecss_lower_bound(&g, 2), 21);
    }

    #[test]
    fn unit_weight_bound_is_kn_over_two() {
        let g = generators::harary(4, 10, 1);
        assert_eq!(degree_lower_bound(&g, 4), 20);
        assert!(k_ecss_lower_bound(&g, 4) >= 20);
    }

    #[test]
    fn mst_bound_kicks_in_for_skewed_weights() {
        // A triangle with one very heavy edge: degree bound would be small but
        // the MST bound is what matters for k = 1.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 100);
        assert_eq!(k_ecss_lower_bound(&g, 1), 2);
    }

    #[test]
    fn lower_bound_never_exceeds_a_feasible_solution() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for k in 2..=3 {
            for n in [10, 20] {
                let g = generators::random_weighted_k_edge_connected(n, k, n, 30, &mut rng);
                let lb = k_ecss_lower_bound(&g, k);
                // The whole graph is feasible.
                assert!(lb <= g.total_weight(), "k = {k}, n = {n}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "no k-ECSS exists")]
    fn degree_bound_rejects_low_degree_vertices() {
        let g = generators::path(4, 1);
        degree_lower_bound(&g, 2);
    }

    #[test]
    fn tap_bound_on_cycle_is_the_closing_edge() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        let closing = g.add_edge(3, 0, 7);
        let mut tree = g.full_edge_set();
        tree.remove(closing);
        assert_eq!(tap_lower_bound(&g, &tree), 7);
    }

    #[test]
    fn tap_bound_is_at_most_any_feasible_augmentation() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_weighted_k_edge_connected(16, 2, 20, 25, &mut rng);
        let tree = graphs::mst::kruskal(&g);
        let lb = tap_lower_bound(&g, &tree);
        // All non-tree edges together are a feasible augmentation.
        let all_non_tree: u64 = g
            .edges()
            .filter(|(id, _)| !tree.contains(*id))
            .map(|(_, e)| e.weight)
            .sum();
        assert!(lb <= all_non_tree);
    }
}
