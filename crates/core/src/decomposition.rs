//! The segment / skeleton-tree decomposition of a spanning tree
//! (Section 3.2 and Figure 1 of the paper).
//!
//! The weighted TAP algorithm performs `O(log² n)` iterations, and in each
//! iteration every non-tree edge and every tree edge needs global information
//! (cost-effectiveness, best covering candidate, vote counts). The
//! decomposition makes each iteration run in `O(D + √n)` rounds by cutting
//! the tree into `O(√n)` edge-disjoint *segments* of diameter `O(√n)`, each
//! with a *highway* (the path between the segment's root `r_S` and its unique
//! descendant `d_S`) such that only `r_S` and `d_S` touch other segments. The
//! *skeleton tree* contracts every highway to a single virtual edge.
//!
//! Construction (following the paper, which follows [14] with deterministic
//! fragment selection):
//!
//! 1. **Fragments** — the spanning tree is cut into `O(√n)` fragments of
//!    height `O(√n)` (here: a deterministic bottom-up clustering with target
//!    size `⌈√n⌉`, standing in for the Kutten–Peleg MST fragments).
//! 2. **Marked vertices** — endpoints of inter-fragment ("global") tree edges
//!    plus the root, closed under LCA (Lemma 3.4).
//! 3. **Segments** — for every marked vertex `d ≠ r`, the path to its nearest
//!    marked proper ancestor is a highway; the segment consists of the highway
//!    plus every subtree hanging off its internal vertices. Subtrees hanging
//!    off a marked vertex with no marked descendants join a segment rooted at
//!    that vertex (with an empty highway if necessary).

use graphs::{Graph, NodeId, RootedTree};

/// One segment of the decomposition.
#[derive(Clone, Debug)]
pub struct Segment {
    /// The segment's root `r_S` (an ancestor of every vertex in the segment).
    pub root: NodeId,
    /// The segment's unique descendant `d_S` (equal to `root` for segments
    /// with an empty highway).
    pub descendant: NodeId,
    /// The highway vertices, from `d_S` up to and including `r_S`
    /// (a single vertex for empty-highway segments).
    pub highway: Vec<NodeId>,
    /// Every vertex of the segment (including `root` and `descendant`).
    pub vertices: Vec<NodeId>,
}

impl Segment {
    /// The segment id `(r_S, d_S)` as defined by the paper.
    pub fn id(&self) -> (NodeId, NodeId) {
        (self.root, self.descendant)
    }

    /// Number of tree edges on the highway.
    pub fn highway_len(&self) -> usize {
        self.highway.len().saturating_sub(1)
    }

    /// Number of vertices in the segment.
    pub fn len(&self) -> usize {
        self.vertices.len()
    }

    /// Whether the segment has no vertices (never true for built segments).
    pub fn is_empty(&self) -> bool {
        self.vertices.is_empty()
    }
}

/// The full decomposition of a rooted spanning tree into segments, plus the
/// skeleton tree over the marked vertices.
#[derive(Clone, Debug)]
pub struct Decomposition {
    segments: Vec<Segment>,
    /// Home segment of each vertex. Marked vertices (which may belong to
    /// several segments) are assigned one of them.
    segment_of: Vec<usize>,
    marked: Vec<bool>,
    /// Skeleton-tree parent of each marked vertex (`None` for the root and
    /// for unmarked vertices).
    skeleton_parent: Vec<Option<NodeId>>,
    /// Fragment id of each vertex from the preliminary fragment step.
    fragment_of: Vec<usize>,
    num_fragments: usize,
    target: usize,
}

impl Decomposition {
    /// Builds the decomposition of `tree` (a rooted spanning tree of `graph`)
    /// with the default fragment-size target `⌈√n⌉`.
    pub fn build(graph: &Graph, tree: &RootedTree) -> Self {
        let target = (graph.n() as f64).sqrt().ceil() as usize;
        Self::build_with_target(graph, tree, target.max(1))
    }

    /// Builds the decomposition with an explicit fragment-size target
    /// (exposed for the decomposition experiment E4).
    ///
    /// # Panics
    ///
    /// Panics if `target` is zero or if `tree` does not span `graph`.
    pub fn build_with_target(graph: &Graph, tree: &RootedTree, target: usize) -> Self {
        assert!(target >= 1, "fragment target must be positive");
        assert_eq!(tree.len(), graph.n(), "the tree must span the graph");
        let n = graph.n();
        let root = tree.root();
        let order = tree.bfs_order().to_vec();

        // ---- Step I: fragments (bottom-up clustering). ----
        let mut pending = vec![1usize; n];
        let mut fragment_root = vec![false; n];
        for &v in order.iter().rev() {
            if pending[v] >= target || v == root {
                fragment_root[v] = true;
                pending[v] = 0;
            }
            if let Some(p) = tree.parent(v) {
                pending[p] += pending[v];
            }
        }
        // fragment_of[v] = nearest fragment-root ancestor (inclusive).
        let mut fragment_of = vec![usize::MAX; n];
        for &v in &order {
            if fragment_root[v] {
                fragment_of[v] = v;
            } else {
                fragment_of[v] = fragment_of[tree.parent(v).expect("non-root has parent")];
            }
        }
        let num_fragments = fragment_root.iter().filter(|&&b| b).count();

        // ---- Step II: marked vertices. ----
        // Global tree edges connect different fragments: exactly the parent
        // edges of non-root fragment roots. Mark both endpoints plus the root.
        let mut marked = vec![false; n];
        marked[root] = true;
        for v in 0..n {
            if fragment_root[v] && v != root {
                marked[v] = true;
                marked[tree.parent(v).expect("non-root fragment root has parent")] = true;
            }
        }
        // Close under LCA: sort marked vertices by DFS in-time and add the LCA
        // of each consecutive pair (sufficient for LCA-closure).
        let in_time = dfs_in_times(tree);
        let mut marked_list: Vec<NodeId> = (0..n).filter(|&v| marked[v]).collect();
        marked_list.sort_by_key(|&v| in_time[v]);
        for w in marked_list.windows(2) {
            marked[tree.lca(w[0], w[1])] = true;
        }
        // Adding the LCAs of consecutive pairs (in DFS order) yields the full
        // LCA closure in one pass; rebuild the list so the newly marked
        // vertices also get highways of their own.
        let mut marked_list: Vec<NodeId> = (0..n).filter(|&v| marked[v]).collect();
        marked_list.sort_by_key(|&v| in_time[v]);

        // ---- Step III: segments. ----
        //

        // Nearest marked ancestor, inclusive.
        let mut nma = vec![root; n];
        for &v in &order {
            nma[v] = if marked[v] {
                v
            } else {
                nma[tree.parent(v).expect("non-root has parent")]
            };
        }

        let mut segments: Vec<Segment> = Vec::new();
        let mut skeleton_parent = vec![None; n];
        // Highway membership: segment index for internal (unmarked) highway
        // vertices; marked vertices are handled separately.
        let mut highway_segment = vec![usize::MAX; n];
        // A segment rooted at a marked vertex, for attaching highway-free
        // subtrees (paper: reuse an existing segment rooted there if any).
        let mut segment_rooted_at = vec![usize::MAX; n];

        for &d in &marked_list {
            if d == root {
                continue;
            }
            let p = tree.parent(d).expect("non-root has parent");
            let r_s = if marked[p] { p } else { nma[p] };
            skeleton_parent[d] = Some(r_s);
            let highway = tree.path_to_ancestor(d, r_s);
            let idx = segments.len();
            for &v in &highway {
                if !marked[v] {
                    highway_segment[v] = idx;
                }
            }
            if segment_rooted_at[r_s] == usize::MAX {
                segment_rooted_at[r_s] = idx;
            }
            segments.push(Segment {
                root: r_s,
                descendant: d,
                highway,
                vertices: Vec::new(),
            });
        }

        // Assign every vertex to its home segment.
        let mut segment_of = vec![usize::MAX; n];
        for &v in &order {
            if marked[v] {
                continue; // assigned after the loop
            }
            if highway_segment[v] != usize::MAX {
                segment_of[v] = highway_segment[v];
                continue;
            }
            let p = tree.parent(v).expect("non-root unmarked vertex has parent");
            if marked[p] {
                // Subtree hanging off a marked vertex with no marked
                // descendants below v: attach to a segment rooted at p,
                // creating an empty-highway segment if none exists.
                if segment_rooted_at[p] == usize::MAX {
                    segment_rooted_at[p] = segments.len();
                    segments.push(Segment {
                        root: p,
                        descendant: p,
                        highway: vec![p],
                        vertices: Vec::new(),
                    });
                }
                segment_of[v] = segment_rooted_at[p];
            } else {
                segment_of[v] = segment_of[p];
            }
        }
        // Marked vertices: home segment is the one where they are the unique
        // descendant (every marked vertex except possibly the root is the
        // descendant of exactly one segment); the root gets any segment rooted
        // at it.
        for (idx, seg) in segments.iter().enumerate() {
            if seg.descendant != seg.root {
                segment_of[seg.descendant] = idx;
            }
        }
        if segment_of[root] == usize::MAX {
            segment_of[root] = segment_rooted_at[root].min(segments.len().saturating_sub(1));
        }

        // Populate vertex lists: a vertex belongs to its home segment, and the
        // endpoints r_S / d_S additionally belong to their segments.
        for v in 0..n {
            if !marked[v] {
                segments[segment_of[v]].vertices.push(v);
            }
        }
        for segment in &mut segments {
            let r_s = segment.root;
            let d_s = segment.descendant;
            segment.vertices.push(r_s);
            if d_s != r_s {
                segment.vertices.push(d_s);
            }
            segment.vertices.sort_unstable();
            segment.vertices.dedup();
        }

        Decomposition {
            segments,
            segment_of,
            marked,
            skeleton_parent,
            fragment_of,
            num_fragments,
            target,
        }
    }

    /// The fragment-size target used for the preliminary fragment step.
    pub fn target(&self) -> usize {
        self.target
    }

    /// The segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Number of fragments from the preliminary step.
    pub fn num_fragments(&self) -> usize {
        self.num_fragments
    }

    /// The fragment id of a vertex.
    pub fn fragment_of(&self, v: NodeId) -> usize {
        self.fragment_of[v]
    }

    /// Number of marked vertices (the skeleton tree's vertex count).
    pub fn num_marked(&self) -> usize {
        self.marked.iter().filter(|&&m| m).count()
    }

    /// Whether a vertex is marked (a skeleton-tree vertex).
    pub fn is_marked(&self, v: NodeId) -> bool {
        self.marked[v]
    }

    /// The home segment index of a vertex.
    pub fn segment_of(&self, v: NodeId) -> usize {
        self.segment_of[v]
    }

    /// The skeleton-tree parent of a marked vertex (`None` for the root).
    pub fn skeleton_parent(&self, v: NodeId) -> Option<NodeId> {
        self.skeleton_parent[v]
    }

    /// The maximum, over all segments, of the segment's internal (tree)
    /// diameter measured in hops — the quantity that bounds the pipelined
    /// segment scans of Section 3.1.
    pub fn max_segment_diameter(&self, graph: &Graph, tree: &RootedTree) -> usize {
        self.segments
            .iter()
            .map(|s| segment_diameter(graph, tree, s))
            .max()
            .unwrap_or(0)
    }

    /// The number of tree edges on the longest highway.
    pub fn max_highway_len(&self) -> usize {
        self.segments
            .iter()
            .map(Segment::highway_len)
            .max()
            .unwrap_or(0)
    }

    /// Checks the structural invariants promised by Section 3.2 / Lemma 3.4
    /// and panics with a description if any is violated. Used by tests and by
    /// the decomposition experiment (E4).
    ///
    /// # Panics
    ///
    /// Panics if an invariant is violated.
    pub fn assert_invariants(&self, graph: &Graph, tree: &RootedTree) {
        let n = graph.n();
        let root = tree.root();
        assert!(self.marked[root], "the root must be marked");
        // Marked set closed under LCA.
        let marked: Vec<NodeId> = (0..n).filter(|&v| self.marked[v]).collect();
        for &a in &marked {
            for &b in &marked {
                assert!(
                    self.marked[tree.lca(a, b)],
                    "marked set not closed under LCA: lca({a}, {b})"
                );
            }
        }
        // Segments are edge-disjoint and cover all tree edges.
        let mut edge_seen = graph.empty_edge_set();
        for seg in &self.segments {
            let mut in_segment = vec![false; n];
            for &v in &seg.vertices {
                in_segment[v] = true;
            }
            for &v in &seg.vertices {
                if v == seg.root {
                    continue;
                }
                let p = tree.parent(v).expect("non-root vertex has a parent");
                if in_segment[p] {
                    let e = tree
                        .parent_edge(v)
                        .expect("non-root vertex has a parent edge");
                    assert!(
                        edge_seen.insert(e),
                        "tree edge {e:?} belongs to two segments"
                    );
                }
            }
            // r_S is an ancestor of every vertex of the segment.
            for &v in &seg.vertices {
                assert!(
                    tree.is_ancestor(seg.root, v),
                    "segment root {} is not an ancestor of {v}",
                    seg.root
                );
            }
            // Internal vertices must not touch other segments: every non-root,
            // non-descendant vertex's parent is inside the segment.
            for &v in &seg.vertices {
                if v == seg.root || v == seg.descendant {
                    continue;
                }
                let p = tree.parent(v).expect("non-root vertex has a parent");
                assert!(
                    in_segment[p],
                    "internal segment vertex {v} has its parent outside the segment"
                );
            }
        }
        let tree_edge_total = n - 1;
        assert_eq!(
            edge_seen.len(),
            tree_edge_total,
            "segments must cover every tree edge exactly once"
        );
        // Every vertex is in some segment.
        for v in 0..n {
            assert!(
                self.segment_of[v] < self.segments.len(),
                "vertex {v} has no segment"
            );
        }
    }
}

/// DFS entry times for LCA-closure ordering.
fn dfs_in_times(tree: &RootedTree) -> Vec<usize> {
    let n = tree.len();
    let mut in_time = vec![0usize; n];
    let mut timer = 0usize;
    let mut stack = vec![tree.root()];
    let mut visited = vec![false; n];
    while let Some(v) = stack.pop() {
        if visited[v] {
            continue;
        }
        visited[v] = true;
        in_time[v] = timer;
        timer += 1;
        for &c in tree.children(v).iter().rev() {
            stack.push(c);
        }
    }
    in_time
}

/// Exact tree diameter (in hops) of the segment's induced subtree.
fn segment_diameter(graph: &Graph, tree: &RootedTree, seg: &Segment) -> usize {
    if seg.vertices.len() <= 1 {
        return 0;
    }
    let mut in_segment = vec![false; graph.n()];
    for &v in &seg.vertices {
        in_segment[v] = true;
    }
    // Double BFS restricted to tree edges inside the segment.
    let far = bfs_far(graph, tree, &in_segment, seg.root).0;
    bfs_far(graph, tree, &in_segment, far).1
}

fn bfs_far(
    graph: &Graph,
    tree: &RootedTree,
    in_segment: &[bool],
    start: NodeId,
) -> (NodeId, usize) {
    let mut dist = vec![usize::MAX; graph.n()];
    dist[start] = 0;
    let mut queue = std::collections::VecDeque::from([start]);
    let (mut far, mut far_d) = (start, 0);
    while let Some(v) = queue.pop_front() {
        for &(u, e) in graph.neighbors(v) {
            let is_tree_edge = tree.parent_edge(v) == Some(e) || tree.parent_edge(u) == Some(e);
            if !is_tree_edge || !in_segment[u] || dist[u] != usize::MAX {
                continue;
            }
            dist[u] = dist[v] + 1;
            if dist[u] > far_d {
                far_d = dist[u];
                far = u;
            }
            queue.push_back(u);
        }
    }
    (far, far_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{generators, mst};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn decompose(g: &Graph) -> (RootedTree, Decomposition) {
        let t_edges = mst::kruskal(g);
        let tree = RootedTree::new(g, &t_edges, 0);
        let d = Decomposition::build(g, &tree);
        (tree, d)
    }

    #[test]
    fn invariants_hold_on_path() {
        let g = generators::path(30, 1);
        let (tree, d) = decompose(&g);
        d.assert_invariants(&g, &tree);
        assert!(d.num_segments() >= 2, "a long path must be split");
    }

    #[test]
    fn invariants_hold_on_random_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for n in [10, 40, 90, 150] {
            let g = generators::random_weighted_k_edge_connected(n, 2, n, 50, &mut rng);
            let (tree, d) = decompose(&g);
            d.assert_invariants(&g, &tree);
        }
    }

    #[test]
    fn invariants_hold_on_star_like_tree() {
        // A star: root 0 adjacent to everyone; MST is the star itself.
        let g = generators::complete(20, 1);
        let (tree, d) = decompose(&g);
        d.assert_invariants(&g, &tree);
    }

    #[test]
    fn segment_and_marked_counts_scale_as_sqrt_n() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [64usize, 256, 400] {
            let g = generators::random_weighted_k_edge_connected(n, 2, 2 * n, 30, &mut rng);
            let (tree, d) = decompose(&g);
            let sqrt_n = (n as f64).sqrt();
            assert!(
                d.num_fragments() as f64 <= 3.0 * sqrt_n + 2.0,
                "fragments {} too many for n = {n}",
                d.num_fragments()
            );
            assert!(
                d.num_marked() as f64 <= 8.0 * sqrt_n + 2.0,
                "marked {} too many for n = {n}",
                d.num_marked()
            );
            assert!(
                d.num_segments() <= 2 * d.num_marked() + 1,
                "segments {} exceed twice the marked count {} for n = {n}",
                d.num_segments(),
                d.num_marked()
            );
            assert!(
                d.num_segments() as f64 <= 16.0 * sqrt_n + 2.0,
                "segments {} too many for n = {n}",
                d.num_segments()
            );
            let diam = d.max_segment_diameter(&g, &tree);
            assert!(
                diam as f64 <= 4.0 * sqrt_n + 2.0,
                "segment diameter {diam} too large for n = {n}"
            );
            d.assert_invariants(&g, &tree);
        }
    }

    #[test]
    fn path_segments_have_bounded_diameter() {
        let g = generators::path(100, 1);
        let (tree, d) = decompose(&g);
        assert!(d.max_segment_diameter(&g, &tree) <= 2 * d.target() + 2);
        d.assert_invariants(&g, &tree);
    }

    #[test]
    fn skeleton_parents_are_marked_ancestors() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::random_weighted_k_edge_connected(80, 2, 80, 20, &mut rng);
        let (tree, d) = decompose(&g);
        for v in 0..g.n() {
            if let Some(p) = d.skeleton_parent(v) {
                assert!(d.is_marked(v));
                assert!(d.is_marked(p));
                assert!(tree.is_ancestor(p, v));
                assert_ne!(p, v);
            }
        }
        // The root has no skeleton parent.
        assert_eq!(d.skeleton_parent(tree.root()), None);
    }

    #[test]
    fn highways_connect_descendant_to_root() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let g = generators::random_weighted_k_edge_connected(60, 2, 60, 20, &mut rng);
        let (tree, d) = decompose(&g);
        for seg in d.segments() {
            assert_eq!(*seg.highway.first().unwrap(), seg.descendant);
            assert_eq!(*seg.highway.last().unwrap(), seg.root);
            assert_eq!(seg.highway_len() + 1, seg.highway.len());
            assert!(!seg.is_empty());
            assert!(seg.len() >= seg.highway.len());
            assert_eq!(seg.id(), (seg.root, seg.descendant));
            // Consecutive highway vertices are parent/child.
            for w in seg.highway.windows(2) {
                assert_eq!(tree.parent(w[0]), Some(w[1]));
            }
        }
    }

    #[test]
    fn small_graphs_build_without_panic() {
        for n in [2usize, 3, 4, 5] {
            let g = generators::complete(n, 1);
            let (tree, d) = decompose(&g);
            d.assert_invariants(&g, &tree);
        }
    }

    #[test]
    fn custom_target_controls_fragment_granularity() {
        let g = generators::path(64, 1);
        let t_edges = mst::kruskal(&g);
        let tree = RootedTree::new(&g, &t_edges, 0);
        let coarse = Decomposition::build_with_target(&g, &tree, 32);
        let fine = Decomposition::build_with_target(&g, &tree, 4);
        assert!(fine.num_segments() > coarse.num_segments());
        coarse.assert_invariants(&g, &tree);
        fine.assert_invariants(&g, &tree);
    }
}
