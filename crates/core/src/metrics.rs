//! Small reporting helpers shared by the benchmark harness and the examples:
//! approximation-ratio reports and round-complexity series points.

use graphs::Weight;
use std::fmt;

/// A single approximation measurement: the weight an algorithm achieved
/// against a certified lower bound (or the exact optimum).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ApproxReport {
    /// The weight of the algorithm's solution.
    pub weight: Weight,
    /// A certified lower bound on OPT (or OPT itself).
    pub lower_bound: Weight,
}

impl ApproxReport {
    /// Creates a report.
    ///
    /// # Panics
    ///
    /// Panics if `lower_bound` is zero while `weight` is positive, or if the
    /// solution is cheaper than the "lower bound" (which would mean the bound
    /// is not a bound).
    pub fn new(weight: Weight, lower_bound: Weight) -> Self {
        assert!(
            weight >= lower_bound,
            "solution weight {weight} is below the claimed lower bound {lower_bound}"
        );
        ApproxReport {
            weight,
            lower_bound,
        }
    }

    /// The measured approximation ratio (an upper bound on the true ratio).
    /// Returns 1.0 when both weight and bound are zero.
    pub fn ratio(&self) -> f64 {
        if self.weight == 0 {
            1.0
        } else if self.lower_bound == 0 {
            f64::INFINITY
        } else {
            self.weight as f64 / self.lower_bound as f64
        }
    }
}

impl fmt::Display for ApproxReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "weight {} / LB {} = {:.3}x",
            self.weight,
            self.lower_bound,
            self.ratio()
        )
    }
}

/// A point on a round-complexity curve: instance parameters plus the measured
/// CONGEST rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundsPoint {
    /// Number of vertices.
    pub n: usize,
    /// Hop diameter of the instance.
    pub diameter: usize,
    /// Measured (charged) CONGEST rounds.
    pub rounds: u64,
}

impl fmt::Display for RoundsPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={:>6}  D={:>4}  rounds={:>10}",
            self.n, self.diameter, self.rounds
        )
    }
}

/// Aggregates a set of ratio measurements (per experiment / per n).
#[derive(Clone, Debug, Default)]
pub struct RatioSummary {
    reports: Vec<ApproxReport>,
}

impl RatioSummary {
    /// An empty summary.
    pub fn new() -> Self {
        RatioSummary::default()
    }

    /// Adds one measurement.
    pub fn push(&mut self, report: ApproxReport) {
        self.reports.push(report);
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.reports.len()
    }

    /// Whether the summary is empty.
    pub fn is_empty(&self) -> bool {
        self.reports.is_empty()
    }

    /// The maximum ratio observed (0.0 when empty).
    pub fn max_ratio(&self) -> f64 {
        self.reports
            .iter()
            .map(ApproxReport::ratio)
            .fold(0.0, f64::max)
    }

    /// The mean ratio (0.0 when empty).
    pub fn mean_ratio(&self) -> f64 {
        if self.reports.is_empty() {
            0.0
        } else {
            self.reports.iter().map(ApproxReport::ratio).sum::<f64>() / self.reports.len() as f64
        }
    }
}

impl fmt::Display for RatioSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} instances, mean ratio {:.3}, max ratio {:.3}",
            self.len(),
            self.mean_ratio(),
            self.max_ratio()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_computation() {
        let r = ApproxReport::new(30, 10);
        assert!((r.ratio() - 3.0).abs() < 1e-12);
        assert!(r.to_string().contains("3.000"));
        assert_eq!(ApproxReport::new(0, 0).ratio(), 1.0);
        assert!(ApproxReport::new(5, 0).ratio().is_infinite());
    }

    #[test]
    #[should_panic(expected = "below the claimed lower bound")]
    fn invalid_bound_is_rejected() {
        ApproxReport::new(5, 10);
    }

    #[test]
    fn summary_statistics() {
        let mut s = RatioSummary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean_ratio(), 0.0);
        s.push(ApproxReport::new(10, 10));
        s.push(ApproxReport::new(30, 10));
        assert_eq!(s.len(), 2);
        assert!((s.mean_ratio() - 2.0).abs() < 1e-12);
        assert!((s.max_ratio() - 3.0).abs() < 1e-12);
        assert!(s.to_string().contains("2 instances"));
    }

    #[test]
    fn rounds_point_display() {
        let p = RoundsPoint {
            n: 128,
            diameter: 9,
            rounds: 4000,
        };
        let s = p.to_string();
        assert!(s.contains("128"));
        assert!(s.contains("4000"));
    }
}
