//! 3-ECSS via cycle-space sampling (Section 5): unweighted in `O(D log³ n)`
//! rounds (Theorem 1.3), weighted in `O(h_MST log³ n)` rounds (the Section 5.4
//! remark).
//!
//! The bottleneck of the general `Aug_k` algorithm is learning the whole
//! subgraph `H` (Θ(n) rounds). For 3-ECSS the paper avoids it with
//! cycle-space sampling:
//!
//! 1. Build a 2-edge-connected subgraph `H`: the `O(D)`-round unweighted
//!    2-ECSS 2-approximation of [1] for the unweighted problem, or
//!    MST + weighted TAP (Theorem 1.1) for the weighted variant.
//! 2. Repeatedly: sample an `O(log n)`-bit circulation of `H ∪ A` over the
//!    spanning tree `T` of `H` (`O(depth(T))` rounds), from which every edge
//!    `e ∉ H ∪ A` computes the number of cut pairs it covers (Claim 5.8:
//!    `ρ(e) = Σ_φ n_{φ,e} (n_φ − n_{φ,e})` over the labels on its fundamental
//!    path); candidates of the maximum rounded cost-effectiveness class
//!    activate with the probability schedule of Section 4 and join `A`.
//! 3. Stop when every tree-edge label is unique (`n_φ(t) = 1` for all `t`,
//!    Claim 5.10) — this direction of the claim is error-free, so the output
//!    is guaranteed 3-edge-connected.
//!
//! Every iteration costs `O(depth(T))` rounds — `O(D)` for the BFS tree of
//! the unweighted variant, `O(h_MST)` for the MST of the weighted variant —
//! and there are `O(log³ n)` iterations.

use crate::augk::ProbabilitySchedule;
use crate::baselines::bfs_two_ecss;
use crate::cover::Rounded;
use crate::cycle_space::{labelling_rounds, Circulation};
use crate::error::{Error, Result};
use crate::tap;
use congest::{CostModel, RoundLedger};
use graphs::{connectivity, EdgeSet, Graph, NodeId, RootedTree};
use rand::Rng;

/// Safety cap on iterations (`O(log³ n)` expected).
const ITERATION_SAFETY_CAP: u64 = 500_000;

/// The result of the 3-ECSS algorithms of Section 5.
#[derive(Clone, Debug)]
pub struct ThreeEcssSolution {
    /// The 3-edge-connected spanning subgraph (`H ∪ A`).
    pub subgraph: EdgeSet,
    /// The initial 2-edge-connected subgraph `H`.
    pub base: EdgeSet,
    /// The augmentation `A`.
    pub added: EdgeSet,
    /// Number of edges in the subgraph (the unweighted objective).
    pub size: usize,
    /// Total weight of the subgraph (equals `size` for unit weights).
    pub weight: u64,
    /// Number of label/activation iterations executed.
    pub iterations: u64,
    /// CONGEST rounds charged.
    pub ledger: RoundLedger,
}

/// Solves unweighted 3-ECSS on `graph` (Theorem 1.3), inferring the cost
/// model from the graph's diameter. Edge weights are ignored.
///
/// # Errors
///
/// Returns [`Error::InsufficientConnectivity`] if the graph is not
/// 3-edge-connected.
pub fn solve<R: Rng>(graph: &Graph, rng: &mut R) -> Result<ThreeEcssSolution> {
    let diameter = graphs::bfs::diameter(graph).unwrap_or(graph.n());
    solve_with_model(graph, CostModel::new(graph.n(), diameter), rng)
}

/// Same as [`solve`] with an explicit cost model.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_with_model<R: Rng>(
    graph: &Graph,
    model: CostModel,
    rng: &mut R,
) -> Result<ThreeEcssSolution> {
    // Phase spans are observational only (DESIGN.md §11).
    let _solve_span = kecss_obs::span("solve");
    {
        let _span = kecss_obs::span("connectivity_check");
        ensure_three_connected(graph)?;
    }
    let mut ledger = RoundLedger::new(model);

    // Step 1: the O(D)-round 2-approximate unweighted 2-ECSS of [1]. Its BFS
    // tree also serves as the spanning tree for the circulation sampling.
    let base = {
        let _span = kecss_obs::span("base_2ecss");
        bfs_two_ecss::solve_with_model(graph, model)
    };
    ledger.absorb(&base.ledger);
    let h = base.edges.clone();
    let tree = RootedTree::new(graph, &base.tree, 0);

    let _augment_span = kecss_obs::span("augment");
    let (added, iterations) = augment_to_three(
        graph,
        &h,
        &tree,
        /* weighted = */ false,
        model,
        rng,
        &mut ledger,
    );
    Ok(assemble(graph, h, added, iterations, ledger))
}

/// Solves *weighted* 3-ECSS (the Section 5.4 remark): the base subgraph is the
/// weighted 2-ECSS of Theorem 1.1 (MST + TAP), the circulation is sampled over
/// the MST, and the cost-effectiveness divides by the edge weight. Each
/// iteration costs `O(h_MST)` rounds, so the total is `O(h_MST log³ n)` — the
/// reason the paper calls the weighted sublinear case open.
///
/// # Errors
///
/// Returns [`Error::InsufficientConnectivity`] if the graph is not
/// 3-edge-connected.
pub fn solve_weighted<R: Rng>(graph: &Graph, rng: &mut R) -> Result<ThreeEcssSolution> {
    let diameter = graphs::bfs::diameter(graph).unwrap_or(graph.n());
    solve_weighted_with_model(graph, CostModel::new(graph.n(), diameter), rng)
}

/// Same as [`solve_weighted`] with an explicit cost model.
///
/// # Errors
///
/// Same conditions as [`solve_weighted`].
pub fn solve_weighted_with_model<R: Rng>(
    graph: &Graph,
    model: CostModel,
    rng: &mut R,
) -> Result<ThreeEcssSolution> {
    // Phase spans are observational only (DESIGN.md §11).
    let _solve_span = kecss_obs::span("solve");
    {
        let _span = kecss_obs::span("connectivity_check");
        ensure_three_connected(graph)?;
    }
    let mut ledger = RoundLedger::new(model);

    // Step 1: weighted 2-ECSS = MST + weighted TAP (Theorem 1.1).
    let mst_edges = {
        let _span = kecss_obs::span("mst");
        graphs::mst::kruskal(graph)
    };
    ledger.charge("3ecss/mst", model.mst_kutten_peleg());
    let tap_solution = {
        let _span = kecss_obs::span("tap");
        tap::solve_with_model(graph, &mst_edges, model, rng)?
    };
    ledger.absorb(&tap_solution.ledger);
    let h = mst_edges.union(&tap_solution.augmentation);
    let tree = RootedTree::new(graph, &mst_edges, 0);

    let _augment_span = kecss_obs::span("augment");
    let (added, iterations) = augment_to_three(
        graph,
        &h,
        &tree,
        /* weighted = */ true,
        model,
        rng,
        &mut ledger,
    );
    Ok(assemble(graph, h, added, iterations, ledger))
}

fn ensure_three_connected(graph: &Graph) -> Result<()> {
    if !connectivity::is_k_edge_connected(graph, 3) {
        return Err(Error::InsufficientConnectivity {
            required: 3,
            actual: connectivity::edge_connectivity(graph),
        });
    }
    Ok(())
}

fn assemble(
    graph: &Graph,
    h: EdgeSet,
    added: EdgeSet,
    iterations: u64,
    ledger: RoundLedger,
) -> ThreeEcssSolution {
    let subgraph = h.union(&added);
    let size = subgraph.len();
    let weight = graph.weight_of(&subgraph);
    ThreeEcssSolution {
        subgraph,
        base: h,
        added,
        size,
        weight,
        iterations,
        ledger,
    }
}

/// The Section 5.3 augmentation loop: cover every cut pair of `h ∪ A` using
/// circulation labels over `tree` (a spanning tree of `h`). Returns the added
/// edges and the iteration count; charges per-iteration costs proportional to
/// the tree depth to `ledger`.
fn augment_to_three<R: Rng>(
    graph: &Graph,
    h: &EdgeSet,
    tree: &RootedTree,
    weighted: bool,
    model: CostModel,
    rng: &mut R,
    ledger: &mut RoundLedger,
) -> (EdgeSet, u64) {
    // The per-iteration communication depth: the tree's height (a BFS tree has
    // height ≤ D; an MST can be much deeper — that is exactly the h_MST
    // penalty of the weighted variant).
    let depth_rounds = labelling_rounds(tree);

    let candidates_pool: Vec<(graphs::EdgeId, NodeId, NodeId, u64)> = graph
        .edges()
        .filter(|(id, _)| !h.contains(*id))
        .map(|(id, e)| (id, e.u, e.v, e.weight))
        .collect();

    let mut added = graph.empty_edge_set();
    let mut schedule = ProbabilitySchedule::new(graph.n(), graph.m());
    let mut iterations = 0u64;

    loop {
        assert!(
            iterations < ITERATION_SAFETY_CAP,
            "3-ECSS exceeded the iteration safety cap; this indicates a bug"
        );

        // Sample a fresh circulation of H ∪ A and compute the per-label edge
        // counts n_φ (Lemma 5.5 / step (b) of Section 5.3).
        let current = h.union(&added);
        let circulation = Circulation::sample(graph, &current, tree, 64, rng);
        ledger.charge("3ecss/labels", depth_rounds);
        let mut n_phi: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for id in current.iter() {
            *n_phi
                .entry(circulation.label(id).expect("edge of H ∪ A has a label"))
                .or_insert(0) += 1;
        }
        ledger.charge("3ecss/label_counts", depth_rounds);

        // Termination (Claim 5.10): if every tree edge's label is unique,
        // no tree edge is in a cut pair, hence there are no cut pairs at all
        // and H ∪ A is 3-edge-connected. This direction holds with certainty.
        let has_cut_pair_witness = tree.edge_children().any(|c| {
            let t = tree
                .parent_edge(c)
                .expect("non-root child has a parent edge");
            n_phi[&circulation.label(t).expect("tree edge has a label")] > 1
        });
        ledger.charge("3ecss/termination", model.convergecast(1));
        if !has_cut_pair_witness {
            break;
        }

        iterations += 1;

        // Cost-effectiveness via Claim 5.8: for each candidate e, group the
        // tree edges of its fundamental path by label and sum
        // n_{φ,e} (n_φ − n_{φ,e}); divide by the weight in the weighted case.
        let mut best_class: Option<Rounded> = None;
        let mut coverage = vec![0usize; candidates_pool.len()];
        for (i, &(id, u, v, _)) in candidates_pool.iter().enumerate() {
            if added.contains(id) {
                continue;
            }
            let mut on_path: std::collections::HashMap<u64, usize> =
                std::collections::HashMap::new();
            for child in tree.path_edge_children(u, v) {
                let t = tree
                    .parent_edge(child)
                    .expect("non-root child has a parent edge");
                let label = circulation.label(t).expect("tree edge has a label");
                *on_path.entry(label).or_insert(0) += 1;
            }
            let mut rho = 0usize;
            for (label, n_phi_e) in on_path {
                let total = n_phi.get(&label).copied().unwrap_or(n_phi_e);
                rho += n_phi_e * (total - n_phi_e);
            }
            coverage[i] = rho;
            let weight_for_class = if weighted { candidates_pool[i].3 } else { 1 };
            if let Some(class) = Rounded::of(rho, weight_for_class) {
                best_class = Some(best_class.map_or(class, |b| b.max(class)));
            }
        }
        ledger.charge(
            "3ecss/cost_effectiveness",
            depth_rounds + model.edge_exchange(),
        );
        ledger.charge(
            "3ecss/max_cost_effectiveness",
            model.convergecast(1) + model.broadcast(1),
        );

        let Some(target_class) = best_class else {
            // No candidate covers anything although cut pairs remain: only
            // possible through label collisions (the input is 3-edge-connected);
            // resample in the next iteration.
            continue;
        };

        // Activation with the Section 4 probability schedule; all active
        // candidates join A (no MST filtering in Section 5's algorithm).
        let p = schedule.probability(target_class);
        for (i, &(id, _, _, w)) in candidates_pool.iter().enumerate() {
            let weight_for_class = if weighted { w } else { 1 };
            if added.contains(id)
                || Rounded::of(coverage[i], weight_for_class) != Some(target_class)
            {
                continue;
            }
            if rng.gen_bool(p) {
                added.insert(id);
            }
        }
    }

    (added, iterations)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bounds;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn produces_three_edge_connected_subgraphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [8, 14, 24, 40] {
            let g = generators::random_k_edge_connected(n, 3, 3 * n, &mut rng);
            let sol = solve(&g, &mut rng).unwrap();
            assert!(
                connectivity::is_k_edge_connected_in(&g, &sol.subgraph, 3),
                "n = {n}: output must be 3-edge-connected"
            );
            assert_eq!(sol.size, sol.subgraph.len());
            assert_eq!(sol.subgraph.len(), sol.base.union(&sol.added).len());
            assert_eq!(sol.weight, g.weight_of(&sol.subgraph));
        }
    }

    #[test]
    fn already_three_connected_base_needs_no_iterations() {
        let g = generators::complete(6, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sol = solve(&g, &mut rng).unwrap();
        assert!(connectivity::is_k_edge_connected_in(&g, &sol.subgraph, 3));
        assert!(sol.size <= g.m());
    }

    #[test]
    fn size_is_within_logarithmic_factor_of_lower_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [12usize, 20, 32] {
            let g = generators::random_k_edge_connected(n, 3, 4 * n, &mut rng);
            let sol = solve(&g, &mut rng).unwrap();
            // Any 3-ECSS has at least ceil(3n/2) edges.
            let lb = (3 * n).div_ceil(2);
            let ratio = sol.size as f64 / lb as f64;
            let bound = 2.0 + 2.0 * (n as f64).log2();
            assert!(
                ratio <= bound,
                "n = {n}: ratio {ratio:.2} exceeds {bound:.2}"
            );
        }
    }

    #[test]
    fn rejects_graphs_that_are_not_three_edge_connected() {
        let g = generators::cycle(8, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        assert_eq!(
            solve(&g, &mut rng).unwrap_err(),
            Error::InsufficientConnectivity {
                required: 3,
                actual: 2
            }
        );
        assert_eq!(
            solve_weighted(&g, &mut rng).unwrap_err(),
            Error::InsufficientConnectivity {
                required: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn rounds_stay_within_the_theorem_shape_bound() {
        // Theorem 1.3: O(D log^3 n) rounds — in particular no sqrt(n) or n
        // term. Check the measured rounds against the explicit shape bound for
        // a range of sizes (experiment E6 plots the full curve).
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for n in [32usize, 64, 128] {
            let g = generators::random_k_edge_connected(n, 3, 2 * n, &mut rng);
            let d = graphs::bfs::diameter(&g).unwrap() as f64;
            let log_n = (n as f64).log2();
            let rounds = solve(&g, &mut rng).unwrap().ledger.total() as f64;
            let bound = 60.0 * (d + 1.0) * log_n.powi(3);
            assert!(
                rounds <= bound,
                "n = {n}: {rounds} rounds exceed the O(D log^3 n) shape bound {bound:.0}"
            );
        }
    }

    #[test]
    fn iteration_count_is_polylogarithmic() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for n in [24usize, 48, 96] {
            let g = generators::random_k_edge_connected(n, 3, 2 * n, &mut rng);
            let sol = solve(&g, &mut rng).unwrap();
            let log_n = (n as f64).log2();
            assert!(
                (sol.iterations as f64) <= 20.0 * log_n.powi(3),
                "n = {n}: {} iterations exceeds O(log^3 n)",
                sol.iterations
            );
        }
    }

    #[test]
    fn harary_input_keeps_size_near_minimum() {
        // H_{3,n} is itself a minimum 3-ECSS; the only 3-ECSS of a 3-regular
        // graph is the graph itself.
        let g = generators::harary(3, 16, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let sol = solve(&g, &mut rng).unwrap();
        assert_eq!(
            sol.size,
            g.m(),
            "the only 3-ECSS of H_{{3,n}} is the graph itself"
        );
    }

    #[test]
    fn weighted_variant_produces_cheap_three_connected_subgraphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        for n in [12usize, 20, 32] {
            let g = generators::random_weighted_k_edge_connected(n, 3, 3 * n, 40, &mut rng);
            let sol = solve_weighted(&g, &mut rng).unwrap();
            assert!(
                connectivity::is_k_edge_connected_in(&g, &sol.subgraph, 3),
                "n = {n}: weighted variant must be 3-edge-connected"
            );
            let lb = lower_bounds::k_ecss_lower_bound(&g, 3);
            let ratio = sol.weight as f64 / lb as f64;
            let bound = 6.0 * (n as f64).log2() + 6.0;
            assert!(
                ratio <= bound,
                "n = {n}: weighted ratio {ratio:.2} exceeds {bound:.2}"
            );
        }
    }

    #[test]
    fn weighted_variant_beats_the_unweighted_one_on_skewed_weights() {
        // Cheap 3-edge-connected core + expensive decoys: the weighted variant
        // must exploit the weights, the unweighted one is oblivious to them.
        let n = 20;
        let mut g = graphs::Graph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n, 300);
            g.add_edge(v, (v + 2) % n, 300);
        }
        // Cheap core: circulant steps 3, 7 and 9 (together 3-edge-connected
        // by Harary-style redundancy) at weight 1.
        for step in [3usize, 7, 9] {
            for v in 0..n {
                if g.find_edge(v, (v + step) % n).is_none() {
                    g.add_edge(v, (v + step) % n, 1);
                }
            }
        }
        assert!(connectivity::is_k_edge_connected(&g, 3));
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let weighted = solve_weighted(&g, &mut rng).unwrap();
        let unweighted = solve(&g, &mut rng).unwrap();
        assert!(connectivity::is_k_edge_connected_in(
            &g,
            &weighted.subgraph,
            3
        ));
        assert!(
            weighted.weight < unweighted.weight,
            "weighted variant ({}) should be cheaper than the unweighted one ({})",
            weighted.weight,
            unweighted.weight
        );
    }

    #[test]
    fn weighted_variant_charges_mst_height_per_iteration() {
        let mut rng = ChaCha8Rng::seed_from_u64(23);
        let g = generators::random_weighted_k_edge_connected(40, 3, 80, 30, &mut rng);
        let sol = solve_weighted(&g, &mut rng).unwrap();
        assert!(sol.ledger.phase("3ecss/mst") > 0);
        assert!(sol.ledger.phase("3ecss/labels") > 0 || sol.iterations == 0);
    }
}
