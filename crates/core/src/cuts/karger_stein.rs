//! The recursive Karger–Stein cut enumerator (DESIGN.md §12).
//!
//! The flat [`ContractEnumerator`](super::ContractEnumerator) restarts every
//! contraction trial from the full graph: `Θ(n² log n)` trials, `O(n)` union
//! operations each. Karger–Stein observes that a random contraction is very
//! unlikely to destroy a fixed minimum cut *early* — contracting from `n`
//! down to `⌈n/√2⌉ + 1` super-vertices preserves it with probability `≥ 1/2`
//! — so the expensive shallow prefix of the contraction can be *shared*:
//! contract once to `⌈n/√2⌉ + 1`, then recurse **twice** with independent
//! randomness. One repetition of the recursion does `O(n² log n)` work and
//! finds any fixed minimum cut with probability `Ω(1/log n)`; `Θ(log² n)`
//! repetitions find *all* of them w.h.p. (a `(k-1)`-edge-connected graph has
//! at most `binom(n, 2)` minimum cuts).
//!
//! At or below [`CROSSOVER`] super-vertices the recursion switches to a flat
//! tail of direct contractions to the base size — same success probability
//! per unit work, none of the branching overhead (see [`CROSSOVER`]).
//!
//! # Determinism (DESIGN.md §8, §12)
//!
//! Repetition roots run on the [`Executor`]; every recursion node draws from
//! a [`ChaCha8Rng`] seeded purely from `(salt, repetition, recursion path)`
//! via a splitmix64 chain — never from a shared stream — and the per-
//! repetition results are merged into the dedupe set in repetition order. A
//! repetition therefore computes the same cuts no matter which worker thread
//! runs it, and `Threaded(n)` output is bit-identical to `Sequential`.
//!
//! # Pooling
//!
//! All contraction state lives in a thread-local [`Workspace`]: one
//! union-find array and one surviving-edge list per recursion *depth*,
//! reused across both children, all repetitions in a worker's chunk, and
//! (via a generation token) across enumeration calls on the same thread.
//! After warm-up a repetition allocates only the candidate cuts it emits.

use super::{
    ceil_log2, check_request, seed_candidates, verify_candidates, Cut, CutEnumerator, CONTRACT_SEED,
};
use crate::error::Result;
use graphs::{EdgeId, EdgeSet, Graph};
use kecss_runtime::Executor;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};

/// Contracted-multigraph sizes at or below this are enumerated exhaustively
/// (all `2^{b-1} - 1` bipartitions) instead of recursing further.
const BASE_SIZE: usize = 6;

/// Contracted-multigraph sizes at or below this stop recursing and run
/// [`tail_trials`] *direct* contractions to [`BASE_SIZE`] instead.
///
/// The branch-twice recursion only pays for itself while contraction is
/// expensive: a fixed minimum cut survives a contraction from `n` to `t`
/// super-vertices with probability `≈ (t/n)²` whether the contraction is one
/// shot or a recursion level, so recursing buys nothing probabilistically —
/// it *amortizes* the `O(n)` shallow contraction across both subtrees. Below
/// `CROSSOVER` vertices a full contraction costs a few dozen union-finds, so
/// sharing it is pure overhead; worse, the integer target `⌈n/√2⌉ + 1`
/// shrinks by barely one vertex per level down here (… 9 → 8 → 7 → 6),
/// which would blow the leaf count up by `2^{levels}` for no extra success
/// probability. The flat tail keeps the recursion tree at its textbook
/// `Θ((n/b)²)` leaves.
const CROSSOVER: usize = 32;

/// Independent direct contractions run at a tail node on `n` super-vertices:
/// `⌈n² / 2b²⌉` — sized so a fixed minimum cut (survival `≈ (b/n)²` per
/// trial) is expected to reach the base case about once per tail node,
/// matching the `≈ 1/2` per-level survival the recursion is built around.
fn tail_trials(n: usize) -> u64 {
    let (n, b) = (n as u64, BASE_SIZE as u64);
    (n * n).div_ceil(2 * b * b).max(1)
}

/// Tweak xored into a tail node's seed material so the tail RNG never
/// replays the byte stream that drove the contraction *into* that node
/// (both are derived from the same `(salt, rep, path)` otherwise).
const TAIL_TAG: u64 = 0x7a11_7a11_7a11_7a11;

/// Recursion depths below this emit a [`kecss_obs::span`] (nested, so traces
/// show the recursion tree). Deeper nodes are too numerous — `2^d` per
/// repetition — for per-node span bookkeeping; they are still counted by
/// `ks_recursions_total`.
const SPAN_DEPTHS: [&str; 4] = ["ks_depth_0", "ks_depth_1", "ks_depth_2", "ks_depth_3"];

/// Distinguishes enumeration calls so a thread-local [`Workspace`] warmed by
/// a previous call (same thread, different graph) is rebuilt.
static GENERATION: AtomicU64 = AtomicU64::new(0);

/// splitmix64 — the standard 64-bit finalizer, used to chain the seed
/// ingredients. Statistically independent outputs for distinct inputs.
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The RNG seed of one recursion node: a splitmix64 chain over the base
/// contraction seed, the salt, the repetition index and the recursion path.
/// The path starts at 1 at the root and appends one bit per child, so every
/// node of every repetition gets an independent, *position-determined* seed
/// — the foundation of the `Threaded ≡ Sequential` guarantee.
fn mix(salt: u64, rep: u64, path: u64) -> u64 {
    splitmix(splitmix(splitmix(CONTRACT_SEED ^ salt) ^ rep) ^ path)
}

/// The Karger–Stein contraction target for a multigraph on `n` super-
/// vertices: `⌈n/√2⌉ + 1`, the largest shrink that still preserves a fixed
/// minimum cut with probability `≥ 1/2`. Integer-only via `u64::isqrt`
/// (smallest `t` with `2t² ≥ n²`).
fn contract_target(n: usize) -> usize {
    let n = n as u64;
    let mut t = (n * n).div_ceil(2).isqrt();
    while 2 * t * t < n * n {
        t += 1;
    }
    (t + 1) as usize
}

/// One recursion depth's contraction state: a union-find forest over the
/// *original* vertex ids and the indices of the edges still known to cross
/// between super-vertices (lazily pruned: a self-loop is dropped when
/// sampled, or at the base case).
#[derive(Default)]
struct Level {
    /// Union-find parent array (path-halving), length `n`.
    parent: Vec<u32>,
    /// Surviving edge indices into [`Workspace::ends`].
    edges: Vec<u32>,
    /// Current number of super-vertices.
    n_cur: usize,
}

/// The root of `x` in `parent`, with path halving (a free function so the
/// `edges` half of a [`Level`] can stay borrowed at the call site).
fn find(parent: &mut [u32], mut x: u32) -> u32 {
    while parent[x as usize] != x {
        let g = parent[parent[x as usize] as usize];
        parent[x as usize] = g;
        x = g;
    }
    x
}

/// Pooled per-thread contraction state: the graph's edge endpoints, one
/// [`Level`] per recursion depth, base-case scratch and the candidate
/// accumulator. Lives in a `thread_local!` and is reused across repetitions
/// and (generation-checked) across enumeration calls.
#[derive(Default)]
struct Workspace {
    /// Which enumeration call this workspace is warmed for.
    generation: u64,
    /// Number of vertices of the current graph.
    n: usize,
    /// Edge endpoints `(u, v)` of every edge of `h`, indexed by `edges`.
    ends: Vec<(u32, u32)>,
    /// The [`EdgeId`]s matching `ends`.
    ids: Vec<EdgeId>,
    /// One contraction state per recursion depth, grown on demand.
    levels: Vec<Level>,
    /// Base case: `original root -> compact id` (reset between uses).
    compact: Vec<u32>,
    /// Base case: compact id -> original root, in first-appearance order.
    roots: Vec<u32>,
    /// Base case: compact endpoint pairs of the pruned surviving edges.
    pairs: Vec<(u8, u8)>,
    /// Candidate cuts collected by the current repetition.
    found: Vec<Cut>,
    /// Scratch for assembling one candidate cut.
    cut_buf: Cut,
}

impl Workspace {
    /// Points the workspace at the current enumeration's graph, rebuilding
    /// the endpoint tables only when the generation token changed.
    fn prepare(&mut self, generation: u64, graph: &Graph, h: &EdgeSet) {
        if self.generation == generation {
            return;
        }
        self.generation = generation;
        self.n = graph.n();
        self.ends.clear();
        self.ids.clear();
        for id in h.iter() {
            let e = graph.edge(id);
            self.ends.push((e.u as u32, e.v as u32));
            self.ids.push(id);
        }
        self.levels.clear();
        self.compact.clear();
        self.compact.resize(self.n, u32::MAX);
    }

    /// Ensures a [`Level`] exists at `depth` (allocation only on the first
    /// visit per workspace).
    fn ensure_level(&mut self, depth: usize) {
        while self.levels.len() <= depth {
            self.levels.push(Level::default());
        }
    }

    /// Copies the contraction state at `depth` into `depth + 1` (the
    /// starting point of one recursive child), reusing the child buffers.
    fn push_child(&mut self, depth: usize) {
        self.ensure_level(depth + 1);
        let (head, tail) = self.levels.split_at_mut(depth + 1);
        let src = &head[depth];
        let dst = &mut tail[0];
        dst.parent.clear();
        dst.parent.extend_from_slice(&src.parent);
        dst.edges.clear();
        dst.edges.extend_from_slice(&src.edges);
        dst.n_cur = src.n_cur;
    }

    /// Contracts uniformly random surviving edges at `depth` until `target`
    /// super-vertices remain (self-loops are discarded when sampled).
    fn contract(&mut self, depth: usize, target: usize, rng: &mut ChaCha8Rng) {
        let Workspace { levels, ends, .. } = self;
        let level = &mut levels[depth];
        while level.n_cur > target && !level.edges.is_empty() {
            let pick = rng.gen_range(0..level.edges.len());
            let e = level.edges[pick] as usize;
            let (u, v) = ends[e];
            let ru = find(&mut level.parent, u);
            let rv = find(&mut level.parent, v);
            level.edges.swap_remove(pick);
            if ru != rv {
                level.parent[rv as usize] = ru;
                level.n_cur -= 1;
            }
        }
    }

    /// Drops the edges at `depth` that have become self-loops. Called after
    /// each *recursive* contraction so every descendant copies, samples and
    /// scans a clean list — without this the root's full edge list rides all
    /// the way down to the leaves as dead weight. (Tail trials skip it: the
    /// base case prunes as part of compaction and nothing copies after it.)
    fn prune_self_loops(&mut self, depth: usize) {
        let Workspace { levels, ends, .. } = self;
        let level = &mut levels[depth];
        let mut w = 0;
        for r in 0..level.edges.len() {
            let e = level.edges[r] as usize;
            let (u, v) = ends[e];
            if find(&mut level.parent, u) != find(&mut level.parent, v) {
                level.edges[w] = level.edges[r];
                w += 1;
            }
        }
        level.edges.truncate(w);
    }

    /// One full repetition: reset depth 0, run the recursion, hand back the
    /// candidates found.
    fn run_rep(
        &mut self,
        size: usize,
        salt: u64,
        rep: u64,
        recursions: &kecss_obs::Counter,
    ) -> Vec<Cut> {
        self.ensure_level(0);
        let n = self.n;
        let m = self.ends.len();
        let root = &mut self.levels[0];
        root.parent.clear();
        root.parent.extend(0..n as u32);
        root.edges.clear();
        root.edges.extend(0..m as u32);
        root.n_cur = n;
        self.found.clear();
        self.recurse(0, 1, salt, rep, size, recursions);
        std::mem::take(&mut self.found)
    }

    /// The Karger–Stein recursion at `depth` on the contraction state in
    /// `levels[depth]`: enumerate exhaustively at the base, run the flat
    /// tail of direct contractions at or below [`CROSSOVER`], otherwise
    /// contract to `⌈n_cur/√2⌉ + 1` and recurse twice with path-derived
    /// seeds.
    fn recurse(
        &mut self,
        depth: usize,
        path: u64,
        salt: u64,
        rep: u64,
        size: usize,
        recursions: &kecss_obs::Counter,
    ) {
        recursions.inc();
        let _span = (depth < SPAN_DEPTHS.len()).then(|| kecss_obs::span(SPAN_DEPTHS[depth]));
        let n_cur = self.levels[depth].n_cur;
        if n_cur <= BASE_SIZE {
            self.enumerate_base(depth, size);
            return;
        }
        if n_cur <= CROSSOVER {
            // Flat tail: all randomness still derives from (salt, rep, path)
            // alone, so the node stays position-determined and the
            // Threaded ≡ Sequential guarantee is untouched.
            let mut rng = ChaCha8Rng::seed_from_u64(splitmix(mix(salt, rep, path) ^ TAIL_TAG));
            for _trial in 0..tail_trials(n_cur) {
                self.push_child(depth);
                self.contract(depth + 1, BASE_SIZE, &mut rng);
                self.enumerate_base(depth + 1, size);
            }
            return;
        }
        let target = contract_target(n_cur);
        for child in 0..2u64 {
            self.push_child(depth);
            let child_path = (path << 1) | child;
            let mut rng = ChaCha8Rng::seed_from_u64(mix(salt, rep, child_path));
            self.contract(depth + 1, target, &mut rng);
            self.prune_self_loops(depth + 1);
            self.recurse(depth + 1, child_path, salt, rep, size, recursions);
        }
    }

    /// Exhaustive bipartition enumeration of a contracted multigraph on
    /// `b ≤ 6` super-vertices: every 2-way partition whose crossing-edge set
    /// has exactly `size` edges *and* whose sides are both connected in the
    /// contracted multigraph is emitted as a candidate. The connectivity
    /// filter matters: a super-vertex is internally connected (it was built
    /// by contracting real edges), so side-connectivity here implies
    /// side-connectivity in the original subgraph — every emitted candidate
    /// is a genuine *induced* cut, never a 3-way split that happens to
    /// disconnect.
    fn enumerate_base(&mut self, depth: usize, size: usize) {
        let Workspace {
            levels,
            ends,
            ids,
            compact,
            roots,
            pairs,
            found,
            cut_buf,
            ..
        } = self;
        let level = &mut levels[depth];
        let parent = &mut level.parent;
        let edges = &mut level.edges;

        // Compact the surviving roots to 0..b in first-appearance order
        // (deterministic), pruning stale self-loops as we go.
        roots.clear();
        pairs.clear();
        let mut w = 0;
        for r in 0..edges.len() {
            let e = edges[r] as usize;
            let (u, v) = ends[e];
            let ru = find(parent, u);
            let rv = find(parent, v);
            if ru == rv {
                continue;
            }
            let mut compact_of = |root: u32| -> u8 {
                let slot = &mut compact[root as usize];
                if *slot == u32::MAX {
                    *slot = roots.len() as u32;
                    roots.push(root);
                }
                *slot as u8
            };
            let cu = compact_of(ru);
            let cv = compact_of(rv);
            edges[w] = e as u32;
            pairs.push((cu, cv));
            w += 1;
        }
        edges.truncate(w);
        let b = roots.len();
        // Reset the sentinel map for the next base call (only touched slots).
        for &root in roots.iter() {
            compact[root as usize] = u32::MAX;
        }
        if b < 2 {
            return;
        }
        debug_assert!(b <= BASE_SIZE);

        // Super-vertex multiplicity matrix and adjacency bitmasks.
        let mut mult = [[0u32; BASE_SIZE]; BASE_SIZE];
        let mut adj = [0u32; BASE_SIZE];
        for &(cu, cv) in pairs.iter() {
            mult[cu as usize][cv as usize] += 1;
            mult[cv as usize][cu as usize] += 1;
            adj[cu as usize] |= 1 << cv;
            adj[cv as usize] |= 1 << cu;
        }
        let full: u32 = (1 << b) - 1;
        let connected = |side: u32| -> bool {
            let mut seen = side & side.wrapping_neg(); // lowest set bit
            loop {
                let mut next = seen;
                let mut frontier = seen;
                while frontier != 0 {
                    let i = frontier.trailing_zeros() as usize;
                    frontier &= frontier - 1;
                    next |= adj[i] & side;
                }
                if next == seen {
                    return seen == side;
                }
                seen = next;
            }
        };

        // Fix super-vertex 0 on side 0; enumerate the non-empty subsets of
        // the rest as side 1.
        for half in 1u32..(1 << (b - 1)) {
            let side1 = half << 1;
            let side0 = full & !side1;
            let mut crossing = 0usize;
            for (a, row) in mult.iter().enumerate().take(b) {
                if side1 & (1 << a) != 0 {
                    continue;
                }
                for (c, &m) in row.iter().enumerate().take(b) {
                    if side1 & (1 << c) != 0 {
                        crossing += m as usize;
                    }
                }
            }
            if crossing != size || !connected(side0) || !connected(side1) {
                continue;
            }
            cut_buf.clear();
            for (i, &(cu, cv)) in pairs.iter().enumerate() {
                if (side1 >> cu) & 1 != (side1 >> cv) & 1 {
                    cut_buf.push(ids[edges[i] as usize]);
                }
            }
            cut_buf.sort();
            found.push(cut_buf.clone());
        }
    }
}

thread_local! {
    /// One pooled [`Workspace`] per worker thread.
    static WORKSPACE: RefCell<Workspace> = RefCell::new(Workspace::default());
}

/// The recursive Karger–Stein cut enumerator: contract to `⌈n/√2⌉ + 1`
/// super-vertices, recurse twice with independent path-derived seeds,
/// enumerate bipartitions exhaustively on `≤ 6` super-vertices, dedupe in a
/// `BTreeSet` and verify every candidate with the exact removal test. The
/// deterministic seeds of [`seed_candidates`] run first, as in the flat
/// enumerator.
///
/// Repetition roots run in parallel on the [`Executor`] and merge in
/// repetition order, so results are bit-identical for every executor. The
/// `salt` multiplies the repetition count (up to 32×) *and* re-seeds every
/// recursion node, preserving the `Aug_k` escalation contract.
///
/// Complete w.h.p. in the minimum-cut regime the augmentation driver calls
/// from (`size = λ(H)`); `Aug_k`'s exact post-certification catches the
/// remaining probability mass, so the pipeline output stays exact.
#[derive(Clone, Copy, Debug, Default)]
pub struct KargerSteinEnumerator {
    /// Number of independent recursion repetitions; `None` uses
    /// [`KargerSteinEnumerator::default_repetitions`].
    pub repetitions: Option<u64>,
}

impl KargerSteinEnumerator {
    /// A Karger–Stein enumerator with an explicit repetition count.
    pub fn with_repetitions(repetitions: u64) -> Self {
        KargerSteinEnumerator {
            repetitions: Some(repetitions),
        }
    }

    /// The default repetition count for an `n`-vertex subgraph:
    /// `2 ⌈log2 n⌉²`, at least 12 — the `Θ(log² n)` schedule that finds all
    /// minimum cuts w.h.p., float-free like
    /// [`super::ContractEnumerator::default_trials`]. The constant leans on
    /// the deterministic seeds, the exact per-candidate verification and the
    /// salt-escalation retry above — a missed cut costs a retry at double
    /// the repetitions, never a wrong answer.
    pub fn default_repetitions(n: usize) -> u64 {
        let l = ceil_log2(n);
        (2 * l * l).max(12)
    }
}

impl CutEnumerator for KargerSteinEnumerator {
    fn name(&self) -> &'static str {
        "ks"
    }

    fn cuts(
        &self,
        graph: &Graph,
        h: &EdgeSet,
        size: usize,
        salt: u64,
        exec: &Executor,
    ) -> Result<Vec<Cut>> {
        check_request(graph, h, size)?;
        let n = graph.n();
        let base = self
            .repetitions
            .unwrap_or_else(|| Self::default_repetitions(n));
        let reps = base.saturating_mul(1u64 << salt.min(5));

        let mut candidates: BTreeSet<Cut> = BTreeSet::new();
        seed_candidates(graph, h, size, &mut candidates);

        // Hoisted metric handles: recursion nodes are too numerous for a
        // registry lookup each.
        let recursions = kecss_obs::counter("ks_recursions_total");
        let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;

        // Each repetition depends only on (salt, rep): run the roots on the
        // executor, merge in repetition order.
        let rep_ids: Vec<u64> = (0..reps).collect();
        let per_rep: Vec<Vec<Cut>> = exec.map(&rep_ids, |&rep| {
            WORKSPACE.with(|cell| {
                let mut ws = cell.borrow_mut();
                ws.prepare(generation, graph, h);
                ws.run_rep(size, salt, rep, &recursions)
            })
        });

        let emitted = kecss_obs::counter("ks_candidates_total");
        let dedupe_hits = kecss_obs::counter("ks_dedupe_hits_total");
        for found in per_rep {
            emitted.add(found.len() as u64);
            for cut in found {
                if !candidates.insert(cut) {
                    dedupe_hits.inc();
                }
            }
        }

        let candidates: Vec<Cut> = candidates.into_iter().collect();
        let mut out = verify_candidates(graph, h, candidates, exec, "ks");
        out.sort();
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::super::tests::naive_induced_cuts;
    use super::super::{ContractEnumerator, LabelEnumerator};
    use super::*;
    use graphs::generators;

    #[test]
    fn contract_target_is_ceil_n_over_sqrt2_plus_1() {
        // Reference values from the float formula ⌈n/√2⌉ + 1.
        for (n, expect) in [(7, 6), (8, 7), (10, 9), (16, 13), (32, 24), (256, 183)] {
            assert_eq!(contract_target(n), expect, "n = {n}");
            assert!(contract_target(n) < n, "must shrink at n = {n}");
        }
    }

    #[test]
    fn default_repetitions_grow_with_log_squared() {
        assert_eq!(KargerSteinEnumerator::default_repetitions(2), 12);
        assert_eq!(KargerSteinEnumerator::default_repetitions(32), 50);
        assert_eq!(KargerSteinEnumerator::default_repetitions(256), 128);
        assert!(
            KargerSteinEnumerator::default_repetitions(1 << 20)
                > KargerSteinEnumerator::default_repetitions(256)
        );
    }

    #[test]
    fn tail_trials_match_the_survival_budget() {
        // ⌈n² / 2b²⌉ with b = 6, floored at 1.
        assert_eq!(tail_trials(6), 1);
        assert_eq!(tail_trials(12), 2);
        assert_eq!(tail_trials(27), 11);
        assert_eq!(tail_trials(32), 15);
    }

    #[test]
    fn ks_recursion_above_crossover_matches_label_ground_truth() {
        // n = 40 > CROSSOVER exercises the branch-twice recursion proper
        // (the smaller unit graphs all resolve in the flat tail).
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_k_edge_connected(40, 4, 3, &mut rng);
        let h = g.full_edge_set();
        let exec = Executor::Sequential;
        let ks = KargerSteinEnumerator::default()
            .cuts(&g, &h, 4, 0, &exec)
            .unwrap();
        let label = LabelEnumerator::default()
            .cuts(&g, &h, 4, 0, &exec)
            .unwrap();
        assert!(!ks.is_empty());
        assert_eq!(ks, label);
    }

    #[test]
    fn path_derived_seeds_are_distinct() {
        let mut seen = std::collections::BTreeSet::new();
        for salt in 0..3 {
            for rep in 0..4 {
                for path in 1..16 {
                    assert!(seen.insert(mix(salt, rep, path)), "{salt}/{rep}/{path}");
                }
            }
        }
    }

    #[test]
    fn ks_matches_naive_induced_cuts_size_four() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let g = generators::random_k_edge_connected(9, 4, 3, &mut rng);
        let h = g.full_edge_set();
        let cuts = KargerSteinEnumerator::default()
            .cuts(&g, &h, 4, 0, &Executor::Sequential)
            .unwrap();
        assert_eq!(cuts, naive_induced_cuts(&g, &h, 4));
    }

    #[test]
    fn ks_matches_flat_contract_and_label_on_torus() {
        let g = generators::torus(3, 4, 1);
        let h = g.full_edge_set();
        let exec = Executor::Sequential;
        let ks = KargerSteinEnumerator::default()
            .cuts(&g, &h, 4, 0, &exec)
            .unwrap();
        let label = LabelEnumerator::default()
            .cuts(&g, &h, 4, 0, &exec)
            .unwrap();
        let flat = ContractEnumerator::default()
            .cuts(&g, &h, 4, 0, &exec)
            .unwrap();
        assert_eq!(ks, naive_induced_cuts(&g, &h, 4));
        assert_eq!(ks, label);
        assert_eq!(ks, flat);
    }

    #[test]
    fn salt_escalates_but_results_agree() {
        let g = generators::hypercube(4, 1);
        let h = g.full_edge_set();
        let exec = Executor::Sequential;
        let base = KargerSteinEnumerator::default()
            .cuts(&g, &h, 4, 0, &exec)
            .unwrap();
        assert_eq!(base, naive_induced_cuts(&g, &h, 4));
        for salt in 1..4 {
            let salted = KargerSteinEnumerator::default()
                .cuts(&g, &h, 4, salt, &exec)
                .unwrap();
            assert_eq!(salted, base, "salt {salt}");
        }
    }

    #[test]
    fn threaded_ks_is_bit_identical_to_sequential() {
        use rand::SeedableRng;
        let mut rng = ChaCha8Rng::seed_from_u64(21);
        // One tail-only graph (n = 12) and one that recurses (n = 40).
        let graphs = [
            (generators::random_k_edge_connected(12, 5, 4, &mut rng), 5),
            (generators::random_k_edge_connected(40, 4, 3, &mut rng), 4),
        ];
        for (g, size) in &graphs {
            let h = g.full_edge_set();
            let sequential = KargerSteinEnumerator::default()
                .cuts(g, &h, *size, 0, &Executor::Sequential)
                .unwrap();
            assert!(!sequential.is_empty());
            for threads in [2, 4, 8] {
                let exec = Executor::from_threads(threads);
                let parallel = KargerSteinEnumerator::default()
                    .cuts(g, &h, *size, 0, &exec)
                    .unwrap();
                assert_eq!(parallel, sequential, "n = {}, t = {threads}", g.n());
            }
        }
    }

    #[test]
    fn tiny_graphs_hit_the_exhaustive_base_case() {
        // n ≤ 6 never contracts: the base case alone must be complete.
        let g = generators::harary(3, 6, 1);
        let h = g.full_edge_set();
        let cuts = KargerSteinEnumerator::with_repetitions(1)
            .cuts(&g, &h, 3, 0, &Executor::Sequential)
            .unwrap();
        assert_eq!(cuts, naive_induced_cuts(&g, &h, 3));
    }
}
