//! Distributed verification of 2- and 3-edge-connectivity via cycle-space
//! sampling.
//!
//! The paper's related-work discussion (and Section 5) points out that the
//! Pritchard–Thurimella labels give an `O(D)`-round verifier for 2- and
//! 3-edge-connectivity: after labelling a spanning connected subgraph `H`,
//!
//! * an edge `e` is a **bridge** iff `φ(e) = 0` (the singleton `{e}` is an
//!   induced cut iff its XOR vanishes), so `H` is 2-edge-connected iff no
//!   edge's label is zero;
//! * two edges form a **cut pair** iff their labels are equal, so `H` is
//!   3-edge-connected iff additionally all labels are distinct.
//!
//! Both checks have one-sided error: a "not k-edge-connected" verdict is
//! always correct (real bridges / cut pairs always produce the witnessing
//! labels), while a "k-edge-connected" verdict holds with probability at
//! least `1 − n⁻ᶜ` for `Ω(log n)`-bit labels. The functions below therefore
//! also expose an exact mode that double-checks positive verdicts with the
//! max-flow verifier, which is what the test-suite uses.

use crate::cycle_space::{labelling_rounds, Circulation};
use congest::{CostModel, RoundLedger};
use graphs::{connectivity, EdgeSet, Graph, RootedTree};
use rand::Rng;

/// The verdict of a connectivity verification, together with the CONGEST
/// rounds the distributed verifier would spend.
#[derive(Clone, Debug)]
pub struct Verdict {
    /// Whether the subgraph was accepted as k-edge-connected.
    pub accepted: bool,
    /// A witness for rejection: the edges of a cut of size `< k`, when one was
    /// found (`None` when accepted).
    pub witness: Option<Vec<graphs::EdgeId>>,
    /// CONGEST rounds charged by the verifier (`O(D)`).
    pub ledger: RoundLedger,
}

/// Verifies that the spanning connected subgraph `h` of `graph` is
/// 2-edge-connected, in `O(D)` rounds (labelling + one aggregation).
///
/// The verdict has one-sided error: rejections are always correct; an
/// acceptance is correct with high probability (and is exact for the label
/// width used here on all practical instance sizes).
///
/// # Panics
///
/// Panics if `h` is not connected and spanning.
pub fn verify_two_edge_connected<R: Rng>(graph: &Graph, h: &EdgeSet, rng: &mut R) -> Verdict {
    let (circulation, _tree, mut ledger) = label(graph, h, rng);
    let mut witness = None;
    for id in h.iter() {
        if circulation.label(id) == Some(0) {
            witness = Some(vec![id]);
            break;
        }
    }
    // One aggregation over the BFS tree to combine the per-vertex verdicts.
    let aggregate = ledger.model().convergecast(1);
    ledger.charge("verify/aggregate", aggregate);
    Verdict {
        accepted: witness.is_none(),
        witness,
        ledger,
    }
}

/// Verifies that the spanning connected subgraph `h` of `graph` is
/// 3-edge-connected, in `O(D)` rounds.
///
/// Rejections are always correct and come with a witnessing cut of size 1 or
/// 2; acceptances hold with high probability.
///
/// # Panics
///
/// Panics if `h` is not connected and spanning.
pub fn verify_three_edge_connected<R: Rng>(graph: &Graph, h: &EdgeSet, rng: &mut R) -> Verdict {
    let (circulation, _tree, mut ledger) = label(graph, h, rng);
    let mut witness = None;
    // A zero label is a bridge; a repeated label is a cut pair.
    let mut seen: std::collections::HashMap<u64, graphs::EdgeId> = std::collections::HashMap::new();
    for id in h.iter() {
        let l = circulation.label(id).expect("edge of h has a label");
        if l == 0 {
            witness = Some(vec![id]);
            break;
        }
        if let Some(&other) = seen.get(&l) {
            witness = Some(vec![other, id]);
            break;
        }
        seen.insert(l, id);
    }
    let aggregate = ledger.model().convergecast(1);
    ledger.charge("verify/aggregate", aggregate);
    Verdict {
        accepted: witness.is_none(),
        witness,
        ledger,
    }
}

/// Exact verification: runs the randomized verifier and, on acceptance,
/// certifies the verdict with the deterministic max-flow verifier (local
/// computation, used by the test-suite and the examples).
pub fn verify_exact<R: Rng>(graph: &Graph, h: &EdgeSet, k: usize, rng: &mut R) -> Verdict {
    let mut verdict = match k {
        2 => verify_two_edge_connected(graph, h, rng),
        3 => verify_three_edge_connected(graph, h, rng),
        _ => {
            let model = default_model(graph);
            let mut ledger = RoundLedger::new(model);
            ledger.charge("verify/exact_fallback", model.broadcast(h.len() as u64));
            Verdict {
                accepted: connectivity::is_k_edge_connected_in(graph, h, k),
                witness: None,
                ledger,
            }
        }
    };
    if verdict.accepted && !connectivity::is_k_edge_connected_in(graph, h, k) {
        // A label collision slipped through (essentially impossible at 64
        // bits, but the exact mode promises certainty).
        verdict.accepted = false;
        verdict.witness = None;
    }
    verdict
}

fn default_model(graph: &Graph) -> CostModel {
    // diameter_hint: exact on test-sized graphs, double-sweep beyond 4096
    // vertices (a server job may legitimately be 10⁵-vertex scale).
    let diameter = graphs::bfs::diameter_hint(graph).unwrap_or(graph.n());
    CostModel::new(graph.n(), diameter)
}

fn label<R: Rng>(
    graph: &Graph,
    h: &EdgeSet,
    rng: &mut R,
) -> (Circulation, RootedTree, RoundLedger) {
    assert!(
        connectivity::is_connected_in(graph, h),
        "verification requires a connected spanning subgraph"
    );
    let model = default_model(graph);
    let mut ledger = RoundLedger::new(model);
    let bfs = graphs::bfs::bfs_in(graph, h, 0);
    let tree = RootedTree::new(graph, &bfs.tree_edges(graph), 0);
    ledger.charge("verify/bfs_tree", model.bfs_construction());
    let circulation = Circulation::sample(graph, h, &tree, 64, rng);
    ledger.charge(
        "verify/labels",
        labelling_rounds(&tree).min(2 * model.bfs_construction()),
    );
    (circulation, tree, ledger)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn accepts_two_edge_connected_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let g = generators::cycle(12, 1);
        let v = verify_two_edge_connected(&g, &g.full_edge_set(), &mut rng);
        assert!(v.accepted);
        assert!(v.witness.is_none());
        assert!(v.ledger.total() > 0);
    }

    #[test]
    fn rejects_bridges_with_a_witness() {
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 1);
        let bridge = g.add_edge(2, 3, 1);
        g.add_edge(3, 4, 1);
        g.add_edge(4, 5, 1);
        g.add_edge(5, 3, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let v = verify_two_edge_connected(&g, &g.full_edge_set(), &mut rng);
        assert!(!v.accepted);
        assert_eq!(v.witness, Some(vec![bridge]));
    }

    #[test]
    fn three_edge_connectivity_verdicts_match_ground_truth() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for n in [8usize, 14, 20] {
            let yes = generators::harary(3, n, 1);
            assert!(verify_three_edge_connected(&yes, &yes.full_edge_set(), &mut rng).accepted);
            let no = generators::cycle(n, 1);
            let verdict = verify_three_edge_connected(&no, &no.full_edge_set(), &mut rng);
            assert!(!verdict.accepted);
            let witness = verdict.witness.unwrap();
            assert!(
                !connectivity::is_connected_after_removal(&no, &no.full_edge_set(), &witness),
                "the rejection witness must be a real cut"
            );
        }
    }

    #[test]
    fn rejection_witnesses_are_always_real_cuts() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for seed in 0..10u64 {
            let mut inner = ChaCha8Rng::seed_from_u64(seed);
            let g = generators::random_k_edge_connected(12, 2, 3, &mut inner);
            let h = g.full_edge_set();
            let verdict = verify_three_edge_connected(&g, &h, &mut rng);
            if let Some(witness) = &verdict.witness {
                assert!(!connectivity::is_connected_after_removal(&g, &h, witness));
            } else {
                assert!(connectivity::is_k_edge_connected_in(&g, &h, 3));
            }
        }
    }

    #[test]
    fn exact_mode_agrees_with_the_max_flow_verifier() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for k in 2..=4usize {
            for n in [10usize, 16] {
                let g = generators::harary(4, n, 1);
                let verdict = verify_exact(&g, &g.full_edge_set(), k, &mut rng);
                assert_eq!(verdict.accepted, connectivity::is_k_edge_connected(&g, k));
            }
        }
    }

    #[test]
    fn verification_rounds_are_a_few_bfs_sweeps() {
        let g = generators::torus(5, 5, 1);
        let d = graphs::bfs::diameter(&g).unwrap() as u64;
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let v = verify_three_edge_connected(&g, &g.full_edge_set(), &mut rng);
        assert!(v.ledger.total() <= 6 * (d + 1));
    }

    #[test]
    #[should_panic(expected = "connected spanning subgraph")]
    fn rejects_disconnected_inputs() {
        let g = Graph::new(3);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        verify_two_edge_connected(&g, &g.full_edge_set(), &mut rng);
    }
}
