//! Baselines and reference solvers used by the evaluation (experiment E8 and
//! the approximation-ratio experiments).
//!
//! * [`greedy`] — the classical sequential greedy set-cover augmentation
//!   (the algorithm the paper's framework parallelizes); an `O(log n)`
//!   approximation that serves as the quality reference.
//! * [`thurimella`] — the sparse-certificate 2-approximation for *unweighted*
//!   k-ECSS ([36] in the paper): k rounds of maximal spanning forests.
//! * [`bfs_two_ecss`] — the `O(D)`-round 2-approximation for unweighted
//!   2-ECSS of [1], used both as a baseline and as the starting subgraph of
//!   the unweighted 3-ECSS algorithm (Section 5).
//! * [`exact`] — branch-and-bound exact solvers for small instances, used to
//!   measure true approximation ratios.

pub mod bfs_two_ecss;
pub mod exact;
pub mod greedy;
pub mod thurimella;

use graphs::{EdgeSet, Weight};

/// A baseline solution: an edge set and its total weight.
#[derive(Clone, Debug)]
pub struct BaselineSolution {
    /// The selected edges.
    pub edges: EdgeSet,
    /// Their total weight.
    pub weight: Weight,
}
