//! Exact branch-and-bound solvers for small instances.
//!
//! The paper's guarantees are stated against the (unknown) optimum; on small
//! instances the optimum can be computed outright, which the
//! approximation-ratio experiments (E2, E5, E6) use to report true ratios
//! instead of ratios against a lower bound.
//!
//! The search explores edges in descending weight order, branching on
//! "exclude" first (with a feasibility check on the remaining edges) and
//! pruning "include" branches by the best weight found so far. The
//! feasibility predicates are monotone (adding edges never breaks them), which
//! makes the exclude-first invariant sound.

use super::BaselineSolution;
use graphs::{connectivity, EdgeId, EdgeSet, Graph};

/// Maximum number of *free* (branchable) edges the exact solvers accept; above
/// this the search space is too large and `None` is returned.
pub const MAX_FREE_EDGES: usize = 26;

/// Exact minimum-weight k-edge-connected spanning subgraph.
///
/// Returns `None` if the graph is not k-edge-connected or has more than
/// [`MAX_FREE_EDGES`] edges.
pub fn min_k_ecss(graph: &Graph, k: usize) -> Option<BaselineSolution> {
    if !connectivity::is_k_edge_connected(graph, k) {
        return None;
    }
    let allowed: Vec<EdgeId> = graph.edge_ids().collect();
    minimum_feasible_subset(graph, &graph.empty_edge_set(), allowed, |edges| {
        connectivity::is_k_edge_connected_in(graph, edges, k)
    })
}

/// Exact minimum-weight tree augmentation: the cheapest set of non-tree edges
/// whose union with `tree_edges` is 2-edge-connected.
///
/// Returns `None` if the graph is not 2-edge-connected or has more than
/// [`MAX_FREE_EDGES`] non-tree edges.
pub fn min_tap(graph: &Graph, tree_edges: &EdgeSet) -> Option<BaselineSolution> {
    if !connectivity::is_two_edge_connected_in(graph, &graph.full_edge_set()) {
        return None;
    }
    let allowed: Vec<EdgeId> = graph
        .edge_ids()
        .filter(|id| !tree_edges.contains(*id))
        .collect();
    minimum_feasible_subset(graph, tree_edges, allowed, |edges| {
        connectivity::is_two_edge_connected_in(graph, edges)
    })
    .map(|sol| {
        // Report only the augmentation edges (exclude the fixed tree edges).
        let augmentation = sol.edges.difference(tree_edges);
        let weight = graph.weight_of(&augmentation);
        BaselineSolution {
            edges: augmentation,
            weight,
        }
    })
}

/// Exact minimum-weight augmentation of `h` to k-edge-connectivity.
///
/// Returns `None` if the whole graph is not k-edge-connected or there are more
/// than [`MAX_FREE_EDGES`] edges outside `h`.
pub fn min_augmentation(graph: &Graph, h: &EdgeSet, k: usize) -> Option<BaselineSolution> {
    if !connectivity::is_k_edge_connected(graph, k) {
        return None;
    }
    let allowed: Vec<EdgeId> = graph.edge_ids().filter(|id| !h.contains(*id)).collect();
    minimum_feasible_subset(graph, h, allowed, |edges| {
        connectivity::is_k_edge_connected_in(graph, edges, k)
    })
    .map(|sol| {
        let augmentation = sol.edges.difference(h);
        let weight = graph.weight_of(&augmentation);
        BaselineSolution {
            edges: augmentation,
            weight,
        }
    })
}

/// Branch-and-bound search for the minimum-weight subset `S` of `allowed`
/// such that `feasible(base ∪ S)` holds. The returned solution contains
/// `base ∪ S`. Returns `None` when `allowed` is too large or no feasible
/// subset exists.
fn minimum_feasible_subset<F>(
    graph: &Graph,
    base: &EdgeSet,
    mut allowed: Vec<EdgeId>,
    feasible: F,
) -> Option<BaselineSolution>
where
    F: Fn(&EdgeSet) -> bool,
{
    if allowed.len() > MAX_FREE_EDGES {
        return None;
    }
    // Everything included must be feasible, otherwise no subset is.
    let mut everything = base.clone();
    for &id in &allowed {
        everything.insert(id);
    }
    if !feasible(&everything) {
        return None;
    }
    // Branch on heavy edges first so the weight pruning bites early.
    allowed.sort_by_key(|&id| std::cmp::Reverse(graph.weight(id)));

    struct Search<'a, F> {
        graph: &'a Graph,
        allowed: &'a [EdgeId],
        feasible: F,
        best_weight: u64,
        best: Option<EdgeSet>,
    }

    impl<F: Fn(&EdgeSet) -> bool> Search<'_, F> {
        /// `current` = base ∪ included ∪ allowed[idx..]; invariant: feasible.
        fn explore(&mut self, current: &mut EdgeSet, idx: usize, included_weight: u64) {
            if included_weight >= self.best_weight {
                return;
            }
            if idx == self.allowed.len() {
                self.best_weight = included_weight;
                self.best = Some(current.clone());
                return;
            }
            let edge = self.allowed[idx];
            // Branch 1: exclude the edge, if the remainder stays feasible.
            current.remove(edge);
            if (self.feasible)(current) {
                self.explore(current, idx + 1, included_weight);
            }
            current.insert(edge);
            // Branch 2: include the edge.
            self.explore(current, idx + 1, included_weight + self.graph.weight(edge));
        }
    }

    let mut search = Search {
        graph,
        allowed: &allowed,
        feasible,
        best_weight: u64::MAX,
        best: None,
    };
    let mut current = everything;
    let total_allowed_weight: u64 = allowed.iter().map(|&id| graph.weight(id)).sum();
    // Seed the bound with "take everything" so the search always terminates
    // with a solution.
    search.best_weight = total_allowed_weight.saturating_add(1);
    search.explore(&mut current, 0, 0);

    search.best.map(|edges| {
        let weight = graph.weight_of(&edges.difference(base));
        BaselineSolution { edges, weight }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bounds;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn optimal_two_ecss_of_a_cycle_is_the_cycle() {
        let g = generators::cycle(6, 5);
        let sol = min_k_ecss(&g, 2).unwrap();
        assert_eq!(sol.weight, 30);
        assert_eq!(sol.edges.len(), 6);
    }

    #[test]
    fn optimal_drops_redundant_heavy_edges() {
        // A 4-cycle plus a heavy chord: the chord is never needed.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 3, 2);
        g.add_edge(3, 0, 2);
        let chord = g.add_edge(0, 2, 50);
        let sol = min_k_ecss(&g, 2).unwrap();
        assert!(!sol.edges.contains(chord));
        assert_eq!(sol.weight, 8);
    }

    #[test]
    fn optimum_respects_the_lower_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..5 {
            let g = generators::random_weighted_k_edge_connected(8, 2, 4, 20, &mut rng);
            if let Some(sol) = min_k_ecss(&g, 2) {
                let lb = lower_bounds::k_ecss_lower_bound(&g, 2);
                assert!(sol.weight >= lb);
                assert!(connectivity::is_k_edge_connected_in(&g, &sol.edges, 2));
            }
        }
    }

    #[test]
    fn exact_three_ecss_on_small_harary() {
        let g = generators::harary(3, 6, 1);
        let sol = min_k_ecss(&g, 3).unwrap();
        // H_{3,6} is itself a minimum 3-ECSS (9 edges).
        assert_eq!(sol.weight, 9);
    }

    #[test]
    fn min_tap_on_cycle_is_the_closing_edge() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        g.add_edge(3, 4, 1);
        let closing = g.add_edge(4, 0, 9);
        let mut tree = g.full_edge_set();
        tree.remove(closing);
        let sol = min_tap(&g, &tree).unwrap();
        assert_eq!(sol.weight, 9);
        assert_eq!(sol.edges.to_vec(), vec![closing]);
    }

    #[test]
    fn min_tap_matches_brute_force_on_random_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for _ in 0..3 {
            let g = generators::random_weighted_k_edge_connected(8, 2, 6, 15, &mut rng);
            let tree = graphs::mst::kruskal(&g);
            let non_tree: Vec<EdgeId> = g.edge_ids().filter(|id| !tree.contains(*id)).collect();
            if non_tree.len() > 16 {
                continue;
            }
            let exact = min_tap(&g, &tree).unwrap();
            // Brute force over all subsets of non-tree edges.
            let mut best = u64::MAX;
            for mask in 0u32..(1 << non_tree.len()) {
                let mut set = tree.clone();
                let mut w = 0;
                for (i, &id) in non_tree.iter().enumerate() {
                    if mask >> i & 1 == 1 {
                        set.insert(id);
                        w += g.weight(id);
                    }
                }
                if connectivity::is_two_edge_connected_in(&g, &set) {
                    best = best.min(w);
                }
            }
            assert_eq!(exact.weight, best);
        }
    }

    #[test]
    fn min_augmentation_from_mst_to_two_connectivity() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::random_weighted_k_edge_connected(8, 2, 5, 10, &mut rng);
        let h = graphs::mst::kruskal(&g);
        let sol = min_augmentation(&g, &h, 2).unwrap();
        let union = h.union(&sol.edges);
        assert!(connectivity::is_k_edge_connected_in(&g, &union, 2));
    }

    #[test]
    fn oversized_instances_return_none() {
        let g = generators::complete(10, 1); // 45 edges > MAX_FREE_EDGES
        assert!(min_k_ecss(&g, 2).is_none());
    }

    #[test]
    fn infeasible_instances_return_none() {
        let g = generators::path(4, 1);
        assert!(min_k_ecss(&g, 2).is_none());
        assert!(min_tap(&g, &g.full_edge_set()).is_none());
    }
}
