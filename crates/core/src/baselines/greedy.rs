//! The sequential greedy set-cover augmentation (the algorithm of Section 2.1
//! before parallelization): repeatedly add the edge with maximum
//! cost-effectiveness until every cut is covered.
//!
//! This is the classical `O(log n)`-approximation; the distributed algorithms
//! are compared against it to show they lose only a constant factor in
//! quality while being exponentially faster in rounds.

use super::BaselineSolution;
use crate::cover;
use crate::cuts::{AutoEnumerator, CutEnumerator, CutFamily};
use crate::error::{Error, Result};
use graphs::{connectivity, EdgeSet, Graph, RootedTree};

/// Greedy weighted TAP: cover all tree edges of `tree_edges` with non-tree
/// edges, always picking the edge maximizing (newly covered) / weight.
///
/// # Panics
///
/// Panics if the graph is not 2-edge-connected (some tree edge cannot be
/// covered).
pub fn tap(graph: &Graph, tree_edges: &EdgeSet) -> BaselineSolution {
    let tree = RootedTree::new(graph, tree_edges, 0);
    let non_tree: Vec<(graphs::EdgeId, usize, usize, u64)> = graph
        .edges()
        .filter(|(id, _)| !tree_edges.contains(*id))
        .map(|(id, e)| (id, e.u, e.v, e.weight))
        .collect();
    let mut covered = vec![false; graph.n()];
    covered[tree.root()] = true; // the root has no parent edge
    let mut uncovered = graph.n() - 1;
    let mut chosen = graph.empty_edge_set();

    while uncovered > 0 {
        let mut best: Option<(f64, graphs::EdgeId)> = None;
        let mut best_path: Vec<usize> = Vec::new();
        for &(id, u, v, w) in &non_tree {
            if chosen.contains(id) {
                continue;
            }
            let path: Vec<usize> = tree
                .path_edge_children(u, v)
                .into_iter()
                .filter(|&c| !covered[c])
                .collect();
            if path.is_empty() {
                continue;
            }
            let value = cover::exact(path.len(), w);
            let better = match best {
                None => true,
                Some((bv, bid)) => value > bv || (value == bv && id < bid),
            };
            if better {
                best = Some((value, id));
                best_path = path;
            }
        }
        let (_, id) = best.expect("graph must be 2-edge-connected: every tree edge has a cover");
        chosen.insert(id);
        for c in best_path {
            covered[c] = true;
            uncovered -= 1;
        }
    }

    let weight = graph.weight_of(&chosen);
    BaselineSolution {
        edges: chosen,
        weight,
    }
}

/// Greedy augmentation of a `(size+1 - 1) = size`-cut family: cover every cut
/// of the family with edges outside `h`, maximizing (newly covered) / weight.
///
/// This is the sequential counterpart of `Aug_k` with `size = k - 1`.
///
/// # Panics
///
/// Panics if some cut cannot be covered by any edge of the graph.
pub fn augment_cuts(graph: &Graph, h: &EdgeSet, family: &CutFamily) -> BaselineSolution {
    let mut covered = vec![false; family.len()];
    let mut uncovered = family.len();
    let mut chosen = graph.empty_edge_set();
    let candidates: Vec<(graphs::EdgeId, usize, usize, u64)> = graph
        .edges()
        .filter(|(id, _)| !h.contains(*id))
        .map(|(id, e)| (id, e.u, e.v, e.weight))
        .collect();

    while uncovered > 0 {
        let mut best: Option<(f64, graphs::EdgeId)> = None;
        let mut best_covers: Vec<usize> = Vec::new();
        for &(id, u, v, w) in &candidates {
            if chosen.contains(id) {
                continue;
            }
            let covers: Vec<usize> = (0..family.len())
                .filter(|&c| !covered[c] && family.crossed_by(c, u, v))
                .collect();
            if covers.is_empty() {
                continue;
            }
            let value = cover::exact(covers.len(), w);
            let better = match best {
                None => true,
                Some((bv, bid)) => value > bv || (value == bv && id < bid),
            };
            if better {
                best = Some((value, id));
                best_covers = covers;
            }
        }
        let (_, id) = best.expect("every cut must be coverable by some graph edge");
        chosen.insert(id);
        for c in best_covers {
            covered[c] = true;
            uncovered -= 1;
        }
    }

    let weight = graph.weight_of(&chosen);
    BaselineSolution {
        edges: chosen,
        weight,
    }
}

/// Greedy weighted k-ECSS: MST for the first connectivity level, then greedy
/// cut augmentation level by level (the sequential analogue of Claim 2.1).
/// Any `k >= 1` is supported (the pluggable cut enumerators lifted the former
/// `k <= 4` cap).
///
/// # Panics
///
/// Panics if the graph is not k-edge-connected or the cut enumeration fails.
pub fn k_ecss(graph: &Graph, k: usize) -> BaselineSolution {
    k_ecss_with_exec(graph, k, &kecss_runtime::Executor::Sequential)
}

/// Same as [`k_ecss`], running the per-level cut enumeration through `exec`.
/// Bit-identical to [`k_ecss`] for every executor (the greedy selection
/// itself is deterministic and stays sequential).
///
/// # Panics
///
/// Same conditions as [`k_ecss`].
pub fn k_ecss_with_exec(
    graph: &Graph,
    k: usize,
    exec: &kecss_runtime::Executor,
) -> BaselineSolution {
    k_ecss_with_enumerator(graph, k, exec, &AutoEnumerator::default())
        .expect("greedy k-ECSS on a k-edge-connected graph cannot fail with the auto enumerator")
}

/// The most general greedy entry point: explicit executor and
/// [`CutEnumerator`] strategy. Like `Aug_k`, each level's cover is certified
/// exactly and re-enumerated with a fresh salt if a randomized enumerator
/// missed a cut, so the returned subgraph is always genuinely
/// k-edge-connected.
///
/// # Errors
///
/// Whatever the enumerator reports, plus [`Error::IncompleteEnumeration`] if
/// certification keeps failing.
///
/// # Panics
///
/// Panics if `k == 0` or the graph is not k-edge-connected (some cut has no
/// covering edge).
pub fn k_ecss_with_enumerator(
    graph: &Graph,
    k: usize,
    exec: &kecss_runtime::Executor,
    enumerator: &dyn CutEnumerator,
) -> Result<BaselineSolution> {
    assert!(k >= 1, "k must be at least 1");
    // Observational only (DESIGN.md §11) — never feeds back into the bytes.
    let _solve_span = kecss_obs::span("solve");
    const MAX_ATTEMPTS: u64 = 8;
    let mut h = {
        let _span = kecss_obs::span("mst");
        graphs::mst::kruskal(graph)
    };
    for level in 2..=k {
        let mut attempt = 0u64;
        loop {
            let family = CutFamily::enumerate_with_enumerator(
                graph,
                &h,
                level - 1,
                enumerator,
                attempt,
                exec,
            )?;
            let added = augment_cuts(graph, &h, &family);
            h.union_with(&added.edges);
            if connectivity::is_k_edge_connected_in(graph, &h, level) {
                break;
            }
            attempt += 1;
            if attempt >= MAX_ATTEMPTS {
                return Err(Error::IncompleteEnumeration {
                    size: level - 1,
                    attempts: attempt,
                });
            }
        }
    }
    let weight = graph.weight_of(&h);
    Ok(BaselineSolution { edges: h, weight })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{connectivity, generators, mst};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn greedy_tap_covers_every_tree_edge() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [8, 16, 32] {
            let g = generators::random_weighted_k_edge_connected(n, 2, 2 * n, 40, &mut rng);
            let tree = mst::kruskal(&g);
            let sol = tap(&g, &tree);
            let union = tree.union(&sol.edges);
            assert!(
                connectivity::is_two_edge_connected_in(&g, &union),
                "n = {n}"
            );
            assert_eq!(sol.weight, g.weight_of(&sol.edges));
        }
    }

    #[test]
    fn greedy_tap_on_cycle_picks_the_single_closing_edge() {
        let g = generators::cycle(6, 2);
        let tree = mst::kruskal(&g);
        let sol = tap(&g, &tree);
        assert_eq!(sol.edges.len(), 1);
        assert_eq!(sol.weight, 2);
    }

    #[test]
    fn greedy_prefers_cheap_wide_covers() {
        // A path 0-1-2-3 plus an expensive parallel cover per edge and one
        // cheap edge covering everything: greedy must take the cheap one.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 3, 1);
        let expensive1 = g.add_edge(0, 1, 10);
        let expensive2 = g.add_edge(1, 2, 10);
        let cheap = g.add_edge(0, 3, 3);
        let _ = expensive1;
        let _ = expensive2;
        let tree = graphs::EdgeSet::from_ids(
            g.m(),
            [graphs::EdgeId(0), graphs::EdgeId(1), graphs::EdgeId(2)],
        );
        let sol = tap(&g, &tree);
        assert!(sol.edges.contains(cheap));
        assert_eq!(sol.weight, 3);
    }

    #[test]
    fn greedy_k_ecss_produces_k_connected_subgraph() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for k in 2..=3 {
            let g = generators::random_weighted_k_edge_connected(14, k, 20, 12, &mut rng);
            let sol = k_ecss(&g, k);
            assert!(
                connectivity::is_k_edge_connected_in(&g, &sol.edges, k),
                "k = {k}: greedy result must be {k}-edge-connected"
            );
        }
    }

    #[test]
    fn greedy_k_ecss_works_past_the_former_cap() {
        let g = generators::harary(5, 12, 1);
        let sol = k_ecss(&g, 5);
        assert!(connectivity::is_k_edge_connected_in(&g, &sol.edges, 5));
    }

    #[test]
    fn augment_cuts_covers_the_family() {
        let g = generators::cycle(8, 1);
        // H = the cycle; cover all its cut pairs to reach 3-edge-connectivity…
        // which is impossible in the cycle alone, so use a richer graph.
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g2 = generators::random_k_edge_connected(10, 3, 5, &mut rng);
        let h = mst::kruskal(&g2);
        // Augment connectivity 1 -> 2: cover all bridges of H.
        let family = CutFamily::enumerate(&g2, &h, 1).unwrap();
        let sol = augment_cuts(&g2, &h, &family);
        let union = h.union(&sol.edges);
        assert!(connectivity::is_two_edge_connected_in(&g2, &union));
        drop(g);
    }
}
