//! Thurimella's sparse-certificate 2-approximation for unweighted k-ECSS
//! ([36] in the paper).
//!
//! Repeatedly compute a maximal spanning forest of the remaining graph and
//! remove its edges; the union of the first `k` forests is k-edge-connected
//! (if the input is) and has at most `k (n - 1)` edges, which is a
//! 2-approximation for the *unweighted* problem because any k-ECSS has at
//! least `k n / 2` edges. The distributed implementation in the paper costs
//! `O(k (D + √n log* n))` rounds — one MST computation per forest — which is
//! the cost charged to the ledger here.
//!
//! The algorithm has **no guarantee for weighted instances**: experiment E8
//! includes a weighted family where it is a factor `Θ(n)` from optimal, which
//! is exactly the motivation the paper gives for its weighted algorithms.

use super::BaselineSolution;
use congest::{CostModel, RoundLedger};
use graphs::{mst, EdgeSet, Graph};

/// The result of the sparse-certificate baseline.
#[derive(Clone, Debug)]
pub struct ThurimellaSolution {
    /// The union of the `k` maximal spanning forests.
    pub edges: EdgeSet,
    /// Total weight (meaningful only as a report; the algorithm ignores
    /// weights).
    pub weight: u64,
    /// CONGEST rounds charged: `k` forest computations.
    pub ledger: RoundLedger,
}

impl From<ThurimellaSolution> for BaselineSolution {
    fn from(s: ThurimellaSolution) -> Self {
        BaselineSolution {
            edges: s.edges,
            weight: s.weight,
        }
    }
}

/// Computes the union of `k` successive maximal spanning forests of `graph`.
///
/// The cost model's diameter comes from [`graphs::bfs::diameter_hint`]:
/// exact on test/bench-sized instances, double-sweep approximate beyond
/// 4096 vertices so that ≥10⁵-vertex instances stay forest-bound instead of
/// all-pairs-BFS-bound.
pub fn sparse_certificate(graph: &Graph, k: usize) -> ThurimellaSolution {
    let diameter = graphs::bfs::diameter_hint(graph).unwrap_or(graph.n());
    sparse_certificate_with_model(graph, k, CostModel::new(graph.n(), diameter))
}

/// Same as [`sparse_certificate`] with an explicit cost model.
pub fn sparse_certificate_with_model(
    graph: &Graph,
    k: usize,
    model: CostModel,
) -> ThurimellaSolution {
    // Observational only (DESIGN.md §11) — never feeds back into the bytes.
    let _solve_span = kecss_obs::span("solve");
    let mut ledger = RoundLedger::new(model);
    let mut remaining = graph.full_edge_set();
    let mut certificate = graph.empty_edge_set();
    for _ in 0..k {
        let _span = kecss_obs::span("forest");
        let forest = mst::maximal_spanning_forest_in(graph, &remaining);
        ledger.charge("thurimella/forest", model.mst_kutten_peleg());
        certificate.union_with(&forest);
        remaining = remaining.difference(&forest);
        if forest.is_empty() {
            break;
        }
    }
    let weight = graph.weight_of(&certificate);
    ThurimellaSolution {
        edges: certificate,
        weight,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{connectivity, generators};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn certificate_preserves_k_connectivity() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for k in 1..=4 {
            let g = generators::random_k_edge_connected(20, k, 40, &mut rng);
            let sol = sparse_certificate(&g, k);
            assert!(
                connectivity::is_k_edge_connected_in(&g, &sol.edges, k),
                "certificate must stay {k}-edge-connected"
            );
            assert!(sol.edges.len() <= k * (g.n() - 1), "certificate too large");
        }
    }

    #[test]
    fn certificate_is_a_two_approximation_for_unweighted() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for k in 2..=3 {
            let g = generators::random_k_edge_connected(24, k, 60, &mut rng);
            let sol = sparse_certificate(&g, k);
            // Any k-ECSS has at least kn/2 edges.
            let lower = (k * g.n()) as f64 / 2.0;
            assert!((sol.edges.len() as f64) <= 2.0 * lower);
        }
    }

    #[test]
    fn rounds_scale_linearly_in_k() {
        let g = generators::harary(4, 30, 1);
        let s2 = sparse_certificate(&g, 2);
        let s4 = sparse_certificate(&g, 4);
        assert_eq!(s4.ledger.total(), 2 * s2.ledger.total());
    }

    #[test]
    fn weighted_instances_can_be_very_suboptimal() {
        // Cycle of cheap edges plus a clique of expensive edges: the
        // certificate picks forests greedily by edge id (ignoring weight) and
        // ends up paying for expensive edges even though the cheap cycle is a
        // feasible 2-ECSS.
        let n = 12;
        let mut g = Graph::new(n);
        for v in 0..n {
            g.add_edge(v, (v + 1) % n, 1_000);
        }
        for u in 0..n {
            for v in (u + 1)..n {
                if (u + 1) % n != v && (v + 1) % n != u {
                    g.add_edge(u, v, 1);
                }
            }
        }
        // Feasible cheap-ish solution exists (the expensive cycle costs 12k,
        // but clique edges cost 1): the point is only that the certificate
        // does not optimize weight at all, while the weighted 2-ECSS
        // algorithm does. Just sanity-check feasibility here.
        let sol = sparse_certificate(&g, 2);
        assert!(connectivity::is_k_edge_connected_in(&g, &sol.edges, 2));
    }

    #[test]
    fn stops_early_when_edges_run_out() {
        let g = generators::path(5, 1);
        let sol = sparse_certificate(&g, 3);
        assert_eq!(sol.edges.len(), 4);
    }
}
