//! The `O(D)`-round 2-approximation for *unweighted* 2-ECSS of
//! Censor-Hillel & Dory ([1] in the paper).
//!
//! Build a BFS tree `T`, then cover every tree edge: processing vertices
//! bottom-up, an uncovered tree edge `{v, p(v)}` is covered by adding the
//! non-tree edge incident to the subtree of `v` whose tree path climbs
//! highest. The output has at most `2(n-1)` edges, and any 2-ECSS has at
//! least `n` edges, so this is a 2-approximation for the unweighted problem.
//! Every step is a constant number of BFS-tree aggregations, i.e. `O(D)`
//! rounds, which is what the ledger charges.
//!
//! The unweighted 3-ECSS algorithm of Section 5 uses this construction for
//! its starting subgraph `H`.

use super::BaselineSolution;
use congest::{CostModel, RoundLedger};
use graphs::{bfs, EdgeSet, Graph, RootedTree};

/// The result of the `O(D)`-round unweighted 2-ECSS baseline.
#[derive(Clone, Debug)]
pub struct BfsTwoEcssSolution {
    /// The 2-edge-connected spanning subgraph (BFS tree plus covers).
    pub edges: EdgeSet,
    /// The BFS tree part.
    pub tree: EdgeSet,
    /// Number of edges in the subgraph (the unweighted objective).
    pub size: usize,
    /// CONGEST rounds charged.
    pub ledger: RoundLedger,
}

impl From<BfsTwoEcssSolution> for BaselineSolution {
    fn from(s: BfsTwoEcssSolution) -> Self {
        let weight = s.size as u64;
        BaselineSolution {
            edges: s.edges,
            weight,
        }
    }
}

/// Runs the `O(D)`-round unweighted 2-ECSS 2-approximation.
///
/// # Panics
///
/// Panics if the graph is not 2-edge-connected (some tree edge cannot be
/// covered).
pub fn solve(graph: &Graph) -> BfsTwoEcssSolution {
    let diameter = bfs::diameter(graph).unwrap_or(graph.n());
    solve_with_model(graph, CostModel::new(graph.n(), diameter))
}

/// Same as [`solve`] with an explicit cost model.
///
/// # Panics
///
/// Panics if the graph is not 2-edge-connected.
pub fn solve_with_model(graph: &Graph, model: CostModel) -> BfsTwoEcssSolution {
    let mut ledger = RoundLedger::new(model);
    let bfs_tree = bfs::bfs(graph, 0);
    assert!(bfs_tree.is_spanning(), "the input graph must be connected");
    let tree_edges = bfs_tree.tree_edges(graph);
    let tree = RootedTree::new(graph, &tree_edges, 0);
    ledger.charge("bfs2ecss/bfs_tree", model.bfs_construction());

    // For every vertex v, the non-tree edge incident to subtree(v) whose tree
    // path climbs highest (minimum LCA depth), computed bottom-up.
    let n = graph.n();
    let mut best: Vec<Option<(usize, graphs::EdgeId)>> = vec![None; n]; // (lca depth, edge)
    let mut incident: Vec<Vec<(usize, graphs::EdgeId)>> = vec![Vec::new(); n];
    for (id, e) in graph.edges() {
        if tree_edges.contains(id) {
            continue;
        }
        let lca_depth = tree.depth(tree.lca(e.u, e.v));
        incident[e.u].push((lca_depth, id));
        incident[e.v].push((lca_depth, id));
    }
    for &v in tree.bfs_order().iter().rev() {
        for &(d, id) in &incident[v] {
            if best[v].is_none_or(|(bd, bid)| (d, id) < (bd, bid)) {
                best[v] = Some((d, id));
            }
        }
        if let Some(p) = tree.parent(v) {
            if let Some(candidate) = best[v] {
                if best[p].is_none_or(|b| candidate < b) {
                    best[p] = Some(candidate);
                }
            }
        }
    }
    ledger.charge("bfs2ecss/aggregate", model.bfs_construction());

    // Cover tree edges bottom-up.
    let mut covered = vec![false; n];
    let mut chosen = graph.empty_edge_set();
    for &v in tree.bfs_order().iter().rev() {
        if v == tree.root() || covered[v] {
            continue;
        }
        let (lca_depth, id) =
            best[v].expect("2-edge-connected graph: every subtree has an escaping non-tree edge");
        assert!(
            lca_depth < tree.depth(v),
            "the best escaping edge must cover the uncovered tree edge"
        );
        chosen.insert(id);
        let e = graph.edge(id);
        for child in tree.path_edge_children(e.u, e.v) {
            covered[child] = true;
        }
    }
    ledger.charge("bfs2ecss/cover", model.bfs_construction());

    let edges = tree_edges.union(&chosen);
    let size = edges.len();
    BfsTwoEcssSolution {
        edges,
        tree: tree_edges,
        size,
        ledger,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::{connectivity, generators};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn output_is_two_edge_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [8, 20, 60] {
            let g = generators::random_k_edge_connected(n, 2, 2 * n, &mut rng);
            let sol = solve(&g);
            assert!(
                connectivity::is_two_edge_connected_in(&g, &sol.edges),
                "n = {n}"
            );
            assert_eq!(sol.size, sol.edges.len());
        }
    }

    #[test]
    fn size_is_at_most_twice_optimal() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for n in [10usize, 30, 50] {
            let g = generators::random_k_edge_connected(n, 2, 3 * n, &mut rng);
            let sol = solve(&g);
            // OPT >= n for 2-ECSS; the output must be <= 2 (n - 1).
            assert!(sol.size <= 2 * (n - 1), "n = {n}: size {}", sol.size);
        }
    }

    #[test]
    fn cycle_returns_exactly_the_cycle() {
        let g = generators::cycle(10, 1);
        let sol = solve(&g);
        assert_eq!(sol.size, 10);
    }

    #[test]
    fn rounds_are_a_constant_number_of_bfs_sweeps() {
        let g = generators::torus(5, 5, 1);
        let sol = solve(&g);
        let d = graphs::bfs::diameter(&g).unwrap() as u64;
        assert!(sol.ledger.total() <= 6 * (d + 1));
    }

    #[test]
    #[should_panic(expected = "every subtree has an escaping non-tree edge")]
    fn panics_on_graphs_with_bridges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 1);
        g.add_edge(2, 3, 1); // bridge
        solve(&g);
    }
}
