//! `Aug_k` — augmenting a `(k-1)`-edge-connected subgraph to
//! k-edge-connectivity (Section 4 of the paper, the engine behind
//! Theorem 1.2).
//!
//! The input is a k-edge-connected graph `G` and a `(k-1)`-edge-connected
//! spanning subgraph `H`; the goal is a minimum-weight set of edges `A` such
//! that `H ∪ A` is k-edge-connected, i.e. a set covering every cut of size
//! `k - 1` of `H`.
//!
//! The distributed algorithm follows the framework of Section 2.1 with the
//! "probability guessing" symmetry breaking of Section 4:
//!
//! 1. every edge outside `H ∪ A` computes its rounded cost-effectiveness
//!    (all vertices know `H` and `A`, so this is local);
//! 2. the edges in the maximum class are candidates;
//! 3. each candidate becomes *active* with probability `p_i`, where `p_i`
//!    starts at `1/2^⌈log m⌉` and doubles every `M·⌈log n⌉` iterations (and
//!    resets whenever the maximum class drops);
//! 4. an MST of `G` is computed under the reweighting {edges of `A` → 0,
//!    active candidates → 1, others → 2}; the active candidates that appear
//!    in this MST join `A` (Claims 4.1–4.3 guarantee `A` stays a forest and
//!    every cut coverable by an active candidate gets covered);
//! 5. repeat until every `(k-1)`-cut is covered.
//!
//! The approximation ratio is `O(log n)` in expectation (Lemma 4.6), and the
//! round complexity is `O(D log³ n + n)` (Lemma 4.4): `O(log³ n)` iterations,
//! each costing an MST plus `O(D)` aggregation plus broadcasting the
//! `n_i ≤ n` newly added edges.

use crate::cover::Rounded;
use crate::cuts::{AutoEnumerator, CutEnumerator, CutFamily};
use crate::error::{Error, Result};
use congest::{CostModel, RoundLedger};
use graphs::{connectivity, mst, EdgeId, EdgeSet, Graph};
use kecss_runtime::Executor;
use rand::Rng;

/// The phase-length multiplier `M` of the probability schedule: the activation
/// probability doubles every `M · ⌈log₂ n⌉` iterations at the same
/// cost-effectiveness class. The paper leaves the constant unspecified;
/// `M = 2` keeps the w.h.p. argument of Lemma 4.5 comfortable while bounding
/// iteration counts in practice.
pub const PHASE_MULTIPLIER: u64 = 2;

/// Safety cap on iterations (`O(log³ n)` is expected; the cap flags bugs).
const ITERATION_SAFETY_CAP: u64 = 500_000;

/// How many times the exact post-certification re-enumerates with fresh
/// randomness before giving up with [`Error::IncompleteEnumeration`]. The
/// deterministic enumerators certify on the first attempt; the contraction
/// enumerator doubles its trial count per attempt, so the total work stays
/// bounded while the miss probability vanishes geometrically.
const MAX_ENUMERATION_ATTEMPTS: u64 = 8;

/// The result of one `Aug_k` run.
#[derive(Clone, Debug)]
pub struct AugkSolution {
    /// The edges added to the augmentation (`A`).
    pub added: EdgeSet,
    /// Total weight of `A`.
    pub weight: u64,
    /// Number of candidate/activation iterations executed.
    pub iterations: u64,
    /// Number of `(k-1)`-cuts of `H` that had to be covered.
    pub cuts_covered: usize,
    /// CONGEST rounds charged.
    pub ledger: RoundLedger,
}

/// The geometric "probability guessing" schedule of Section 4.
///
/// Exposed so the unweighted 3-ECSS algorithm (Section 5) can reuse it.
#[derive(Clone, Debug)]
pub struct ProbabilitySchedule {
    /// Current activation probability `p_i = 2^{-exponent}`.
    exponent: u32,
    start_exponent: u32,
    iterations_in_phase: u64,
    phase_length: u64,
    current_class: Option<Rounded>,
}

impl ProbabilitySchedule {
    /// Creates the schedule for a graph with `n` vertices and `m` edges.
    pub fn new(n: usize, m: usize) -> Self {
        let start_exponent = usize::BITS - m.max(2).leading_zeros();
        let log_n = (usize::BITS - n.max(2).leading_zeros()) as u64;
        ProbabilitySchedule {
            exponent: start_exponent,
            start_exponent,
            iterations_in_phase: 0,
            phase_length: PHASE_MULTIPLIER * log_n,
            current_class: None,
        }
    }

    /// The activation probability for the next iteration, given the current
    /// maximum rounded cost-effectiveness class. Resets to the initial value
    /// whenever the class changes, and doubles after every completed phase.
    pub fn probability(&mut self, class: Rounded) -> f64 {
        if self.current_class != Some(class) {
            self.current_class = Some(class);
            self.exponent = self.start_exponent;
            self.iterations_in_phase = 0;
        } else if self.iterations_in_phase >= self.phase_length && self.exponent > 0 {
            self.exponent -= 1;
            self.iterations_in_phase = 0;
        }
        self.iterations_in_phase += 1;
        0.5f64.powi(self.exponent as i32)
    }

    /// The current activation probability without advancing the schedule.
    pub fn current_probability(&self) -> f64 {
        0.5f64.powi(self.exponent as i32)
    }
}

/// Augments the `(k-1)`-edge-connected spanning subgraph `h` of `graph` to
/// k-edge-connectivity, inferring the cost model from the graph diameter.
///
/// # Errors
///
/// * [`Error::ZeroK`] / [`Error::UnsupportedK`] for `k < 2` (there is no
///   upper limit on `k`: the cut enumerators handle arbitrary sizes);
/// * [`Error::InvalidSubgraph`] if `h` is not a spanning `(k-1)`-edge-connected
///   subgraph;
/// * [`Error::InsufficientConnectivity`] if `graph` itself is not
///   k-edge-connected.
pub fn augment<R: Rng>(graph: &Graph, h: &EdgeSet, k: usize, rng: &mut R) -> Result<AugkSolution> {
    let diameter = graphs::bfs::diameter(graph).unwrap_or(graph.n());
    augment_with_model(graph, h, k, CostModel::new(graph.n(), diameter), rng)
}

/// Same as [`augment`], running the cut enumeration/verification and the
/// per-candidate coverage counting through `exec`. Those computations are
/// pure (they never touch `rng`), so for a fixed seed the result is
/// bit-identical to [`augment`] for every executor.
///
/// # Errors
///
/// Same conditions as [`augment`].
pub fn augment_with_exec<R: Rng>(
    graph: &Graph,
    h: &EdgeSet,
    k: usize,
    rng: &mut R,
    exec: &Executor,
) -> Result<AugkSolution> {
    let diameter = graphs::bfs::diameter(graph).unwrap_or(graph.n());
    augment_with_model_exec(graph, h, k, CostModel::new(graph.n(), diameter), rng, exec)
}

/// Same as [`augment`] with an explicit cost model.
///
/// # Errors
///
/// Same conditions as [`augment`].
pub fn augment_with_model<R: Rng>(
    graph: &Graph,
    h: &EdgeSet,
    k: usize,
    model: CostModel,
    rng: &mut R,
) -> Result<AugkSolution> {
    augment_with_model_exec(graph, h, k, model, rng, &Executor::Sequential)
}

/// The most general entry point: explicit cost model *and* executor, with
/// the default [`AutoEnumerator`] cut strategy.
///
/// # Errors
///
/// Same conditions as [`augment`].
pub fn augment_with_model_exec<R: Rng>(
    graph: &Graph,
    h: &EdgeSet,
    k: usize,
    model: CostModel,
    rng: &mut R,
    exec: &Executor,
) -> Result<AugkSolution> {
    augment_with_enumerator(graph, h, k, model, rng, exec, &AutoEnumerator::default())
}

/// [`augment_with_model_exec`] with an explicit [`CutEnumerator`] strategy.
///
/// Randomized enumerators (contraction) may miss cuts; this driver is
/// nevertheless *exact*: after the covering loop it certifies
/// `H ∪ A` k-edge-connected with the max-flow verifier, and on a miss it
/// re-enumerates with a fresh salt (escalating the enumerator's effort),
/// covers the missed cuts and re-certifies, up to a bounded number of
/// attempts. Deterministic enumerators certify on the first attempt, so the
/// legacy `k ≤ 4` behavior is unchanged bit for bit.
///
/// # Errors
///
/// Same conditions as [`augment`], plus whatever the enumerator reports
/// ([`Error::InvalidCutRequest`], [`Error::CandidateOverflow`]) and
/// [`Error::IncompleteEnumeration`] if certification keeps failing.
pub fn augment_with_enumerator<R: Rng>(
    graph: &Graph,
    h: &EdgeSet,
    k: usize,
    model: CostModel,
    rng: &mut R,
    exec: &Executor,
    enumerator: &dyn CutEnumerator,
) -> Result<AugkSolution> {
    validate(graph, h, k)?;
    let mut ledger = RoundLedger::new(model);

    // All vertices learn the complete structure of H (|H| = O(kn) edges).
    ledger.charge("augk/learn_h", model.broadcast(h.len() as u64));

    let candidates_pool: Vec<(EdgeId, usize, usize, u64)> = graph
        .edges()
        .filter(|(id, _)| !h.contains(*id))
        .map(|(id, e)| (id, e.u, e.v, e.weight))
        .collect();

    let mut added = graph.empty_edge_set();
    let mut schedule = ProbabilitySchedule::new(graph.n(), graph.m());
    let mut iterations = 0u64;
    let mut cuts_covered = 0usize;

    let mut attempt = 0u64;
    loop {
        kecss_obs::counter("solver_augment_attempts_total").inc();
        // The cuts of size k-1 of H; with full knowledge of H every vertex
        // can enumerate them locally (local computation is free in CONGEST).
        // The candidate removal tests are independent per candidate, so they
        // run through the executor.
        let family = {
            let _span = kecss_obs::span("enumerate");
            if attempt == 0 {
                CutFamily::enumerate_with_enumerator(graph, h, k - 1, enumerator, 0, exec)?
            } else {
                // Certification failed: re-enumerate with a fresh salt and keep
                // only the cuts A does not already cover (their precomputed
                // bipartitions carry over).
                let mut fresh = CutFamily::enumerate_with_enumerator(
                    graph,
                    h,
                    k - 1,
                    enumerator,
                    attempt,
                    exec,
                )?;
                let already_covered: Vec<bool> = (0..fresh.len())
                    .map(|c| {
                        added.iter().any(|id| {
                            let e = graph.edge(id);
                            fresh.crossed_by(c, e.u, e.v)
                        })
                    })
                    .collect();
                fresh.retain(|c| !already_covered[c]);
                fresh
            }
        };
        cuts_covered += family.len();

        {
            let _span = kecss_obs::span("cover");
            cover_family(
                graph,
                h,
                k,
                &candidates_pool,
                &family,
                &mut added,
                &mut schedule,
                &mut iterations,
                &mut ledger,
                model,
                rng,
                exec,
            )?;
        }

        // Exact post-certification: H ∪ A is k-edge-connected iff every
        // induced (k-1)-cut of H is covered, so a pass proves the (possibly
        // randomized) enumeration missed nothing that matters.
        let certified = {
            let _span = kecss_obs::span("certify");
            connectivity::is_k_edge_connected_in(graph, &h.union(&added), k)
        };
        if certified {
            break;
        }
        attempt += 1;
        kecss_obs::counter("solver_augment_retries_total").inc();
        kecss_obs::event("augment_retry", &[("attempt", &attempt.to_string())]);
        if attempt >= MAX_ENUMERATION_ATTEMPTS {
            return Err(Error::IncompleteEnumeration {
                size: k - 1,
                attempts: attempt,
            });
        }
    }

    let weight = graph.weight_of(&added);
    Ok(AugkSolution {
        added,
        weight,
        iterations,
        cuts_covered,
        ledger,
    })
}

/// The covering loop of Section 4 for one enumerated cut family: iterate the
/// probability-guessing candidate activation and reweighted-MST selection
/// until every cut of `family` is covered by `added`.
#[allow(clippy::too_many_arguments)]
fn cover_family<R: Rng>(
    graph: &Graph,
    h: &EdgeSet,
    k: usize,
    candidates_pool: &[(EdgeId, usize, usize, u64)],
    family: &CutFamily,
    added: &mut EdgeSet,
    schedule: &mut ProbabilitySchedule,
    iterations: &mut u64,
    ledger: &mut RoundLedger,
    model: CostModel,
    rng: &mut R,
    exec: &Executor,
) -> Result<()> {
    let mut covered = vec![false; family.len()];
    let mut uncovered = family.len();

    // Per-candidate counts of *uncovered* cuts crossed. Maintained
    // incrementally: when a cut becomes covered, every candidate crossing it
    // is decremented, so the total maintenance cost over the whole run is
    // O(#cuts · #candidates) instead of that much per iteration. The initial
    // counting is independent per candidate and runs through the executor.
    let mut coverage: Vec<usize> = exec.map(candidates_pool, |&(_, u, v, _)| {
        (0..family.len())
            .filter(|&c| family.crossed_by(c, u, v))
            .count()
    });

    while uncovered > 0 {
        assert!(
            *iterations < ITERATION_SAFETY_CAP,
            "Aug_k exceeded the iteration safety cap; this indicates a bug"
        );
        *iterations += 1;

        // Lines 1-2: rounded cost-effectiveness and the maximum class.
        let mut best_class: Option<Rounded> = None;
        for (i, &(_, _, _, w)) in candidates_pool.iter().enumerate() {
            if let Some(class) = Rounded::of(coverage[i], w) {
                best_class = Some(best_class.map_or(class, |b| b.max(class)));
            }
        }
        let Some(target_class) = best_class else {
            // Some cut cannot be covered by any remaining edge: impossible for
            // a k-edge-connected input.
            return Err(Error::InsufficientConnectivity {
                required: k,
                actual: connectivity::edge_connectivity(graph),
            });
        };
        ledger.charge(
            "augk/max_cost_effectiveness",
            model.convergecast(1) + model.broadcast(1),
        );

        // Line 3: candidates of the maximum class become active with
        // probability p_i.
        let p = schedule.probability(target_class);
        let active: Vec<usize> = candidates_pool
            .iter()
            .enumerate()
            .filter(|(i, (id, _, _, w))| {
                !added.contains(*id) && Rounded::of(coverage[*i], *w) == Some(target_class)
            })
            .filter(|_| rng.gen_bool(p))
            .map(|(i, _)| i)
            .collect();

        // Line 4: MST under the reweighting {A → 0, active → 1, other → 2};
        // active candidates appearing in the MST join A.
        ledger.charge("augk/mst", model.mst_kutten_peleg());
        let mut n_i = 0u64;
        if !active.is_empty() {
            let mut is_active = vec![false; graph.m()];
            for &i in &active {
                is_active[candidates_pool[i].0.index()] = true;
            }
            let reweighted = mst::kruskal_with(graph, &graph.full_edge_set(), |id| {
                if added.contains(id) || h.contains(id) {
                    // Edges of A have weight 0. Edges of H are irrelevant to
                    // the forest-growing argument but giving them weight 0 as
                    // well only helps connectivity; the paper keeps A ⊆ G
                    // acyclic via the MST — we restrict additions to active
                    // candidates anyway, so the distinction is immaterial.
                    if added.contains(id) {
                        0
                    } else {
                        2
                    }
                } else if is_active[id.index()] {
                    1
                } else {
                    2
                }
            });
            for &i in &active {
                let (id, u, v, _) = candidates_pool[i];
                if reweighted.contains(id) {
                    added.insert(id);
                    n_i += 1;
                    for (c, cov) in covered.iter_mut().enumerate() {
                        if !*cov && family.crossed_by(c, u, v) {
                            *cov = true;
                            uncovered -= 1;
                            // Decrement every candidate that crossed this cut.
                            for (j, &(_, cu, cv, _)) in candidates_pool.iter().enumerate() {
                                if family.crossed_by(c, cu, cv) {
                                    coverage[j] = coverage[j].saturating_sub(1);
                                }
                            }
                        }
                    }
                }
            }
        }
        // Broadcasting the n_i newly added edges so every vertex keeps full
        // knowledge of A (Lemma 4.4 charges O(D + n_i) for this).
        ledger.charge("augk/broadcast_added", model.broadcast(n_i));
        ledger.charge("augk/termination", model.convergecast(1));
    }
    Ok(())
}

fn validate(graph: &Graph, h: &EdgeSet, k: usize) -> Result<()> {
    if k == 0 {
        return Err(Error::ZeroK);
    }
    if k < 2 {
        // Aug_k is defined for k >= 2; use an MST for the first level. There
        // is no upper limit: the pluggable enumerators handle any cut size.
        return Err(Error::UnsupportedK { k, min: 2 });
    }
    if !connectivity::is_k_edge_connected_in(graph, h, k - 1) {
        return Err(Error::InvalidSubgraph {
            reason: format!("H must be ({}-edge-connected and spanning", k - 1),
        });
    }
    if !connectivity::is_k_edge_connected(graph, k) {
        return Err(Error::InsufficientConnectivity {
            required: k,
            actual: connectivity::edge_connectivity(graph),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn augments_mst_to_two_edge_connectivity() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for n in [10, 24, 48] {
            let g = generators::random_weighted_k_edge_connected(n, 2, 2 * n, 40, &mut rng);
            let h = mst::kruskal(&g);
            let sol = augment(&g, &h, 2, &mut rng).unwrap();
            let union = h.union(&sol.added);
            assert!(
                connectivity::is_k_edge_connected_in(&g, &union, 2),
                "n = {n}"
            );
            assert_eq!(sol.weight, g.weight_of(&sol.added));
        }
    }

    #[test]
    fn augments_two_connected_subgraph_to_three() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::random_k_edge_connected(14, 3, 20, &mut rng);
        // Start from a 2-edge-connected subgraph: the sparse certificate.
        let h = baselines::thurimella::sparse_certificate(&g, 2).edges;
        let sol = augment(&g, &h, 3, &mut rng).unwrap();
        let union = h.union(&sol.added);
        assert!(connectivity::is_k_edge_connected_in(&g, &union, 3));
    }

    #[test]
    fn augments_past_the_former_cap() {
        // k = 5 needs size-4 cut enumeration, which the hardcoded
        // pre-refactor enumerators could not do.
        let mut rng = ChaCha8Rng::seed_from_u64(31);
        let g = generators::random_k_edge_connected(12, 5, 10, &mut rng);
        let h = baselines::thurimella::sparse_certificate(&g, 4).edges;
        assert!(connectivity::is_k_edge_connected_in(&g, &h, 4));
        let sol = augment(&g, &h, 5, &mut rng).unwrap();
        let union = h.union(&sol.added);
        assert!(connectivity::is_k_edge_connected_in(&g, &union, 5));
    }

    #[test]
    fn contraction_enumerator_is_certified_exact() {
        // Even with a laughably small trial count, the post-certification
        // loop keeps escalating until the result is exactly k-edge-connected.
        use crate::cuts::ContractEnumerator;
        let mut rng = ChaCha8Rng::seed_from_u64(33);
        let g = generators::random_k_edge_connected(12, 5, 8, &mut rng);
        let h = baselines::thurimella::sparse_certificate(&g, 4).edges;
        let model = CostModel::new(g.n(), graphs::bfs::diameter(&g).unwrap_or(g.n()));
        let enumerator = ContractEnumerator::with_trials(8);
        let sol = augment_with_enumerator(
            &g,
            &h,
            5,
            model,
            &mut rng,
            &Executor::Sequential,
            &enumerator,
        )
        .unwrap();
        let union = h.union(&sol.added);
        assert!(connectivity::is_k_edge_connected_in(&g, &union, 5));
    }

    #[test]
    fn augmentation_is_forest_like() {
        // Claim 4.1: the added edge set never contains a cycle, so it has at
        // most n - 1 edges.
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let g = generators::random_weighted_k_edge_connected(30, 2, 60, 25, &mut rng);
        let h = mst::kruskal(&g);
        let sol = augment(&g, &h, 2, &mut rng).unwrap();
        assert!(sol.added.len() < g.n());
        // No cycles: adding the edges one by one to a DSU never closes a loop.
        let mut dsu = graphs::dsu::DisjointSets::new(g.n());
        for id in sol.added.iter() {
            let e = g.edge(id);
            assert!(dsu.union(e.u, e.v), "added edges must form a forest");
        }
    }

    #[test]
    fn already_connected_subgraph_needs_no_augmentation() {
        let g = generators::harary(2, 8, 1);
        let h = g.full_edge_set();
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let sol = augment(&g, &h, 2, &mut rng).unwrap();
        assert!(sol.added.is_empty());
        assert_eq!(sol.iterations, 0);
        assert_eq!(sol.cuts_covered, 0);
    }

    #[test]
    fn weight_is_within_logarithmic_factor_of_greedy() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let mut worst: f64 = 0.0;
        for _ in 0..6 {
            let g = generators::random_weighted_k_edge_connected(16, 2, 24, 20, &mut rng);
            let h = mst::kruskal(&g);
            let sol = augment(&g, &h, 2, &mut rng).unwrap();
            let family = CutFamily::enumerate(&g, &h, 1).unwrap();
            let greedy = baselines::greedy::augment_cuts(&g, &h, &family);
            if greedy.weight > 0 {
                worst = worst.max(sol.weight as f64 / greedy.weight as f64);
            }
        }
        assert!(worst <= 6.0, "Aug_k is {worst:.2}x the greedy cost");
    }

    #[test]
    fn iteration_count_is_polylogarithmic() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        for n in [32usize, 64, 128] {
            let g = generators::random_weighted_k_edge_connected(n, 2, 2 * n, 100, &mut rng);
            let h = mst::kruskal(&g);
            let sol = augment(&g, &h, 2, &mut rng).unwrap();
            let log_n = (n as f64).log2();
            assert!(
                (sol.iterations as f64) <= 20.0 * log_n.powi(3),
                "n = {n}: {} iterations exceeds O(log^3 n)",
                sol.iterations
            );
        }
    }

    #[test]
    fn rejects_bad_inputs() {
        let g = generators::cycle(6, 1);
        let h = g.full_edge_set();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        assert_eq!(augment(&g, &h, 0, &mut rng).unwrap_err(), Error::ZeroK);
        assert!(matches!(
            augment(&g, &h, 1, &mut rng).unwrap_err(),
            Error::UnsupportedK { k: 1, min: 2 }
        ));
        // k = 9 is no longer capped: the cycle simply is not 8-edge-connected,
        // so the subgraph validation rejects it.
        assert!(matches!(
            augment(&g, &h, 9, &mut rng).unwrap_err(),
            Error::InvalidSubgraph { .. }
        ));
        // The cycle is not 3-edge-connected.
        assert!(matches!(
            augment(&g, &h, 3, &mut rng).unwrap_err(),
            Error::InsufficientConnectivity { required: 3, .. }
        ));
        // H not (k-1)-connected: a spanning tree for k = 3.
        let g3 = generators::harary(3, 8, 1);
        let tree = mst::kruskal(&g3);
        assert!(matches!(
            augment(&g3, &tree, 3, &mut rng).unwrap_err(),
            Error::InvalidSubgraph { .. }
        ));
    }

    #[test]
    fn ledger_records_mst_and_broadcast_phases() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::random_weighted_k_edge_connected(20, 2, 30, 15, &mut rng);
        let h = mst::kruskal(&g);
        let sol = augment(&g, &h, 2, &mut rng).unwrap();
        assert!(sol.ledger.phase("augk/learn_h") > 0);
        assert!(sol.ledger.phase("augk/mst") > 0);
        assert!(sol.ledger.total() > 0);
    }

    #[test]
    fn parallel_augmentation_is_bit_identical_for_a_fixed_seed() {
        // The executor only parallelizes pure verification work, so with the
        // same seed every thread count must produce the same solution.
        let mut seed_rng = ChaCha8Rng::seed_from_u64(21);
        let g = generators::random_weighted_k_edge_connected(24, 2, 40, 30, &mut seed_rng);
        let h = mst::kruskal(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let sequential = augment(&g, &h, 2, &mut rng).unwrap();
        for threads in [2, 4, 8] {
            let mut rng = ChaCha8Rng::seed_from_u64(99);
            let exec = Executor::from_threads(threads);
            let parallel = augment_with_exec(&g, &h, 2, &mut rng, &exec).unwrap();
            assert_eq!(parallel.added, sequential.added, "t = {threads}");
            assert_eq!(parallel.weight, sequential.weight, "t = {threads}");
            assert_eq!(parallel.iterations, sequential.iterations, "t = {threads}");
        }
    }

    #[test]
    fn probability_schedule_doubles_and_resets() {
        let mut s = ProbabilitySchedule::new(16, 64);
        let class_a = Rounded::Exponent(3);
        let class_b = Rounded::Exponent(1);
        let p0 = s.probability(class_a);
        assert!(p0 <= 1.0 / 64.0);
        // Stay in the same class long enough to see the probability double.
        let mut last = p0;
        for _ in 0..(PHASE_MULTIPLIER * 5 * 10) {
            last = s.probability(class_a);
        }
        assert!(last > p0);
        assert!(last <= 1.0);
        // A class change resets the schedule.
        let reset = s.probability(class_b);
        assert!((reset - p0).abs() < 1e-12);
        assert!(s.current_probability() > 0.0);
    }
}
