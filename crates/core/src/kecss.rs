//! The full weighted k-ECSS driver (Claim 2.1 + Theorem 1.2): iterated
//! augmentation, one connectivity level at a time.
//!
//! Level 1 is an MST (the optimal augmentation of the empty subgraph to
//! connectivity 1); level `i` for `2 ≤ i ≤ k` runs [`crate::augk`] on the
//! subgraph built so far. By Claim 2.1 the approximation ratios add up, giving
//! `O(k log n)` in expectation, and the round complexities add up, giving
//! `O(k (D log³ n + n))`.

use crate::augk;
use crate::cuts::{AutoEnumerator, CutEnumerator};
use crate::error::{Error, Result};
use congest::{CostModel, RoundLedger};
use graphs::{connectivity, mst, EdgeSet, Graph};
use kecss_runtime::Executor;
use rand::Rng;

/// Per-level statistics of a k-ECSS run.
#[derive(Clone, Debug)]
pub struct LevelReport {
    /// The connectivity level this report describes (1 = MST).
    pub level: usize,
    /// Edges added at this level.
    pub edges_added: usize,
    /// Weight added at this level.
    pub weight_added: u64,
    /// Aug_k iterations at this level (0 for the MST level).
    pub iterations: u64,
}

/// The result of the weighted k-ECSS algorithm.
#[derive(Clone, Debug)]
pub struct KEcssSolution {
    /// The k-edge-connected spanning subgraph.
    pub subgraph: EdgeSet,
    /// Its total weight.
    pub weight: u64,
    /// Per-level breakdown (level 1 = MST, level i = Aug_i).
    pub levels: Vec<LevelReport>,
    /// CONGEST rounds charged across all levels.
    pub ledger: RoundLedger,
}

/// Solves weighted k-ECSS on `graph`, inferring the cost model from the
/// graph's diameter.
///
/// # Errors
///
/// * [`Error::ZeroK`] if `k == 0` (any `k >= 1` is supported: the pluggable
///   [`CutEnumerator`] strategies lifted the former `k <= 4` cap);
/// * [`Error::InsufficientConnectivity`] if the graph is not k-edge-connected.
pub fn solve<R: Rng>(graph: &Graph, k: usize, rng: &mut R) -> Result<KEcssSolution> {
    let diameter = graphs::bfs::diameter(graph).unwrap_or(graph.n());
    solve_with_model(graph, k, CostModel::new(graph.n(), diameter), rng)
}

/// Same as [`solve`], running the per-level cut verification through `exec`
/// (see [`augk::augment_with_exec`]). Bit-identical to [`solve`] for a fixed
/// seed, for every executor.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_with_exec<R: Rng>(
    graph: &Graph,
    k: usize,
    rng: &mut R,
    exec: &Executor,
) -> Result<KEcssSolution> {
    let diameter = graphs::bfs::diameter(graph).unwrap_or(graph.n());
    solve_with_model_exec(graph, k, CostModel::new(graph.n(), diameter), rng, exec)
}

/// Same as [`solve_with_exec`] with an explicit [`CutEnumerator`] strategy,
/// inferring the cost model from the graph diameter (the CLI's entry point).
///
/// # Errors
///
/// Same conditions as [`solve`], plus whatever the enumerator reports.
pub fn solve_with_exec_enumerator<R: Rng>(
    graph: &Graph,
    k: usize,
    rng: &mut R,
    exec: &Executor,
    enumerator: &dyn CutEnumerator,
) -> Result<KEcssSolution> {
    let diameter = graphs::bfs::diameter(graph).unwrap_or(graph.n());
    solve_with_enumerator(
        graph,
        k,
        CostModel::new(graph.n(), diameter),
        rng,
        exec,
        enumerator,
    )
}

/// Same as [`solve`] with an explicit cost model.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_with_model<R: Rng>(
    graph: &Graph,
    k: usize,
    model: CostModel,
    rng: &mut R,
) -> Result<KEcssSolution> {
    solve_with_model_exec(graph, k, model, rng, &Executor::Sequential)
}

/// Explicit cost model *and* executor, with the default [`AutoEnumerator`]
/// cut strategy.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_with_model_exec<R: Rng>(
    graph: &Graph,
    k: usize,
    model: CostModel,
    rng: &mut R,
    exec: &Executor,
) -> Result<KEcssSolution> {
    solve_with_enumerator(graph, k, model, rng, exec, &AutoEnumerator::default())
}

/// The most general entry point: explicit cost model, executor *and*
/// [`CutEnumerator`] strategy (see [`augk::augment_with_enumerator`] for how
/// randomized strategies are certified exact).
///
/// # Errors
///
/// Same conditions as [`solve`], plus whatever the enumerator reports.
pub fn solve_with_enumerator<R: Rng>(
    graph: &Graph,
    k: usize,
    model: CostModel,
    rng: &mut R,
    exec: &Executor,
    enumerator: &dyn CutEnumerator,
) -> Result<KEcssSolution> {
    if k == 0 {
        return Err(Error::ZeroK);
    }
    // Phase spans are observational only (DESIGN.md §11): they time scopes
    // and stream traces, but never feed back into the solution bytes.
    let _solve_span = kecss_obs::span("solve");
    {
        let _span = kecss_obs::span("connectivity_check");
        if !connectivity::is_k_edge_connected(graph, k) {
            return Err(Error::InsufficientConnectivity {
                required: k,
                actual: connectivity::edge_connectivity(graph),
            });
        }
    }

    let mut ledger = RoundLedger::new(model);
    let mut levels = Vec::with_capacity(k);

    // Level 1: the MST is the optimal 1-augmentation of the empty subgraph.
    let mut h = {
        let _span = kecss_obs::span("mst");
        mst::kruskal(graph)
    };
    ledger.charge("kecss/mst", model.mst_kutten_peleg());
    levels.push(LevelReport {
        level: 1,
        edges_added: h.len(),
        weight_added: graph.weight_of(&h),
        iterations: 0,
    });

    // Levels 2..=k: Aug_i.
    for level in 2..=k {
        let _span = kecss_obs::span("augment");
        let aug = augk::augment_with_enumerator(graph, &h, level, model, rng, exec, enumerator)?;
        levels.push(LevelReport {
            level,
            edges_added: aug.added.len(),
            weight_added: aug.weight,
            iterations: aug.iterations,
        });
        ledger.absorb(&aug.ledger);
        h.union_with(&aug.added);
    }

    let weight = graph.weight_of(&h);
    Ok(KEcssSolution {
        subgraph: h,
        weight,
        levels,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bounds;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn produces_k_edge_connected_subgraphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for k in 1..=3 {
            let g = generators::random_weighted_k_edge_connected(16, k, 30, 25, &mut rng);
            let sol = solve(&g, k, &mut rng).unwrap();
            assert!(
                connectivity::is_k_edge_connected_in(&g, &sol.subgraph, k),
                "k = {k}: result must be {k}-edge-connected"
            );
            assert_eq!(sol.levels.len(), k);
            assert_eq!(sol.weight, g.weight_of(&sol.subgraph));
        }
    }

    #[test]
    fn k_equal_one_is_just_the_mst() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let g = generators::random_weighted_k_edge_connected(20, 2, 20, 30, &mut rng);
        let sol = solve(&g, 1, &mut rng).unwrap();
        assert_eq!(sol.subgraph, mst::kruskal(&g));
        assert_eq!(sol.levels.len(), 1);
        assert_eq!(sol.levels[0].iterations, 0);
    }

    #[test]
    fn four_connectivity_on_a_torus() {
        let g = generators::torus(4, 5, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sol = solve(&g, 4, &mut rng).unwrap();
        assert!(connectivity::is_k_edge_connected_in(&g, &sol.subgraph, 4));
        // The torus is 4-regular, so the only 4-ECSS is the full graph.
        assert_eq!(sol.subgraph.len(), g.m());
    }

    #[test]
    fn weight_is_within_logarithmic_factor_of_lower_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for k in 2..=3 {
            let g = generators::random_weighted_k_edge_connected(20, k, 40, 20, &mut rng);
            let sol = solve(&g, k, &mut rng).unwrap();
            let lb = lower_bounds::k_ecss_lower_bound(&g, k);
            let ratio = sol.weight as f64 / lb as f64;
            let bound = 3.0 * k as f64 * ((g.n() as f64).log2() + 2.0);
            assert!(
                ratio <= bound,
                "k = {k}: ratio {ratio:.2} exceeds {bound:.2}"
            );
        }
    }

    #[test]
    fn levels_report_adds_up() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        let g = generators::random_weighted_k_edge_connected(14, 3, 25, 15, &mut rng);
        let sol = solve(&g, 3, &mut rng).unwrap();
        let total_edges: usize = sol.levels.iter().map(|l| l.edges_added).sum();
        let total_weight: u64 = sol.levels.iter().map(|l| l.weight_added).sum();
        assert_eq!(total_edges, sol.subgraph.len());
        assert_eq!(total_weight, sol.weight);
        assert_eq!(sol.levels[0].level, 1);
        assert_eq!(sol.levels.last().unwrap().level, 3);
    }

    #[test]
    fn rejects_bad_k_and_insufficient_connectivity() {
        let g = generators::cycle(8, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        assert_eq!(solve(&g, 0, &mut rng).unwrap_err(), Error::ZeroK);
        // k = 10 is no longer capped; the cycle simply is not 10-edge-connected.
        assert_eq!(
            solve(&g, 10, &mut rng).unwrap_err(),
            Error::InsufficientConnectivity {
                required: 10,
                actual: 2
            }
        );
        assert_eq!(
            solve(&g, 3, &mut rng).unwrap_err(),
            Error::InsufficientConnectivity {
                required: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn solves_past_the_former_k_cap() {
        // k = 6 was impossible before the pluggable enumerators; H_{6,12} is
        // exactly 6-edge-connected, so the solution must use size-4 and
        // size-5 cut enumeration along the way.
        let g = generators::harary(6, 12, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let sol = solve(&g, 6, &mut rng).unwrap();
        assert!(connectivity::is_k_edge_connected_in(&g, &sol.subgraph, 6));
        assert_eq!(sol.levels.len(), 6);
    }

    #[test]
    fn rounds_grow_with_k_within_the_per_level_bound() {
        // Theorem 1.2 bounds every level by the same O(D log^3 n + n), so the
        // k-level total is at most k times that bound. Individual levels vary
        // (higher levels have more cost-effectiveness classes to sweep), so we
        // compare against the explicit per-level bound rather than against the
        // k = 2 measurement.
        let g = generators::harary(4, 24, 1);
        let d = graphs::bfs::diameter(&g).unwrap() as f64;
        let log_n = (g.n() as f64).log2();
        let per_level_bound = 40.0 * (d + 1.0) * log_n.powi(3) + 10.0 * g.n() as f64;
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let r2 = solve(&g, 2, &mut rng).unwrap().ledger.total();
        let r4 = solve(&g, 4, &mut rng).unwrap().ledger.total();
        assert!(r4 > r2, "more levels must cost more rounds");
        assert!(
            (r2 as f64) <= 2.0 * per_level_bound,
            "k=2 rounds {r2} exceed the Theorem 1.2 shape bound {per_level_bound:.0}"
        );
        assert!(
            (r4 as f64) <= 4.0 * per_level_bound,
            "k=4 rounds {r4} exceed the Theorem 1.2 shape bound {:.0}",
            4.0 * per_level_bound
        );
    }
}
