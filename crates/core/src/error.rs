//! Error types shared by the solvers in this crate.

use std::fmt;

/// Errors returned by the k-ECSS solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The input graph is not sufficiently edge-connected for the requested
    /// problem (a k-ECSS only exists in a k-edge-connected graph).
    InsufficientConnectivity {
        /// The connectivity the problem requires.
        required: usize,
        /// The actual edge connectivity of the input (or of the subgraph `H`).
        actual: usize,
    },
    /// The requested connectivity target is below what the algorithm is
    /// defined for (`Aug_k` needs `k >= 2`; the first connectivity level is
    /// an MST). There is no upper limit on `k` any more: the pluggable
    /// [`crate::cuts::CutEnumerator`] strategies handle arbitrary cut sizes.
    UnsupportedK {
        /// The requested `k`.
        k: usize,
        /// The smallest supported `k`.
        min: usize,
    },
    /// The provided spanning subgraph is not spanning or is not a subgraph of
    /// the input graph.
    InvalidSubgraph {
        /// Explanation of the violation.
        reason: String,
    },
    /// `k` must be at least 1.
    ZeroK,
    /// A cut enumeration request was malformed: zero cut size, a disconnected
    /// subgraph, or a size outside what the chosen
    /// [`crate::cuts::CutEnumerator`] strategy implements.
    InvalidCutRequest {
        /// Explanation of the violation.
        reason: String,
    },
    /// The cycle-space label-class candidate pool for the requested cut size
    /// outgrew the enumeration budget. The caller should fall back to the
    /// randomized-contraction enumerator (the `auto` policy does this
    /// automatically).
    CandidateOverflow {
        /// The requested cut size.
        size: usize,
        /// The exceeded budget (number of candidate visits).
        budget: u64,
    },
    /// A solver job submitted to a scheduling front-end (the `kecss_serve`
    /// service) was cancelled before it ran; its result will never exist.
    JobCancelled {
        /// The job's service-assigned id.
        job: u64,
    },
    /// A solver job was rejected because the scheduling front-end's bounded
    /// job queue was full (backpressure). The caller should retry later.
    JobQueueFull {
        /// The queue depth that was exceeded.
        depth: usize,
    },
    /// A solver job was rejected because the scheduling front-end is
    /// shutting down: already-accepted jobs drain, new ones are refused.
    ServiceShuttingDown,
    /// A randomized cut enumerator kept missing cuts: the augmentation's
    /// exact post-certification failed even after re-enumerating with fresh
    /// randomness. This indicates far too few contraction trials (or a bug);
    /// it does not occur with the `exact`/`label` strategies, which are
    /// deterministically complete on their supported sizes.
    IncompleteEnumeration {
        /// The cut size being enumerated.
        size: usize,
        /// Number of enumeration attempts that were certified incomplete.
        attempts: u64,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InsufficientConnectivity { required, actual } => write!(
                f,
                "input graph is only {actual}-edge-connected but the problem requires {required}-edge-connectivity"
            ),
            Error::UnsupportedK { k, min } => {
                write!(f, "k = {k} is not supported (augmentation requires k >= {min})")
            }
            Error::InvalidSubgraph { reason } => write!(f, "invalid subgraph: {reason}"),
            Error::ZeroK => write!(f, "connectivity target k must be at least 1"),
            Error::InvalidCutRequest { reason } => {
                write!(f, "invalid cut enumeration request: {reason}")
            }
            Error::CandidateOverflow { size, budget } => write!(
                f,
                "label-class candidate pool for cuts of size {size} exceeded the budget of \
                 {budget} visits; use the contraction enumerator (enumerator policy 'contract' \
                 or 'auto')"
            ),
            Error::JobCancelled { job } => {
                write!(f, "job {job} was cancelled before it ran")
            }
            Error::JobQueueFull { depth } => write!(
                f,
                "the service job queue is full (depth {depth}); retry after in-flight jobs drain"
            ),
            Error::ServiceShuttingDown => write!(
                f,
                "the service is shutting down; accepted jobs drain but no new jobs are admitted"
            ),
            Error::IncompleteEnumeration { size, attempts } => write!(
                f,
                "randomized enumeration of cuts of size {size} was still incomplete after \
                 {attempts} certified attempts; increase the contraction trial count"
            ),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InsufficientConnectivity {
            required: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("1"));
        let e = Error::UnsupportedK { k: 1, min: 2 };
        assert!(e.to_string().contains("k = 1"));
        assert!(e.to_string().contains(">= 2"));
        let e = Error::InvalidSubgraph {
            reason: "not spanning".into(),
        };
        assert!(e.to_string().contains("not spanning"));
        assert!(Error::ZeroK.to_string().contains("at least 1"));
        let e = Error::InvalidCutRequest {
            reason: "cut size must be at least 1".into(),
        };
        assert!(e.to_string().contains("cut size"));
        let e = Error::CandidateOverflow {
            size: 5,
            budget: 1000,
        };
        assert!(e.to_string().contains("size 5"));
        assert!(e.to_string().contains("1000"));
        let e = Error::IncompleteEnumeration {
            size: 6,
            attempts: 3,
        };
        assert!(e.to_string().contains("size 6"));
        assert!(e.to_string().contains("3"));
        let e = Error::JobCancelled { job: 42 };
        assert!(e.to_string().contains("job 42"));
        let e = Error::JobQueueFull { depth: 8 };
        assert!(e.to_string().contains("depth 8"));
        assert!(Error::ServiceShuttingDown
            .to_string()
            .contains("shutting down"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
