//! Error types shared by the solvers in this crate.

use std::fmt;

/// Errors returned by the k-ECSS solvers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Error {
    /// The input graph is not sufficiently edge-connected for the requested
    /// problem (a k-ECSS only exists in a k-edge-connected graph).
    InsufficientConnectivity {
        /// The connectivity the problem requires.
        required: usize,
        /// The actual edge connectivity of the input (or of the subgraph `H`).
        actual: usize,
    },
    /// The requested connectivity target is unsupported by this implementation
    /// (cut enumeration is implemented for cuts of size at most
    /// [`crate::cuts::MAX_CUT_SIZE`], i.e. `k - 1 <= MAX_CUT_SIZE`).
    UnsupportedK {
        /// The requested `k`.
        k: usize,
        /// The largest supported `k`.
        max: usize,
    },
    /// The provided spanning subgraph is not spanning or is not a subgraph of
    /// the input graph.
    InvalidSubgraph {
        /// Explanation of the violation.
        reason: String,
    },
    /// `k` must be at least 1.
    ZeroK,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InsufficientConnectivity { required, actual } => write!(
                f,
                "input graph is only {actual}-edge-connected but the problem requires {required}-edge-connectivity"
            ),
            Error::UnsupportedK { k, max } => {
                write!(f, "k = {k} is not supported (cut enumeration handles k <= {max})")
            }
            Error::InvalidSubgraph { reason } => write!(f, "invalid subgraph: {reason}"),
            Error::ZeroK => write!(f, "connectivity target k must be at least 1"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = Error::InsufficientConnectivity {
            required: 3,
            actual: 1,
        };
        assert!(e.to_string().contains("3"));
        assert!(e.to_string().contains("1"));
        let e = Error::UnsupportedK { k: 9, max: 4 };
        assert!(e.to_string().contains("9"));
        let e = Error::InvalidSubgraph {
            reason: "not spanning".into(),
        };
        assert!(e.to_string().contains("not spanning"));
        assert!(Error::ZeroK.to_string().contains("at least 1"));
    }

    #[test]
    fn error_implements_std_error() {
        fn assert_err<E: std::error::Error + Send + Sync + 'static>() {}
        assert_err::<Error>();
    }
}
