//! Weighted tree augmentation (TAP) — Section 3 of the paper, Theorem 3.12.
//!
//! Given a spanning tree `T` of a weighted graph `G`, the weighted tree
//! augmentation problem asks for a minimum-weight set of non-tree edges `A`
//! such that `T ∪ A` is 2-edge-connected — equivalently, such that every tree
//! edge is *covered* by some edge of `A` (a non-tree edge `e = {u, v}` covers
//! exactly the tree edges on the tree path `P_{u,v}`).
//!
//! The algorithm follows the candidate/voting framework of Section 2.1:
//!
//! 1. every non-tree edge computes its rounded cost-effectiveness
//!    `ρ̃(e)` = (uncovered tree edges on `P_e`) / `w(e)` rounded up to a power
//!    of two;
//! 2. the edges in the maximum class are *candidates* and draw random ranks;
//! 3. every still-uncovered tree edge votes for the first candidate covering
//!    it (by rank, then edge id);
//! 4. a candidate receiving at least `|C_e| / 8` votes joins the augmentation;
//! 5. repeat until every tree edge is covered.
//!
//! This yields a *guaranteed* `O(log n)` approximation (Lemma 3.7) within
//! `O(log² n)` iterations w.h.p. (Lemma 3.11). Each iteration costs
//! `O(D + √n)` CONGEST rounds using the segment decomposition of Section 3.2;
//! the per-iteration cost is charged to the returned ledger via
//! [`iteration_rounds`].

use crate::cover::Rounded;
use crate::decomposition::Decomposition;
use crate::error::{Error, Result};
use congest::{CostModel, RoundLedger};
use graphs::{connectivity, EdgeId, EdgeSet, Graph, NodeId, RootedTree};
use rand::Rng;

/// The result of a weighted TAP run.
#[derive(Clone, Debug)]
pub struct TapSolution {
    /// The augmentation `A`: non-tree edges added so that `T ∪ A` is
    /// 2-edge-connected.
    pub augmentation: EdgeSet,
    /// Total weight of the augmentation.
    pub weight: u64,
    /// Number of candidate/voting iterations executed.
    pub iterations: u64,
    /// CONGEST rounds charged, broken down by phase.
    pub ledger: RoundLedger,
}

/// Safety cap on iterations; the algorithm terminates in `O(log² n)`
/// iterations w.h.p., so hitting this cap indicates a bug rather than bad
/// luck.
const ITERATION_SAFETY_CAP: u64 = 100_000;

/// Solves weighted TAP for the spanning tree `tree_edges` of `graph`,
/// inferring the cost model (diameter) from the graph.
///
/// # Errors
///
/// Returns [`Error::InvalidSubgraph`] if `tree_edges` is not a spanning tree
/// of `graph`, and [`Error::InsufficientConnectivity`] if `graph` is not
/// 2-edge-connected (some tree edge could never be covered).
pub fn solve<R: Rng>(graph: &Graph, tree_edges: &EdgeSet, rng: &mut R) -> Result<TapSolution> {
    let diameter = graphs::bfs::diameter(graph).unwrap_or(graph.n());
    let model = CostModel::new(graph.n(), diameter);
    solve_with_model(graph, tree_edges, model, rng)
}

/// Solves weighted TAP with an explicit CONGEST cost model.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_with_model<R: Rng>(
    graph: &Graph,
    tree_edges: &EdgeSet,
    model: CostModel,
    rng: &mut R,
) -> Result<TapSolution> {
    validate(graph, tree_edges)?;
    let root = 0;
    let tree = RootedTree::new(graph, tree_edges, root);
    let decomposition = Decomposition::build(graph, &tree);
    let seg_count = decomposition.num_segments() as u64;
    let seg_diam = decomposition.max_segment_diameter(graph, &tree) as u64;

    let mut ledger = RoundLedger::new(model);
    // Building the segments and learning the skeleton tree (Claims 3.1, 3.2).
    ledger.charge(
        "tap/decomposition",
        model.bfs_construction() + model.broadcast(seg_count) + 2 * model.segment_scan(seg_diam),
    );

    let mut state = CoverState::new(graph);

    // Non-tree edges, the potential augmentation candidates.
    let non_tree: Vec<NonTreeEdge> = graph
        .edges()
        .filter(|(id, _)| !tree_edges.contains(*id))
        .map(|(id, e)| NonTreeEdge {
            id,
            u: e.u,
            v: e.v,
            weight: e.weight,
            lca: tree.lca(e.u, e.v),
        })
        .collect();

    let mut augmentation = graph.empty_edge_set();

    // Weight-zero edges are added up front (Section 3: "at the beginning of
    // the algorithm we add to A all the edges with weight 0").
    for e in &non_tree {
        if e.weight == 0 {
            augmentation.insert(e.id);
            state.cover_path(&tree, e.u, e.v);
        }
    }
    ledger.charge(
        "tap/zero_weight_setup",
        iteration_rounds(&model, seg_count, seg_diam),
    );

    let mut iterations = 0u64;
    while state.uncovered > 0 {
        assert!(
            iterations < ITERATION_SAFETY_CAP,
            "TAP exceeded the iteration safety cap; this indicates a bug"
        );
        iterations += 1;
        ledger.charge(
            "tap/iterations",
            iteration_rounds(&model, seg_count, seg_diam),
        );

        // Line 1-2: rounded cost-effectiveness and the candidate set.
        let prefix = state.uncovered_prefix(&tree);
        let mut best_class: Option<Rounded> = None;
        let mut coverage = vec![0usize; non_tree.len()];
        for (i, e) in non_tree.iter().enumerate() {
            if augmentation.contains(e.id) {
                continue;
            }
            let covered = prefix[e.u] + prefix[e.v] - 2 * prefix[e.lca];
            coverage[i] = covered;
            if let Some(class) = Rounded::of(covered, e.weight) {
                best_class = Some(best_class.map_or(class, |b| b.max(class)));
            }
        }
        let Some(target_class) = best_class else {
            // No remaining edge covers anything, yet some tree edge is
            // uncovered: the input could not have been 2-edge-connected.
            return Err(Error::InsufficientConnectivity {
                required: 2,
                actual: 1,
            });
        };

        // Line 3: candidates draw random ranks (the paper draws from
        // {1..n^8}; 64 random bits dominate that range for all practical n).
        let mut candidates: Vec<Candidate> = non_tree
            .iter()
            .enumerate()
            .filter(|(i, e)| {
                !augmentation.contains(e.id)
                    && Rounded::of(coverage[*i], e.weight) == Some(target_class)
            })
            .map(|(i, e)| Candidate {
                index: i,
                rank: rng.gen::<u64>(),
                id: e.id,
            })
            .collect();
        candidates.sort_by_key(|c| (c.rank, c.id));

        // Line 4: every uncovered tree edge votes for the first candidate
        // covering it. Implemented with a path-skipping union-find so each
        // tree edge is assigned at most once per iteration.
        let votes = state.tally_votes(&tree, &non_tree, &candidates);

        // Line 5: candidates with at least |C_e| / 8 votes join A.
        let mut added = Vec::new();
        for (c, &v) in candidates.iter().zip(votes.iter()) {
            if 8 * v >= coverage[c.index] && coverage[c.index] > 0 {
                added.push(c.index);
            }
        }

        // Line 6: update coverage.
        for &i in &added {
            let e = &non_tree[i];
            augmentation.insert(e.id);
            state.cover_path(&tree, e.u, e.v);
        }
    }

    let weight = graph.weight_of(&augmentation);
    Ok(TapSolution {
        augmentation,
        weight,
        iterations,
        ledger,
    })
}

/// The CONGEST rounds of a single TAP iteration, as analysed in Section 3.1
/// (Lemma 3.3): a constant number of segment scans, skeleton-level broadcasts
/// and per-edge exchanges, i.e. `O(D + √n)`.
pub fn iteration_rounds(model: &CostModel, segment_count: u64, segment_diameter: u64) -> u64 {
    let scan = model.segment_scan(segment_diameter);
    // (I) cost-effectiveness: segment info broadcast + path exchange.
    let cost_effectiveness = model.broadcast(segment_count) + scan + model.edge_exchange();
    // Max rounded cost-effectiveness over the BFS tree.
    let max_ce = model.convergecast(1) + model.broadcast(1);
    // (II) best covering candidate: short-range scan, long-range
    // convergecast/broadcast of per-highway optima, mid-range scans.
    let best_edge =
        scan + model.convergecast(segment_count) + model.broadcast(segment_count) + 2 * scan;
    // (III) vote counting mirrors the cost-effectiveness computation.
    let votes = model.broadcast(segment_count) + scan + model.edge_exchange();
    // Termination / coverage check over the BFS tree.
    let termination = scan + model.convergecast(1) + model.broadcast(1);
    cost_effectiveness + max_ce + best_edge + votes + termination
}

fn validate(graph: &Graph, tree_edges: &EdgeSet) -> Result<()> {
    if graph.n() < 2 {
        return Err(Error::InvalidSubgraph {
            reason: "graph has fewer than two vertices".into(),
        });
    }
    if tree_edges.len() != graph.n() - 1 {
        return Err(Error::InvalidSubgraph {
            reason: format!(
                "expected a spanning tree with {} edges, got {}",
                graph.n() - 1,
                tree_edges.len()
            ),
        });
    }
    if !connectivity::is_connected_in(graph, tree_edges) {
        return Err(Error::InvalidSubgraph {
            reason: "tree edges do not span the graph".into(),
        });
    }
    if !connectivity::is_two_edge_connected_in(graph, &graph.full_edge_set()) {
        return Err(Error::InsufficientConnectivity {
            required: 2,
            actual: 1,
        });
    }
    Ok(())
}

struct NonTreeEdge {
    id: EdgeId,
    u: NodeId,
    v: NodeId,
    weight: u64,
    lca: NodeId,
}

struct Candidate {
    index: usize,
    rank: u64,
    id: EdgeId,
}

/// Coverage bookkeeping for the tree edges (identified by child vertex), with
/// a persistent "skip covered edges" union-find so the total cover-update work
/// is near-linear over the whole run.
struct CoverState {
    /// covered[v] — whether the tree edge {v, parent(v)} is covered.
    covered: Vec<bool>,
    uncovered: usize,
    /// Union-find: jump towards the root skipping covered edges.
    skip: Vec<usize>,
}

impl CoverState {
    fn new(graph: &Graph) -> Self {
        let n = graph.n();
        CoverState {
            covered: vec![false; n],
            uncovered: n - 1,
            skip: (0..n).collect(),
        }
    }

    /// The representative of `v`: the deepest vertex `w` on the path from `v`
    /// to the root whose parent edge is still uncovered (or the root).
    fn find(&mut self, v: usize) -> usize {
        if self.skip[v] == v {
            return v;
        }
        let r = self.find(self.skip[v]);
        self.skip[v] = r;
        r
    }

    /// Marks all uncovered tree edges on the path `u – v` as covered.
    fn cover_path(&mut self, tree: &RootedTree, u: NodeId, v: NodeId) {
        let lca = tree.lca(u, v);
        for endpoint in [u, v] {
            let mut cur = self.find(endpoint);
            while tree.depth(cur) > tree.depth(lca) {
                // The tree edge {cur, parent(cur)} is uncovered: cover it.
                debug_assert!(!self.covered[cur]);
                self.covered[cur] = true;
                self.uncovered -= 1;
                let parent = tree
                    .parent(cur)
                    .expect("deeper than the LCA implies a parent");
                self.skip[cur] = parent;
                cur = self.find(parent);
            }
        }
    }

    /// `prefix[v]` = number of uncovered tree edges on the path root → v.
    fn uncovered_prefix(&self, tree: &RootedTree) -> Vec<usize> {
        let mut prefix = vec![0usize; self.covered.len()];
        for &v in tree.bfs_order() {
            if let Some(p) = tree.parent(v) {
                prefix[v] = prefix[p] + usize::from(!self.covered[v]);
            }
        }
        prefix
    }

    /// For every uncovered tree edge covered by at least one candidate,
    /// determine the first candidate (in the given order) covering it, and
    /// return the number of votes each candidate receives.
    ///
    /// Implemented with a per-iteration union-find: tree edges are assigned in
    /// candidate order, and once assigned they are skipped by later walks.
    fn tally_votes(
        &self,
        tree: &RootedTree,
        non_tree: &[NonTreeEdge],
        candidates: &[Candidate],
    ) -> Vec<usize> {
        let n = self.covered.len();
        let mut assigned_skip: Vec<usize> = (0..n).collect();
        let mut votes = vec![0usize; candidates.len()];

        fn find(skip: &mut Vec<usize>, v: usize) -> usize {
            if skip[v] == v {
                return v;
            }
            let r = find(skip, skip[v]);
            skip[v] = r;
            r
        }

        for (ci, c) in candidates.iter().enumerate() {
            let e = &non_tree[c.index];
            let lca = e.lca;
            for endpoint in [e.u, e.v] {
                let mut cur = find(&mut assigned_skip, endpoint);
                while tree.depth(cur) > tree.depth(lca) {
                    // Assign the tree edge {cur, parent(cur)} to candidate ci.
                    if !self.covered[cur] {
                        votes[ci] += 1;
                    }
                    let parent = tree
                        .parent(cur)
                        .expect("deeper than the LCA implies a parent");
                    assigned_skip[cur] = parent;
                    cur = find(&mut assigned_skip, parent);
                }
            }
        }
        votes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::baselines;
    use graphs::{generators, mst};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn check_valid(graph: &Graph, tree_edges: &EdgeSet, solution: &TapSolution) {
        let union = tree_edges.union(&solution.augmentation);
        assert!(
            connectivity::is_two_edge_connected_in(graph, &union),
            "T ∪ A must be 2-edge-connected"
        );
        // The augmentation contains only non-tree edges.
        for id in solution.augmentation.iter() {
            assert!(!tree_edges.contains(id));
        }
        assert_eq!(solution.weight, graph.weight_of(&solution.augmentation));
    }

    #[test]
    fn augments_a_cycle_tree() {
        // Cycle: the MST is a path; the only non-tree edge must be added.
        let g = generators::cycle(8, 3);
        let tree_edges = mst::kruskal(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let sol = solve(&g, &tree_edges, &mut rng).unwrap();
        check_valid(&g, &tree_edges, &sol);
        assert_eq!(sol.augmentation.len(), 1);
        assert_eq!(sol.iterations, 1);
    }

    #[test]
    fn augmentation_is_valid_on_random_weighted_graphs() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for n in [10, 24, 48, 96] {
            let g = generators::random_weighted_k_edge_connected(n, 2, 2 * n, 60, &mut rng);
            let tree_edges = mst::kruskal(&g);
            let sol = solve(&g, &tree_edges, &mut rng).unwrap();
            check_valid(&g, &tree_edges, &sol);
        }
    }

    #[test]
    fn weight_zero_edges_are_used_for_free() {
        // A cycle where the closing edge has weight 0: the augmentation should
        // be free and require no voting iterations.
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 5);
        g.add_edge(2, 3, 5);
        g.add_edge(3, 4, 5);
        let closing = g.add_edge(4, 0, 0);
        let mut tree_edges = g.full_edge_set();
        tree_edges.remove(closing);
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let sol = solve(&g, &tree_edges, &mut rng).unwrap();
        check_valid(&g, &tree_edges, &sol);
        assert_eq!(sol.weight, 0);
        assert_eq!(sol.iterations, 0);
    }

    #[test]
    fn approximation_is_close_to_greedy_on_small_instances() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut worst: f64 = 0.0;
        for _ in 0..10 {
            let g = generators::random_weighted_k_edge_connected(14, 2, 18, 20, &mut rng);
            let tree_edges = mst::kruskal(&g);
            let sol = solve(&g, &tree_edges, &mut rng).unwrap();
            check_valid(&g, &tree_edges, &sol);
            let greedy = baselines::greedy::tap(&g, &tree_edges);
            let ratio = sol.weight as f64 / greedy.weight.max(1) as f64;
            worst = worst.max(ratio);
        }
        // The distributed algorithm is an O(log n) approximation; against the
        // greedy (itself O(log n)) it should stay within a small constant.
        assert!(
            worst <= 4.0,
            "distributed TAP is {worst:.2}x the greedy cost"
        );
    }

    #[test]
    fn iteration_count_stays_polylogarithmic() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        for n in [32usize, 128, 256] {
            let g = generators::random_weighted_k_edge_connected(n, 2, 3 * n, 1_000, &mut rng);
            let tree_edges = mst::kruskal(&g);
            let sol = solve(&g, &tree_edges, &mut rng).unwrap();
            let log_n = (n as f64).log2();
            assert!(
                (sol.iterations as f64) <= 12.0 * log_n * log_n,
                "n = {n}: {} iterations exceeds O(log^2 n)",
                sol.iterations
            );
        }
    }

    #[test]
    fn ledger_scales_with_iterations() {
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let g = generators::random_weighted_k_edge_connected(64, 2, 128, 100, &mut rng);
        let tree_edges = mst::kruskal(&g);
        let sol = solve(&g, &tree_edges, &mut rng).unwrap();
        assert!(sol.ledger.total() > 0);
        assert!(sol.ledger.phase("tap/iterations") > 0);
        assert!(sol.ledger.phase("tap/decomposition") > 0);
        let model = sol.ledger.model();
        let per_iter = iteration_rounds(&model, 1, 1);
        assert!(sol.ledger.phase("tap/iterations") >= sol.iterations * per_iter.min(1));
    }

    #[test]
    fn rejects_non_spanning_tree() {
        let g = generators::cycle(5, 1);
        let mut edges = g.empty_edge_set();
        edges.insert(EdgeId(0));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = solve(&g, &edges, &mut rng).unwrap_err();
        assert!(matches!(err, Error::InvalidSubgraph { .. }));
    }

    #[test]
    fn rejects_graph_that_is_not_two_edge_connected() {
        // A path graph cannot be augmented.
        let g = generators::path(5, 1);
        let tree_edges = g.full_edge_set();
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let err = solve(&g, &tree_edges, &mut rng).unwrap_err();
        assert_eq!(
            err,
            Error::InsufficientConnectivity {
                required: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn iteration_rounds_grow_with_parameters() {
        let model = CostModel::new(400, 12);
        let base = iteration_rounds(&model, 10, 10);
        assert!(iteration_rounds(&model, 20, 10) > base);
        assert!(iteration_rounds(&model, 10, 30) > base);
    }

    #[test]
    fn parallel_edges_to_tree_edges_cover_them() {
        // Two vertices joined by two parallel edges plus a third vertex in a
        // triangle; the parallel edge covers the tree edge it duplicates.
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 4);
        let tree_edges = mst::kruskal(&g);
        let mut rng = ChaCha8Rng::seed_from_u64(19);
        let sol = solve(&g, &tree_edges, &mut rng).unwrap();
        check_valid(&g, &tree_edges, &sol);
    }
}
