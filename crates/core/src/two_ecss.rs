//! Weighted 2-ECSS (Theorem 1.1): build an MST, then augment it to
//! 2-edge-connectivity with the weighted TAP algorithm of Section 3.
//!
//! By Claim 2.1 the composition is an `O(log n)` approximation: the MST is an
//! optimal augmentation from connectivity 0 to 1 (weight at most OPT), and the
//! TAP step is an `O(log n)`-approximate augmentation from 1 to 2.

use crate::error::{Error, Result};
use crate::tap;
use congest::{CostModel, RoundLedger};
use graphs::{connectivity, mst, EdgeSet, Graph};
use rand::Rng;

/// The result of the weighted 2-ECSS algorithm.
#[derive(Clone, Debug)]
pub struct TwoEcssSolution {
    /// The 2-edge-connected spanning subgraph (MST ∪ augmentation).
    pub subgraph: EdgeSet,
    /// The MST edges (the connectivity-1 layer).
    pub tree: EdgeSet,
    /// The TAP augmentation edges (the connectivity-2 layer).
    pub augmentation: EdgeSet,
    /// Total weight of the subgraph.
    pub weight: u64,
    /// Number of TAP iterations executed.
    pub tap_iterations: u64,
    /// CONGEST rounds charged (MST construction + TAP), broken down by phase.
    pub ledger: RoundLedger,
}

/// Solves weighted 2-ECSS on `graph`, inferring the cost model from the
/// graph's diameter.
///
/// # Errors
///
/// Returns [`Error::InsufficientConnectivity`] if the input graph is not
/// 2-edge-connected (no 2-ECSS exists).
pub fn solve<R: Rng>(graph: &Graph, rng: &mut R) -> Result<TwoEcssSolution> {
    let diameter = graphs::bfs::diameter(graph).unwrap_or(graph.n());
    solve_with_model(graph, CostModel::new(graph.n(), diameter), rng)
}

/// Solves weighted 2-ECSS with an explicit CONGEST cost model.
///
/// # Errors
///
/// Same conditions as [`solve`].
pub fn solve_with_model<R: Rng>(
    graph: &Graph,
    model: CostModel,
    rng: &mut R,
) -> Result<TwoEcssSolution> {
    // Phase spans are observational only (DESIGN.md §11): they time scopes
    // and stream traces, but never feed back into the solution bytes.
    let _solve_span = kecss_obs::span("solve");
    {
        let _span = kecss_obs::span("connectivity_check");
        if !connectivity::is_k_edge_connected(graph, 2) {
            let actual = connectivity::edge_connectivity(graph);
            return Err(Error::InsufficientConnectivity {
                required: 2,
                actual,
            });
        }
    }

    let mut ledger = RoundLedger::new(model);
    // Step 1: MST via Kutten–Peleg (round cost charged; the tree itself is the
    // unique MST under (weight, edge id) tie-breaking).
    let tree = {
        let _span = kecss_obs::span("mst");
        mst::kruskal(graph)
    };
    ledger.charge("2ecss/mst", model.mst_kutten_peleg());

    // Step 2: weighted TAP on the MST.
    let tap_solution = {
        let _span = kecss_obs::span("tap");
        tap::solve_with_model(graph, &tree, model, rng)?
    };
    ledger.absorb(&tap_solution.ledger);

    let subgraph = tree.union(&tap_solution.augmentation);
    let weight = graph.weight_of(&subgraph);
    Ok(TwoEcssSolution {
        subgraph,
        tree,
        augmentation: tap_solution.augmentation,
        weight,
        tap_iterations: tap_solution.iterations,
        ledger,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower_bounds;
    use graphs::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn produces_two_edge_connected_subgraph() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        for n in [8, 20, 50, 100] {
            let g = generators::random_weighted_k_edge_connected(n, 2, 2 * n, 50, &mut rng);
            let sol = solve(&g, &mut rng).unwrap();
            assert!(
                connectivity::is_k_edge_connected_in(&g, &sol.subgraph, 2),
                "n = {n}"
            );
            assert_eq!(sol.weight, g.weight_of(&sol.subgraph));
            assert_eq!(sol.subgraph.len(), sol.tree.len() + sol.augmentation.len());
        }
    }

    #[test]
    fn cycle_input_returns_the_whole_cycle() {
        let g = generators::cycle(9, 4);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let sol = solve(&g, &mut rng).unwrap();
        assert_eq!(sol.subgraph.len(), 9);
        assert_eq!(sol.weight, 36);
    }

    #[test]
    fn rejects_insufficiently_connected_input() {
        let g = generators::path(6, 1);
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let err = solve(&g, &mut rng).unwrap_err();
        assert_eq!(
            err,
            Error::InsufficientConnectivity {
                required: 2,
                actual: 1
            }
        );
    }

    #[test]
    fn weight_stays_within_logarithmic_factor_of_lower_bound() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for n in [16usize, 40, 80] {
            let g = generators::random_weighted_k_edge_connected(n, 2, 3 * n, 30, &mut rng);
            let sol = solve(&g, &mut rng).unwrap();
            let lb = lower_bounds::k_ecss_lower_bound(&g, 2);
            let ratio = sol.weight as f64 / lb as f64;
            let bound = 4.0 * (n as f64).log2() + 4.0;
            assert!(
                ratio <= bound,
                "n = {n}: ratio {ratio:.2} exceeds {bound:.2}"
            );
        }
    }

    #[test]
    fn ledger_includes_mst_and_tap_phases() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = generators::random_weighted_k_edge_connected(36, 2, 40, 20, &mut rng);
        let sol = solve(&g, &mut rng).unwrap();
        assert!(sol.ledger.phase("2ecss/mst") > 0);
        assert!(sol.ledger.phase("tap/iterations") > 0);
        assert!(sol.ledger.total() >= sol.ledger.phase("2ecss/mst"));
    }

    #[test]
    fn rounds_scale_sublinearly_on_low_diameter_graphs() {
        // For a fixed small diameter, rounds should grow roughly like
        // sqrt(n) * polylog rather than linearly in m.
        let mut rng = ChaCha8Rng::seed_from_u64(17);
        let small = generators::random_weighted_k_edge_connected(64, 2, 256, 50, &mut rng);
        let large = generators::random_weighted_k_edge_connected(256, 2, 1024, 50, &mut rng);
        let r_small = solve(&small, &mut rng).unwrap().ledger.total();
        let r_large = solve(&large, &mut rng).unwrap().ledger.total();
        // Quadrupling n should much less than quadruple the rounds.
        assert!(
            (r_large as f64) < 3.5 * r_small as f64,
            "rounds grew from {r_small} to {r_large}, faster than ~sqrt scaling"
        );
    }
}
