//! Distributed approximation of minimum k-edge-connected spanning subgraphs.
//!
//! This crate reproduces the algorithms of
//! *Distributed Approximation of Minimum k-edge-connected Spanning Subgraphs*
//! (Michal Dory, PODC 2018) in the CONGEST model:
//!
//! | Paper result | API entry point | Guarantee |
//! |---|---|---|
//! | Theorem 1.1 — weighted 2-ECSS | [`two_ecss::solve`] | O(log n)-approx, O((D+√n) log² n) rounds |
//! | Theorem 3.12 — weighted TAP | [`tap::solve`] | O(log n)-approx, O((D+√n) log² n) rounds |
//! | Theorem 1.2 — weighted k-ECSS | [`kecss::solve`] | O(k log n)-approx (expected), O(k(D log³ n + n)) rounds |
//! | Theorem 1.3 — unweighted 3-ECSS | [`three_ecss::solve`] | O(log n)-approx (expected), O(D log³ n) rounds |
//!
//! Every algorithm returns both the computed subgraph (as a
//! [`graphs::EdgeSet`] over the input graph) and a [`congest::RoundLedger`]
//! recording the CONGEST rounds charged, broken down by phase, so the
//! benchmark harness can reproduce the round-complexity claims.
//!
//! The supporting machinery is also public:
//!
//! * [`cycle_space`] — Pritchard–Thurimella cycle-space sampling (Section 5.1).
//! * [`cuts`] — pluggable [`cuts::CutEnumerator`] strategies (exact
//!   specializations, general label classes, randomized contraction) for the
//!   cuts that must be covered, at *any* cut size.
//! * [`decomposition`] — the segment / skeleton-tree decomposition of the MST
//!   (Section 3.2, Figure 1).
//! * [`cover`] — cost-effectiveness and its rounding (Section 2.1).
//! * [`baselines`] — prior work and reference solvers used in the evaluation.
//! * [`lower_bounds`] — certified lower bounds on OPT for ratio measurements.
//!
//! # Quickstart
//!
//! ```
//! use graphs::generators;
//! use kecss::two_ecss;
//! use rand::SeedableRng;
//!
//! let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(1);
//! let g = generators::random_weighted_k_edge_connected(24, 2, 30, 100, &mut rng);
//! let solution = two_ecss::solve(&g, &mut rng).expect("input is 2-edge-connected");
//! assert!(graphs::connectivity::is_k_edge_connected_in(&g, &solution.subgraph, 2));
//! println!("weight {} in {} rounds", solution.weight, solution.ledger.total());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augk;
pub mod baselines;
pub mod cover;
pub mod cuts;
pub mod cycle_space;
pub mod decomposition;
pub mod error;
pub mod kecss;
pub mod lower_bounds;
pub mod metrics;
pub mod tap;
pub mod three_ecss;
pub mod two_ecss;
pub mod verification;

pub use error::{Error, Result};
