//! Cost-effectiveness and rounded cost-effectiveness (Section 2.1 of the
//! paper).
//!
//! For an edge `e` outside the current subgraph, the cost-effectiveness is
//! `ρ(e) = |C_e| / w(e)`, where `C_e` is the set of still-uncovered cuts the
//! edge would cover. The algorithms never compare raw cost-effectiveness
//! values: they round up to the nearest power of two (`ρ̃`), which creates
//! only `O(log n)` distinct classes and drives the iteration-count analysis
//! (Lemma 3.11 and the phase structure of Section 4).
//!
//! Rounding convention: `ρ̃(e) = 2^i` with the smallest `i` such that
//! `2^i >= ρ(e)`, giving `ρ(e) <= ρ̃(e) < 2·ρ(e)`, the property the
//! approximation analysis uses. Edges of weight zero have infinite
//! cost-effectiveness.

use graphs::Weight;
use std::cmp::Ordering;
use std::fmt;

/// The rounded cost-effectiveness class of an edge: either infinite (zero
/// weight) or a power of two `2^exponent` (the exponent may be negative, e.g.
/// an edge covering 1 cut at weight 8 has `ρ̃ = 2^{-3}`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Rounded {
    /// Weight-zero edge: always the best possible class.
    Infinite,
    /// `ρ̃ = 2^exponent`.
    Exponent(i32),
}

impl Rounded {
    /// The rounded cost-effectiveness of an edge covering `covered` uncovered
    /// cuts at weight `weight`.
    ///
    /// Returns `None` when `covered == 0` (the edge is useless this iteration
    /// and cannot be a candidate).
    pub fn of(covered: usize, weight: Weight) -> Option<Rounded> {
        if covered == 0 {
            return None;
        }
        if weight == 0 {
            return Some(Rounded::Infinite);
        }
        Some(Rounded::Exponent(ceil_log2_ratio(covered as u64, weight)))
    }

    /// Whether this class is the infinite (weight-zero) class.
    pub fn is_infinite(&self) -> bool {
        matches!(self, Rounded::Infinite)
    }

    /// The exponent `i` such that `ρ̃ = 2^i`, or `None` for the infinite class.
    pub fn exponent(&self) -> Option<i32> {
        match self {
            Rounded::Infinite => None,
            Rounded::Exponent(i) => Some(*i),
        }
    }

    /// The rounded value as a floating-point number (`f64::INFINITY` for the
    /// infinite class); intended for reporting, not for comparisons.
    pub fn as_f64(&self) -> f64 {
        match self {
            Rounded::Infinite => f64::INFINITY,
            Rounded::Exponent(i) => 2f64.powi(*i),
        }
    }
}

impl PartialOrd for Rounded {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rounded {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Rounded::Infinite, Rounded::Infinite) => Ordering::Equal,
            (Rounded::Infinite, _) => Ordering::Greater,
            (_, Rounded::Infinite) => Ordering::Less,
            (Rounded::Exponent(a), Rounded::Exponent(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Rounded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rounded::Infinite => write!(f, "inf"),
            Rounded::Exponent(i) => write!(f, "2^{i}"),
        }
    }
}

/// The exact cost-effectiveness `covered / weight` as an `f64`, with
/// `f64::INFINITY` for weight zero. Used by the sequential greedy baselines
/// and by the cost-charging checks in tests.
pub fn exact(covered: usize, weight: Weight) -> f64 {
    if weight == 0 {
        f64::INFINITY
    } else {
        covered as f64 / weight as f64
    }
}

/// The smallest `i` (possibly negative) with `2^i >= num / den`, for positive
/// integers, computed exactly in integer arithmetic.
fn ceil_log2_ratio(num: u64, den: u64) -> i32 {
    debug_assert!(num > 0 && den > 0);
    // Find smallest i such that num <= den * 2^i  (i may be negative:
    // num * 2^{-i} <= den).
    if num >= den {
        // i >= 0: smallest i with den << i >= num.
        let mut i = 0i32;
        let mut value = den as u128;
        while value < num as u128 {
            value <<= 1;
            i += 1;
        }
        i
    } else {
        // i <= 0: largest j = -i with num << j <= den, then check exactness.
        let mut j = 0i32;
        let mut value = num as u128;
        while value * 2 <= den as u128 {
            value *= 2;
            j += 1;
        }
        // Now num * 2^j <= den < num * 2^{j+1}; we need smallest i with
        // num <= den * 2^i, i.e. i = -j if num * 2^j == den has no slack issue:
        // num <= den * 2^{-j} iff num * 2^j <= den, which holds. Check whether
        // an even smaller i = -(j+1) also works: num * 2^{j+1} <= den — it does
        // not by construction. So i = -j.
        -j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_coverage_is_not_a_class() {
        assert_eq!(Rounded::of(0, 5), None);
        assert_eq!(Rounded::of(0, 0), None);
    }

    #[test]
    fn zero_weight_is_infinite() {
        let r = Rounded::of(3, 0).unwrap();
        assert!(r.is_infinite());
        assert_eq!(r.exponent(), None);
        assert!(r.as_f64().is_infinite());
        assert!(r > Rounded::Exponent(1000));
    }

    #[test]
    fn rounding_is_the_smallest_power_of_two_at_least_rho() {
        // rho = 4/1 = 4 -> 2^2.
        assert_eq!(Rounded::of(4, 1), Some(Rounded::Exponent(2)));
        // rho = 5/1 -> 2^3.
        assert_eq!(Rounded::of(5, 1), Some(Rounded::Exponent(3)));
        // rho = 1/1 -> 2^0.
        assert_eq!(Rounded::of(1, 1), Some(Rounded::Exponent(0)));
        // rho = 1/3 -> 2^{-1} (0.5 >= 0.333.. and 0.25 < 0.333..).
        assert_eq!(Rounded::of(1, 3), Some(Rounded::Exponent(-1)));
        // rho = 1/4 -> 2^{-2} exactly.
        assert_eq!(Rounded::of(1, 4), Some(Rounded::Exponent(-2)));
        // rho = 1/5 -> 2^{-2} (0.25 >= 0.2).
        assert_eq!(Rounded::of(1, 5), Some(Rounded::Exponent(-2)));
        // rho = 3/2 -> 2^1.
        assert_eq!(Rounded::of(3, 2), Some(Rounded::Exponent(1)));
    }

    #[test]
    fn rounded_is_within_factor_two_of_exact() {
        for covered in 1..40usize {
            for weight in 1..40u64 {
                let rho = exact(covered, weight);
                let rounded = Rounded::of(covered, weight).unwrap().as_f64();
                assert!(rounded >= rho - 1e-12, "rounded {rounded} < rho {rho}");
                assert!(
                    rounded < 2.0 * rho + 1e-12,
                    "rounded {rounded} >= 2 rho {rho}"
                );
            }
        }
    }

    #[test]
    fn ordering_matches_numeric_value() {
        let classes = [
            Rounded::Exponent(-3),
            Rounded::Exponent(0),
            Rounded::Exponent(2),
            Rounded::Infinite,
        ];
        for w in classes.windows(2) {
            assert!(w[0] < w[1]);
            assert!(w[0].as_f64() < w[1].as_f64());
        }
        assert_eq!(
            Rounded::Exponent(2).max(Rounded::Exponent(1)),
            Rounded::Exponent(2)
        );
    }

    #[test]
    fn exact_handles_zero_weight() {
        assert!(exact(2, 0).is_infinite());
        assert_eq!(exact(6, 3), 2.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Rounded::Infinite.to_string(), "inf");
        assert_eq!(Rounded::Exponent(-2).to_string(), "2^-2");
    }
}
