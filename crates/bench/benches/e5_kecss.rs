//! E5 — Theorem 1.2: weighted k-ECSS in `O(k (D log³ n + n))` rounds with an
//! `O(k log n)` expected approximation ratio.
//!
//! Prints, per `k` and `n`, the charged rounds next to the theorem's shape
//! `k · (D log³ n + n)` and the weight ratio against the certified lower
//! bound (which should stay within `O(k log n)`).

use criterion::{criterion_group, criterion_main, Criterion};
use kecss::kecss as kecss_alg;
use kecss::lower_bounds;
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, Topology};
use std::time::Duration;

fn shape(k: usize, n: usize, d: usize) -> f64 {
    let log3 = (n as f64).log2().powi(3);
    k as f64 * (d as f64 * log3 + n as f64)
}

fn print_series() {
    let mut table = Table::new([
        "k",
        "n",
        "D",
        "rounds",
        "k(D log^3 n + n)",
        "ratio",
        "weight",
        "lower bound",
        "weight/LB",
        "k log2 n",
    ]);
    for k in [2usize, 3, 4] {
        for n in [32usize, 64, 96] {
            let graph = workloads::weighted_instance(
                Topology::Random,
                n,
                k,
                20,
                0xE5 + (k * 1000 + n) as u64,
            );
            let d = workloads::report_diameter(&graph);
            let mut rng = workloads::rng(0xE5_10 + (k * 1000 + n) as u64);
            let sol = kecss_alg::solve(&graph, k, &mut rng).expect("instance is k-edge-connected");
            let lb = lower_bounds::k_ecss_lower_bound(&graph, k);
            let s = shape(k, graph.n(), d);
            table.push([
                k.to_string(),
                graph.n().to_string(),
                d.to_string(),
                sol.ledger.total().to_string(),
                format!("{s:.0}"),
                format!("{:.3}", sol.ledger.total() as f64 / s),
                sol.weight.to_string(),
                lb.to_string(),
                format!("{:.2}", sol.weight as f64 / lb as f64),
                format!("{:.1}", k as f64 * (graph.n() as f64).log2()),
            ]);
        }
    }
    table.print("E5: weighted k-ECSS rounds and ratios (Theorem 1.2)");
}

fn bench(c: &mut Criterion) {
    print_series();
    let graph = workloads::weighted_instance(Topology::Random, 64, 3, 20, 0xE5);
    c.bench_function("e5/kecss_k3_n64", |b| {
        b.iter(|| {
            let mut rng = workloads::rng(5);
            kecss_alg::solve(&graph, 3, &mut rng).unwrap().weight
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
