//! E7 — Figure 2 / Section 5.1: cycle-space sampling detects exactly the cut
//! pairs.
//!
//! Two measurements:
//!
//! * on a 2-edge-connected graph with many real cut pairs, wide labels find
//!   exactly the true cut pairs (no false positives, never a false negative);
//! * sweeping the label width `b` on a 3-edge-connected graph (which has no
//!   cut pairs at all), the number of spurious label collisions decays like
//!   `2^{-b}`, matching Corollary 5.3.

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::{connectivity, EdgeId, RootedTree};
use kecss::cycle_space::Circulation;
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, Topology};
use std::time::Duration;

fn spanning_tree(graph: &graphs::Graph) -> RootedTree {
    let bfs = graphs::bfs::bfs(graph, 0);
    RootedTree::new(graph, &bfs.tree_edges(graph), 0)
}

fn print_exactness() {
    let mut table = Table::new([
        "n",
        "m",
        "true cut pairs",
        "label cut pairs (b=64)",
        "false pos",
        "false neg",
    ]);
    for n in [16usize, 32, 64] {
        // A sparse 2-edge-connected graph (cycle-like Harary base plus a few
        // chords) has many genuine cut pairs to detect.
        let mut gen_rng = workloads::rng(0xE7 + n as u64);
        let graph = graphs::generators::random_k_edge_connected(n, 2, 3, &mut gen_rng);
        let h = graph.full_edge_set();
        let tree = spanning_tree(&graph);
        let mut rng = workloads::rng(0xE7_10 + n as u64);
        let circulation = Circulation::sample(&graph, &h, &tree, 64, &mut rng);
        let from_labels: std::collections::HashSet<(EdgeId, EdgeId)> =
            circulation.cut_pairs(&h).into_iter().collect();
        let ids: Vec<EdgeId> = h.iter().collect();
        let mut truth = std::collections::HashSet::new();
        for i in 0..ids.len() {
            for j in (i + 1)..ids.len() {
                if !connectivity::is_connected_after_removal(&graph, &h, &[ids[i], ids[j]]) {
                    truth.insert((ids[i], ids[j]));
                }
            }
        }
        let false_pos = from_labels.difference(&truth).count();
        let false_neg = truth.difference(&from_labels).count();
        table.push([
            graph.n().to_string(),
            graph.m().to_string(),
            truth.len().to_string(),
            from_labels.len().to_string(),
            false_pos.to_string(),
            false_neg.to_string(),
        ]);
    }
    table.print("E7a: cut-pair detection with 64-bit labels (Property 5.1)");
}

fn print_error_decay() {
    let graph = workloads::unweighted_instance(Topology::Random, 48, 3, 0xE7_20);
    let h = graph.full_edge_set();
    let tree = spanning_tree(&graph);
    let pairs_total = h.len() * (h.len() - 1) / 2;
    let mut table = Table::new([
        "label bits b",
        "spurious pairs",
        "pair collision rate",
        "2^-b",
    ]);
    for bits in [1u32, 2, 4, 6, 8, 12, 16] {
        // Average over a few samples to smooth the small-count regime.
        let samples = 5;
        let mut spurious_total = 0usize;
        for s in 0..samples {
            let mut rng = workloads::rng(0xE7_30 + bits as u64 * 10 + s);
            let circulation = Circulation::sample(&graph, &h, &tree, bits, &mut rng);
            spurious_total += circulation.cut_pairs(&h).len();
        }
        let spurious = spurious_total as f64 / samples as f64;
        table.push([
            bits.to_string(),
            format!("{spurious:.1}"),
            format!("{:.5}", spurious / pairs_total as f64),
            format!("{:.5}", 0.5f64.powi(bits as i32)),
        ]);
    }
    table.print(
        "E7b: spurious collisions vs label width on a 3-edge-connected graph (Corollary 5.3)",
    );
}

fn bench(c: &mut Criterion) {
    print_exactness();
    print_error_decay();
    let graph = workloads::unweighted_instance(Topology::Random, 256, 2, 0xE7);
    let h = graph.full_edge_set();
    let tree = spanning_tree(&graph);
    c.bench_function("e7/circulation_sampling_n256", |b| {
        b.iter(|| {
            let mut rng = workloads::rng(7);
            Circulation::sample(&graph, &h, &tree, 64, &mut rng)
                .label_classes(&h)
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
