//! E11 — the pluggable cut-enumerator strategies beyond the former `k ≤ 4`
//! cap (DESIGN.md §5/§6).
//!
//! For `k ∈ {4, 6, 8}` the last `Aug_k` level enumerates the cuts of size
//! `k - 1` of a `(k-1)`-edge-connected `H`. This bench runs that enumeration
//! on two known-structure families — `harary(k-1, n)` (minimum
//! `(k-1)`-edge-connected circulants) and `hypercube(k-1)` (edge connectivity
//! exactly `k-1`, so the size-`(k-1)` cuts include every vertex star) — with
//! each applicable strategy:
//!
//! * `exact` — only defined for sizes `1..=3`, i.e. `k = 4`;
//! * `label` — the general XOR-zero subset enumerator, deterministically
//!   complete but with `O(binom(m, k-2))` candidate generation (an enlarged
//!   budget is used here so the table can show the cost growing);
//! * `contract` — Karger-style contraction with the default trial count.
//!
//! Strategies that produce a result must agree cut-for-cut (they are all
//! exactly verified); the table reports wall time, candidate counts and the
//! agreement check, then Criterion times one representative configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::generators;
use kecss::cuts::{ContractEnumerator, Cut, CutEnumerator, ExactEnumerator, LabelEnumerator};
use kecss_bench::table::Table;
use kecss_runtime::Executor;
use std::time::{Duration, Instant};

/// The label budget used for the table: large enough that `label` completes
/// everywhere except the genuinely explosive hypercube `k = 8` row, which
/// documents the fallback regime.
const TABLE_LABEL_BUDGET: u64 = 100_000_000;

fn run_strategy(
    name: &str,
    enumerator: &dyn CutEnumerator,
    g: &graphs::Graph,
    size: usize,
) -> (String, String, Option<Vec<Cut>>) {
    let h = g.full_edge_set();
    let start = Instant::now();
    match enumerator.cuts(g, &h, size, 0, &Executor::Sequential) {
        Ok(cuts) => {
            let ms = start.elapsed().as_millis();
            (format!("{ms}"), cuts.len().to_string(), Some(cuts))
        }
        Err(kecss::Error::InvalidCutRequest { .. }) => ("-".into(), "n/a".into(), None),
        Err(kecss::Error::CandidateOverflow { .. }) => ("-".into(), "overflow".into(), None),
        Err(e) => panic!("{name}: unexpected enumeration error: {e}"),
    }
}

fn print_series() {
    let mut table = Table::new([
        "family", "k", "size", "n", "m", "strategy", "wall ms", "cuts", "agree",
    ]);
    for k in [4usize, 6, 8] {
        let size = k - 1;
        let instances: Vec<(&str, graphs::Graph)> = vec![
            ("harary", generators::harary(size, 16, 1)),
            ("hypercube", generators::hypercube(size, 1)),
        ];
        for (family, g) in instances {
            let exact = ExactEnumerator;
            let label = LabelEnumerator::with_budget(TABLE_LABEL_BUDGET);
            let contract = ContractEnumerator::default();
            let strategies: [(&str, &dyn CutEnumerator); 3] = [
                ("exact", &exact),
                ("label", &label),
                ("contract", &contract),
            ];
            let mut reference: Option<Vec<Cut>> = None;
            for (name, enumerator) in strategies {
                let (ms, cuts, result) = run_strategy(name, enumerator, &g, size);
                let agree = match (&reference, &result) {
                    (Some(r), Some(c)) => {
                        assert_eq!(r, c, "{family} k={k}: {name} disagrees");
                        "yes".to_string()
                    }
                    (None, Some(_)) => {
                        reference = result.clone();
                        "ref".to_string()
                    }
                    _ => "-".to_string(),
                };
                table.push([
                    family.to_string(),
                    k.to_string(),
                    size.to_string(),
                    g.n().to_string(),
                    g.m().to_string(),
                    name.to_string(),
                    ms,
                    cuts,
                    agree,
                ]);
            }
        }
    }
    table.print("E11: cut-enumerator strategies at k in {4, 6, 8} (cuts of size k-1)");
}

fn bench(c: &mut Criterion) {
    print_series();
    // Representative configuration: the contraction enumerator on Q_5
    // (size-5 cuts, the first size the exact specializations cannot reach).
    let g = generators::hypercube(5, 1);
    let h = g.full_edge_set();
    c.bench_function("e11/contract_q5_size5", |b| {
        b.iter(|| {
            ContractEnumerator::default()
                .cuts(&g, &h, 5, 0, &Executor::Sequential)
                .unwrap()
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
