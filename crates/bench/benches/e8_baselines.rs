//! E8 — comparison against prior work:
//!
//! * **rounds** — Theorem 1.1's `O((D + √n) log² n)` versus the
//!   `O(h_MST + √n)`-round weighted 2-ECSS baseline of [1]: on topologies
//!   with a deep MST (path-like weights) the baseline's `h_MST` term blows up
//!   while the new algorithm stays polylog · (D + √n); on shallow-MST
//!   topologies the baseline wins. The crossover is the point the paper's
//!   introduction highlights.
//! * **weight** — the weighted algorithms versus the weight-oblivious sparse
//!   certificate of [36] on adversarially weighted instances, and versus the
//!   sequential greedy on ordinary instances.

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::{mst, RootedTree};
use kecss::baselines::{greedy, thurimella};
use kecss::two_ecss;
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, Topology};
use std::time::Duration;

/// The round cost of the O(h_MST + √n log* n) baseline of [1], evaluated with
/// the same constants the ledger uses for its own primitives.
fn baseline_rounds(h_mst: usize, n: usize) -> f64 {
    let log_star = congest::CostModel::new(n, 1).log_star_n() as f64;
    h_mst as f64 + (n as f64).sqrt() * log_star
}

fn print_round_crossover() {
    let mut table = Table::new([
        "topology",
        "n",
        "D",
        "h_MST",
        "rounds (Thm 1.1)",
        "rounds ([1] baseline)",
        "winner",
    ]);
    for topology in [Topology::Random, Topology::RingOfCliques] {
        for n in [64usize, 256, 1024] {
            let graph = workloads::weighted_instance(topology, n, 2, 1_000, 0xE8 + n as u64);
            let d = workloads::report_diameter(&graph);
            let tree_edges = mst::kruskal(&graph);
            let h_mst = RootedTree::new(&graph, &tree_edges, 0).height();
            let mut rng = workloads::rng(0xE8_10 + n as u64);
            let sol = two_ecss::solve(&graph, &mut rng).expect("2-edge-connected instance");
            let ours = sol.ledger.total() as f64;
            let theirs = baseline_rounds(h_mst, graph.n());
            table.push([
                topology.label().to_string(),
                graph.n().to_string(),
                d.to_string(),
                h_mst.to_string(),
                format!("{ours:.0}"),
                format!("{theirs:.0}"),
                if ours < theirs {
                    "Thm 1.1"
                } else {
                    "[1] baseline"
                }
                .to_string(),
            ]);
        }
    }
    table.print("E8a: round comparison vs the O(h_MST + sqrt n) baseline of [1]");
}

fn print_weight_comparison() {
    let mut table = Table::new([
        "instance",
        "n",
        "2-ECSS (Thm 1.1)",
        "greedy",
        "sparse cert [36]",
        "Thm1.1/greedy",
        "cert/greedy",
    ]);
    for n in [24usize, 48, 96] {
        let graph = workloads::adversarial_weighted_instance(n, 2, 0xE8_20 + n as u64);
        let mut rng = workloads::rng(0xE8_30 + n as u64);
        let ours = two_ecss::solve(&graph, &mut rng).expect("2-edge-connected instance");
        let greedy_sol = greedy::k_ecss(&graph, 2);
        let cert = thurimella::sparse_certificate(&graph, 2);
        table.push([
            "adversarial weights".to_string(),
            graph.n().to_string(),
            ours.weight.to_string(),
            greedy_sol.weight.to_string(),
            cert.weight.to_string(),
            format!("{:.2}", ours.weight as f64 / greedy_sol.weight as f64),
            format!("{:.2}", cert.weight as f64 / greedy_sol.weight as f64),
        ]);
    }
    for n in [24usize, 48, 96] {
        let graph = workloads::weighted_instance(Topology::Random, n, 2, 50, 0xE8_40 + n as u64);
        let mut rng = workloads::rng(0xE8_50 + n as u64);
        let ours = two_ecss::solve(&graph, &mut rng).expect("2-edge-connected instance");
        let greedy_sol = greedy::k_ecss(&graph, 2);
        let cert = thurimella::sparse_certificate(&graph, 2);
        table.push([
            "random weights".to_string(),
            graph.n().to_string(),
            ours.weight.to_string(),
            greedy_sol.weight.to_string(),
            cert.weight.to_string(),
            format!("{:.2}", ours.weight as f64 / greedy_sol.weight as f64),
            format!("{:.2}", cert.weight as f64 / greedy_sol.weight as f64),
        ]);
    }
    table.print("E8b: weight comparison — weighted algorithms vs the unweighted certificate [36]");
}

fn bench(c: &mut Criterion) {
    print_round_crossover();
    print_weight_comparison();
    let graph = workloads::adversarial_weighted_instance(96, 2, 0xE8);
    c.bench_function("e8/thurimella_certificate_n96", |b| {
        b.iter(|| thurimella::sparse_certificate(&graph, 2).edges.len())
    });
    c.bench_function("e8/greedy_k_ecss_n96", |b| {
        b.iter(|| greedy::k_ecss(&graph, 2).weight)
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
