//! E2 — Theorem 1.1 / Lemma 3.7 approximation quality: the weighted 2-ECSS
//! algorithm is an `O(log n)` approximation, *guaranteed* (not just in
//! expectation).
//!
//! Small instances are compared against the exact optimum (branch and bound);
//! larger instances against the certified lower bound of
//! `kecss::lower_bounds`. The greedy sequential set-cover augmentation is
//! included as the quality reference.

use criterion::{criterion_group, criterion_main, Criterion};
use kecss::baselines::{exact, greedy};
use kecss::{lower_bounds, metrics::RatioSummary, two_ecss};
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, Topology};
use std::time::Duration;

fn print_exact_comparison() {
    let mut table = Table::new([
        "instance",
        "OPT",
        "distributed",
        "greedy",
        "dist/OPT",
        "greedy/OPT",
    ]);
    for seed in 0..6u64 {
        let graph = workloads::weighted_instance(Topology::Random, 8, 2, 20, 0xE2_00 + seed);
        let Some(opt) = exact::min_k_ecss(&graph, 2) else {
            continue;
        };
        let mut rng = workloads::rng(seed);
        let dist = two_ecss::solve(&graph, &mut rng).expect("2-edge-connected instance");
        let greedy_sol = greedy::k_ecss(&graph, 2);
        table.push([
            format!("random n=8 #{seed}"),
            opt.weight.to_string(),
            dist.weight.to_string(),
            greedy_sol.weight.to_string(),
            format!("{:.2}", dist.weight as f64 / opt.weight as f64),
            format!("{:.2}", greedy_sol.weight as f64 / opt.weight as f64),
        ]);
    }
    table.print("E2a: weighted 2-ECSS vs the exact optimum (small instances)");
}

fn print_lower_bound_comparison() {
    let mut table = Table::new(["topology", "n", "weight", "lower bound", "ratio", "log2 n"]);
    let mut summary = RatioSummary::new();
    for topology in [Topology::Random, Topology::RingOfCliques] {
        for n in [32usize, 64, 128, 256] {
            let graph = workloads::weighted_instance(topology, n, 2, 50, 0xE2_10 + n as u64);
            let mut rng = workloads::rng(0xE2_20 + n as u64);
            let sol = two_ecss::solve(&graph, &mut rng).expect("2-edge-connected instance");
            let lb = lower_bounds::k_ecss_lower_bound(&graph, 2);
            let report = kecss::metrics::ApproxReport::new(sol.weight, lb);
            summary.push(report);
            table.push([
                topology.label().to_string(),
                graph.n().to_string(),
                sol.weight.to_string(),
                lb.to_string(),
                format!("{:.2}", report.ratio()),
                format!("{:.1}", (graph.n() as f64).log2()),
            ]);
        }
    }
    table.print("E2b: weighted 2-ECSS vs certified lower bounds");
    println!("summary: {summary}");
}

fn bench(c: &mut Criterion) {
    print_exact_comparison();
    print_lower_bound_comparison();
    let graph = workloads::weighted_instance(Topology::Random, 128, 2, 50, 0xE2);
    c.bench_function("e2/two_ecss_ratio_n128", |b| {
        b.iter(|| {
            let mut rng = workloads::rng(2);
            two_ecss::solve(&graph, &mut rng).unwrap().weight
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
