//! E3 — Lemma 3.11: the weighted TAP algorithm performs `O(log² n)`
//! candidate/voting iterations w.h.p.
//!
//! Prints the measured iteration counts next to `log² n`; the ratio should
//! stay bounded (in fact well below 1 with the constants involved) as `n`
//! grows, and the weight ratio against the greedy baseline should stay a
//! small constant.

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::mst;
use kecss::baselines::greedy;
use kecss::tap;
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, Topology};
use std::time::Duration;

fn print_series() {
    let mut table = Table::new([
        "topology",
        "n",
        "iterations",
        "log^2 n",
        "iters/log^2 n",
        "weight",
        "greedy weight",
    ]);
    for topology in [Topology::Random, Topology::RingOfCliques] {
        for n in [64usize, 128, 256, 512, 1024] {
            let graph = workloads::weighted_instance(topology, n, 2, 1_000, 0xE3 + n as u64);
            let tree = mst::kruskal(&graph);
            let mut rng = workloads::rng(0xE3_10 + n as u64);
            let sol = tap::solve(&graph, &tree, &mut rng).expect("2-edge-connected instance");
            let greedy_sol = greedy::tap(&graph, &tree);
            let log2 = (graph.n() as f64).log2().powi(2);
            table.push([
                topology.label().to_string(),
                graph.n().to_string(),
                sol.iterations.to_string(),
                format!("{log2:.0}"),
                format!("{:.2}", sol.iterations as f64 / log2),
                sol.weight.to_string(),
                greedy_sol.weight.to_string(),
            ]);
        }
    }
    table.print("E3: weighted TAP iteration counts vs log^2 n (Lemma 3.11)");
}

fn bench(c: &mut Criterion) {
    print_series();
    let graph = workloads::weighted_instance(Topology::Random, 256, 2, 1_000, 0xE3);
    let tree = mst::kruskal(&graph);
    c.bench_function("e3/tap_n256", |b| {
        b.iter(|| {
            let mut rng = workloads::rng(3);
            tap::solve(&graph, &tree, &mut rng).unwrap().iterations
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
