//! E16 — recursive Karger–Stein contraction vs the flat baseline
//! (DESIGN.md §12).
//!
//! PR 8 replaces the flat Karger scheme (`Θ(n² log n)` independent trials,
//! each contracting from the full graph) with the recursive Karger–Stein
//! enumerator: contract to `⌈n/√2⌉ + 1`, recurse twice, share the expensive
//! shallow contraction prefix. This bench isolates the algorithmic gain on
//! the `Aug_k` enumeration workloads that dominate high-`k` solves:
//!
//! * `Q_5` size-5 — the e11 headline workload (kept unchanged there for
//!   trajectory continuity; the ≥ 5× target of ISSUE 8 is measured here);
//! * `harary(7, 16)` size-7 and `Q_8` size-8 — the `k = 8` regime, where
//!   the flat scheme needs seconds per enumeration;
//! * an end-to-end `k = 8` solve of `Q_8` through the default `auto` policy
//!   (label budget trips → Karger–Stein fallback), the pipeline the ISSUE
//!   requires under 10 s.
//!
//! Both enumerators are exactly verified, so wherever both complete they
//! must agree cut-for-cut; the table asserts it. Criterion then times the
//! flat and recursive enumerators on the `Q_5` workload back to back.

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::generators;
use kecss::cuts::{ContractEnumerator, Cut, CutEnumerator, KargerSteinEnumerator};
use kecss_bench::table::Table;
use kecss_runtime::Executor;
use std::time::{Duration, Instant};

fn timed_cuts(enumerator: &dyn CutEnumerator, g: &graphs::Graph, size: usize) -> (u128, Vec<Cut>) {
    let h = g.full_edge_set();
    let start = Instant::now();
    let cuts = enumerator
        .cuts(g, &h, size, 0, &Executor::Sequential)
        .expect("enumeration succeeds");
    (start.elapsed().as_millis(), cuts)
}

fn print_series() {
    let mut table = Table::new([
        "workload", "n", "m", "size", "strategy", "wall ms", "cuts", "agree",
    ]);
    let workloads: Vec<(&str, graphs::Graph, usize)> = vec![
        ("Q_5", generators::hypercube(5, 1), 5),
        ("harary(7,16)", generators::harary(7, 16, 1), 7),
        ("Q_8", generators::hypercube(8, 1), 8),
    ];
    for (name, g, size) in workloads {
        let (flat_ms, flat) = timed_cuts(&ContractEnumerator::default(), &g, size);
        let (ks_ms, ks) = timed_cuts(&KargerSteinEnumerator::default(), &g, size);
        assert_eq!(
            flat, ks,
            "{name}: flat and ks must agree after verification"
        );
        for (strategy, ms, cuts) in [("contract", flat_ms, &flat), ("ks", ks_ms, &ks)] {
            table.push([
                name.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                size.to_string(),
                strategy.to_string(),
                ms.to_string(),
                cuts.len().to_string(),
                "yes".to_string(),
            ]);
        }
    }

    // End-to-end k = 8 solve through the default auto policy (exact → label
    // → Karger–Stein fallback), the ISSUE 8 single-digit-seconds target.
    use rand::SeedableRng;
    let g = generators::hypercube(8, 1);
    let start = Instant::now();
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(3);
    let sol = kecss::kecss::solve_with_exec(&g, 8, &mut rng, &Executor::Sequential)
        .expect("Q_8 is 8-edge-connected");
    let solve_ms = start.elapsed().as_millis();
    table.push([
        "Q_8 solve k=8".to_string(),
        g.n().to_string(),
        g.m().to_string(),
        "auto".to_string(),
        "auto(ks)".to_string(),
        solve_ms.to_string(),
        sol.subgraph.len().to_string(),
        "-".to_string(),
    ]);
    table.print("E16: flat contraction vs recursive Karger-Stein (and the k=8 end-to-end solve)");
}

fn bench(c: &mut Criterion) {
    print_series();
    let g = generators::hypercube(5, 1);
    let h = g.full_edge_set();
    // The pooled flat baseline and the recursive enumerator on the same
    // workload e11 times (`e11/contract_q5_size5` stays unchanged for
    // trajectory continuity).
    c.bench_function("e16/contract_q5_size5", |b| {
        b.iter(|| {
            ContractEnumerator::default()
                .cuts(&g, &h, 5, 0, &Executor::Sequential)
                .unwrap()
                .len()
        })
    });
    c.bench_function("e16/ks_q5_size5", |b| {
        b.iter(|| {
            KargerSteinEnumerator::default()
                .cuts(&g, &h, 5, 0, &Executor::Sequential)
                .unwrap()
                .len()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
