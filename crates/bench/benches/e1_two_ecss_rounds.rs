//! E1 — Theorem 1.1 round complexity: weighted 2-ECSS in
//! `O((D + √n) log² n)` rounds.
//!
//! Prints, for every topology and size, the charged CONGEST rounds next to
//! the theorem's shape `(D + √n) · log² n`, and the ratio between the two
//! (which should stay roughly constant as `n` grows if the shape is right).

use criterion::{criterion_group, criterion_main, Criterion};
use kecss::two_ecss;
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, Topology};
use std::time::Duration;

fn shape(n: usize, d: usize) -> f64 {
    let n_f = n as f64;
    (d as f64 + n_f.sqrt()) * n_f.log2().powi(2)
}

fn print_series() {
    let mut table = Table::new([
        "topology",
        "n",
        "m",
        "D",
        "rounds",
        "(D+sqrt n)log^2 n",
        "ratio",
        "weight",
        "tap iters",
    ]);
    for topology in [Topology::Random, Topology::RingOfCliques, Topology::Torus] {
        for n in [64usize, 128, 256, 512, 1024] {
            let graph = workloads::weighted_instance(topology, n, 2, 100, 0xE1 + n as u64);
            let d = workloads::report_diameter(&graph);
            let mut rng = workloads::rng(0xE1_00 + n as u64);
            let sol = two_ecss::solve(&graph, &mut rng).expect("instance is 2-edge-connected");
            let s = shape(graph.n(), d);
            table.push([
                topology.label().to_string(),
                graph.n().to_string(),
                graph.m().to_string(),
                d.to_string(),
                sol.ledger.total().to_string(),
                format!("{s:.0}"),
                format!("{:.2}", sol.ledger.total() as f64 / s),
                sol.weight.to_string(),
                sol.tap_iterations.to_string(),
            ]);
        }
    }
    table.print("E1: weighted 2-ECSS rounds vs the Theorem 1.1 shape");
}

fn bench(c: &mut Criterion) {
    print_series();
    let graph = workloads::weighted_instance(Topology::Random, 256, 2, 100, 0xE1);
    c.bench_function("e1/two_ecss_random_n256", |b| {
        b.iter(|| {
            let mut rng = workloads::rng(1);
            two_ecss::solve(&graph, &mut rng).unwrap().weight
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
