//! E4 — Figure 1 / Section 3.2: the segment decomposition produces `O(√n)`
//! segments of diameter `O(√n)`, with the skeleton-tree invariants of
//! Lemma 3.4.
//!
//! Prints, per instance size, the number of fragments, marked vertices and
//! segments and the maximum segment diameter, each normalized by `√n`.

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::{mst, RootedTree};
use kecss::decomposition::Decomposition;
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, Topology};
use std::time::Duration;

fn print_series() {
    let mut table = Table::new([
        "topology",
        "n",
        "sqrt n",
        "fragments",
        "marked",
        "segments",
        "max seg diam",
        "segments/sqrt n",
        "diam/sqrt n",
    ]);
    for topology in [Topology::Random, Topology::RingOfCliques, Topology::Torus] {
        for n in [256usize, 1024, 4096] {
            let graph = workloads::weighted_instance(topology, n, 2, 50, 0xE4 + n as u64);
            let tree_edges = mst::kruskal(&graph);
            let tree = RootedTree::new(&graph, &tree_edges, 0);
            let d = Decomposition::build(&graph, &tree);
            d.assert_invariants(&graph, &tree);
            let sqrt_n = (graph.n() as f64).sqrt();
            let max_diam = d.max_segment_diameter(&graph, &tree);
            table.push([
                topology.label().to_string(),
                graph.n().to_string(),
                format!("{sqrt_n:.0}"),
                d.num_fragments().to_string(),
                d.num_marked().to_string(),
                d.num_segments().to_string(),
                max_diam.to_string(),
                format!("{:.2}", d.num_segments() as f64 / sqrt_n),
                format!("{:.2}", max_diam as f64 / sqrt_n),
            ]);
        }
    }
    table.print("E4: segment decomposition statistics (Figure 1 / Lemma 3.4)");
}

fn bench(c: &mut Criterion) {
    print_series();
    let graph = workloads::weighted_instance(Topology::Random, 1024, 2, 50, 0xE4);
    let tree_edges = mst::kruskal(&graph);
    let tree = RootedTree::new(&graph, &tree_edges, 0);
    c.bench_function("e4/decomposition_n1024", |b| {
        b.iter(|| Decomposition::build(&graph, &tree).num_segments())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
