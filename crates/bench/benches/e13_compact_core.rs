//! E13 — the compact graph core: binary vs text instance parsing, and the
//! word-packed removal-test kernel vs the naive byte-per-edge model it
//! replaced (DESIGN.md §10, EXPERIMENTS.md E13).
//!
//! Two tables:
//!
//! * **Parse throughput** — encode one large ring-of-cliques instance in
//!   both on-disk formats, then decode each; the binary decode is a single
//!   fixed-stride pass (no integer parsing), so the table reports bytes,
//!   wall time, edges/s and the binary/text speedup. The acceptance bar for
//!   this PR is a ≥5× parse speedup.
//! * **Removal kernel** — `connectivity::is_connected_after_removal` is the
//!   innermost loop of exact cut verification, and the `Aug_k` driver always
//!   calls it with a *sparse* subgraph `H` (a certificate of ~`k·n` edges)
//!   masked over a much larger instance. The table compares the shipped
//!   word-wise implementation against the naive model (per-edge `Vec<bool>`
//!   scan with a `removed.contains` probe per edge) in exactly that regime,
//!   sweeping all single-edge removals of the certificate.
//!
//! Criterion then times one representative of each: binary parse, text
//! parse, and the packed removal kernel.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use graphs::{connectivity, dsu::DisjointSets, EdgeId, Graph};
use kecss_bench::table::Table;
use kecss_bench::workloads;
use std::time::{Duration, Instant};

/// The large parse-throughput instance: 30k cliques of 4 = 120k vertices,
/// 240k edges (the scale the ROADMAP's "instance files at scale" item names).
/// Shared with `kecss-bench-json` via [`workloads::e13_parse_instance`].
fn large_instance() -> Graph {
    workloads::e13_parse_instance(30_000)
}

/// The pre-refactor removal test: iterate every set edge (the old `Vec<bool>`
/// enumerate-filter scan) and probe the removed slice per edge.
fn naive_removal_model(graph: &Graph, h: &[bool], removed: &[EdgeId]) -> bool {
    let mut dsu = DisjointSets::new(graph.n());
    for (i, &in_h) in h.iter().enumerate() {
        if !in_h {
            continue;
        }
        let id = EdgeId(i);
        if removed.contains(&id) {
            continue;
        }
        let e = graph.edge(id);
        dsu.union(e.u, e.v);
    }
    dsu.component_count() == 1
}

fn print_parse_table() {
    let g = large_instance();
    let mut text = Vec::new();
    graphs::io::write_text(&mut text, &g).expect("encode text");
    let mut binary = Vec::new();
    graphs::io::write_binary(&mut binary, &g).expect("encode binary");

    let time_parse = |f: &dyn Fn() -> Graph| -> (Graph, Duration) {
        // Median of 5 runs keeps the table stable on a noisy CI machine.
        let mut best: Vec<(Duration, Graph)> = (0..5)
            .map(|_| {
                let start = Instant::now();
                let parsed = f();
                (start.elapsed(), parsed)
            })
            .collect();
        best.sort_by_key(|(d, _)| *d);
        let (d, parsed) = best.swap_remove(2);
        (parsed, d)
    };
    let text_str = std::str::from_utf8(&text).expect("text is UTF-8");
    let (from_text, text_wall) = time_parse(&|| graphs::io::read_text(text_str).unwrap());
    let (from_binary, binary_wall) = time_parse(&|| graphs::io::read_binary(&binary).unwrap());
    assert_eq!(from_text, g, "text decode must reproduce the instance");
    assert_eq!(from_binary, g, "binary decode must reproduce the instance");

    let eps = |d: Duration| g.m() as f64 / d.as_secs_f64();
    let mut table = Table::new(["format", "bytes", "parse ms", "edges/s", "speedup"]);
    table.push([
        "text".into(),
        text.len().to_string(),
        format!("{:.2}", text_wall.as_secs_f64() * 1e3),
        format!("{:.2e}", eps(text_wall)),
        "1.0x".into(),
    ]);
    table.push([
        "binary".into(),
        binary.len().to_string(),
        format!("{:.2}", binary_wall.as_secs_f64() * 1e3),
        format!("{:.2e}", eps(binary_wall)),
        format!(
            "{:.1}x",
            text_wall.as_secs_f64() / binary_wall.as_secs_f64()
        ),
    ]);
    table.print(&format!(
        "E13a: instance parse throughput, ring-of-cliques n = {}, m = {}",
        g.n(),
        g.m()
    ));
}

fn print_removal_table() {
    let (g, h) = workloads::e13_kernel_instance();
    let h_bools: Vec<bool> = (0..g.m()).map(|i| h.contains(EdgeId(i))).collect();
    let candidates: Vec<EdgeId> = h.iter().collect();

    // Sweep all single-edge removals of the certificate (none disconnects a
    // 4-edge-connected H; the verdicts must agree everywhere).
    let start = Instant::now();
    let mut packed_connected = 0usize;
    for &id in &candidates {
        if connectivity::is_connected_after_removal(&g, &h, &[id]) {
            packed_connected += 1;
        }
    }
    let packed_wall = start.elapsed();

    let start = Instant::now();
    let mut naive_connected = 0usize;
    for &id in &candidates {
        if naive_removal_model(&g, &h_bools, &[id]) {
            naive_connected += 1;
        }
    }
    let naive_wall = start.elapsed();
    assert_eq!(packed_connected, naive_connected, "kernels must agree");
    assert_eq!(packed_connected, candidates.len(), "H is 4-edge-connected");

    let per_test = |d: Duration| d.as_secs_f64() * 1e6 / candidates.len() as f64;
    let mut table = Table::new(["kernel", "tests", "wall ms", "us/test", "speedup"]);
    table.push([
        "naive Vec<bool>".into(),
        candidates.len().to_string(),
        format!("{:.1}", naive_wall.as_secs_f64() * 1e3),
        format!("{:.2}", per_test(naive_wall)),
        "1.0x".into(),
    ]);
    table.push([
        "packed words".into(),
        candidates.len().to_string(),
        format!("{:.1}", packed_wall.as_secs_f64() * 1e3),
        format!("{:.2}", per_test(packed_wall)),
        format!(
            "{:.1}x",
            naive_wall.as_secs_f64() / packed_wall.as_secs_f64()
        ),
    ]);
    table.print(&format!(
        "E13b: exact removal-test kernel, |H| = {} certificate edges masked over m = {}",
        candidates.len(),
        g.m()
    ));
}

fn bench(c: &mut Criterion) {
    print_parse_table();
    print_removal_table();

    // Criterion representatives on a smaller instance so the timed loops
    // stay snappy: 30k vertices, 60k edges.
    let g = workloads::e13_parse_instance(7_500);
    let mut text = Vec::new();
    graphs::io::write_text(&mut text, &g).expect("encode text");
    let text = String::from_utf8(text).expect("text is UTF-8");
    let mut binary = Vec::new();
    graphs::io::write_binary(&mut binary, &g).expect("encode binary");
    c.bench_function("e13/parse_text_60k_edges", |b| {
        b.iter(|| graphs::io::read_text(black_box(&text)).unwrap().m())
    });
    c.bench_function("e13/parse_binary_60k_edges", |b| {
        b.iter(|| graphs::io::read_binary(black_box(&binary)).unwrap().m())
    });

    let (kernel, h) = workloads::e13_kernel_instance();
    let probe: Vec<EdgeId> = h.iter().take(64).collect();
    c.bench_function("e13/removal_test_sparse_mask_64x", |b| {
        b.iter(|| {
            probe
                .iter()
                .filter(|&&id| connectivity::is_connected_after_removal(&kernel, &h, &[id]))
                .count()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
