//! E18 — the event-driven front-end: submit→result latency through a real
//! socket (framing, the readiness loop, push-on-complete delivery) in both
//! wire modes, at pipeline depths 1, 64 and 1024.
//!
//! Depth 1 is the pure round trip: in binary mode it is **one** wait-flagged
//! `SUBMIT` frame per job (ack + pushed `RESULT` on the same connection), so
//! the row reads as solve time plus whatever the front-end still costs —
//! on a single-core host the `ring:20 2ecss` solve alone is the floor, and
//! the front-end's share is the difference against E12's in-process
//! scheduler row. Depths 64 and 1024 overlap framing with solver work: the
//! per-job figure there is the pipelined cost, and the gap between depth 64
//! and depth 1024 bounds how much the windowed drain still serializes. The
//! text row at depth 1 is the same traffic over the line protocol — its gap
//! against binary depth 1 is the zero-parse dividend plus the saved second
//! request. The measured table goes to EXPERIMENTS.md (E18).

use criterion::{criterion_group, criterion_main, Criterion};
use kecss_bench::workloads::FrontEndFixture;
use std::time::{Duration, Instant};

const SPEC: &str = "ring:20 2 2ecss auto";

fn print_series() {
    let mut table =
        kecss_bench::table::Table::new(["mode", "depth", "jobs", "wall ms", "per-job µs"]);
    for (mode, binary) in [("binary", true), ("text", false)] {
        for depth in [1usize, 64, 1024] {
            let jobs = depth.max(64);
            let mut fixture = FrontEndFixture::new(binary, depth.max(4));
            fixture.pump(jobs.min(64), depth, SPEC); // warm-up
            let started = Instant::now();
            fixture.pump(jobs, depth, SPEC);
            let wall = started.elapsed();
            table.push([
                mode.to_string(),
                depth.to_string(),
                jobs.to_string(),
                format!("{}", wall.as_millis()),
                format!("{:.1}", wall.as_secs_f64() * 1e6 / jobs as f64),
            ]);
        }
    }
    table.print("E18: socket front-end per-job cost, ring:20 2ecss, by wire mode and depth");
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut depth1 = FrontEndFixture::new(true, 4);
    c.bench_function("e18/submit_ring20_binary_depth1", |b| {
        b.iter(|| depth1.pump(1, 1, SPEC))
    });
    drop(depth1);
    let mut depth64 = FrontEndFixture::new(true, 64);
    c.bench_function("e18/submit_ring20_binary_depth64", |b| {
        b.iter(|| depth64.pump(64, 64, SPEC))
    });
    drop(depth64);
    let mut text1 = FrontEndFixture::new(false, 4);
    c.bench_function("e18/submit_ring20_text_depth1", |b| {
        b.iter(|| text1.pump(1, 1, SPEC))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
