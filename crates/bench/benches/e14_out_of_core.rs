//! E14 — the out-of-core pipeline: streaming `KGB1` ingest vs slurping the
//! file into memory first, at 10⁶–10⁷ edges, with a peak-RSS axis
//! (DESIGN.md §10, EXPERIMENTS.md E14).
//!
//! The table writes a synthetic `KGB1` instance of each size straight to
//! disk (no `Graph` is ever materialized on the producer side), then ingests
//! it two ways:
//!
//! * **stream** — `graphs::io::read_graph`, the two-pass
//!   `Graph::from_edge_stream` builder reading the file twice through a
//!   fixed 64 KiB chunk;
//! * **slurp** — `std::fs::read` + `graphs::io::read_binary`, the in-memory
//!   decoder, which must hold the file bytes *and* the finished graph at
//!   once.
//!
//! Wall time is the median of three in-process runs; the memory columns
//! come from one fresh *child process* per (size, mode) — re-executing this
//! binary with `KECSS_E14_PROBE` set — because a long-lived bench process
//! retains heap from earlier workloads and would understate every peak
//! after the first ([`kecss_bench::rss::spawn_child_probe`]). Each row
//! reports the child's peak resident set over the ingest (`VmHWM` delta),
//! the live footprint of the finished graph, and peak/live — the acceptance
//! bar for this PR is streaming peak < 3× the final CSR footprint.
//! Criterion then times one representative of each mode at 10⁶ edges.

use criterion::{black_box, criterion_group, Criterion};
use kecss_bench::table::Table;
use kecss_bench::{rss, workloads};
use std::io::BufWriter;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The env-var handshake for the child-process memory probe.
const PROBE_VAR: &str = "KECSS_E14_PROBE";

/// Vertices per edge count: average degree 10, so the CSR adjacency
/// dominates the offsets array and the instance still looks graph-like.
fn vertices_for(m: u64) -> usize {
    (m / 5).max(16) as usize
}

/// Writes the synthetic fixture for `m` edges and returns its path.
fn write_fixture(dir: &Path, m: u64) -> PathBuf {
    let path = dir.join(format!("e14_{m}.graphb"));
    let file = std::fs::File::create(&path).expect("create fixture");
    let mut sink = BufWriter::with_capacity(1 << 20, file);
    workloads::e14_write_synthetic_kgb1(&mut sink, vertices_for(m), m).expect("write fixture");
    path
}

fn stream_ingest(path: &Path, m: u64) -> graphs::Graph {
    let g = graphs::io::read_graph(path).expect("stream ingest");
    assert_eq!(g.m(), m as usize);
    g
}

fn slurp_ingest(path: &Path, m: u64) -> graphs::Graph {
    let bytes = std::fs::read(path).expect("read fixture");
    let g = graphs::io::read_binary(&bytes).expect("slurp ingest");
    assert_eq!(g.m(), m as usize);
    // Freeze the CSR so both modes deliver the same end state (the
    // streamed graph arrives frozen by construction).
    g.freeze();
    g
}

/// Child side of the probe handshake: `spec` is `mode;m;path`.
fn run_probe(spec: &str) {
    let mut parts = spec.splitn(3, ';');
    let mode = parts.next().expect("probe spec: mode");
    let m: u64 = parts
        .next()
        .expect("probe spec: edge count")
        .parse()
        .expect("probe spec: numeric edge count");
    let path = PathBuf::from(parts.next().expect("probe spec: path"));
    match mode {
        "stream" => rss::report_child_probe(|| stream_ingest(&path, m)),
        "slurp" => rss::report_child_probe(|| slurp_ingest(&path, m)),
        other => panic!("unknown probe mode '{other}'"),
    }
}

/// Median wall time of three in-process runs (page cache warmed by the
/// probe child having just read the same file).
fn median_wall(ingest: impl Fn() -> graphs::Graph) -> Duration {
    let mut walls: Vec<Duration> = (0..3)
        .map(|_| {
            let start = Instant::now();
            black_box(ingest());
            start.elapsed()
        })
        .collect();
    walls.sort_unstable();
    walls[1]
}

fn print_ingest_table(dir: &Path) {
    let mut table = Table::new([
        "edges",
        "mode",
        "file MiB",
        "wall ms",
        "edges/s",
        "peak MiB",
        "live MiB",
        "peak/live",
    ]);
    for m in [1_000_000u64, 10_000_000] {
        let path = write_fixture(dir, m);
        let file_mib =
            std::fs::metadata(&path).expect("fixture exists").len() as f64 / (1 << 20) as f64;
        for mode in ["stream", "slurp"] {
            let probe =
                rss::spawn_child_probe(PROBE_VAR, &format!("{mode};{m};{}", path.display()));
            let wall = match mode {
                "stream" => median_wall(|| stream_ingest(&path, m)),
                _ => median_wall(|| slurp_ingest(&path, m)),
            };
            let (peak, live) = match probe {
                Some((p, l)) => (Some(p), Some(l)),
                None => (None, None),
            };
            let ratio = match (peak, live) {
                (Some(p), Some(l)) if l > 0 => format!("{:.2}", p as f64 / l as f64),
                _ => "-".into(),
            };
            table.push([
                m.to_string(),
                mode.into(),
                format!("{file_mib:.1}"),
                format!("{:.1}", wall.as_secs_f64() * 1e3),
                format!("{:.2e}", m as f64 / wall.as_secs_f64()),
                rss::format_kb(peak),
                rss::format_kb(live),
                ratio,
            ]);
        }
        std::fs::remove_file(&path).ok();
    }
    table.print("E14: out-of-core KGB1 ingest, streaming two-pass build vs in-memory slurp");
}

fn bench(c: &mut Criterion) {
    let dir = std::env::temp_dir().join("kecss-e14-bench");
    std::fs::create_dir_all(&dir).expect("bench scratch dir");
    print_ingest_table(&dir);

    // Criterion representatives at 10⁶ edges.
    let m = 1_000_000u64;
    let path = write_fixture(&dir, m);
    c.bench_function("e14/stream_ingest_binary_1e6_edges", |b| {
        b.iter(|| stream_ingest(black_box(&path), m).m())
    });
    c.bench_function("e14/slurp_ingest_binary_1e6_edges", |b| {
        b.iter(|| slurp_ingest(black_box(&path), m).m())
    });
    std::fs::remove_file(&path).ok();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500));
    targets = bench
}

fn main() {
    // Child-process memory probe: `cargo bench` re-executes this binary
    // with the handshake var set; answer and exit without touching
    // Criterion.
    if let Ok(spec) = std::env::var(PROBE_VAR) {
        run_probe(&spec);
        return;
    }
    benches();
}
