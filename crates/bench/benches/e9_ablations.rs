//! E9 — ablations of the design choices called out in DESIGN.md:
//!
//! * **Fragment-size target** (Section 3.2): the decomposition's `⌈√n⌉`
//!   target balances the number of segments (which drives the skeleton-level
//!   broadcasts) against the segment diameter (which drives the pipelined
//!   scans). Sweeping the target shows the per-iteration TAP round cost is
//!   minimized near `√n`, which is exactly the paper's choice.
//! * **Base tree for weighted 2-ECSS**: augmenting an MST (the paper's
//!   choice) versus augmenting a BFS tree. The BFS tree has depth `O(D)` but
//!   is weight-oblivious, so the resulting 2-ECSS is more expensive.
//! * **Weighted vs unweighted 3-ECSS** (Section 5.4): the weighted variant
//!   pays `h_MST`-deep iterations but exploits weights; the unweighted one is
//!   `O(D)`-deep but weight-oblivious.

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::{mst, RootedTree};
use kecss::decomposition::Decomposition;
use kecss::{tap, three_ecss, two_ecss};
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, Topology};
use std::time::Duration;

fn print_fragment_target_sweep() {
    let n = 1024usize;
    let graph = workloads::weighted_instance(Topology::RingOfCliques, n, 2, 50, 0xE9);
    let tree_edges = mst::kruskal(&graph);
    let tree = RootedTree::new(&graph, &tree_edges, 0);
    let d = workloads::report_diameter(&graph);
    let model = congest::CostModel::new(graph.n(), d);
    let sqrt_n = (graph.n() as f64).sqrt().ceil() as usize;

    let mut table = Table::new([
        "fragment target",
        "segments",
        "max seg diam",
        "per-iteration rounds",
        "vs target = sqrt n",
    ]);
    let reference = {
        let dec = Decomposition::build_with_target(&graph, &tree, sqrt_n);
        tap::iteration_rounds(
            &model,
            dec.num_segments() as u64,
            dec.max_segment_diameter(&graph, &tree) as u64,
        )
    };
    for target in [4usize, 8, 16, sqrt_n, 2 * sqrt_n, 4 * sqrt_n, n / 2] {
        let dec = Decomposition::build_with_target(&graph, &tree, target);
        dec.assert_invariants(&graph, &tree);
        let per_iter = tap::iteration_rounds(
            &model,
            dec.num_segments() as u64,
            dec.max_segment_diameter(&graph, &tree) as u64,
        );
        table.push([
            if target == sqrt_n {
                format!("{target} (= sqrt n)")
            } else {
                target.to_string()
            },
            dec.num_segments().to_string(),
            dec.max_segment_diameter(&graph, &tree).to_string(),
            per_iter.to_string(),
            format!("{:.2}x", per_iter as f64 / reference as f64),
        ]);
    }
    table.print(
        "E9a: fragment-size target vs per-iteration TAP round cost (n = 1024, ring of cliques)",
    );
}

fn print_base_tree_ablation() {
    let mut table = Table::new([
        "n",
        "MST+TAP weight",
        "BFS+TAP weight",
        "BFS/MST",
        "MST depth",
        "BFS depth",
    ]);
    for n in [64usize, 128, 256] {
        let graph = workloads::weighted_instance(Topology::Random, n, 2, 100, 0xE9_10 + n as u64);
        let mut rng = workloads::rng(0xE9_20 + n as u64);
        let mst_based = two_ecss::solve(&graph, &mut rng).expect("2-edge-connected instance");
        // BFS-tree base: same TAP machinery, weight-oblivious tree.
        let bfs_tree = graphs::bfs::bfs(&graph, 0).tree_edges(&graph);
        let tap_on_bfs =
            tap::solve(&graph, &bfs_tree, &mut rng).expect("2-edge-connected instance");
        let bfs_weight = graph.weight_of(&bfs_tree) + tap_on_bfs.weight;
        let mst_depth = RootedTree::new(&graph, &mst::kruskal(&graph), 0).height();
        let bfs_depth = RootedTree::new(&graph, &bfs_tree, 0).height();
        table.push([
            n.to_string(),
            mst_based.weight.to_string(),
            bfs_weight.to_string(),
            format!("{:.2}", bfs_weight as f64 / mst_based.weight as f64),
            mst_depth.to_string(),
            bfs_depth.to_string(),
        ]);
    }
    table.print("E9b: weighted 2-ECSS quality — MST base (paper) vs BFS-tree base");
}

fn print_weighted_three_ecss_ablation() {
    let mut table = Table::new([
        "n",
        "weighted 3-ECSS cost",
        "unweighted 3-ECSS cost",
        "cost ratio",
        "weighted rounds",
        "unweighted rounds",
    ]);
    for n in [24usize, 48, 96] {
        let graph = workloads::adversarial_weighted_instance(n, 3, 0xE9_30 + n as u64);
        if !graphs::connectivity::is_k_edge_connected(&graph, 3) {
            continue;
        }
        let mut rng = workloads::rng(0xE9_40 + n as u64);
        let weighted =
            three_ecss::solve_weighted(&graph, &mut rng).expect("3-edge-connected instance");
        let unweighted = three_ecss::solve(&graph, &mut rng).expect("3-edge-connected instance");
        table.push([
            n.to_string(),
            weighted.weight.to_string(),
            unweighted.weight.to_string(),
            format!(
                "{:.2}",
                unweighted.weight as f64 / weighted.weight.max(1) as f64
            ),
            weighted.ledger.total().to_string(),
            unweighted.ledger.total().to_string(),
        ]);
    }
    table.print("E9c: weighted (Sec. 5.4) vs unweighted (Thm 1.3) 3-ECSS on skewed weights");
}

fn bench(c: &mut Criterion) {
    print_fragment_target_sweep();
    print_base_tree_ablation();
    print_weighted_three_ecss_ablation();
    let graph = workloads::weighted_instance(Topology::Random, 128, 2, 100, 0xE9);
    let tree = mst::kruskal(&graph);
    c.bench_function("e9/tap_on_mst_n128", |b| {
        b.iter(|| {
            let mut rng = workloads::rng(9);
            tap::solve(&graph, &tree, &mut rng).unwrap().weight
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
