//! E10 — parallel scaling of the `kecss_runtime` engine (DESIGN.md §8).
//!
//! Three tables, one per parallelism surface:
//!
//! * **round engine** — a fully-active gossip workload
//!   ([`kecss_bench::workloads::GossipMix`]) on a ≥10k-vertex torus, stepped
//!   by the parallel round engine at 1/2/4/8 threads;
//! * **cut verification** — enumeration of the 2-cuts of a ≥10k-vertex
//!   chorded cycle through [`kecss::cuts::cuts_of_size_with`];
//! * **sweep throughput** — a grid of weighted k-ECSS instances solved
//!   concurrently by [`kecss_runtime::sweep`].
//!
//! Every configuration first asserts bit-identical results against the
//! sequential baseline (the scaling table must not be comparing different
//! computations), then reports wall time and speedup. The printed speedups
//! are *measured on the current machine*: on a single hardware thread the
//! columns stay near 1.0x and the table documents the engine's overhead
//! instead.

use criterion::{criterion_group, criterion_main, Criterion};
use graphs::generators;
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, GossipMix};
use kecss_runtime::{engine, sweep, Executor};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::{Duration, Instant};

const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Wall time of the best of `reps` runs (the minimum is the usual
/// low-variance estimator for scaling tables).
fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best: Option<(Duration, R)> = None;
    for _ in 0..reps {
        let start = Instant::now();
        let result = f();
        let elapsed = start.elapsed();
        if best.as_ref().is_none_or(|(b, _)| elapsed < *b) {
            best = Some((elapsed, result));
        }
    }
    best.expect("reps >= 1")
}

fn engine_table() {
    // 104 x 100 torus: 10,400 vertices, every one of them active in every
    // round of the gossip workload.
    let g = generators::torus(104, 100, 1);
    let net = congest::Network::new(&g);
    let rounds = 40;
    let max_rounds = 10 * rounds;

    let mut table = Table::new(["threads", "wall ms", "speedup", "rounds", "messages"]);
    let (base, reference) = best_of(2, || {
        net.run(GossipMix::programs(g.n(), rounds), max_rounds)
            .expect("sequential gossip run")
    });
    let digest = GossipMix::digest(&reference);
    for threads in THREADS {
        let exec = Executor::from_threads(threads);
        let (elapsed, outcome) = best_of(2, || {
            engine::run(&net, GossipMix::programs(g.n(), rounds), max_rounds, &exec)
                .expect("threaded gossip run")
        });
        assert_eq!(outcome.report, reference.report, "t = {threads}");
        assert_eq!(GossipMix::digest(&outcome), digest, "t = {threads}");
        table.push([
            threads.to_string(),
            elapsed.as_millis().to_string(),
            format!("{:.2}x", base.as_secs_f64() / elapsed.as_secs_f64()),
            outcome.report.rounds.to_string(),
            outcome.report.messages.to_string(),
        ]);
    }
    table.print(&format!(
        "E10a: parallel round engine, gossip on a {}-vertex torus ({} rounds)",
        g.n(),
        rounds
    ));
}

fn cuts_table() {
    // A 10,400-vertex chorded cycle: 36,400 genuine 2-cuts (see
    // `workloads::chorded_cycle`), each candidate verified by an independent
    // O(n + m) removal test.
    let g = workloads::chorded_cycle(10_400, 8);
    let h = g.full_edge_set();

    let mut table = Table::new(["threads", "wall ms", "speedup", "cuts"]);
    let (base, reference) = best_of(2, || kecss::cuts::cuts_of_size(&g, &h, 2).unwrap());
    for threads in THREADS {
        let exec = Executor::from_threads(threads);
        let (elapsed, cuts) = best_of(2, || {
            kecss::cuts::cuts_of_size_with(&g, &h, 2, &exec).unwrap()
        });
        assert_eq!(cuts, reference, "t = {threads}");
        table.push([
            threads.to_string(),
            elapsed.as_millis().to_string(),
            format!("{:.2}x", base.as_secs_f64() / elapsed.as_secs_f64()),
            cuts.len().to_string(),
        ]);
    }
    table.print(&format!(
        "E10b: parallel candidate-cut verification, {}-vertex chorded cycle",
        g.n()
    ));
}

fn sweep_table() {
    // 8 independent weighted k-ECSS cells (one per seed).
    let seeds: Vec<u64> = (0..8).collect();
    let solve_cell = |&seed: &u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let g = generators::random_weighted_k_edge_connected(96, 2, 192, 40, &mut rng);
        let sol = kecss::kecss::solve(&g, 2, &mut rng).expect("cell solves");
        (sol.weight, sol.ledger.total())
    };

    let mut table = Table::new(["threads", "wall ms", "speedup", "cells", "total rounds"]);
    let (base, reference) = best_of(2, || sweep::run(&Executor::Sequential, &seeds, solve_cell));
    for threads in THREADS {
        let exec = Executor::from_threads(threads);
        let (elapsed, rows) = best_of(2, || sweep::run(&exec, &seeds, solve_cell));
        assert_eq!(rows, reference, "t = {threads}");
        let reports: Vec<congest::RunReport> = rows
            .iter()
            .map(|&(_, rounds)| congest::RunReport {
                rounds,
                ..Default::default()
            })
            .collect();
        let total = sweep::aggregate(&reports);
        table.push([
            threads.to_string(),
            elapsed.as_millis().to_string(),
            format!("{:.2}x", base.as_secs_f64() / elapsed.as_secs_f64()),
            rows.len().to_string(),
            total.rounds.to_string(),
        ]);
    }
    table.print("E10c: concurrent workload sweep, 8 weighted k-ECSS cells (n = 96)");
}

fn bench(c: &mut Criterion) {
    engine_table();
    cuts_table();
    sweep_table();

    // Criterion guards one representative configuration against regressions:
    // the threaded engine on a smaller torus.
    let g = generators::torus(40, 40, 1);
    let net = congest::Network::new(&g);
    let exec = Executor::from_threads(4);
    c.bench_function("e10/engine_gossip_1600v_threads4", |b| {
        b.iter(|| {
            engine::run(&net, GossipMix::programs(g.n(), 20), 1000, &exec)
                .expect("gossip run")
                .report
                .messages
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
