//! E12 — service throughput: submit→result latency and jobs/sec through the
//! in-process `kecss_server` scheduler (no socket), at queue depths
//! {1, 8, 64}.
//!
//! Two workloads isolate the two costs:
//!
//! * **trivial jobs** (`submit_with(|| Ok(vec![]))`) measure the scheduler's
//!   own overhead — table insert, pool hand-off, condvar wake — i.e. the
//!   per-request floor the service adds on top of solving;
//! * **solver jobs** (`ring:20 2ecss`, the service's real job runner) measure
//!   end-to-end submit→result latency for a small but genuine request.
//!
//! The queue depth is the backpressure bound (max jobs in flight), so at
//! depth d the bench keeps exactly d jobs in flight: submit d, drain, repeat.
//! The measured table goes to EXPERIMENTS.md (E12); Criterion then times one
//! representative configuration per workload.

use criterion::{criterion_group, criterion_main, Criterion};
use kecss::cuts::EnumeratorPolicy;
use kecss_server::instance::InstanceSpec;
use kecss_server::job::{Algorithm, JobSpec};
use kecss_server::scheduler::{Outcome, Scheduler};
use std::time::{Duration, Instant};

/// The queue depths the series sweeps.
const DEPTHS: [usize; 3] = [1, 8, 64];

fn ring_spec(seed: u64) -> JobSpec {
    JobSpec {
        instance: InstanceSpec::parse("ring:20").unwrap(),
        k: 2,
        algorithm: Algorithm::TwoEcss,
        enumerator: EnumeratorPolicy::Auto,
        seed,
    }
}

/// Submits `jobs` jobs (keeping at most `depth` in flight, as backpressure
/// dictates) and waits for all of them; returns the wall time and the mean
/// submit→result latency.
fn pump(scheduler: &Scheduler, depth: usize, jobs: usize, trivial: bool) -> (Duration, Duration) {
    let started = Instant::now();
    let mut latency_total = Duration::ZERO;
    let mut submitted = 0usize;
    let mut batch: Vec<(u64, Instant)> = Vec::with_capacity(depth);
    while submitted < jobs {
        while batch.len() < depth && submitted < jobs {
            let at = Instant::now();
            let id = if trivial {
                scheduler
                    .submit_with(Box::new(|| Ok(Vec::new())))
                    .expect("batch fits the queue depth")
            } else {
                scheduler
                    .submit(ring_spec(submitted as u64))
                    .expect("batch fits the queue depth")
            };
            batch.push((id, at));
            submitted += 1;
        }
        for (id, at) in batch.drain(..) {
            match scheduler.wait(id) {
                Some(Outcome::Done(_)) => latency_total += at.elapsed(),
                other => panic!("job {id} did not complete: {other:?}"),
            }
        }
    }
    (started.elapsed(), latency_total / jobs.max(1) as u32)
}

fn print_series() {
    let mut table = kecss_bench::table::Table::new([
        "workload",
        "depth",
        "jobs",
        "wall ms",
        "jobs/s",
        "mean latency µs",
    ]);
    for &(name, trivial, jobs) in &[("trivial", true, 2000usize), ("ring:20 2ecss", false, 60)] {
        for depth in DEPTHS {
            let scheduler = Scheduler::new(2, depth);
            let (wall, latency) = pump(&scheduler, depth, jobs, trivial);
            scheduler.shutdown();
            table.push([
                name.to_string(),
                depth.to_string(),
                jobs.to_string(),
                format!("{}", wall.as_millis()),
                format!("{:.0}", jobs as f64 / wall.as_secs_f64()),
                format!("{:.1}", latency.as_secs_f64() * 1e6),
            ]);
        }
    }
    table.print("E12: in-process scheduler throughput at queue depths {1, 8, 64}");
}

fn bench(c: &mut Criterion) {
    print_series();
    // Representative configurations: scheduler overhead at depth 8, and one
    // real solver job end to end at depth 1.
    let overhead = Scheduler::new(2, 8);
    c.bench_function("e12/scheduler_trivial_depth8", |b| {
        b.iter(|| pump(&overhead, 8, 8, true))
    });
    let end_to_end = Scheduler::new(2, 1);
    c.bench_function("e12/submit_ring20_depth1", |b| {
        b.iter(|| pump(&end_to_end, 1, 1, false))
    });
    overhead.shutdown();
    end_to_end.shutdown();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
