//! E6 — Theorem 1.3: unweighted 3-ECSS in `O(D log³ n)` rounds with an
//! `O(log n)` expected approximation ratio.
//!
//! The distinguishing feature versus Theorem 1.2 is that the rounds depend on
//! the diameter but *not* on `√n` or `n`: on the random family (D ≈ 3) the
//! rounds stay nearly flat as `n` grows, while on the torus family they track
//! `D = Θ(√n)`. The table prints both, next to the `D log³ n` shape and to
//! the `Aug_3` rounds of the general algorithm on the same instance.

use criterion::{criterion_group, criterion_main, Criterion};
use kecss::kecss as kecss_alg;
use kecss::three_ecss;
use kecss_bench::table::Table;
use kecss_bench::workloads::{self, Topology};
use std::time::Duration;

fn print_series() {
    let mut table = Table::new([
        "topology",
        "n",
        "D",
        "rounds (Thm 1.3)",
        "D log^3 n",
        "ratio",
        "rounds (Thm 1.2, k=3)",
        "size",
        "3n/2",
        "size/(3n/2)",
    ]);
    for topology in [Topology::Random, Topology::Torus] {
        for n in [36usize, 64, 144, 256] {
            let graph = workloads::unweighted_instance(topology, n, 3, 0xE6 + n as u64);
            if !graphs::connectivity::is_k_edge_connected(&graph, 3) {
                continue;
            }
            let d = workloads::report_diameter(&graph);
            let mut rng = workloads::rng(0xE6_10 + n as u64);
            let sol = three_ecss::solve(&graph, &mut rng).expect("3-edge-connected instance");
            let general = kecss_alg::solve(&graph, 3, &mut rng).expect("3-edge-connected instance");
            let shape = d as f64 * (graph.n() as f64).log2().powi(3);
            let lb = (3 * graph.n()).div_ceil(2);
            table.push([
                topology.label().to_string(),
                graph.n().to_string(),
                d.to_string(),
                sol.ledger.total().to_string(),
                format!("{shape:.0}"),
                format!("{:.2}", sol.ledger.total() as f64 / shape),
                general.ledger.total().to_string(),
                sol.size.to_string(),
                lb.to_string(),
                format!("{:.2}", sol.size as f64 / lb as f64),
            ]);
        }
    }
    table.print("E6: unweighted 3-ECSS rounds and sizes (Theorem 1.3)");
}

fn bench(c: &mut Criterion) {
    print_series();
    let graph = workloads::unweighted_instance(Topology::Random, 128, 3, 0xE6);
    c.bench_function("e6/three_ecss_n128", |b| {
        b.iter(|| {
            let mut rng = workloads::rng(6);
            three_ecss::solve(&graph, &mut rng).unwrap().size
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
