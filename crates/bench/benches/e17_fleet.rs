//! E17 — fleet throughput: jobs/s through a real coordinator + worker fleet
//! (sockets, heartbeats, dispatch — everything but process isolation) as the
//! worker count grows.
//!
//! Two workloads, pumped as 16-job batches through one control connection.
//! The `ring:20 2ecss` batch is dispatch *overhead*: the solve is ~1 ms, so
//! its wall clock is the fleet plumbing itself (deterministic assignment, a
//! worker socket round trip, the 5 ms `RESULT` poll, result write-back) and
//! more workers cannot help. The `hypercube:128 k=5` batch is compute-bound
//! (~65 ms of solver work per job, 1 scheduler thread per worker), so its
//! jobs/s should scale with the worker count until dispatch — not the
//! solver — is the bottleneck; the series sweeps 1, 2 and 4 workers. On a
//! single-core host the compute-bound batch pins at serial solver
//! throughput whatever the worker count — there the interesting reading is
//! the *difference* between wall clock and `16 × solve`, the fleet's
//! overhead under load. The measured table goes to EXPERIMENTS.md (E17);
//! Criterion then times the 1- and 2-worker points plus the overhead row.

use criterion::{criterion_group, criterion_main, Criterion};
use kecss_bench::workloads::FleetFixture;
use std::time::{Duration, Instant};

const BATCH: usize = 16;
const OVERHEAD_SPEC: &str = "ring:20 2 2ecss auto";
const COMPUTE_SPEC: &str = "hypercube:128 5 kecss auto";

fn print_series() {
    let mut table = kecss_bench::table::Table::new(["workers", "jobs", "wall ms", "jobs/s"]);
    for workers in [1usize, 2, 4] {
        let mut fixture = FleetFixture::new(workers, 32);
        // One warm-up batch, then the measured one.
        fixture.batch(BATCH, COMPUTE_SPEC);
        let started = Instant::now();
        fixture.batch(BATCH, COMPUTE_SPEC);
        let wall = started.elapsed();
        table.push([
            workers.to_string(),
            BATCH.to_string(),
            format!("{}", wall.as_millis()),
            format!("{:.0}", BATCH as f64 / wall.as_secs_f64()),
        ]);
    }
    table.print("E17: fleet throughput, 16-job hypercube:128 k=5 batches vs worker count");
}

fn bench(c: &mut Criterion) {
    print_series();
    let mut ring = FleetFixture::new(1, 32);
    c.bench_function("e17/batch16_ring20_1worker", |b| {
        b.iter(|| ring.batch(BATCH, OVERHEAD_SPEC))
    });
    drop(ring);
    let mut solo = FleetFixture::new(1, 32);
    c.bench_function("e17/batch16_q7k5_1worker", |b| {
        b.iter(|| solo.batch(BATCH, COMPUTE_SPEC))
    });
    drop(solo);
    let mut duo = FleetFixture::new(2, 32);
    c.bench_function("e17/batch16_q7k5_2workers", |b| {
        b.iter(|| duo.batch(BATCH, COMPUTE_SPEC))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(Duration::from_secs(5)).warm_up_time(Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
