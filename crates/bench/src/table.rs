//! Minimal fixed-width table printing for the experiment reports.

/// A simple fixed-width text table: collect rows, then print aligned columns.
#[derive(Clone, Debug)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have as many cells as there are headers).
    ///
    /// # Panics
    ///
    /// Panics if the number of cells differs from the number of headers.
    pub fn push<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match the header"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as a string with right-aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout with a title line.
    pub fn print(&self, title: &str) {
        println!("\n== {title} ==");
        print!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["n", "rounds"]);
        t.push(["64", "1234"]);
        t.push(["1024", "56789"]);
        let s = t.render();
        assert!(s.contains("n  rounds"));
        assert!(s.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.push(["only one"]);
    }
}
