//! `kecss-bench-json` — the machine-readable bench trajectory emitter.
//!
//! Runs a quick-mode subset of the experiment workloads (E10 parallel
//! scaling's solver kernel, E11's general cut enumeration, E12's service
//! throughput, E13's compact-core parse and removal kernels) and writes
//! median nanoseconds per workload as JSON, so CI can upload a
//! `BENCH_PR<N>.json` artifact and successive PRs accumulate a comparable
//! perf trajectory.
//!
//! Usage: `kecss-bench-json [--out FILE] [--samples N]`
//!
//! The JSON is hand-rendered (no serde in the offline vendor set):
//!
//! ```json
//! {
//!   "schema": "kecss-bench-v1",
//!   "workloads": [
//!     { "name": "...", "median_ns": 123, "samples": 7 },
//!     ...
//!   ]
//! }
//! ```

use kecss::cuts::{ContractEnumerator, CutEnumerator, EnumeratorPolicy};
use kecss_runtime::Executor;
use kecss_server::instance::InstanceSpec;
use kecss_server::job::{Algorithm, JobSpec};
use kecss_server::scheduler::{Outcome, Scheduler};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// One measured workload.
struct Measurement {
    name: &'static str,
    median_ns: u128,
    samples: usize,
}

/// Times `routine` `samples` times and returns the median duration in ns.
fn median_ns<F: FnMut()>(samples: usize, mut routine: F) -> u128 {
    // One untimed warm-up iteration.
    routine();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// E10's solver kernel: a full k-ECSS solve (k = 4) on a seeded random
/// instance, sequential executor.
fn e10_kecss_solve(samples: usize) -> Measurement {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = graphs::generators::random_k_edge_connected(48, 4, 96, &mut rng);
    Measurement {
        name: "e10_parallel_scaling/kecss_k4_random48",
        median_ns: median_ns(samples, || {
            let mut solve_rng = ChaCha8Rng::seed_from_u64(7);
            let sol = kecss::kecss::solve_with_exec(&g, 4, &mut solve_rng, &Executor::Sequential)
                .expect("instance is 4-edge-connected");
            assert!(!sol.subgraph.is_empty());
        }),
        samples,
    }
}

/// E11's representative enumeration: contraction enumerator on Q_5, cut size
/// 5 (the first size beyond the exact specializations).
fn e11_contract_q5(samples: usize) -> Measurement {
    let g = graphs::generators::hypercube(5, 1);
    let h = g.full_edge_set();
    Measurement {
        name: "e11_general_cuts/contract_q5_size5",
        median_ns: median_ns(samples, || {
            let cuts = ContractEnumerator::default()
                .cuts(&g, &h, 5, 0, &Executor::Sequential)
                .expect("enumeration succeeds");
            assert!(!cuts.is_empty());
        }),
        samples,
    }
}

/// E12's service path: one real solver job through the in-process scheduler
/// (submit → pool dispatch → job runner → payload), queue depth 1.
fn e12_submit_to_result(samples: usize) -> Measurement {
    let scheduler = Scheduler::new(2, 1);
    let spec = JobSpec {
        instance: InstanceSpec::parse("ring:20").unwrap(),
        k: 2,
        algorithm: Algorithm::TwoEcss,
        enumerator: EnumeratorPolicy::Auto,
        seed: 1,
    };
    let median = median_ns(samples, || {
        let id = scheduler
            .submit(spec.clone())
            .expect("depth-1 queue is free");
        match scheduler.wait(id) {
            Some(Outcome::Done(payload)) => assert!(!payload.is_empty()),
            other => panic!("job {id} did not complete: {other:?}"),
        }
    });
    scheduler.shutdown();
    Measurement {
        name: "e12_service_throughput/submit_ring20_depth1",
        median_ns: median,
        samples,
    }
}

/// E12's scheduling floor: a batch of 8 trivial jobs through the scheduler at
/// queue depth 8 (pure dispatch overhead, no solving).
fn e12_scheduler_overhead(samples: usize) -> Measurement {
    let scheduler = Scheduler::new(2, 8);
    let median = median_ns(samples, || {
        let ids: Vec<u64> = (0..8)
            .map(|_| {
                scheduler
                    .submit_with(Box::new(|| Ok(Vec::new())))
                    .expect("batch fits the depth")
            })
            .collect();
        for id in ids {
            assert!(matches!(scheduler.wait(id), Some(Outcome::Done(_))));
        }
    });
    scheduler.shutdown();
    Measurement {
        name: "e12_service_throughput/trivial_batch8_depth8",
        median_ns: median,
        samples,
    }
}

/// E13a's parse kernels: decode a 30k-vertex / 60k-edge ring-of-cliques
/// instance from each on-disk format (the binary one is the new `KGB1`
/// fixed-stride decode; text is the seed's line parser). The fixture is
/// [`kecss_bench::workloads::e13_parse_instance`], shared with the Criterion
/// bench so the trajectory and the series measure the same workload.
fn e13_parse(samples: usize) -> (Measurement, Measurement) {
    let g = kecss_bench::workloads::e13_parse_instance(7_500);
    let mut text = Vec::new();
    graphs::io::write_text(&mut text, &g).expect("encode text");
    let text = String::from_utf8(text).expect("text is UTF-8");
    let mut binary = Vec::new();
    graphs::io::write_binary(&mut binary, &g).expect("encode binary");
    let text_m = Measurement {
        name: "e13_compact_core/parse_text_60k_edges",
        median_ns: median_ns(samples, || {
            assert_eq!(graphs::io::read_text(&text).unwrap().m(), g.m());
        }),
        samples,
    };
    let binary_m = Measurement {
        name: "e13_compact_core/parse_binary_60k_edges",
        median_ns: median_ns(samples, || {
            assert_eq!(graphs::io::read_binary(&binary).unwrap().m(), g.m());
        }),
        samples,
    };
    (text_m, binary_m)
}

/// E13b's removal kernel: 64 word-wise exact removal tests of a sparse
/// 4-connected certificate masked over a dense instance — the innermost loop
/// of cut-candidate verification, in the mask shape `Aug_k` probes. Fixture
/// shared with the Criterion bench
/// ([`kecss_bench::workloads::e13_kernel_instance`]).
fn e13_removal_kernel(samples: usize) -> Measurement {
    let (g, h) = kecss_bench::workloads::e13_kernel_instance();
    let probe: Vec<graphs::EdgeId> = h.iter().take(64).collect();
    Measurement {
        name: "e13_compact_core/removal_test_sparse_mask_64x",
        median_ns: median_ns(samples, || {
            let connected = probe
                .iter()
                .filter(|&&id| graphs::connectivity::is_connected_after_removal(&g, &h, &[id]))
                .count();
            assert_eq!(connected, probe.len(), "H is 4-edge-connected");
        }),
        samples,
    }
}

fn render_json(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"kecss-bench-v1\",\n  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"median_ns\": {}, \"samples\": {} }}{}\n",
            m.name,
            m.median_ns,
            m.samples,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH.json".to_string();
    let mut samples = 7usize;
    let mut i = 0;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--out", Some(path)) => out_path = path.clone(),
            ("--samples", Some(n)) => {
                samples = n.parse().unwrap_or_else(|_| {
                    eprintln!("error: --samples expects a number");
                    std::process::exit(2);
                })
            }
            (flag, _) => {
                eprintln!("error: unknown or valueless flag '{flag}'");
                eprintln!("usage: kecss-bench-json [--out FILE] [--samples N]");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    let (e13_text, e13_binary) = e13_parse(samples);
    let measurements = [
        e10_kecss_solve(samples),
        e11_contract_q5(samples),
        e12_submit_to_result(samples),
        e12_scheduler_overhead(samples),
        e13_text,
        e13_binary,
        e13_removal_kernel(samples),
    ];
    for m in &measurements {
        println!(
            "{:<50} median {:>14} ns   ({} samples)",
            m.name, m.median_ns, m.samples
        );
    }
    let json = render_json(&measurements);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
