//! `kecss-bench-json` — the machine-readable bench trajectory emitter.
//!
//! Runs a quick-mode subset of the experiment workloads (E10 parallel
//! scaling's solver kernel, E11's general cut enumeration, E12's service
//! throughput, E13's compact-core parse and removal kernels, E14's
//! out-of-core streaming ingest, E15's observability overhead, E16's Karger-Stein enumeration) and writes
//! median nanoseconds per workload as JSON, so CI can upload a
//! `BENCH_PR<N>.json` artifact and successive PRs accumulate a comparable
//! perf trajectory.
//!
//! Usage: `kecss-bench-json [--out FILE] [--samples N]`
//!
//! The JSON is hand-rendered (no serde in the offline vendor set):
//!
//! ```json
//! {
//!   "schema": "kecss-bench-v1",
//!   "workloads": [
//!     { "name": "...", "median_ns": 123, "samples": 7 },
//!     ...
//!   ]
//! }
//! ```
//!
//! E14's rows additionally carry a `"peak_rss_kb"` field — the `VmHWM`
//! high-water delta over the ingest (the trajectory's memory axis) — on
//! kernels exposing `/proc/self/status`; the field is simply absent
//! elsewhere, so `kecss-bench-v1` consumers stay compatible.

use kecss::cuts::{ContractEnumerator, CutEnumerator, EnumeratorPolicy};
use kecss_runtime::Executor;
use kecss_server::instance::InstanceSpec;
use kecss_server::job::{Algorithm, JobSpec};
use kecss_server::scheduler::{Outcome, Scheduler};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

/// One measured workload.
struct Measurement {
    name: &'static str,
    median_ns: u128,
    samples: usize,
    /// Peak-RSS delta over the workload (E14 only; `None` where `/proc`
    /// probing is unavailable or the axis is not meaningful).
    peak_rss_kb: Option<u64>,
}

/// Times `routine` `samples` times and returns the median duration in ns.
fn median_ns<F: FnMut()>(samples: usize, mut routine: F) -> u128 {
    // One untimed warm-up iteration.
    routine();
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let start = Instant::now();
            routine();
            start.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// E10's solver kernel: a full k-ECSS solve (k = 4) on a seeded random
/// instance, sequential executor.
fn e10_kecss_solve(samples: usize) -> Measurement {
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    let g = graphs::generators::random_k_edge_connected(48, 4, 96, &mut rng);
    Measurement {
        name: "e10_parallel_scaling/kecss_k4_random48",
        median_ns: median_ns(samples, || {
            let mut solve_rng = ChaCha8Rng::seed_from_u64(7);
            let sol = kecss::kecss::solve_with_exec(&g, 4, &mut solve_rng, &Executor::Sequential)
                .expect("instance is 4-edge-connected");
            assert!(!sol.subgraph.is_empty());
        }),
        samples,
        peak_rss_kb: None,
    }
}

/// E11's representative enumeration: contraction enumerator on Q_5, cut size
/// 5 (the first size beyond the exact specializations).
fn e11_contract_q5(samples: usize) -> Measurement {
    let g = graphs::generators::hypercube(5, 1);
    let h = g.full_edge_set();
    Measurement {
        name: "e11_general_cuts/contract_q5_size5",
        median_ns: median_ns(samples, || {
            let cuts = ContractEnumerator::default()
                .cuts(&g, &h, 5, 0, &Executor::Sequential)
                .expect("enumeration succeeds");
            assert!(!cuts.is_empty());
        }),
        samples,
        peak_rss_kb: None,
    }
}

/// E12's service path: one real solver job through the in-process scheduler
/// (submit → pool dispatch → job runner → payload), queue depth 1.
fn e12_submit_to_result(samples: usize) -> Measurement {
    let scheduler = Scheduler::new(2, 1);
    let spec = JobSpec {
        instance: InstanceSpec::parse("ring:20").unwrap(),
        k: 2,
        algorithm: Algorithm::TwoEcss,
        enumerator: EnumeratorPolicy::Auto,
        seed: 1,
    };
    let median = median_ns(samples, || {
        let id = scheduler
            .submit(spec.clone())
            .expect("depth-1 queue is free");
        match scheduler.wait(id) {
            Some(Outcome::Done(payload)) => assert!(!payload.is_empty()),
            other => panic!("job {id} did not complete: {other:?}"),
        }
    });
    scheduler.shutdown();
    Measurement {
        name: "e12_service_throughput/submit_ring20_depth1",
        median_ns: median,
        samples,
        peak_rss_kb: None,
    }
}

/// E12's scheduling floor: a batch of 8 trivial jobs through the scheduler at
/// queue depth 8 (pure dispatch overhead, no solving).
fn e12_scheduler_overhead(samples: usize) -> Measurement {
    let scheduler = Scheduler::new(2, 8);
    let median = median_ns(samples, || {
        let ids: Vec<u64> = (0..8)
            .map(|_| {
                scheduler
                    .submit_with(Box::new(|| Ok(Vec::new())))
                    .expect("batch fits the depth")
            })
            .collect();
        for id in ids {
            assert!(matches!(scheduler.wait(id), Some(Outcome::Done(_))));
        }
    });
    scheduler.shutdown();
    Measurement {
        name: "e12_service_throughput/trivial_batch8_depth8",
        median_ns: median,
        samples,
        peak_rss_kb: None,
    }
}

/// E13a's parse kernels: decode a 30k-vertex / 60k-edge ring-of-cliques
/// instance from each on-disk format (the binary one is the new `KGB1`
/// fixed-stride decode; text is the seed's line parser). The fixture is
/// [`kecss_bench::workloads::e13_parse_instance`], shared with the Criterion
/// bench so the trajectory and the series measure the same workload.
fn e13_parse(samples: usize) -> (Measurement, Measurement) {
    let g = kecss_bench::workloads::e13_parse_instance(7_500);
    let mut text = Vec::new();
    graphs::io::write_text(&mut text, &g).expect("encode text");
    let text = String::from_utf8(text).expect("text is UTF-8");
    let mut binary = Vec::new();
    graphs::io::write_binary(&mut binary, &g).expect("encode binary");
    let text_m = Measurement {
        name: "e13_compact_core/parse_text_60k_edges",
        median_ns: median_ns(samples, || {
            assert_eq!(graphs::io::read_text(&text).unwrap().m(), g.m());
        }),
        samples,
        peak_rss_kb: None,
    };
    let binary_m = Measurement {
        name: "e13_compact_core/parse_binary_60k_edges",
        median_ns: median_ns(samples, || {
            assert_eq!(graphs::io::read_binary(&binary).unwrap().m(), g.m());
        }),
        samples,
        peak_rss_kb: None,
    };
    (text_m, binary_m)
}

/// E13b's removal kernel: 64 word-wise exact removal tests of a sparse
/// 4-connected certificate masked over a dense instance — the innermost loop
/// of cut-candidate verification, in the mask shape `Aug_k` probes. Fixture
/// shared with the Criterion bench
/// ([`kecss_bench::workloads::e13_kernel_instance`]).
fn e13_removal_kernel(samples: usize) -> Measurement {
    let (g, h) = kecss_bench::workloads::e13_kernel_instance();
    let probe: Vec<graphs::EdgeId> = h.iter().take(64).collect();
    Measurement {
        name: "e13_compact_core/removal_test_sparse_mask_64x",
        median_ns: median_ns(samples, || {
            let connected = probe
                .iter()
                .filter(|&&id| graphs::connectivity::is_connected_after_removal(&g, &h, &[id]))
                .count();
            assert_eq!(connected, probe.len(), "H is 4-edge-connected");
        }),
        samples,
        peak_rss_kb: None,
    }
}

/// E15's observability overhead: the E12 submit→result path with metric
/// recording enabled vs disabled at runtime (`kecss_obs::set_enabled`). The
/// two rows bound the cost of the instrumentation on the hottest service
/// path; the acceptance budget is a ≤2% median delta (EXPERIMENTS.md E15).
fn e15_observability_overhead(samples: usize) -> (Measurement, Measurement) {
    let run_mode = |name: &'static str, enabled: bool| -> Measurement {
        let was = kecss_obs::set_enabled(enabled);
        let scheduler = Scheduler::new(2, 1);
        let spec = JobSpec {
            instance: InstanceSpec::parse("ring:20").unwrap(),
            k: 2,
            algorithm: Algorithm::TwoEcss,
            enumerator: EnumeratorPolicy::Auto,
            seed: 1,
        };
        let median = median_ns(samples, || {
            let id = scheduler
                .submit(spec.clone())
                .expect("depth-1 queue is free");
            match scheduler.wait(id) {
                Some(Outcome::Done(payload)) => assert!(!payload.is_empty()),
                other => panic!("job {id} did not complete: {other:?}"),
            }
        });
        scheduler.shutdown();
        kecss_obs::set_enabled(was);
        Measurement {
            name,
            median_ns: median,
            samples,
            peak_rss_kb: None,
        }
    };
    (
        run_mode(
            "e15_observability_overhead/submit_ring20_depth1_instrumented",
            true,
        ),
        run_mode(
            "e15_observability_overhead/submit_ring20_depth1_noop",
            false,
        ),
    )
}

/// The env-var handshake for E14's child-process memory probe.
const E14_PROBE_VAR: &str = "KECSS_BENCH_JSON_E14_PROBE";

/// E14's fixture size (10⁶ edges — the quick-mode point of the bench's
/// 10⁶–10⁷ sweep) and ingest kernels, shared between the parent
/// measurement and the probe child.
const E14_EDGES: u64 = 1_000_000;

fn e14_fixture_path() -> std::path::PathBuf {
    std::env::temp_dir().join("kecss_bench_json_e14.graphb")
}

fn e14_stream_ingest(path: &std::path::Path) -> graphs::Graph {
    let g = graphs::io::read_graph(path).expect("stream ingest");
    assert_eq!(g.m(), E14_EDGES as usize);
    g
}

fn e14_slurp_ingest(path: &std::path::Path) -> graphs::Graph {
    let bytes = std::fs::read(path).expect("read fixture");
    let g = graphs::io::read_binary(&bytes).expect("slurp ingest");
    assert_eq!(g.m(), E14_EDGES as usize);
    // Freeze the CSR so both modes deliver the same end state (the
    // streamed graph arrives frozen by construction).
    g.freeze();
    g
}

/// E14's out-of-core ingest: stream a 10⁶-edge synthetic `KGB1` file through
/// the two-pass builder vs slurping it into memory first. Wall time is the
/// in-process median; the `peak_rss_kb` axis comes from one fresh child
/// process per mode (re-executing this binary with [`E14_PROBE_VAR`] set),
/// since a long-lived parent retains heap from earlier workloads and would
/// understate the peak. Fixture shared with `benches/e14_out_of_core.rs`
/// via [`kecss_bench::workloads::e14_write_synthetic_kgb1`].
fn e14_out_of_core(samples: usize) -> (Measurement, Measurement) {
    use std::io::Write;
    let path = e14_fixture_path();
    let file = std::fs::File::create(&path).expect("create e14 fixture");
    let mut sink = std::io::BufWriter::with_capacity(1 << 20, file);
    kecss_bench::workloads::e14_write_synthetic_kgb1(
        &mut sink,
        (E14_EDGES / 5) as usize,
        E14_EDGES,
    )
    .expect("write e14 fixture");
    sink.flush().expect("flush e14 fixture");

    let measure = |name: &'static str,
                   mode: &str,
                   ingest: &dyn Fn(&std::path::Path) -> graphs::Graph|
     -> Measurement {
        let probe = kecss_bench::rss::spawn_child_probe(E14_PROBE_VAR, mode);
        Measurement {
            name,
            median_ns: median_ns(samples, || {
                assert_eq!(ingest(&path).m(), E14_EDGES as usize);
            }),
            samples,
            peak_rss_kb: probe.map(|(peak, _live)| peak),
        }
    };
    let stream = measure(
        "e14_out_of_core/stream_ingest_binary_1e6_edges",
        "stream",
        &|p| e14_stream_ingest(p),
    );
    let slurp = measure(
        "e14_out_of_core/slurp_ingest_binary_1e6_edges",
        "slurp",
        &|p| e14_slurp_ingest(p),
    );
    std::fs::remove_file(&path).ok();
    (stream, slurp)
}

/// Child side of the E14 probe: ingest the fixture the parent just wrote
/// and report the resident-set deltas.
/// E16's headline pair: the pooled flat contraction baseline vs the
/// recursive Karger–Stein enumerator on the `Q_5` size-5 workload (the same
/// enumeration `e11_general_cuts/contract_q5_size5` times — that row is kept
/// unchanged for trajectory continuity; the ISSUE 8 ≥ 5× target is the ratio
/// of these two rows).
fn e16_karger_stein(samples: usize) -> (Measurement, Measurement) {
    use kecss::cuts::KargerSteinEnumerator;
    let g = graphs::generators::hypercube(5, 1);
    let h = g.full_edge_set();
    let flat = Measurement {
        name: "e16_karger_stein/contract_q5_size5",
        median_ns: median_ns(samples, || {
            let cuts = ContractEnumerator::default()
                .cuts(&g, &h, 5, 0, &Executor::Sequential)
                .expect("enumeration succeeds");
            assert!(!cuts.is_empty());
        }),
        samples,
        peak_rss_kb: None,
    };
    let ks = Measurement {
        name: "e16_karger_stein/ks_q5_size5",
        median_ns: median_ns(samples, || {
            let cuts = KargerSteinEnumerator::default()
                .cuts(&g, &h, 5, 0, &Executor::Sequential)
                .expect("enumeration succeeds");
            assert!(!cuts.is_empty());
        }),
        samples,
        peak_rss_kb: None,
    };
    (flat, ks)
}

/// E16's scale point: Karger–Stein on `Q_8` size-8 — the `k = 8` regime the
/// flat scheme needs seconds per enumeration for (too slow to put in this
/// quick-mode emitter; its one-shot time is in the `e16_karger_stein` bench
/// table and EXPERIMENTS.md E16).
fn e16_ks_q8(samples: usize) -> Measurement {
    use kecss::cuts::KargerSteinEnumerator;
    let g = graphs::generators::hypercube(8, 1);
    let h = g.full_edge_set();
    Measurement {
        name: "e16_karger_stein/ks_q8_size8",
        median_ns: median_ns(samples, || {
            let cuts = KargerSteinEnumerator::default()
                .cuts(&g, &h, 8, 0, &Executor::Sequential)
                .expect("enumeration succeeds");
            assert!(!cuts.is_empty());
        }),
        samples,
        peak_rss_kb: None,
    }
}

/// E17's fleet throughput pair: a 16-job `ring:20 2ecss` batch through an
/// in-process coordinator fleet at 1 worker vs 2 workers (jobs/s is
/// `16 / median`; the worker-count scaling table is in the `e17_fleet` bench
/// and EXPERIMENTS.md E17). The fixture is built once per worker count so
/// the measured routine is submit→drain, not registration.
fn e17_fleet(samples: usize) -> (Measurement, Measurement, Measurement) {
    let measure = |name: &'static str, workers: usize, spec: &str| -> Measurement {
        let mut fixture = kecss_bench::workloads::FleetFixture::new(workers, 32);
        Measurement {
            name,
            median_ns: median_ns(samples, || fixture.batch(16, spec)),
            samples,
            peak_rss_kb: None,
        }
    };
    (
        // Dispatch overhead: the solve is ~1 ms, so this row is the fleet
        // plumbing itself (assignment, worker round trip, result write-back).
        measure(
            "e17_fleet/batch16_ring20_1worker",
            1,
            "ring:20 2 2ecss auto",
        ),
        // Compute-bound scaling pair: ~65 ms of solver work per job, so the
        // 2-worker median should approach half the 1-worker one.
        measure(
            "e17_fleet/batch16_q7k5_1worker",
            1,
            "hypercube:128 5 kecss auto",
        ),
        measure(
            "e17_fleet/batch16_q7k5_2workers",
            2,
            "hypercube:128 5 kecss auto",
        ),
    )
}

/// E18's front-end rows: submit→result through the readiness-loop socket
/// front-end at queue depths {1, 64, 1024}, binary frame mode, plus the
/// text-mode depth-1 twin for the wire-format comparison. Depth 1 is the
/// bare round trip (`median_ns` is one job); the deeper rows pipeline a
/// whole window and report per-job cost (`median_ns` = batch median /
/// batch size), so every row is comparable to E12's per-job latencies.
fn e18_front_end(samples: usize) -> (Measurement, Measurement, Measurement, Measurement) {
    const SPEC: &str = "ring:20 2 2ecss auto";
    let depth_row = |name: &'static str, binary: bool, depth: usize| -> Measurement {
        let mut fixture = kecss_bench::workloads::FrontEndFixture::new(binary, depth);
        let jobs = depth; // one full window per timed iteration
        Measurement {
            name,
            median_ns: median_ns(samples, || fixture.pump(jobs, depth, SPEC)) / jobs as u128,
            samples,
            peak_rss_kb: None,
        }
    };
    (
        depth_row("e18_front_end/submit_ring20_binary_depth1", true, 1),
        depth_row("e18_front_end/submit_ring20_binary_depth64", true, 64),
        depth_row("e18_front_end/submit_ring20_binary_depth1024", true, 1024),
        depth_row("e18_front_end/submit_ring20_text_depth1", false, 1),
    )
}

fn run_e14_probe(mode: &str) {
    let path = e14_fixture_path();
    match mode {
        "stream" => kecss_bench::rss::report_child_probe(|| e14_stream_ingest(&path)),
        "slurp" => kecss_bench::rss::report_child_probe(|| e14_slurp_ingest(&path)),
        other => panic!("unknown probe mode '{other}'"),
    }
}

fn render_json(measurements: &[Measurement]) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"schema\": \"kecss-bench-v1\",\n  \"workloads\": [\n");
    for (i, m) in measurements.iter().enumerate() {
        let rss = match m.peak_rss_kb {
            Some(kb) => format!(", \"peak_rss_kb\": {kb}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{ \"name\": \"{}\", \"median_ns\": {}, \"samples\": {}{} }}{}\n",
            m.name,
            m.median_ns,
            m.samples,
            rss,
            if i + 1 < measurements.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

fn main() {
    // Child-process memory probe for E14: answer and exit.
    if let Ok(mode) = std::env::var(E14_PROBE_VAR) {
        run_e14_probe(&mode);
        return;
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut out_path = "BENCH.json".to_string();
    let mut samples = 7usize;
    let mut i = 0;
    while i < args.len() {
        match (args[i].as_str(), args.get(i + 1)) {
            ("--out", Some(path)) => out_path = path.clone(),
            ("--samples", Some(n)) => {
                samples = n.parse().unwrap_or_else(|_| {
                    eprintln!("error: --samples expects a number");
                    std::process::exit(2);
                })
            }
            (flag, _) => {
                eprintln!("error: unknown or valueless flag '{flag}'");
                eprintln!("usage: kecss-bench-json [--out FILE] [--samples N]");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    let (e13_text, e13_binary) = e13_parse(samples);
    let (e14_stream, e14_slurp) = e14_out_of_core(samples);
    let (e15_instrumented, e15_noop) = e15_observability_overhead(samples);
    let (e16_flat, e16_ks) = e16_karger_stein(samples);
    let (e17_ring, e17_solo, e17_duo) = e17_fleet(samples);
    let (e18_b1, e18_b64, e18_b1024, e18_t1) = e18_front_end(samples);
    let measurements = [
        e10_kecss_solve(samples),
        e11_contract_q5(samples),
        e12_submit_to_result(samples),
        e12_scheduler_overhead(samples),
        e13_text,
        e13_binary,
        e13_removal_kernel(samples),
        e14_stream,
        e14_slurp,
        e15_instrumented,
        e15_noop,
        e16_flat,
        e16_ks,
        e16_ks_q8(samples),
        e17_ring,
        e17_solo,
        e17_duo,
        e18_b1,
        e18_b64,
        e18_b1024,
        e18_t1,
    ];
    for m in &measurements {
        let rss = match m.peak_rss_kb {
            Some(kb) => format!("   peak {kb} KiB"),
            None => String::new(),
        };
        println!(
            "{:<50} median {:>14} ns   ({} samples){rss}",
            m.name, m.median_ns, m.samples
        );
    }
    let json = render_json(&measurements);
    std::fs::write(&out_path, &json).unwrap_or_else(|e| {
        eprintln!("error: cannot write {out_path}: {e}");
        std::process::exit(1);
    });
    println!("wrote {out_path}");
}
