//! Instance families used by the experiments.
//!
//! The paper has no benchmark suite of its own, so the workloads are chosen to
//! stress the two parameters its round complexities depend on — the vertex
//! count `n` and the hop diameter `D` — independently:
//!
//! * [`Topology::Random`] — random k-edge-connected graphs with small
//!   diameter (the "well-connected data-centre" regime);
//! * [`Topology::RingOfCliques`] — high-diameter backbones, the regime where
//!   `O((D + √n) log² n)` separates from the `O(h_MST + √n)` baseline of [1];
//! * [`Topology::Torus`] — bounded-degree, `D = Θ(√n)` instances.

use graphs::{generators, Graph, Weight};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The instance families used across the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Random k-edge-connected graph (Harary base + random extra edges):
    /// small diameter.
    Random,
    /// Ring of cliques: diameter `Θ(n / clique)`, 2-edge-connected or better.
    RingOfCliques,
    /// Torus grid: 4-edge-connected, diameter `Θ(√n)`.
    Torus,
}

impl Topology {
    /// A short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Topology::Random => "random",
            Topology::RingOfCliques => "ring-of-cliques",
            Topology::Torus => "torus",
        }
    }
}

/// A weighted k-edge-connected instance of roughly `n` vertices (the torus
/// and ring families round `n` to their natural grid sizes).
///
/// Weights are uniform in `1..=max_weight`; `seed` makes instances
/// reproducible across benchmark runs.
pub fn weighted_instance(
    topology: Topology,
    n: usize,
    k: usize,
    max_weight: Weight,
    seed: u64,
) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graph = match topology {
        Topology::Random => generators::random_k_edge_connected(n, k, 2 * n, &mut rng),
        Topology::RingOfCliques => {
            let clique = (k + 2).max(4);
            let cliques = (n / clique).max(3);
            generators::ring_of_cliques(cliques, clique, k.max(2), 1)
        }
        Topology::Torus => {
            let side = (n as f64).sqrt().round().max(3.0) as usize;
            generators::torus(side, side, 1)
        }
    };
    if max_weight > 1 {
        generators::randomize_weights(&mut graph, max_weight, &mut rng);
    }
    graph
}

/// An unweighted k-edge-connected instance (unit weights).
pub fn unweighted_instance(topology: Topology, n: usize, k: usize, seed: u64) -> Graph {
    weighted_instance(topology, n, k, 1, seed)
}

/// A weighted instance on which the unweighted sparse-certificate baseline is
/// provably poor: a cheap k-edge-connected "core" (weight 1 edges) hidden
/// among expensive decoy edges with *smaller edge ids*, so a weight-oblivious
/// forest-growing baseline keeps picking expensive edges.
pub fn adversarial_weighted_instance(n: usize, k: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Expensive decoys first (small edge ids): a random connected sparse graph.
    let decoys = generators::random_connected(n, 2.0 / n as f64, &mut rng);
    let mut g = Graph::new(n);
    for (_, e) in decoys.edges() {
        g.add_edge(e.u, e.v, 1_000);
    }
    // The cheap core: a relabelled Harary graph with weight 1. Edges that
    // coincide with a decoy are added as (cheap) parallel edges so the core is
    // always fully present and feasible on its own.
    let core = generators::random_k_edge_connected(n, k, 0, &mut rng);
    for (_, e) in core.edges() {
        g.add_edge(e.u, e.v, 1);
    }
    g
}

/// The exact hop diameter for small graphs, or the 2-approximation for larger
/// ones (keeps report generation cheap).
pub fn report_diameter(graph: &Graph) -> usize {
    if graph.n() <= 512 {
        graphs::bfs::diameter(graph).unwrap_or(graph.n())
    } else {
        graphs::bfs::approx_diameter(graph).unwrap_or(graph.n())
    }
}

/// Deterministic per-experiment RNG.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Draws a fresh sub-seed (convenience for sweeps that need one seed per
/// configuration).
pub fn subseed<R: Rng>(rng: &mut R) -> u64 {
    rng.gen()
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::connectivity;

    #[test]
    fn weighted_instances_meet_their_connectivity_promise() {
        for topology in [Topology::Random, Topology::RingOfCliques, Topology::Torus] {
            let g = weighted_instance(topology, 48, 2, 20, 1);
            assert!(
                connectivity::is_k_edge_connected(&g, 2),
                "{} instance must be 2-edge-connected",
                topology.label()
            );
        }
    }

    #[test]
    fn random_instances_support_higher_k() {
        let g = weighted_instance(Topology::Random, 32, 4, 10, 2);
        assert!(connectivity::is_k_edge_connected(&g, 4));
    }

    #[test]
    fn ring_instances_have_large_diameter() {
        let g = unweighted_instance(Topology::RingOfCliques, 96, 2, 3);
        let d = report_diameter(&g);
        assert!(d >= 6, "ring of cliques should be high-diameter, got {d}");
    }

    #[test]
    fn adversarial_instance_is_k_connected_and_has_cheap_core() {
        let g = adversarial_weighted_instance(24, 2, 4);
        assert!(connectivity::is_k_edge_connected(&g, 2));
        let cheap: usize = g.edges().filter(|(_, e)| e.weight == 1).count();
        assert!(cheap >= 24, "the cheap core must be present");
    }

    #[test]
    fn instances_are_reproducible() {
        let a = weighted_instance(Topology::Random, 40, 3, 50, 7);
        let b = weighted_instance(Topology::Random, 40, 3, 50, 7);
        assert_eq!(a, b);
    }
}
