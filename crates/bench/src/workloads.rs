//! Instance families used by the experiments.
//!
//! The paper has no benchmark suite of its own, so the workloads are chosen to
//! stress the two parameters its round complexities depend on — the vertex
//! count `n` and the hop diameter `D` — independently:
//!
//! * [`Topology::Random`] — random k-edge-connected graphs with small
//!   diameter (the "well-connected data-centre" regime);
//! * [`Topology::RingOfCliques`] — high-diameter backbones, the regime where
//!   `O((D + √n) log² n)` separates from the `O(h_MST + √n)` baseline of [1];
//! * [`Topology::Torus`] — bounded-degree, `D = Θ(√n)` instances.

use congest::{Incoming, Message, NodeContext, NodeProgram, Outcome, Outgoing, StepResult};
use graphs::{generators, EdgeSet, Graph, Weight};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The instance families used across the experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Random k-edge-connected graph (Harary base + random extra edges):
    /// small diameter.
    Random,
    /// Ring of cliques: diameter `Θ(n / clique)`, 2-edge-connected or better.
    RingOfCliques,
    /// Torus grid: 4-edge-connected, diameter `Θ(√n)`.
    Torus,
}

impl Topology {
    /// A short label for report tables.
    pub fn label(self) -> &'static str {
        match self {
            Topology::Random => "random",
            Topology::RingOfCliques => "ring-of-cliques",
            Topology::Torus => "torus",
        }
    }
}

/// A weighted k-edge-connected instance of roughly `n` vertices (the torus
/// and ring families round `n` to their natural grid sizes).
///
/// Weights are uniform in `1..=max_weight`; `seed` makes instances
/// reproducible across benchmark runs.
pub fn weighted_instance(
    topology: Topology,
    n: usize,
    k: usize,
    max_weight: Weight,
    seed: u64,
) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut graph = match topology {
        Topology::Random => generators::random_k_edge_connected(n, k, 2 * n, &mut rng),
        Topology::RingOfCliques => {
            let clique = (k + 2).max(4);
            let cliques = (n / clique).max(3);
            generators::ring_of_cliques(cliques, clique, k.max(2), 1)
        }
        Topology::Torus => {
            let side = (n as f64).sqrt().round().max(3.0) as usize;
            generators::torus(side, side, 1)
        }
    };
    if max_weight > 1 {
        generators::randomize_weights(&mut graph, max_weight, &mut rng);
    }
    graph
}

/// An unweighted k-edge-connected instance (unit weights).
pub fn unweighted_instance(topology: Topology, n: usize, k: usize, seed: u64) -> Graph {
    weighted_instance(topology, n, k, 1, seed)
}

/// A weighted instance on which the unweighted sparse-certificate baseline is
/// provably poor: a cheap k-edge-connected "core" (weight 1 edges) hidden
/// among expensive decoy edges with *smaller edge ids*, so a weight-oblivious
/// forest-growing baseline keeps picking expensive edges.
pub fn adversarial_weighted_instance(n: usize, k: usize, seed: u64) -> Graph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Expensive decoys first (small edge ids): a random connected sparse graph.
    let decoys = generators::random_connected(n, 2.0 / n as f64, &mut rng);
    let mut g = Graph::new(n);
    for (_, e) in decoys.edges() {
        g.add_edge(e.u, e.v, 1_000);
    }
    // The cheap core: a relabelled Harary graph with weight 1. Edges that
    // coincide with a decoy are added as (cheap) parallel edges so the core is
    // always fully present and feasible on its own.
    let core = generators::random_k_edge_connected(n, k, 0, &mut rng);
    for (_, e) in core.edges() {
        g.add_edge(e.u, e.v, 1);
    }
    g
}

/// A cycle of `n` vertices with a chord over every run of `stride`
/// consecutive cycle edges (so `n` must be a multiple of `stride`).
///
/// Two cycle edges form a 2-cut iff they lie under the *same* chord, giving
/// exactly `(n / stride) · stride · (stride - 1) / 2` genuine 2-cuts — a
/// large, known population of independent removal tests, which makes this
/// the E10 stress case for parallel candidate-cut verification.
///
/// # Panics
///
/// Panics if `stride < 2` or `n` is not a multiple of `stride` at least
/// `3 * stride`.
pub fn chorded_cycle(n: usize, stride: usize) -> Graph {
    assert!(stride >= 2, "stride must be at least 2");
    assert!(
        n >= 3 * stride && n.is_multiple_of(stride),
        "n must be a multiple of stride, at least 3 * stride"
    );
    let mut g = Graph::new(n);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n, 1);
    }
    for anchor in (0..n).step_by(stride) {
        g.add_edge(anchor, (anchor + stride) % n, 1);
    }
    g
}

/// A fully-active BSP-style stress program for the parallel-scaling
/// experiment (E10): every vertex mixes the values received from all its
/// neighbors into its own and re-broadcasts, for a fixed number of rounds.
///
/// Unlike the paper's programs (whose active frontier is often a thin wave),
/// *every* vertex does work in *every* round, which is the regime where the
/// per-round parallelism of the `kecss_runtime` engine has something to chew
/// on. The mixing is pure integer arithmetic on the sorted inbox, so the
/// result is deterministic and the engine's bit-identical guarantee can be
/// checked cheaply via [`GossipMix::digest`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GossipMix {
    value: u64,
    budget: u64,
}

impl GossipMix {
    /// One program per vertex, each seeded with a distinct mixed value,
    /// running for exactly `rounds` rounds.
    pub fn programs(n: usize, rounds: u64) -> Vec<Self> {
        (0..n as u64)
            .map(|v| GossipMix {
                // SplitMix64-style seeding so neighbors start uncorrelated.
                value: (v.wrapping_add(0x9E37_79B9_7F4A_7C15)).wrapping_mul(0xBF58_476D_1CE4_E5B9),
                budget: rounds,
            })
            .collect()
    }

    /// Order-sensitive fold of all final vertex values: two runs delivered
    /// the same states iff their digests match.
    pub fn digest(outcome: &Outcome<Self>) -> u64 {
        outcome
            .nodes
            .iter()
            .fold(0u64, |acc, p| acc.rotate_left(5) ^ p.value)
    }

    fn broadcast(&self, ctx: &NodeContext) -> Vec<Outgoing> {
        ctx.neighbors
            .iter()
            .map(|&(v, _, _)| Outgoing::new(v, Message::from(self.value)))
            .collect()
    }
}

impl NodeProgram for GossipMix {
    fn init(&mut self, ctx: &NodeContext) -> StepResult {
        if self.budget == 0 {
            return StepResult::halt();
        }
        StepResult::send(self.broadcast(ctx))
    }

    fn step(&mut self, ctx: &NodeContext, round: u64, inbox: &[Incoming]) -> StepResult {
        let mut acc = self.value;
        for m in inbox {
            acc = acc.rotate_left(7) ^ m.message.word(0).unwrap_or(0);
        }
        self.value = acc.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(round);
        if round >= self.budget {
            StepResult::halt()
        } else {
            StepResult::send(self.broadcast(ctx))
        }
    }
}

/// The exact hop diameter for small graphs, or the 2-approximation for larger
/// ones (keeps report generation cheap).
pub fn report_diameter(graph: &Graph) -> usize {
    if graph.n() <= 512 {
        graphs::bfs::diameter(graph).unwrap_or(graph.n())
    } else {
        graphs::bfs::approx_diameter(graph).unwrap_or(graph.n())
    }
}

/// E13's parse-throughput fixture: a ring-of-cliques instance with `2 m`
/// edges per `m` requested clique count (4-vertex cliques, 2 links). Shared
/// by `benches/e13_compact_core.rs` and `kecss-bench-json` so the Criterion
/// series and the `BENCH_PR<N>.json` trajectory measure the same workload.
pub fn e13_parse_instance(cliques: usize) -> Graph {
    generators::ring_of_cliques(cliques, 4, 2, 1)
}

/// E13's removal-kernel fixture: a dense 4-edge-connected random graph
/// (n = 2000, m = 64 000) with a sparse 4-connected certificate `H` (union
/// of 4 maximal spanning forests, ~8 k edges ≈ 12% of the universe) — the
/// mask shape the `Aug_k` cut-verification loop actually probes. Shared by
/// the E13 bench and `kecss-bench-json` (same seed, same sizes) so both
/// report the same kernel.
pub fn e13_kernel_instance() -> (Graph, EdgeSet) {
    let mut rng = ChaCha8Rng::seed_from_u64(13);
    let g = generators::random_k_edge_connected(2_000, 4, 60_000, &mut rng);
    let mut remaining = g.full_edge_set();
    let mut h = g.empty_edge_set();
    for _ in 0..4 {
        let forest = graphs::mst::maximal_spanning_forest_in(&g, &remaining);
        h.union_with(&forest);
        remaining.difference_with(&forest);
    }
    (g, h)
}

/// E14's ingest fixture: streams a synthetic `KGB1` instance of `n` vertices
/// and `m` edges straight to `sink` — header, then `m` fixed-stride records —
/// without ever materializing a [`Graph`] or an edge list. This is what lets
/// the out-of-core bench write 10⁷-edge files whose ingest peak-RSS can be
/// attributed entirely to the *reader* under test.
///
/// Edge `i` connects `u = i mod n` to `v = (u + s) mod n` with stride
/// `s = 1 + (i / n) mod (n - 1)`, so endpoints are always distinct and in
/// range, and every decoded record is a pure function of its edge id (easy
/// to spot-check after a streamed build).
///
/// # Panics
///
/// Panics if `n < 3` or `n` exceeds the format's `u32` vertex-id range.
///
/// # Errors
///
/// Propagates I/O errors from `sink`.
pub fn e14_write_synthetic_kgb1<W: std::io::Write>(
    sink: &mut W,
    n: usize,
    m: u64,
) -> std::io::Result<()> {
    assert!(n >= 3, "the synthetic family needs n >= 3");
    assert!(u32::try_from(n).is_ok(), "KGB1 vertex ids are u32");
    sink.write_all(&graphs::io::BINARY_MAGIC)?;
    sink.write_all(&(n as u64).to_le_bytes())?;
    sink.write_all(&m.to_le_bytes())?;
    let n = n as u64;
    let mut record = [0u8; 16];
    for i in 0..m {
        let u = i % n;
        let stride = 1 + (i / n) % (n - 1);
        let v = (u + stride) % n;
        let weight = 1 + i % 97;
        record[0..4].copy_from_slice(&(u as u32).to_le_bytes());
        record[4..8].copy_from_slice(&(v as u32).to_le_bytes());
        record[8..16].copy_from_slice(&weight.to_le_bytes());
        sink.write_all(&record)?;
    }
    Ok(())
}

/// Deterministic per-experiment RNG.
pub fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Draws a fresh sub-seed (convenience for sweeps that need one seed per
/// configuration).
pub fn subseed<R: Rng>(rng: &mut R) -> u64 {
    rng.gen()
}

/// E17's fixture: a live in-process fleet — one coordinator plus `workers`
/// registered workers on ephemeral ports — that [`FleetFixture::batch`] pumps
/// job batches through. Built once per configuration so the measured routine
/// is the submit→drain path, not fleet setup (registration needs a heartbeat
/// round trip, which would dwarf small batches).
pub struct FleetFixture {
    coordinator: Option<kecss_server::CoordinatorHandle>,
    workers: Vec<kecss_server::WorkerHandle>,
    client: kecss_server::client::Client,
}

impl FleetFixture {
    /// Spawns the fleet and blocks until every worker has registered.
    ///
    /// # Panics
    ///
    /// Panics if binding, registration, or the control connection fails.
    pub fn new(workers: usize, queue_depth: usize) -> FleetFixture {
        use std::time::Duration;
        let coordinator = kecss_server::Coordinator::bind(&kecss_server::CoordinatorConfig {
            addr: "127.0.0.1:0".into(),
            queue_depth,
            ..kecss_server::CoordinatorConfig::default()
        })
        .expect("bind coordinator")
        .spawn();
        let addr = coordinator.addr().to_string();
        let handles: Vec<_> = (0..workers.max(1))
            .map(|i| {
                kecss_server::Worker::bind(&kecss_server::WorkerConfig {
                    addr: "127.0.0.1:0".into(),
                    coordinator: addr.clone(),
                    worker_id: format!("bench-{i}"),
                    threads: 1,
                    queue_depth,
                    heartbeat_interval: Duration::from_millis(50),
                    ..kecss_server::WorkerConfig::default()
                })
                .expect("bind worker")
                .spawn()
            })
            .collect();
        kecss_server::client::wait_for_live_workers(
            &addr,
            handles.len(),
            Duration::from_millis(10),
            Duration::from_secs(30),
        )
        .expect("workers register");
        let client = kecss_server::client::Client::connect(&addr).expect("connect control client");
        FleetFixture {
            coordinator: Some(coordinator),
            workers: handles,
            client,
        }
    }

    /// Submits `jobs` copies of `spec` (a SUBMIT body without the seed,
    /// e.g. `ring:20 2 2ecss auto`; seeds run `0..jobs`) and waits for
    /// every payload. The batch must fit the coordinator's queue depth.
    ///
    /// # Panics
    ///
    /// Panics on any protocol error or a missing/failed result.
    pub fn batch(&mut self, jobs: usize, spec: &str) {
        use kecss_server::protocol::Request;
        let ids: Vec<u64> = (0..jobs)
            .map(|seed| {
                let line = format!("SUBMIT {spec} {seed}");
                let Request::Submit(spec) = Request::parse(&line).expect("well-formed line") else {
                    unreachable!()
                };
                self.client
                    .submit(&spec)
                    .expect("submit succeeds")
                    .expect("batch fits the queue depth")
            })
            .collect();
        for id in ids {
            let payload = self
                .client
                .wait_result(
                    id,
                    std::time::Duration::from_millis(2),
                    std::time::Duration::from_secs(300),
                )
                .expect("job completes");
            assert!(!payload.is_empty());
        }
    }
}

/// E18's fixture: one standalone server on the readiness loop plus a single
/// persistent client connection in either wire mode. [`FrontEndFixture::pump`]
/// drives submit→result traffic through the real socket front-end (framing,
/// the event loop, push-on-complete delivery), which is exactly the slice of
/// the stack E12's in-process scheduler rows leave out.
pub struct FrontEndFixture {
    server: Option<kecss_server::ServerHandle>,
    client: kecss_server::client::Client,
}

impl FrontEndFixture {
    /// Spawns the server (ephemeral port, one scheduler worker) and connects
    /// one client in the requested wire mode.
    ///
    /// # Panics
    ///
    /// Panics if binding or connecting fails.
    pub fn new(binary: bool, queue_depth: usize) -> FrontEndFixture {
        let server = kecss_server::Server::bind(&kecss_server::ServerConfig {
            addr: "127.0.0.1:0".into(),
            threads: 1,
            queue_depth,
            ..kecss_server::ServerConfig::default()
        })
        .expect("bind server")
        .spawn();
        let addr = server.addr().to_string();
        let client = if binary {
            kecss_server::client::Client::connect_binary(&addr).expect("connect binary client")
        } else {
            kecss_server::client::Client::connect(&addr).expect("connect text client")
        };
        FrontEndFixture {
            server: Some(server),
            client,
        }
    }

    /// Pumps `jobs` copies of `spec` (a SUBMIT body without the seed; seeds
    /// run `0..jobs`) keeping at most `depth` in flight: submit a window,
    /// drain it via blocking `RESULT WAIT`, repeat. At depth 1 this is the
    /// pure submit→result round trip — one wait-flagged request per job in
    /// binary mode ([`kecss_server::client::Client::submit_wait`]); larger
    /// depths overlap solver work with framing and measure pipelined per-job
    /// cost.
    ///
    /// # Panics
    ///
    /// Panics on any protocol error or a missing/failed result.
    pub fn pump(&mut self, jobs: usize, depth: usize, spec: &str) {
        use kecss_server::protocol::Request;
        let depth = depth.max(1);
        let parse = |seed: usize| {
            let line = format!("SUBMIT {spec} {seed}");
            let Request::Submit(spec) = Request::parse(&line).expect("well-formed line") else {
                unreachable!()
            };
            spec
        };
        if depth == 1 {
            for seed in 0..jobs {
                let (_, payload) = self
                    .client
                    .submit_wait(&parse(seed), std::time::Duration::from_secs(300))
                    .expect("submit-and-wait succeeds")
                    .expect("a lone job fits the queue depth");
                assert!(!payload.is_empty());
            }
            return;
        }
        let mut submitted = 0usize;
        while submitted < jobs {
            let window = depth.min(jobs - submitted);
            let ids: Vec<u64> = (0..window)
                .map(|offset| {
                    self.client
                        .submit(&parse(submitted + offset))
                        .expect("submit succeeds")
                        .expect("window fits the queue depth")
                })
                .collect();
            submitted += window;
            for id in ids {
                let payload = self
                    .client
                    .wait_result(
                        id,
                        std::time::Duration::from_millis(1),
                        std::time::Duration::from_secs(300),
                    )
                    .expect("job completes");
                assert!(!payload.is_empty());
            }
        }
    }
}

impl Drop for FrontEndFixture {
    fn drop(&mut self) {
        let _ = self.client.shutdown();
        if let Some(server) = self.server.take() {
            server.join();
        }
    }
}

impl Drop for FleetFixture {
    fn drop(&mut self) {
        let _ = self.client.shutdown();
        if let Some(coordinator) = self.coordinator.take() {
            coordinator.join();
        }
        for worker in self.workers.drain(..) {
            if let Ok(mut c) = kecss_server::client::Client::connect(&worker.addr().to_string()) {
                let _ = c.shutdown();
            }
            worker.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphs::connectivity;

    #[test]
    fn weighted_instances_meet_their_connectivity_promise() {
        for topology in [Topology::Random, Topology::RingOfCliques, Topology::Torus] {
            let g = weighted_instance(topology, 48, 2, 20, 1);
            assert!(
                connectivity::is_k_edge_connected(&g, 2),
                "{} instance must be 2-edge-connected",
                topology.label()
            );
        }
    }

    #[test]
    fn random_instances_support_higher_k() {
        let g = weighted_instance(Topology::Random, 32, 4, 10, 2);
        assert!(connectivity::is_k_edge_connected(&g, 4));
    }

    #[test]
    fn ring_instances_have_large_diameter() {
        let g = unweighted_instance(Topology::RingOfCliques, 96, 2, 3);
        let d = report_diameter(&g);
        assert!(d >= 6, "ring of cliques should be high-diameter, got {d}");
    }

    #[test]
    fn adversarial_instance_is_k_connected_and_has_cheap_core() {
        let g = adversarial_weighted_instance(24, 2, 4);
        assert!(connectivity::is_k_edge_connected(&g, 2));
        let cheap: usize = g.edges().filter(|(_, e)| e.weight == 1).count();
        assert!(cheap >= 24, "the cheap core must be present");
    }

    #[test]
    fn chorded_cycle_has_the_predicted_cut_population() {
        let n = 24;
        let stride = 4;
        let g = chorded_cycle(n, stride);
        assert!(connectivity::is_k_edge_connected(&g, 2));
        let cuts = kecss::cuts::cuts_of_size(&g, &g.full_edge_set(), 2).unwrap();
        assert_eq!(cuts.len(), (n / stride) * stride * (stride - 1) / 2);
    }

    #[test]
    fn synthetic_kgb1_streams_a_decodable_instance() {
        let mut bytes = Vec::new();
        e14_write_synthetic_kgb1(&mut bytes, 16, 200).unwrap();
        assert_eq!(bytes.len(), 20 + 200 * 16);
        let g = graphs::io::read_binary(&bytes).unwrap();
        assert_eq!(g.n(), 16);
        assert_eq!(g.m(), 200);
        // Record i is a pure function of its edge id.
        let id = 150usize;
        let e = g.edge(graphs::EdgeId(id));
        assert_eq!(e.u, id % 16);
        assert_eq!(e.v, (e.u + 1 + (id / 16) % 15) % 16);
        assert_eq!(e.weight, 1 + id as u64 % 97);
        assert!(g.edges().all(|(_, e)| e.u != e.v));
    }

    #[test]
    fn gossip_mix_runs_fixed_rounds_and_is_reproducible() {
        let g = generators::torus(4, 4, 1);
        let net = congest::Network::new(&g);
        let a = net.run(GossipMix::programs(g.n(), 12), 100).unwrap();
        let b = net.run(GossipMix::programs(g.n(), 12), 100).unwrap();
        assert_eq!(a.report.rounds, 12);
        // Every vertex sends to all 4 neighbors in rounds 0..12.
        assert_eq!(a.report.messages, 12 * 4 * g.n() as u64);
        assert_eq!(GossipMix::digest(&a), GossipMix::digest(&b));
        assert_eq!(a.nodes, b.nodes);
    }

    #[test]
    fn instances_are_reproducible() {
        let a = weighted_instance(Topology::Random, 40, 3, 50, 7);
        let b = weighted_instance(Topology::Random, 40, 3, 50, 7);
        assert_eq!(a, b);
    }
}
