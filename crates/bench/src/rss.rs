//! Peak-resident-set probing for the out-of-core experiment (E14).
//!
//! Linux accounts a process's resident-set high-water mark as `VmHWM` in
//! `/proc/self/status`, and lets the process reset that mark by writing `5`
//! to `/proc/self/clear_refs` (see `proc(5)`). Resetting before a workload
//! and reading `VmHWM` after it brackets the workload's peak memory without
//! any allocator instrumentation — which is exactly what E14 needs to show
//! that streaming ingest peaks near the final CSR footprint while slurping
//! peaks at CSR + whole file.
//!
//! Everything here degrades gracefully: on kernels (or sandboxes) without
//! these `/proc` files the probes return `None` and the reports print `-`
//! instead of a number.

use std::fs;

/// Reads a `kB` field such as `VmHWM` or `VmRSS` from `/proc/self/status`.
fn status_kb(field: &str) -> Option<u64> {
    let status = fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

/// The process's resident-set high-water mark (`VmHWM`) in KiB, if the
/// kernel exposes it.
pub fn peak_rss_kb() -> Option<u64> {
    status_kb("VmHWM:")
}

/// The process's current resident set (`VmRSS`) in KiB, if the kernel
/// exposes it.
pub fn current_rss_kb() -> Option<u64> {
    status_kb("VmRSS:")
}

/// Resets the `VmHWM` high-water mark to the current resident set by
/// writing `5` to `/proc/self/clear_refs`. Returns whether the reset took.
pub fn reset_peak() -> bool {
    fs::write("/proc/self/clear_refs", "5").is_ok()
}

/// Runs `workload` with the high-water mark freshly reset and returns its
/// result plus the peak resident set (KiB) observed during the run, or
/// `None` where `/proc` probing is unavailable.
pub fn with_peak_rss<T>(workload: impl FnOnce() -> T) -> (T, Option<u64>) {
    let armed = reset_peak();
    let out = workload();
    let peak = if armed { peak_rss_kb() } else { None };
    (out, peak)
}

/// Re-runs the current executable with `var=spec` set and parses the
/// `peak_kb=… live_kb=…` line the child prints via [`report_child_probe`].
///
/// A same-process probe understates peaks once the allocator has served (and
/// retained) an earlier workload of similar size; a fresh child process has
/// no such history, so its `VmHWM` delta is attributable to the probed
/// workload alone. Returns `(peak_delta_kb, live_delta_kb)`, or `None` when
/// spawning or probing fails (reports print `-`).
pub fn spawn_child_probe(var: &str, spec: &str) -> Option<(u64, u64)> {
    let exe = std::env::current_exe().ok()?;
    let out = std::process::Command::new(exe)
        .env(var, spec)
        .output()
        .ok()?;
    if !out.status.success() {
        return None;
    }
    let text = String::from_utf8_lossy(&out.stdout);
    let mut peak = None;
    let mut live = None;
    for token in text.split_whitespace() {
        if let Some(v) = token.strip_prefix("peak_kb=") {
            peak = v.parse().ok();
        }
        if let Some(v) = token.strip_prefix("live_kb=") {
            live = v.parse().ok();
        }
    }
    Some((peak?, live?))
}

/// The child side of [`spawn_child_probe`]: runs `workload` against the
/// fresh process baseline and prints the peak and live resident-set deltas
/// (the workload's result is held live for the `live_kb` sample, then
/// dropped). Call this when the agreed env var is set, then exit.
pub fn report_child_probe<T>(workload: impl FnOnce() -> T) {
    let before = current_rss_kb();
    let out = workload();
    let peak = peak_rss_kb();
    let live = current_rss_kb();
    drop(out);
    if let (Some(b), Some(p), Some(l)) = (before, peak, live) {
        println!(
            "peak_kb={} live_kb={}",
            p.saturating_sub(b),
            l.saturating_sub(b)
        );
    } else {
        println!("probe_unavailable");
    }
}

/// Formats a probe result for report tables: KiB as MiB with one decimal,
/// or `-` when probing is unavailable.
pub fn format_kb(kb: Option<u64>) -> String {
    match kb {
        Some(kb) => format!("{:.1}", kb as f64 / 1024.0),
        None => "-".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probes_parse_the_status_fields() {
        // Only assert when the kernel exposes the fields at all, so the
        // suite stays green on exotic sandboxes. No peak-vs-current
        // relation is asserted: the concurrently-running reset test (and
        // allocation between the two reads) makes that racy.
        if let (Some(peak), Some(current)) = (peak_rss_kb(), current_rss_kb()) {
            assert!(peak > 0, "VmHWM parses to a positive KiB count");
            assert!(current > 0, "VmRSS parses to a positive KiB count");
        }
    }

    #[test]
    fn with_peak_rss_sees_a_large_allocation() {
        let ((), peak) = with_peak_rss(|| {
            // Touch 64 MiB so the high-water mark must move well past the
            // test harness's baseline.
            let block = vec![7u8; 64 << 20];
            assert_eq!(block[block.len() - 1], 7);
        });
        if let Some(peak) = peak {
            assert!(
                peak >= 64 << 10,
                "peak {peak} KiB should cover the resident 64 MiB block"
            );
        }
    }

    #[test]
    fn format_kb_handles_both_cases() {
        assert_eq!(format_kb(None), "-");
        assert_eq!(format_kb(Some(2048)), "2.0");
    }
}
