//! Shared infrastructure for the benchmark harness.
//!
//! Every benchmark target under `benches/` corresponds to one experiment of
//! EXPERIMENTS.md (E1–E14). The benches print the experiment's series/rows
//! (the "table the paper would have had") before handing a representative
//! configuration to Criterion for wall-clock timing. This module provides the
//! things they share: instance families ([`workloads`]), fixed-width table
//! printing ([`table`]) and the `/proc`-based peak-memory probe ([`rss`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rss;
pub mod table;
pub mod workloads;
