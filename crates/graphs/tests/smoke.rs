//! Workspace-seam smoke test: exercises `graphs` exactly as an external
//! consumer does, so manifest or re-export regressions fail fast.

use graphs::{connectivity, generators, mst, Graph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

#[test]
fn generator_round_trip() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let g = generators::random_weighted_k_edge_connected(20, 2, 15, 50, &mut rng);
    assert_eq!(g.n(), 20);
    assert!(g.m() >= 20, "Harary base plus extras has at least n edges");
    assert!(connectivity::is_connected(&g));
    assert!(connectivity::edge_connectivity(&g) >= 2);
    assert!(g.edges().all(|(_, e)| (1..=50).contains(&e.weight)));

    let tree = mst::kruskal(&g);
    assert_eq!(tree.len(), g.n() - 1);
    assert!(connectivity::is_k_edge_connected_in(
        &g,
        &g.full_edge_set(),
        2
    ));
}

#[test]
fn hand_built_graph_basics() {
    let mut g = Graph::new(4);
    g.add_edge(0, 1, 1);
    g.add_edge(1, 2, 2);
    g.add_edge(2, 3, 1);
    g.add_edge(3, 0, 5);
    assert_eq!(g.m(), 4);
    assert_eq!(connectivity::edge_connectivity(&g), 2);
}
