//! Synthetic graph generators used as workloads for the distributed k-ECSS
//! algorithms and their benchmarks.
//!
//! The paper evaluates nothing empirically, so the benchmark harness needs
//! families of k-edge-connected graphs whose diameter and connectivity can be
//! controlled independently:
//!
//! * [`harary`] graphs are the classical minimum-size k-edge-connected graphs
//!   (circulants), giving tight unweighted instances.
//! * [`random_k_edge_connected`] takes a relabelled Harary base and adds random
//!   extra edges, producing instances where the approximation algorithms have
//!   real choices to make.
//! * [`ring_of_cliques`] produces high-diameter 2-edge-connected graphs, the
//!   regime where the `O((D+sqrt(n)) log^2 n)` bound of Theorem 1.1 separates
//!   from the `O(h_MST + sqrt(n))` baseline of [1].
//! * [`torus`] gives 4-edge-connected bounded-degree graphs with diameter
//!   `Theta(sqrt(n))`.
//! * [`hypercube`] gives `log2(n)`-regular graphs with edge connectivity
//!   exactly `log2(n)` — the known-ground-truth family for high-`k` cut
//!   enumeration and the `k > 4` pipeline.

use crate::graph::{Graph, NodeId, Weight};
use rand::seq::SliceRandom;
use rand::Rng;

/// A path `0 - 1 - ... - (n-1)` with uniform edge weight `w`.
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn path(n: usize, w: Weight) -> Graph {
    assert!(n > 0, "path requires at least one vertex");
    let mut g = Graph::new(n);
    for v in 1..n {
        g.add_edge(v - 1, v, w);
    }
    g
}

/// A cycle on `n >= 3` vertices with uniform edge weight `w`.
///
/// # Panics
///
/// Panics if `n < 3`.
pub fn cycle(n: usize, w: Weight) -> Graph {
    assert!(n >= 3, "cycle requires at least three vertices");
    let mut g = Graph::new(n);
    for v in 0..n {
        g.add_edge(v, (v + 1) % n, w);
    }
    g
}

/// The complete graph on `n` vertices with uniform edge weight `w`.
pub fn complete(n: usize, w: Weight) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(u, v, w);
        }
    }
    g
}

/// A `rows x cols` grid graph (no wraparound) with uniform weight `w`.
///
/// The grid is 2-edge-connected whenever both dimensions are at least 2.
pub fn grid(rows: usize, cols: usize, w: Weight) -> Graph {
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1), w);
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c), w);
            }
        }
    }
    g
}

/// A `rows x cols` torus (grid with wraparound) with uniform weight `w`.
///
/// For `rows, cols >= 3` the torus is 4-regular and 4-edge-connected, with
/// diameter `(rows + cols) / 2`.
///
/// # Panics
///
/// Panics if either dimension is smaller than 3.
pub fn torus(rows: usize, cols: usize, w: Weight) -> Graph {
    assert!(
        rows >= 3 && cols >= 3,
        "torus requires both dimensions >= 3"
    );
    let n = rows * cols;
    let mut g = Graph::new(n);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            g.add_edge(id(r, c), id(r, (c + 1) % cols), w);
            g.add_edge(id(r, c), id((r + 1) % rows, c), w);
        }
    }
    g
}

/// The Harary graph `H_{k,n}`: the minimum-size k-edge-connected graph on `n`
/// vertices, built as a circulant. All edges have weight `w`.
///
/// Construction: every vertex `i` is joined to `i ± 1, …, i ± floor(k/2)`
/// (mod n); if `k` is odd, vertex `i` is additionally joined to `i + n/2`
/// (this requires `n` even, which the function enforces by rounding the
/// opposite-vertex offset). The resulting graph is k-edge-connected with
/// `ceil(k n / 2)` edges.
///
/// # Panics
///
/// Panics if `k >= n` or `k == 0`, or if `k` is odd and `n` is odd.
pub fn harary(k: usize, n: usize, w: Weight) -> Graph {
    assert!(k >= 1, "connectivity must be at least 1");
    assert!(k < n, "harary requires k < n");
    if k % 2 == 1 && k > 1 {
        assert!(n.is_multiple_of(2), "harary with odd k requires even n");
    }
    let mut g = Graph::new(n);
    let half = k / 2;
    for i in 0..n {
        for d in 1..=half {
            let j = (i + d) % n;
            g.add_edge(i, j, w);
        }
    }
    if k % 2 == 1 {
        if k == 1 {
            // H_{1,n} is a path; k=1 with the circulant construction would
            // add no edges, so special-case it.
            return path(n, w);
        }
        for i in 0..n / 2 {
            g.add_edge(i, i + n / 2, w);
        }
    }
    g
}

/// The `dim`-dimensional hypercube `Q_dim`: `2^dim` vertices, one per
/// `dim`-bit string, joined when the strings differ in exactly one bit. All
/// edges have weight `w`.
///
/// `Q_dim` is `dim`-regular with edge connectivity exactly `dim`, which makes
/// it the ground-truth family for high-`k` cut enumeration: a `k`-ECSS run
/// with `k = dim` is feasible and must keep (close to) all edges, and the
/// minimum cuts of size `dim` include every vertex star.
///
/// # Panics
///
/// Panics if `dim == 0` or `dim > 20` (the vertex count is `2^dim`).
pub fn hypercube(dim: usize, w: Weight) -> Graph {
    assert!(dim >= 1, "hypercube requires dimension >= 1");
    assert!(dim <= 20, "hypercube dimension {dim} is unreasonably large");
    let n = 1usize << dim;
    let mut g = Graph::new(n);
    for v in 0..n {
        for b in 0..dim {
            let u = v ^ (1 << b);
            if v < u {
                g.add_edge(v, u, w);
            }
        }
    }
    g
}

/// A ring of `cliques` cliques, each of `clique_size` vertices, where
/// consecutive cliques are connected by `links` parallel-ish edges (distinct
/// endpoint pairs). All edges have weight `w`.
///
/// With `links >= k` and `clique_size > k` the result is k-edge-connected and
/// has diameter `Theta(cliques)`, which is the high-diameter regime used by
/// experiment E8.
///
/// # Panics
///
/// Panics if `cliques < 3`, `clique_size < 2`, or `links > clique_size`.
pub fn ring_of_cliques(cliques: usize, clique_size: usize, links: usize, w: Weight) -> Graph {
    assert!(
        cliques >= 3,
        "ring_of_cliques requires at least three cliques"
    );
    assert!(clique_size >= 2, "cliques must have at least two vertices");
    assert!(
        links <= clique_size,
        "cannot create more links than clique vertices"
    );
    let n = cliques * clique_size;
    let mut g = Graph::new(n);
    let id = |c: usize, i: usize| c * clique_size + i;
    for c in 0..cliques {
        for i in 0..clique_size {
            for j in (i + 1)..clique_size {
                g.add_edge(id(c, i), id(c, j), w);
            }
        }
    }
    for c in 0..cliques {
        let next = (c + 1) % cliques;
        for l in 0..links {
            g.add_edge(id(c, l), id(next, (l + 1) % clique_size), w);
        }
    }
    g
}

/// A random k-edge-connected graph: a Harary graph `H_{k,n}` under a uniformly
/// random relabelling of the vertices, plus `extra_edges` additional uniformly
/// random non-duplicate edges. All edges have weight 1; use
/// [`randomize_weights`] for weighted instances.
///
/// The Harary base guarantees k-edge-connectivity regardless of the random
/// choices, so generated instances never need rejection sampling.
///
/// # Panics
///
/// Panics under the same conditions as [`harary`].
pub fn random_k_edge_connected<R: Rng>(
    n: usize,
    k: usize,
    extra_edges: usize,
    rng: &mut R,
) -> Graph {
    let base = harary(k, n, 1);
    let mut labels: Vec<NodeId> = (0..n).collect();
    labels.shuffle(rng);
    let mut g = Graph::new(n);
    let mut present: std::collections::HashSet<(NodeId, NodeId)> = std::collections::HashSet::new();
    for (_, e) in base.edges() {
        let u = labels[e.u];
        let v = labels[e.v];
        present.insert((u.min(v), u.max(v)));
        g.add_edge(u, v, 1);
    }
    let mut added = 0;
    let max_extra = n * (n - 1) / 2 - g.m();
    let target = extra_edges.min(max_extra);
    let mut attempts = 0usize;
    while added < target && attempts < 50 * target + 100 {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if present.insert(key) {
            g.add_edge(u, v, 1);
            added += 1;
        }
    }
    g
}

/// Replaces every edge weight with a uniformly random integer in
/// `1..=max_weight`. Weights remain polynomial in `n` as the paper assumes.
///
/// # Panics
///
/// Panics if `max_weight == 0`.
pub fn randomize_weights<R: Rng>(graph: &mut Graph, max_weight: Weight, rng: &mut R) {
    assert!(max_weight >= 1, "max_weight must be positive");
    for id in graph.edge_ids().collect::<Vec<_>>() {
        let w = rng.gen_range(1..=max_weight);
        graph.set_weight(id, w);
    }
}

/// Convenience: a random k-edge-connected graph with random weights in
/// `1..=max_weight` and `extra_edges` extra random edges.
pub fn random_weighted_k_edge_connected<R: Rng>(
    n: usize,
    k: usize,
    extra_edges: usize,
    max_weight: Weight,
    rng: &mut R,
) -> Graph {
    let mut g = random_k_edge_connected(n, k, extra_edges, rng);
    randomize_weights(&mut g, max_weight, rng);
    g
}

/// A connected Erdős–Rényi-style random graph: a uniformly random spanning
/// tree (random Prüfer-free attachment) plus each remaining pair added with
/// probability `p`. Unit weights.
pub fn random_connected<R: Rng>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!(n > 0, "random_connected requires at least one vertex");
    let mut g = Graph::new(n);
    let mut order: Vec<NodeId> = (0..n).collect();
    order.shuffle(rng);
    // Random attachment tree over the shuffled order guarantees connectivity.
    for i in 1..n {
        let j = rng.gen_range(0..i);
        g.add_edge(order[i], order[j], 1);
    }
    let mut present: std::collections::HashSet<(NodeId, NodeId)> =
        g.edges().map(|(_, e)| e.ordered()).collect();
    for u in 0..n {
        for v in (u + 1)..n {
            if present.contains(&(u, v)) {
                continue;
            }
            if rng.gen_bool(p) {
                present.insert((u, v));
                g.add_edge(u, v, 1);
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn path_and_cycle_shapes() {
        let p = path(5, 2);
        assert_eq!(p.m(), 4);
        assert_eq!(p.total_weight(), 8);
        let c = cycle(5, 1);
        assert_eq!(c.m(), 5);
        assert!(connectivity::is_connected(&c));
    }

    #[test]
    fn complete_graph_edge_count() {
        let g = complete(6, 1);
        assert_eq!(g.m(), 15);
        assert_eq!(connectivity::edge_connectivity(&g), 5);
    }

    #[test]
    fn grid_and_torus_are_connected() {
        let g = grid(3, 4, 1);
        assert_eq!(g.n(), 12);
        assert!(connectivity::is_connected(&g));
        assert_eq!(connectivity::edge_connectivity(&g), 2);
        let t = torus(3, 3, 1);
        assert_eq!(connectivity::edge_connectivity(&t), 4);
    }

    #[test]
    fn harary_is_k_edge_connected_and_minimal() {
        for (k, n) in [(2, 7), (3, 8), (4, 9), (5, 10)] {
            let g = harary(k, n, 1);
            assert_eq!(
                connectivity::edge_connectivity(&g),
                k,
                "H_{{{k},{n}}} should be exactly {k}-edge-connected"
            );
            assert_eq!(g.m(), (k * n).div_ceil(2), "H_{{{k},{n}}} size");
        }
    }

    #[test]
    fn harary_k1_is_a_path() {
        let g = harary(1, 5, 3);
        assert_eq!(g.m(), 4);
        assert!(connectivity::is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "odd k requires even n")]
    fn harary_rejects_odd_k_odd_n() {
        harary(3, 7, 1);
    }

    #[test]
    fn hypercube_connectivity_is_the_dimension() {
        for dim in 1..=5 {
            let g = hypercube(dim, 1);
            assert_eq!(g.n(), 1 << dim);
            assert_eq!(g.m(), dim << (dim - 1), "Q_{dim} has dim * 2^(dim-1) edges");
            assert_eq!(
                connectivity::edge_connectivity(&g),
                dim,
                "Q_{dim} must be exactly {dim}-edge-connected"
            );
        }
    }

    #[test]
    fn hypercube_diameter_is_the_dimension() {
        let g = hypercube(4, 1);
        assert_eq!(crate::bfs::diameter(&g), Some(4));
    }

    #[test]
    #[should_panic(expected = "dimension >= 1")]
    fn hypercube_rejects_dimension_zero() {
        hypercube(0, 1);
    }

    #[test]
    fn ring_of_cliques_connectivity_and_diameter() {
        let g = ring_of_cliques(6, 4, 2, 1);
        assert_eq!(g.n(), 24);
        // Min cut is min(2 * links, min internal degree) = 3 here; the promise
        // is only "at least links-edge-connected".
        assert!(connectivity::edge_connectivity(&g) >= 2);
        let d = crate::bfs::diameter(&g).unwrap();
        // Crossing to the opposite side of the ring takes at least
        // floor(cliques / 2) inter-clique hops.
        assert!(
            d >= 3,
            "ring of 6 cliques should have diameter >= 3, got {d}"
        );
    }

    #[test]
    fn random_k_edge_connected_has_promised_connectivity() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        for k in 2..=4 {
            let g = random_k_edge_connected(16, k, 10, &mut rng);
            assert!(
                connectivity::edge_connectivity(&g) >= k,
                "random graph must be at least {k}-edge-connected"
            );
        }
    }

    #[test]
    fn random_k_edge_connected_is_deterministic_per_seed() {
        let g1 = random_k_edge_connected(12, 2, 5, &mut ChaCha8Rng::seed_from_u64(3));
        let g2 = random_k_edge_connected(12, 2, 5, &mut ChaCha8Rng::seed_from_u64(3));
        assert_eq!(g1, g2);
    }

    #[test]
    fn randomize_weights_stays_in_range() {
        let mut rng = ChaCha8Rng::seed_from_u64(11);
        let mut g = cycle(10, 1);
        randomize_weights(&mut g, 50, &mut rng);
        for (_, e) in g.edges() {
            assert!(e.weight >= 1 && e.weight <= 50);
        }
    }

    #[test]
    fn random_connected_is_connected() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for n in [1, 2, 10, 40] {
            let g = random_connected(n, 0.05, &mut rng);
            assert!(connectivity::is_connected(&g), "n = {n}");
        }
    }

    #[test]
    fn random_weighted_instance_has_positive_weights() {
        let mut rng = ChaCha8Rng::seed_from_u64(13);
        let g = random_weighted_k_edge_connected(20, 3, 12, 100, &mut rng);
        assert!(connectivity::edge_connectivity(&g) >= 3);
        assert!(g.edges().all(|(_, e)| e.weight >= 1));
    }
}
