//! The core undirected weighted multigraph type and edge-set masks.
//!
//! Both types are optimized for the workspace's innermost loops:
//!
//! * [`Graph`] adjacency is a **frozen CSR** (compressed sparse row): one
//!   contiguous `(neighbor, edge id)` entry array plus per-vertex offsets,
//!   built lazily on the first adjacency query (or eagerly via
//!   [`Graph::freeze`]) and invalidated by [`Graph::add_edge`]. Queries hand
//!   out plain slices — no per-vertex heap allocations, no pointer chasing.
//! * [`EdgeSet`] is a **word-packed bitset** over edge ids: 64 edges per
//!   `u64`, popcount-backed counting, word-wise set algebra and a
//!   trailing-zeros iterator, so masked scans cost `m / 64` word loads
//!   instead of `m` byte loads.

use std::fmt;
use std::sync::OnceLock;

/// Identifier of a vertex. Vertices of a graph with `n` vertices are the
/// integers `0..n`.
pub type NodeId = usize;

/// Edge weights. The paper assumes non-negative integer weights polynomial in
/// `n`, so a `u64` is sufficient and keeps all arithmetic exact.
pub type Weight = u64;

/// Stable identifier of an edge: the index of the edge in insertion order.
///
/// Edge identifiers are never invalidated; masked views of a graph are
/// expressed with [`EdgeSet`] rather than by removing edges.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The raw index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(value: usize) -> Self {
        EdgeId(value)
    }
}

/// An undirected edge `{u, v}` with a non-negative integer weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Non-negative weight, assumed polynomial in `n`.
    pub weight: Weight,
}

impl Edge {
    /// Returns the endpoint of the edge that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of the edge.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "vertex {x} is not an endpoint of edge {{{}, {}}}",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if `x` is one of the endpoints.
    #[inline]
    pub fn has_endpoint(&self, x: NodeId) -> bool {
        self.u == x || self.v == x
    }

    /// Returns the endpoints as an ordered pair `(min, max)`.
    #[inline]
    pub fn ordered(&self) -> (NodeId, NodeId) {
        (self.u.min(self.v), self.u.max(self.v))
    }
}

/// The frozen adjacency: CSR offsets plus one contiguous entry array. The
/// `targets` and `edge_ids` columns are interleaved as `(NodeId, EdgeId)`
/// pairs so one slice lookup serves both (the per-vertex order is exactly the
/// edge-insertion order the old `Vec<Vec<_>>` representation produced).
#[derive(Clone, Debug)]
struct Csr {
    /// `offsets[v]..offsets[v + 1]` indexes `entries` for vertex `v`.
    offsets: Vec<usize>,
    /// `(neighbor, edge id)` pairs, grouped by vertex, edge-id order within a
    /// vertex.
    entries: Vec<(NodeId, EdgeId)>,
}

impl Csr {
    /// Builds the CSR from the edge list with a counting sort: two passes
    /// over the edges, no per-vertex allocations. Iterating edges in id order
    /// reproduces exactly the per-vertex ordering incremental `push`es gave.
    fn build(n: usize, edges: &[Edge]) -> Csr {
        let mut offsets = vec![0usize; n + 1];
        for e in edges {
            offsets[e.u + 1] += 1;
            offsets[e.v + 1] += 1;
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }
        let mut cursor = offsets.clone();
        let mut entries = vec![(0usize, EdgeId(0)); 2 * edges.len()];
        for (i, e) in edges.iter().enumerate() {
            entries[cursor[e.u]] = (e.v, EdgeId(i));
            cursor[e.u] += 1;
            entries[cursor[e.v]] = (e.u, EdgeId(i));
            cursor[e.v] += 1;
        }
        Csr { offsets, entries }
    }
}

/// An undirected, weighted multigraph with `n` vertices and stable edge ids.
///
/// Vertices are `0..n`. Parallel edges and self-loops are permitted by the
/// representation (the algorithms in this workspace never create self-loops,
/// and [`Graph::add_edge`] rejects them), which keeps edge identifiers simple.
///
/// # Adjacency representation
///
/// The edge list is the source of truth; adjacency is served from a frozen
/// CSR built on the first call to [`Graph::neighbors`] / [`Graph::degree`] /
/// [`Graph::find_edge`] (or eagerly via [`Graph::freeze`]) and **invalidated
/// by [`Graph::add_edge`]**. Build-then-query workloads — every workload in
/// this workspace — therefore build the CSR exactly once; interleaving
/// `add_edge` with adjacency queries is correct but rebuilds the CSR per
/// interleaving and should be avoided on hot paths.
///
/// # Example
///
/// ```
/// use graphs::Graph;
///
/// let mut g = Graph::new(3);
/// let e = g.add_edge(0, 1, 7);
/// g.add_edge(1, 2, 3);
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.edge(e).weight, 7);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    /// Lazily built, reset by `add_edge`. `OnceLock` keeps queries `&self`
    /// (and the graph `Sync`) while guaranteeing a single build per freeze.
    csr: OnceLock<Csr>,
}

/// Equality is structural on `(n, edge list)`; whether the CSR cache happens
/// to be built is not observable.
impl PartialEq for Graph {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.edges == other.edges
    }
}

impl Eq for Graph {}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            csr: OnceLock::new(),
        }
    }

    /// Assembles an already-frozen graph from externally built CSR arrays
    /// (the two-pass streaming build in [`crate::stream`]). The caller
    /// guarantees the arrays satisfy the [`Csr`] invariants — in particular
    /// that `entries` is grouped by vertex with edge-id order within each
    /// vertex, exactly what [`Csr::build`] would produce from `edges`.
    pub(crate) fn from_csr_parts(
        n: usize,
        edges: Vec<Edge>,
        offsets: Vec<usize>,
        entries: Vec<(NodeId, EdgeId)>,
    ) -> Graph {
        debug_assert_eq!(offsets.len(), n + 1);
        debug_assert_eq!(entries.len(), 2 * edges.len());
        let csr = OnceLock::new();
        let _ = csr.set(Csr { offsets, entries });
        Graph { n, edges, csr }
    }

    /// Creates a graph with `n` vertices from an iterator of `(u, v, weight)`
    /// triples.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range or if an edge is a self-loop.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId, Weight)>,
    {
        let mut g = Graph::new(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with the given weight and returns its id.
    ///
    /// Invalidates the frozen adjacency (rebuilt on the next query).
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range, or if `u == v` (self-loop).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> EdgeId {
        assert!(u < self.n, "endpoint {u} out of range (n = {})", self.n);
        assert!(v < self.n, "endpoint {v} out of range (n = {})", self.n);
        assert_ne!(u, v, "self-loops are not supported");
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { u, v, weight });
        self.csr = OnceLock::new();
        id
    }

    /// Adds an unweighted (weight 1) edge.
    pub fn add_unit_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        self.add_edge(u, v, 1)
    }

    /// Builds the CSR adjacency now (idempotent). Useful to pay the build
    /// cost at a chosen time — e.g. before handing the graph to concurrent
    /// readers — instead of on the first adjacency query.
    pub fn freeze(&self) {
        let _ = self.csr();
    }

    /// Whether the CSR adjacency is currently built (i.e. no `add_edge`
    /// happened since the last query/freeze).
    pub fn is_frozen(&self) -> bool {
        self.csr.get().is_some()
    }

    #[inline]
    fn csr(&self) -> &Csr {
        self.csr.get_or_init(|| Csr::build(self.n, &self.edges))
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// The weight of an edge.
    #[inline]
    pub fn weight(&self, id: EdgeId) -> Weight {
        self.edges[id.0].weight
    }

    /// Overwrites the weight of an edge (does not invalidate the adjacency:
    /// the CSR stores no weights).
    pub fn set_weight(&mut self, id: EdgeId, weight: Weight) {
        self.edges[id.0].weight = weight;
    }

    /// Iterator over `(EdgeId, &Edge)` in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs, including parallel
    /// edges, as one contiguous CSR slice. Per-vertex order equals edge
    /// insertion order.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        let csr = self.csr();
        &csr.entries[csr.offsets[v]..csr.offsets[v + 1]]
    }

    /// Degree of `v` (counting parallel edges).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        let csr = self.csr();
        csr.offsets[v + 1] - csr.offsets[v]
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Total weight of the edges in `set`.
    pub fn weight_of(&self, set: &EdgeSet) -> Weight {
        set.iter().map(|id| self.weight(id)).sum()
    }

    /// Looks up an edge id connecting `u` and `v`, if one exists.
    ///
    /// If there are parallel edges the one with the smallest id is returned.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.neighbors(u)
            .iter()
            .filter(|(nbr, _)| *nbr == v)
            .map(|&(_, id)| id)
            .min()
    }

    /// Returns the subgraph induced by the edge set as a new graph over the
    /// same vertex set. Edge ids are *not* preserved in the result; prefer
    /// passing [`EdgeSet`] masks to algorithms when id stability matters.
    pub fn edge_subgraph(&self, set: &EdgeSet) -> Graph {
        let mut g = Graph::new(self.n);
        for id in set.iter() {
            let e = self.edge(id);
            g.add_edge(e.u, e.v, e.weight);
        }
        g
    }

    /// An [`EdgeSet`] sized for this graph containing no edges.
    pub fn empty_edge_set(&self) -> EdgeSet {
        EdgeSet::new(self.m())
    }

    /// An [`EdgeSet`] sized for this graph containing every edge.
    pub fn full_edge_set(&self) -> EdgeSet {
        EdgeSet::full(self.m())
    }
}

/// Number of `u64` words covering a universe of `m` bits.
#[inline]
const fn words_for(m: usize) -> usize {
    m.div_ceil(64)
}

/// A set of edges of a particular graph, stored as a word-packed bitmap over
/// edge ids (64 edges per `u64`).
///
/// `EdgeSet` is the universal currency for "subgraph" in this workspace: the
/// spanning subgraph `H`, the augmentation `A`, candidate sets and MSTs are
/// all edge sets over the original input graph, which keeps edge identifiers
/// stable across every phase of the algorithms.
///
/// Set algebra ([`EdgeSet::union_with`], [`EdgeSet::intersect_with`],
/// [`EdgeSet::difference_with`], [`EdgeSet::is_subset_of`]) runs word-wise;
/// [`EdgeSet::len`] is popcount-backed; [`EdgeSet::iter`] scans set words
/// with trailing-zeros extraction. Invariant: bits at or above
/// [`EdgeSet::universe`] are always zero.
///
/// # Example
///
/// ```
/// use graphs::{EdgeSet, EdgeId};
///
/// let mut s = EdgeSet::new(4);
/// s.insert(EdgeId(1));
/// s.insert(EdgeId(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(EdgeId(3)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![EdgeId(1), EdgeId(3)]);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct EdgeSet {
    words: Vec<u64>,
    universe: usize,
    count: usize,
}

impl EdgeSet {
    /// Creates an empty set over a universe of `m` edges.
    pub fn new(m: usize) -> Self {
        EdgeSet {
            words: vec![0; words_for(m)],
            universe: m,
            count: 0,
        }
    }

    /// Creates the full set over a universe of `m` edges.
    pub fn full(m: usize) -> Self {
        let mut s = EdgeSet {
            words: vec![!0u64; words_for(m)],
            universe: m,
            count: m,
        };
        s.mask_tail();
        s
    }

    /// Creates a set over a universe of `m` edges from an iterator of ids.
    pub fn from_ids<I>(m: usize, ids: I) -> Self
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let mut s = EdgeSet::new(m);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Zeroes the bits above `universe` in the last word (the invariant all
    /// word-wise operations rely on).
    #[inline]
    fn mask_tail(&mut self) {
        let tail = self.universe % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Size of the universe (number of edge ids representable).
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The backing `u64` words, 64 edge ids per word, least-significant bit
    /// first. Bits at or above [`EdgeSet::universe`] are zero. This is the
    /// raw currency of the word-wise hot paths (e.g. the exact removal test).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Number of edges in the set (maintained incrementally, recomputed by
    /// popcount after word-wise bulk operations).
    #[inline]
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether the set contains `id`.
    #[inline]
    pub fn contains(&self, id: EdgeId) -> bool {
        id.0 < self.universe && (self.words[id.0 >> 6] >> (id.0 & 63)) & 1 == 1
    }

    /// Inserts `id`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn insert(&mut self, id: EdgeId) -> bool {
        assert!(id.0 < self.universe, "edge id {id} outside universe");
        let word = &mut self.words[id.0 >> 6];
        let bit = 1u64 << (id.0 & 63);
        if *word & bit != 0 {
            false
        } else {
            *word |= bit;
            self.count += 1;
            true
        }
    }

    /// Removes `id`, returning `true` if it was present.
    pub fn remove(&mut self, id: EdgeId) -> bool {
        if id.0 >= self.universe {
            return false;
        }
        let word = &mut self.words[id.0 >> 6];
        let bit = 1u64 << (id.0 & 63);
        if *word & bit != 0 {
            *word &= !bit;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Iterator over the edge ids in the set, in increasing order
    /// (trailing-zeros extraction over the set words).
    pub fn iter(&self) -> EdgeSetIter<'_> {
        EdgeSetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Alias of [`EdgeSet::iter`], named for call sites that want to stress
    /// they iterate raw ids over set words.
    pub fn iter_ids(&self) -> EdgeSetIter<'_> {
        self.iter()
    }

    /// Recomputes `count` from the words (after a word-wise bulk operation).
    #[inline]
    fn recount(&mut self) {
        self.count = self.words.iter().map(|w| w.count_ones() as usize).sum();
    }

    #[inline]
    fn assert_same_universe(&self, other: &EdgeSet) {
        assert_eq!(self.universe, other.universe, "edge set universes differ");
    }

    /// In-place union with another set over the same universe (word-wise).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &EdgeSet) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
        self.recount();
    }

    /// In-place intersection with another set over the same universe
    /// (word-wise).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn intersect_with(&mut self, other: &EdgeSet) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
        self.recount();
    }

    /// In-place difference `self \ other` over the same universe (word-wise).
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn difference_with(&mut self, other: &EdgeSet) {
        self.assert_same_universe(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
        self.recount();
    }

    /// Returns the union of two sets over the same universe.
    pub fn union(&self, other: &EdgeSet) -> EdgeSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns the set difference `self \ other`.
    pub fn difference(&self, other: &EdgeSet) -> EdgeSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Returns the intersection of two sets over the same universe.
    pub fn intersection(&self, other: &EdgeSet) -> EdgeSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Whether `self` is a subset of `other` (word-wise `a & !b == 0`;
    /// universes may differ — ids beyond `other`'s universe are absent).
    pub fn is_subset_of(&self, other: &EdgeSet) -> bool {
        let shared = self.words.len().min(other.words.len());
        self.words[..shared]
            .iter()
            .zip(&other.words[..shared])
            .all(|(a, b)| a & !b == 0)
            && self.words[shared..].iter().all(|&w| w == 0)
    }

    /// The edge ids of the set collected into a vector.
    pub fn to_vec(&self) -> Vec<EdgeId> {
        self.iter().collect()
    }
}

/// Iterator over the set edge ids of an [`EdgeSet`], in increasing order.
#[derive(Clone, Debug)]
pub struct EdgeSetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for EdgeSetIter<'_> {
    type Item = EdgeId;

    #[inline]
    fn next(&mut self) -> Option<EdgeId> {
        while self.current == 0 {
            self.word_idx += 1;
            self.current = *self.words.get(self.word_idx)?;
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(EdgeId((self.word_idx << 6) | bit))
    }
}

impl fmt::Debug for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<EdgeId> for EdgeSet {
    /// Builds an edge set whose universe is just large enough for the largest id.
    fn from_iter<T: IntoIterator<Item = EdgeId>>(iter: T) -> Self {
        let ids: Vec<EdgeId> = iter.into_iter().collect();
        let max = ids.iter().map(|id| id.0 + 1).max().unwrap_or(0);
        EdgeSet::from_ids(max, ids)
    }
}

impl Extend<EdgeId> for EdgeSet {
    fn extend<T: IntoIterator<Item = EdgeId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_updates_adjacency_and_degree() {
        let mut g = Graph::new(4);
        let e01 = g.add_edge(0, 1, 5);
        let e12 = g.add_edge(1, 2, 3);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.edge(e01).weight, 5);
        assert_eq!(g.edge(e12).other(2), 1);
        assert_eq!(g.neighbors(0), &[(1, e01)]);
    }

    #[test]
    fn freeze_invalidate_contract() {
        let mut g = Graph::new(3);
        let a = g.add_edge(0, 1, 1);
        assert!(!g.is_frozen());
        g.freeze();
        assert!(g.is_frozen());
        assert_eq!(g.neighbors(1), &[(0, a)]);
        // add_edge invalidates; the next query rebuilds with the new edge.
        let b = g.add_edge(1, 2, 1);
        assert!(!g.is_frozen());
        assert_eq!(g.neighbors(1), &[(0, a), (2, b)]);
        assert!(g.is_frozen());
        // Equality ignores the freeze state.
        let mut h = Graph::new(3);
        h.add_edge(0, 1, 1);
        h.add_edge(1, 2, 1);
        assert_eq!(g, h);
        h.freeze();
        assert_eq!(g, h);
    }

    #[test]
    fn csr_order_matches_insertion_order_with_parallel_edges() {
        let mut g = Graph::new(3);
        let a = g.add_edge(1, 0, 1);
        let b = g.add_edge(0, 2, 1);
        let c = g.add_edge(0, 1, 9); // parallel to a, reversed orientation
        assert_eq!(g.neighbors(0), &[(1, a), (2, b), (1, c)]);
        assert_eq!(g.neighbors(1), &[(0, a), (0, c)]);
        assert_eq!(g.neighbors(2), &[(0, b)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn add_edge_rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_rejects_out_of_range() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2, 1);
    }

    #[test]
    fn parallel_edges_are_kept_distinct() {
        let mut g = Graph::new(2);
        let a = g.add_edge(0, 1, 1);
        let b = g.add_edge(0, 1, 9);
        assert_ne!(a, b);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.find_edge(0, 1), Some(a));
    }

    #[test]
    fn from_edges_builds_expected_graph() {
        let g = Graph::from_edges(3, vec![(0, 1, 2), (1, 2, 4)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.total_weight(), 6);
    }

    #[test]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge {
            u: 0,
            v: 1,
            weight: 1,
        };
        assert_eq!(e.other(0), 1);
        assert_eq!(e.other(1), 0);
        let result = std::panic::catch_unwind(|| e.other(5));
        assert!(result.is_err());
    }

    #[test]
    fn edge_set_insert_remove_iter() {
        let mut s = EdgeSet::new(5);
        assert!(s.is_empty());
        assert!(s.insert(EdgeId(2)));
        assert!(!s.insert(EdgeId(2)));
        assert!(s.insert(EdgeId(4)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(EdgeId(2)));
        assert!(!s.contains(EdgeId(0)));
        assert_eq!(s.to_vec(), vec![EdgeId(2), EdgeId(4)]);
        assert!(s.remove(EdgeId(2)));
        assert!(!s.remove(EdgeId(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn edge_set_union_difference_intersection() {
        let a = EdgeSet::from_ids(6, [EdgeId(0), EdgeId(1), EdgeId(2)]);
        let b = EdgeSet::from_ids(6, [EdgeId(2), EdgeId(3)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 4);
        let d = a.difference(&b);
        assert_eq!(d.to_vec(), vec![EdgeId(0), EdgeId(1)]);
        let i = a.intersection(&b);
        assert_eq!(i.to_vec(), vec![EdgeId(2)]);
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn word_boundaries_are_handled() {
        // Universe straddling word boundaries: 63, 64, 65 and a big one.
        for m in [63usize, 64, 65, 130, 1000] {
            let mut s = EdgeSet::new(m);
            let picks: Vec<usize> = (0..m).filter(|i| i % 7 == 3).collect();
            for &i in &picks {
                assert!(s.insert(EdgeId(i)));
            }
            assert_eq!(s.len(), picks.len(), "m = {m}");
            assert_eq!(
                s.iter().map(|id| id.0).collect::<Vec<_>>(),
                picks,
                "m = {m}"
            );
            let full = EdgeSet::full(m);
            assert_eq!(full.len(), m);
            assert!(s.is_subset_of(&full));
            let inverted = full.difference(&s);
            assert_eq!(inverted.len(), m - picks.len());
            assert!(inverted.intersection(&s).is_empty());
            assert_eq!(inverted.union(&s), full);
        }
    }

    #[test]
    fn subset_across_universes_matches_containment_semantics() {
        let small = EdgeSet::from_ids(3, [EdgeId(1)]);
        let large = EdgeSet::from_ids(100, [EdgeId(1), EdgeId(70)]);
        assert!(small.is_subset_of(&large));
        assert!(!large.is_subset_of(&small));
        let small_with_all = EdgeSet::from_ids(3, [EdgeId(0), EdgeId(1), EdgeId(2)]);
        assert!(!small_with_all.is_subset_of(&EdgeSet::from_ids(100, [EdgeId(1)])));
    }

    #[test]
    fn contains_and_remove_out_of_universe_are_benign() {
        let mut s = EdgeSet::new(10);
        assert!(!s.contains(EdgeId(10)));
        assert!(!s.contains(EdgeId(1000)));
        assert!(!s.remove(EdgeId(10)));
        assert!(!s.remove(EdgeId(1000)));
    }

    #[test]
    fn edge_subgraph_preserves_weights() {
        let mut g = Graph::new(3);
        let a = g.add_edge(0, 1, 10);
        let _b = g.add_edge(1, 2, 20);
        let set = EdgeSet::from_ids(g.m(), [a]);
        let sub = g.edge_subgraph(&set);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 1);
        assert_eq!(sub.total_weight(), 10);
    }

    #[test]
    fn weight_of_sums_only_selected_edges() {
        let mut g = Graph::new(3);
        let a = g.add_edge(0, 1, 10);
        let b = g.add_edge(1, 2, 20);
        let mut set = g.empty_edge_set();
        set.insert(b);
        assert_eq!(g.weight_of(&set), 20);
        set.insert(a);
        assert_eq!(g.weight_of(&set), 30);
    }

    #[test]
    fn full_and_empty_edge_sets() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        assert_eq!(g.empty_edge_set().len(), 0);
        assert_eq!(g.full_edge_set().len(), 2);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: EdgeSet = vec![EdgeId(3), EdgeId(1)].into_iter().collect();
        assert_eq!(s.universe(), 4);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn words_expose_the_packed_representation() {
        let s = EdgeSet::from_ids(70, [EdgeId(0), EdgeId(63), EdgeId(64)]);
        assert_eq!(s.words(), &[(1u64 << 63) | 1, 1]);
        assert_eq!(s.iter_ids().count(), 3);
    }
}
