//! The core undirected weighted multigraph type and edge-set masks.

use std::fmt;

/// Identifier of a vertex. Vertices of a graph with `n` vertices are the
/// integers `0..n`.
pub type NodeId = usize;

/// Edge weights. The paper assumes non-negative integer weights polynomial in
/// `n`, so a `u64` is sufficient and keeps all arithmetic exact.
pub type Weight = u64;

/// Stable identifier of an edge: the index of the edge in insertion order.
///
/// Edge identifiers are never invalidated; masked views of a graph are
/// expressed with [`EdgeSet`] rather than by removing edges.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeId(pub usize);

impl EdgeId {
    /// The raw index of this edge.
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<usize> for EdgeId {
    fn from(value: usize) -> Self {
        EdgeId(value)
    }
}

/// An undirected edge `{u, v}` with a non-negative integer weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Edge {
    /// One endpoint.
    pub u: NodeId,
    /// The other endpoint.
    pub v: NodeId,
    /// Non-negative weight, assumed polynomial in `n`.
    pub weight: Weight,
}

impl Edge {
    /// Returns the endpoint of the edge that is not `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x` is not an endpoint of the edge.
    #[inline]
    pub fn other(&self, x: NodeId) -> NodeId {
        if x == self.u {
            self.v
        } else if x == self.v {
            self.u
        } else {
            panic!(
                "vertex {x} is not an endpoint of edge {{{}, {}}}",
                self.u, self.v
            )
        }
    }

    /// Returns `true` if `x` is one of the endpoints.
    #[inline]
    pub fn has_endpoint(&self, x: NodeId) -> bool {
        self.u == x || self.v == x
    }

    /// Returns the endpoints as an ordered pair `(min, max)`.
    #[inline]
    pub fn ordered(&self) -> (NodeId, NodeId) {
        (self.u.min(self.v), self.u.max(self.v))
    }
}

/// An undirected, weighted multigraph with `n` vertices and stable edge ids.
///
/// Vertices are `0..n`. Parallel edges and self-loops are permitted by the
/// representation (the algorithms in this workspace never create self-loops,
/// and [`Graph::add_edge`] rejects them), which keeps edge identifiers simple.
///
/// # Example
///
/// ```
/// use graphs::Graph;
///
/// let mut g = Graph::new(3);
/// let e = g.add_edge(0, 1, 7);
/// g.add_edge(1, 2, 3);
/// assert_eq!(g.n(), 3);
/// assert_eq!(g.m(), 2);
/// assert_eq!(g.edge(e).weight, 7);
/// assert_eq!(g.degree(1), 2);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Graph {
    n: usize,
    edges: Vec<Edge>,
    adj: Vec<Vec<(NodeId, EdgeId)>>,
}

impl Graph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        Graph {
            n,
            edges: Vec::new(),
            adj: vec![Vec::new(); n],
        }
    }

    /// Creates a graph with `n` vertices from an iterator of `(u, v, weight)`
    /// triples.
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range or if an edge is a self-loop.
    pub fn from_edges<I>(n: usize, edges: I) -> Self
    where
        I: IntoIterator<Item = (NodeId, NodeId, Weight)>,
    {
        let mut g = Graph::new(n);
        for (u, v, w) in edges {
            g.add_edge(u, v, w);
        }
        g
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}` with the given weight and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `u` or `v` is out of range, or if `u == v` (self-loop).
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, weight: Weight) -> EdgeId {
        assert!(u < self.n, "endpoint {u} out of range (n = {})", self.n);
        assert!(v < self.n, "endpoint {v} out of range (n = {})", self.n);
        assert_ne!(u, v, "self-loops are not supported");
        let id = EdgeId(self.edges.len());
        self.edges.push(Edge { u, v, weight });
        self.adj[u].push((v, id));
        self.adj[v].push((u, id));
        id
    }

    /// Adds an unweighted (weight 1) edge.
    pub fn add_unit_edge(&mut self, u: NodeId, v: NodeId) -> EdgeId {
        self.add_edge(u, v, 1)
    }

    /// The edge with the given id.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> &Edge {
        &self.edges[id.0]
    }

    /// The weight of an edge.
    #[inline]
    pub fn weight(&self, id: EdgeId) -> Weight {
        self.edges[id.0].weight
    }

    /// Overwrites the weight of an edge.
    pub fn set_weight(&mut self, id: EdgeId, weight: Weight) {
        self.edges[id.0].weight = weight;
    }

    /// Iterator over `(EdgeId, &Edge)` in insertion order.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges.iter().enumerate().map(|(i, e)| (EdgeId(i), e))
    }

    /// Iterator over all edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.edges.len()).map(EdgeId)
    }

    /// Neighbors of `v` as `(neighbor, edge id)` pairs, including parallel edges.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[(NodeId, EdgeId)] {
        &self.adj[v]
    }

    /// Degree of `v` (counting parallel edges).
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v].len()
    }

    /// Total weight of all edges.
    pub fn total_weight(&self) -> Weight {
        self.edges.iter().map(|e| e.weight).sum()
    }

    /// Total weight of the edges in `set`.
    pub fn weight_of(&self, set: &EdgeSet) -> Weight {
        set.iter().map(|id| self.weight(id)).sum()
    }

    /// Looks up an edge id connecting `u` and `v`, if one exists.
    ///
    /// If there are parallel edges the one with the smallest id is returned.
    pub fn find_edge(&self, u: NodeId, v: NodeId) -> Option<EdgeId> {
        self.adj[u]
            .iter()
            .filter(|(nbr, _)| *nbr == v)
            .map(|&(_, id)| id)
            .min()
    }

    /// Returns the subgraph induced by the edge set as a new graph over the
    /// same vertex set. Edge ids are *not* preserved in the result; prefer
    /// passing [`EdgeSet`] masks to algorithms when id stability matters.
    pub fn edge_subgraph(&self, set: &EdgeSet) -> Graph {
        let mut g = Graph::new(self.n);
        for id in set.iter() {
            let e = self.edge(id);
            g.add_edge(e.u, e.v, e.weight);
        }
        g
    }

    /// An [`EdgeSet`] sized for this graph containing no edges.
    pub fn empty_edge_set(&self) -> EdgeSet {
        EdgeSet::new(self.m())
    }

    /// An [`EdgeSet`] sized for this graph containing every edge.
    pub fn full_edge_set(&self) -> EdgeSet {
        let mut s = EdgeSet::new(self.m());
        for id in self.edge_ids() {
            s.insert(id);
        }
        s
    }
}

/// A set of edges of a particular graph, stored as a bitmap over edge ids.
///
/// `EdgeSet` is the universal currency for "subgraph" in this workspace: the
/// spanning subgraph `H`, the augmentation `A`, candidate sets and MSTs are
/// all edge sets over the original input graph, which keeps edge identifiers
/// stable across every phase of the algorithms.
///
/// # Example
///
/// ```
/// use graphs::{EdgeSet, EdgeId};
///
/// let mut s = EdgeSet::new(4);
/// s.insert(EdgeId(1));
/// s.insert(EdgeId(3));
/// assert_eq!(s.len(), 2);
/// assert!(s.contains(EdgeId(3)));
/// assert_eq!(s.iter().collect::<Vec<_>>(), vec![EdgeId(1), EdgeId(3)]);
/// ```
#[derive(Clone, PartialEq, Eq, Default)]
pub struct EdgeSet {
    bits: Vec<bool>,
    count: usize,
}

impl EdgeSet {
    /// Creates an empty set over a universe of `m` edges.
    pub fn new(m: usize) -> Self {
        EdgeSet {
            bits: vec![false; m],
            count: 0,
        }
    }

    /// Creates a set over a universe of `m` edges from an iterator of ids.
    pub fn from_ids<I>(m: usize, ids: I) -> Self
    where
        I: IntoIterator<Item = EdgeId>,
    {
        let mut s = EdgeSet::new(m);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Size of the universe (number of edge ids representable).
    pub fn universe(&self) -> usize {
        self.bits.len()
    }

    /// Number of edges in the set.
    pub fn len(&self) -> usize {
        self.count
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Whether the set contains `id`.
    #[inline]
    pub fn contains(&self, id: EdgeId) -> bool {
        self.bits.get(id.0).copied().unwrap_or(false)
    }

    /// Inserts `id`, returning `true` if it was not already present.
    ///
    /// # Panics
    ///
    /// Panics if `id` is outside the universe.
    pub fn insert(&mut self, id: EdgeId) -> bool {
        assert!(id.0 < self.bits.len(), "edge id {id} outside universe");
        if self.bits[id.0] {
            false
        } else {
            self.bits[id.0] = true;
            self.count += 1;
            true
        }
    }

    /// Removes `id`, returning `true` if it was present.
    pub fn remove(&mut self, id: EdgeId) -> bool {
        if id.0 < self.bits.len() && self.bits[id.0] {
            self.bits[id.0] = false;
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Iterator over the edge ids in the set, in increasing order.
    pub fn iter(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.bits
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| EdgeId(i))
    }

    /// In-place union with another set over the same universe.
    ///
    /// # Panics
    ///
    /// Panics if the universes differ.
    pub fn union_with(&mut self, other: &EdgeSet) {
        assert_eq!(
            self.bits.len(),
            other.bits.len(),
            "edge set universes differ"
        );
        for (i, &b) in other.bits.iter().enumerate() {
            if b && !self.bits[i] {
                self.bits[i] = true;
                self.count += 1;
            }
        }
    }

    /// Returns the union of two sets over the same universe.
    pub fn union(&self, other: &EdgeSet) -> EdgeSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Returns the set difference `self \ other`.
    pub fn difference(&self, other: &EdgeSet) -> EdgeSet {
        assert_eq!(
            self.bits.len(),
            other.bits.len(),
            "edge set universes differ"
        );
        let mut out = EdgeSet::new(self.bits.len());
        for (i, &b) in self.bits.iter().enumerate() {
            if b && !other.bits[i] {
                out.insert(EdgeId(i));
            }
        }
        out
    }

    /// Returns the intersection of two sets over the same universe.
    pub fn intersection(&self, other: &EdgeSet) -> EdgeSet {
        assert_eq!(
            self.bits.len(),
            other.bits.len(),
            "edge set universes differ"
        );
        let mut out = EdgeSet::new(self.bits.len());
        for (i, &b) in self.bits.iter().enumerate() {
            if b && other.bits[i] {
                out.insert(EdgeId(i));
            }
        }
        out
    }

    /// Whether `self` is a subset of `other`.
    pub fn is_subset_of(&self, other: &EdgeSet) -> bool {
        self.iter().all(|id| other.contains(id))
    }

    /// The edge ids of the set collected into a vector.
    pub fn to_vec(&self) -> Vec<EdgeId> {
        self.iter().collect()
    }
}

impl fmt::Debug for EdgeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<EdgeId> for EdgeSet {
    /// Builds an edge set whose universe is just large enough for the largest id.
    fn from_iter<T: IntoIterator<Item = EdgeId>>(iter: T) -> Self {
        let ids: Vec<EdgeId> = iter.into_iter().collect();
        let max = ids.iter().map(|id| id.0 + 1).max().unwrap_or(0);
        EdgeSet::from_ids(max, ids)
    }
}

impl Extend<EdgeId> for EdgeSet {
    fn extend<T: IntoIterator<Item = EdgeId>>(&mut self, iter: T) {
        for id in iter {
            self.insert(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_edge_updates_adjacency_and_degree() {
        let mut g = Graph::new(4);
        let e01 = g.add_edge(0, 1, 5);
        let e12 = g.add_edge(1, 2, 3);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.edge(e01).weight, 5);
        assert_eq!(g.edge(e12).other(2), 1);
        assert_eq!(g.neighbors(0), &[(1, e01)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn add_edge_rejects_self_loop() {
        let mut g = Graph::new(2);
        g.add_edge(1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_rejects_out_of_range() {
        let mut g = Graph::new(2);
        g.add_edge(0, 2, 1);
    }

    #[test]
    fn parallel_edges_are_kept_distinct() {
        let mut g = Graph::new(2);
        let a = g.add_edge(0, 1, 1);
        let b = g.add_edge(0, 1, 9);
        assert_ne!(a, b);
        assert_eq!(g.m(), 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.find_edge(0, 1), Some(a));
    }

    #[test]
    fn from_edges_builds_expected_graph() {
        let g = Graph::from_edges(3, vec![(0, 1, 2), (1, 2, 4)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.total_weight(), 6);
    }

    #[test]
    fn edge_other_panics_for_non_endpoint() {
        let e = Edge {
            u: 0,
            v: 1,
            weight: 1,
        };
        assert_eq!(e.other(0), 1);
        assert_eq!(e.other(1), 0);
        let result = std::panic::catch_unwind(|| e.other(5));
        assert!(result.is_err());
    }

    #[test]
    fn edge_set_insert_remove_iter() {
        let mut s = EdgeSet::new(5);
        assert!(s.is_empty());
        assert!(s.insert(EdgeId(2)));
        assert!(!s.insert(EdgeId(2)));
        assert!(s.insert(EdgeId(4)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(EdgeId(2)));
        assert!(!s.contains(EdgeId(0)));
        assert_eq!(s.to_vec(), vec![EdgeId(2), EdgeId(4)]);
        assert!(s.remove(EdgeId(2)));
        assert!(!s.remove(EdgeId(2)));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn edge_set_union_difference_intersection() {
        let a = EdgeSet::from_ids(6, [EdgeId(0), EdgeId(1), EdgeId(2)]);
        let b = EdgeSet::from_ids(6, [EdgeId(2), EdgeId(3)]);
        let u = a.union(&b);
        assert_eq!(u.len(), 4);
        let d = a.difference(&b);
        assert_eq!(d.to_vec(), vec![EdgeId(0), EdgeId(1)]);
        let i = a.intersection(&b);
        assert_eq!(i.to_vec(), vec![EdgeId(2)]);
        assert!(i.is_subset_of(&a));
        assert!(i.is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn edge_subgraph_preserves_weights() {
        let mut g = Graph::new(3);
        let a = g.add_edge(0, 1, 10);
        let _b = g.add_edge(1, 2, 20);
        let set = EdgeSet::from_ids(g.m(), [a]);
        let sub = g.edge_subgraph(&set);
        assert_eq!(sub.n(), 3);
        assert_eq!(sub.m(), 1);
        assert_eq!(sub.total_weight(), 10);
    }

    #[test]
    fn weight_of_sums_only_selected_edges() {
        let mut g = Graph::new(3);
        let a = g.add_edge(0, 1, 10);
        let b = g.add_edge(1, 2, 20);
        let mut set = g.empty_edge_set();
        set.insert(b);
        assert_eq!(g.weight_of(&set), 20);
        set.insert(a);
        assert_eq!(g.weight_of(&set), 30);
    }

    #[test]
    fn full_and_empty_edge_sets() {
        let mut g = Graph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        assert_eq!(g.empty_edge_set().len(), 0);
        assert_eq!(g.full_edge_set().len(), 2);
    }

    #[test]
    fn from_iterator_sizes_universe() {
        let s: EdgeSet = vec![EdgeId(3), EdgeId(1)].into_iter().collect();
        assert_eq!(s.universe(), 4);
        assert_eq!(s.len(), 2);
    }
}
