//! Breadth-first search, distances, eccentricities and diameter.
//!
//! The CONGEST model's round complexities are stated in terms of the hop
//! diameter `D` of the communication graph, so the benchmark harness needs
//! exact (small graphs) and 2-approximate (large graphs) diameter
//! computations, as well as plain BFS trees.

use crate::graph::{EdgeId, EdgeSet, Graph, NodeId};
use std::collections::VecDeque;

/// The result of a breadth-first search from a root vertex.
#[derive(Clone, Debug)]
pub struct BfsTree {
    /// The root of the search.
    pub root: NodeId,
    /// `parent[v]` is the BFS parent of `v`, or `None` for the root and for
    /// unreachable vertices.
    pub parent: Vec<Option<NodeId>>,
    /// `parent_edge[v]` is the edge to the parent, or `None` likewise.
    pub parent_edge: Vec<Option<EdgeId>>,
    /// `dist[v]` is the hop distance from the root, or `usize::MAX` if
    /// unreachable.
    pub dist: Vec<usize>,
    /// Vertices in BFS (non-decreasing distance) order; unreachable vertices
    /// are omitted.
    pub order: Vec<NodeId>,
}

impl BfsTree {
    /// Whether every vertex of the graph was reached.
    pub fn is_spanning(&self) -> bool {
        self.dist.iter().all(|&d| d != usize::MAX)
    }

    /// The maximum distance of any reachable vertex from the root
    /// (the root's eccentricity restricted to its component).
    pub fn eccentricity(&self) -> usize {
        self.dist
            .iter()
            .copied()
            .filter(|&d| d != usize::MAX)
            .max()
            .unwrap_or(0)
    }

    /// The set of tree edges (parent pointers) as an [`EdgeSet`] over the
    /// original graph.
    pub fn tree_edges(&self, graph: &Graph) -> EdgeSet {
        let mut set = graph.empty_edge_set();
        for e in self.parent_edge.iter().flatten() {
            set.insert(*e);
        }
        set
    }
}

/// Runs BFS from `root` over all edges of `graph`.
pub fn bfs(graph: &Graph, root: NodeId) -> BfsTree {
    bfs_in(graph, &graph.full_edge_set(), root)
}

/// Runs BFS from `root` using only the edges in `edges`.
///
/// # Panics
///
/// Panics if `root` is out of range.
pub fn bfs_in(graph: &Graph, edges: &EdgeSet, root: NodeId) -> BfsTree {
    assert!(root < graph.n(), "root {root} out of range");
    let n = graph.n();
    let mut parent = vec![None; n];
    let mut parent_edge = vec![None; n];
    let mut dist = vec![usize::MAX; n];
    let mut order = Vec::with_capacity(n);
    let mut queue = VecDeque::new();
    dist[root] = 0;
    queue.push_back(root);
    while let Some(v) = queue.pop_front() {
        order.push(v);
        for &(u, e) in graph.neighbors(v) {
            if edges.contains(e) && dist[u] == usize::MAX {
                dist[u] = dist[v] + 1;
                parent[u] = Some(v);
                parent_edge[u] = Some(e);
                queue.push_back(u);
            }
        }
    }
    BfsTree {
        root,
        parent,
        parent_edge,
        dist,
        order,
    }
}

/// Hop distances from `root` restricted to `edges` (`usize::MAX` when
/// unreachable).
pub fn distances_in(graph: &Graph, edges: &EdgeSet, root: NodeId) -> Vec<usize> {
    bfs_in(graph, edges, root).dist
}

/// Exact (hop) diameter of the graph, computed with one BFS per vertex.
///
/// Returns `None` if the graph is disconnected or has no vertices.
/// Intended for the modest instance sizes used in tests and benchmarks.
pub fn diameter(graph: &Graph) -> Option<usize> {
    diameter_in(graph, &graph.full_edge_set())
}

/// Exact (hop) diameter restricted to an edge set.
///
/// Returns `None` if the restricted graph is disconnected or empty.
pub fn diameter_in(graph: &Graph, edges: &EdgeSet) -> Option<usize> {
    if graph.n() == 0 {
        return None;
    }
    let mut best = 0;
    for v in 0..graph.n() {
        let t = bfs_in(graph, edges, v);
        if !t.is_spanning() {
            return None;
        }
        best = best.max(t.eccentricity());
    }
    Some(best)
}

/// A 2-approximation of the diameter using two BFS passes (the second from a
/// farthest vertex of the first). Returns `None` when disconnected.
///
/// The returned value `d` satisfies `true_diameter / 2 <= d <= true_diameter`
/// for connected graphs; on trees it is exact.
pub fn approx_diameter(graph: &Graph) -> Option<usize> {
    if graph.n() == 0 {
        return None;
    }
    let first = bfs(graph, 0);
    if !first.is_spanning() {
        return None;
    }
    let far = first
        .dist
        .iter()
        .enumerate()
        .max_by_key(|(_, &d)| d)
        .map(|(v, _)| v)
        .unwrap_or(0);
    let second = bfs(graph, far);
    Some(second.eccentricity())
}

/// The largest vertex count for which [`diameter_hint`] computes the exact
/// diameter; above it, the double-sweep 2-approximation is used.
pub const EXACT_DIAMETER_MAX_N: usize = 4096;

/// A diameter figure for round-*accounting* purposes: exact (one BFS per
/// vertex) up to [`EXACT_DIAMETER_MAX_N`] vertices — which covers every test
/// and benchmark instance — and the [`approx_diameter`] double sweep beyond,
/// where `O(n · m)` exact computation would dominate the solve itself
/// (charged CONGEST rounds stay within a factor 2 of the exact-`D` charge).
/// Deterministic for a given graph. Returns `None` when disconnected.
pub fn diameter_hint(graph: &Graph) -> Option<usize> {
    if graph.n() <= EXACT_DIAMETER_MAX_N {
        diameter(graph)
    } else {
        approx_diameter(graph)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn bfs_on_path_gives_linear_distances() {
        let g = generators::path(5, 1);
        let t = bfs(&g, 0);
        assert_eq!(t.dist, vec![0, 1, 2, 3, 4]);
        assert!(t.is_spanning());
        assert_eq!(t.eccentricity(), 4);
        assert_eq!(t.order.len(), 5);
        assert_eq!(t.parent[0], None);
        assert_eq!(t.parent[3], Some(2));
    }

    #[test]
    fn bfs_respects_edge_mask() {
        let mut g = Graph::new(3);
        let a = g.add_edge(0, 1, 1);
        let _b = g.add_edge(1, 2, 1);
        let only_a = EdgeSet::from_ids(g.m(), [a]);
        let t = bfs_in(&g, &only_a, 0);
        assert_eq!(t.dist[1], 1);
        assert_eq!(t.dist[2], usize::MAX);
        assert!(!t.is_spanning());
    }

    #[test]
    fn tree_edges_form_spanning_tree_on_connected_graph() {
        let g = generators::cycle(6, 1);
        let t = bfs(&g, 0);
        let edges = t.tree_edges(&g);
        assert_eq!(edges.len(), 5);
    }

    #[test]
    fn diameter_of_cycle_and_path() {
        let c = generators::cycle(8, 1);
        assert_eq!(diameter(&c), Some(4));
        let p = generators::path(8, 1);
        assert_eq!(diameter(&p), Some(7));
        assert_eq!(approx_diameter(&p), Some(7));
    }

    #[test]
    fn diameter_of_disconnected_graph_is_none() {
        let g = Graph::new(3);
        assert_eq!(diameter(&g), None);
        assert_eq!(approx_diameter(&g), None);
    }

    #[test]
    fn approx_diameter_within_factor_two() {
        let g = generators::complete(9, 1);
        let exact = diameter(&g).unwrap();
        let approx = approx_diameter(&g).unwrap();
        assert!(approx <= exact);
        assert!(approx * 2 >= exact);
    }

    #[test]
    fn distances_in_matches_bfs() {
        let g = generators::cycle(5, 1);
        let d = distances_in(&g, &g.full_edge_set(), 2);
        assert_eq!(d[2], 0);
        assert_eq!(d[0], 2);
        assert_eq!(d[4], 2);
    }
}
