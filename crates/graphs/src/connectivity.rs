//! Connectivity queries: components, bridges, exact edge connectivity and
//! k-edge-connectivity certification.
//!
//! These are the *verifiers* for every algorithm in the workspace: the
//! distributed approximation algorithms produce an edge set `H`, and the tests
//! certify `H` with [`is_k_edge_connected_in`] (exact, max-flow based) before
//! any approximation ratio is measured.

use crate::dsu::DisjointSets;
use crate::graph::{EdgeId, EdgeSet, Graph, NodeId};
use crate::maxflow;

/// Connected-component labels (`labels[v]` is the representative of `v`'s
/// component) and the number of components, restricted to `edges`.
pub fn connected_components_in(graph: &Graph, edges: &EdgeSet) -> (Vec<usize>, usize) {
    let mut dsu = DisjointSets::new(graph.n());
    for id in edges.iter() {
        let e = graph.edge(id);
        dsu.union(e.u, e.v);
    }
    let count = dsu.component_count();
    (dsu.labels(), count)
}

/// Whether the subgraph `(V, edges)` is connected. Graphs with zero or one
/// vertex are connected.
pub fn is_connected_in(graph: &Graph, edges: &EdgeSet) -> bool {
    if graph.n() <= 1 {
        return true;
    }
    let (_, count) = connected_components_in(graph, edges);
    count == 1
}

/// Whether the whole graph is connected.
pub fn is_connected(graph: &Graph) -> bool {
    is_connected_in(graph, &graph.full_edge_set())
}

/// Whether `(V, edges \ removed)` is connected — i.e. whether `removed` fails
/// to be a cut of the subgraph.
///
/// This is the exact removal test at the heart of cut-candidate verification,
/// so it runs word-wise over the packed [`EdgeSet`]: the removed ids (a
/// handful — cut-sized) are folded into per-word clear-masks up front, each
/// word of the set is scanned with trailing-zeros extraction, and the scan
/// stops as soon as the union-find reaches one component.
pub fn is_connected_after_removal(graph: &Graph, edges: &EdgeSet, removed: &[EdgeId]) -> bool {
    let mut dsu = DisjointSets::new(graph.n());
    // Per-word masks of the removed bits ("remove" = AND with the negation).
    // `removed` has cut size (k-ish) entries, so a tiny sorted vector beats
    // any map — and beats the old `removed.contains(&id)` probe per set edge.
    let mut clear: Vec<(usize, u64)> = Vec::with_capacity(removed.len());
    for id in removed {
        let word = id.0 >> 6;
        let bit = 1u64 << (id.0 & 63);
        match clear.iter_mut().find(|(w, _)| *w == word) {
            Some((_, mask)) => *mask |= bit,
            None => clear.push((word, bit)),
        }
    }
    for (wi, &w) in edges.words().iter().enumerate() {
        let mut w = w;
        if w == 0 {
            continue;
        }
        if let Some(&(_, mask)) = clear.iter().find(|(cw, _)| *cw == wi) {
            w &= !mask;
        }
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            let e = graph.edge(EdgeId((wi << 6) | bit));
            if dsu.union(e.u, e.v) && dsu.component_count() == 1 {
                return true;
            }
        }
    }
    dsu.component_count() == 1
}

/// All bridges (cut edges) of the subgraph `(V, edges)`, via Tarjan's
/// low-link algorithm. A bridge is exactly a cut of size 1.
///
/// Parallel edges are handled correctly: two parallel edges are never bridges.
pub fn bridges_in(graph: &Graph, edges: &EdgeSet) -> Vec<EdgeId> {
    let n = graph.n();
    let mut disc = vec![usize::MAX; n];
    let mut low = vec![usize::MAX; n];
    let mut bridges = Vec::new();
    let mut timer = 0usize;

    // Iterative DFS to avoid recursion limits on path-like graphs.
    #[derive(Clone, Copy)]
    struct Frame {
        v: NodeId,
        parent_edge: Option<EdgeId>,
        next_idx: usize,
    }

    for start in 0..n {
        if disc[start] != usize::MAX {
            continue;
        }
        let mut stack = vec![Frame {
            v: start,
            parent_edge: None,
            next_idx: 0,
        }];
        disc[start] = timer;
        low[start] = timer;
        timer += 1;
        while let Some(frame) = stack.last().copied() {
            let v = frame.v;
            if frame.next_idx < graph.neighbors(v).len() {
                stack.last_mut().expect("stack non-empty").next_idx += 1;
                let (u, e) = graph.neighbors(v)[frame.next_idx];
                if !edges.contains(e) || Some(e) == frame.parent_edge {
                    continue;
                }
                if disc[u] == usize::MAX {
                    disc[u] = timer;
                    low[u] = timer;
                    timer += 1;
                    stack.push(Frame {
                        v: u,
                        parent_edge: Some(e),
                        next_idx: 0,
                    });
                } else {
                    low[v] = low[v].min(disc[u]);
                }
            } else {
                stack.pop();
                if let Some(parent_frame) = stack.last() {
                    let p = parent_frame.v;
                    low[p] = low[p].min(low[v]);
                    if low[v] > disc[p] {
                        bridges.push(frame.parent_edge.expect("non-root frame has a parent edge"));
                    }
                }
            }
        }
    }
    bridges
}

/// All bridges of the whole graph.
pub fn bridges(graph: &Graph) -> Vec<EdgeId> {
    bridges_in(graph, &graph.full_edge_set())
}

/// Whether the subgraph `(V, edges)` is 2-edge-connected: connected, at least
/// two vertices, and bridgeless.
pub fn is_two_edge_connected_in(graph: &Graph, edges: &EdgeSet) -> bool {
    graph.n() >= 2 && is_connected_in(graph, edges) && bridges_in(graph, edges).is_empty()
}

/// Exact edge connectivity of the subgraph `(V, edges)`.
///
/// Returns 0 for disconnected (or single-vertex) subgraphs. Computed as
/// `min_{t != 0} maxflow(0, t)`, which is exact because a global minimum cut
/// separates vertex 0 from at least one other vertex.
pub fn edge_connectivity_in(graph: &Graph, edges: &EdgeSet) -> usize {
    let n = graph.n();
    if n <= 1 {
        return 0;
    }
    if !is_connected_in(graph, edges) {
        return 0;
    }
    let mut flow = maxflow::UnitFlow::new(graph, edges);
    let mut best = u32::MAX;
    for t in 1..n {
        best = best.min(flow.max_flow_capped(0, t, best));
        if best == 0 {
            break;
        }
    }
    best as usize
}

/// Exact edge connectivity of the whole graph.
pub fn edge_connectivity(graph: &Graph) -> usize {
    edge_connectivity_in(graph, &graph.full_edge_set())
}

/// Whether the subgraph `(V, edges)` is k-edge-connected, with early exit as
/// soon as a cut smaller than `k` is certain.
///
/// `k == 0` is trivially true; `k == 1` reduces to connectivity.
pub fn is_k_edge_connected_in(graph: &Graph, edges: &EdgeSet, k: usize) -> bool {
    if k == 0 {
        return true;
    }
    if graph.n() <= 1 {
        // A single vertex is k-edge-connected for every k by convention here;
        // the paper's instances always have n >= 2.
        return true;
    }
    if !is_connected_in(graph, edges) {
        return false;
    }
    if k == 1 {
        return true;
    }
    if k == 2 {
        // Linear-time special case: 2-edge-connected = connected + bridgeless
        // (Tarjan), instead of n - 1 capped max-flows. This is what makes
        // `kecss verify --k 2` feasible on 10⁶-edge instances.
        return bridges_in(graph, edges).is_empty();
    }
    let k = k as u32;
    let mut flow = maxflow::UnitFlow::new(graph, edges);
    for t in 1..graph.n() {
        if flow.max_flow_capped(0, t, k) < k {
            return false;
        }
    }
    true
}

/// Whether the whole graph is k-edge-connected.
pub fn is_k_edge_connected(graph: &Graph, k: usize) -> bool {
    is_k_edge_connected_in(graph, &graph.full_edge_set(), k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_disconnected_graph() {
        let mut g = Graph::new(5);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        let (labels, count) = connected_components_in(&g, &g.full_edge_set());
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[2], labels[3]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[4], labels[0]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn trivial_graphs_are_connected() {
        assert!(is_connected(&Graph::new(0)));
        assert!(is_connected(&Graph::new(1)));
    }

    #[test]
    fn path_edges_are_all_bridges() {
        let g = generators::path(6, 1);
        let b = bridges(&g);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn cycle_has_no_bridges() {
        let g = generators::cycle(7, 1);
        assert!(bridges(&g).is_empty());
        assert!(is_two_edge_connected_in(&g, &g.full_edge_set()));
    }

    #[test]
    fn bridge_in_barbell_graph() {
        // Two triangles joined by a single edge: that edge is the only bridge.
        let mut g = Graph::new(6);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 0, 1);
        g.add_edge(3, 4, 1);
        g.add_edge(4, 5, 1);
        g.add_edge(5, 3, 1);
        let bridge = g.add_edge(2, 3, 1);
        let b = bridges(&g);
        assert_eq!(b, vec![bridge]);
        assert!(!is_two_edge_connected_in(&g, &g.full_edge_set()));
    }

    #[test]
    fn parallel_edges_are_not_bridges() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 1, 1);
        assert!(bridges(&g).is_empty());
    }

    #[test]
    fn bridges_respect_edge_mask() {
        let g = generators::cycle(4, 1);
        let mut mask = g.full_edge_set();
        // Remove one cycle edge: the rest becomes a path, all bridges.
        mask.remove(EdgeId(0));
        assert_eq!(bridges_in(&g, &mask).len(), 3);
    }

    #[test]
    fn edge_connectivity_of_standard_graphs() {
        assert_eq!(edge_connectivity(&generators::path(5, 1)), 1);
        assert_eq!(edge_connectivity(&generators::cycle(5, 1)), 2);
        assert_eq!(edge_connectivity(&generators::complete(5, 1)), 4);
        assert_eq!(edge_connectivity(&generators::harary(4, 10, 1)), 4);
        assert_eq!(edge_connectivity(&Graph::new(3)), 0);
    }

    #[test]
    fn k_edge_connected_certification() {
        let g = generators::harary(3, 8, 1);
        for k in 0..=3 {
            assert!(is_k_edge_connected(&g, k), "should be {k}-edge-connected");
        }
        assert!(!is_k_edge_connected(&g, 4));
    }

    #[test]
    fn removal_check_detects_cuts() {
        let g = generators::cycle(5, 1);
        let all = g.full_edge_set();
        assert!(is_connected_after_removal(&g, &all, &[EdgeId(0)]));
        assert!(!is_connected_after_removal(
            &g,
            &all,
            &[EdgeId(0), EdgeId(2)]
        ));
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        let g = generators::path(20_000, 1);
        assert_eq!(bridges(&g).len(), 19_999);
    }
}
