//! Graph substrate for the `kecss` workspace.
//!
//! This crate provides the sequential graph machinery that the distributed
//! algorithms of [Dory, PODC 2018] are built on and evaluated against:
//!
//! * [`Graph`] — an undirected, weighted multigraph with stable edge
//!   identifiers ([`EdgeId`]), supporting masked views through [`EdgeSet`].
//! * [`generators`] — synthetic workloads: Harary graphs, random
//!   k-edge-connected graphs, rings of cliques, grids/tori, paths and cycles,
//!   with optional random polynomial weights.
//! * [`connectivity`] — connected components, bridges, cut pairs and exact
//!   edge connectivity (via unit-capacity max-flow).
//! * [`mst`] — minimum spanning trees (Kruskal, Prim).
//! * [`tree`] — rooted spanning trees with depth, parent pointers, LCA
//!   queries and tree paths.
//! * [`dsu`] — union–find.
//! * [`bfs`] — breadth-first search, eccentricities and diameter.
//! * [`io`] — instance and solution files: the plain-text formats, the
//!   `KGB1` instance and `KGS1` solution binary formats (DESIGN.md §10) and
//!   extension-based autodetection.
//! * [`stream`] — out-of-core ingest: chunked record cursors over both
//!   instance formats ([`stream::RecordCursor`]) and the two-pass streaming
//!   CSR build ([`Graph::from_edge_stream`]), with [`stream::peek_header`]
//!   for pre-ingest admission checks.
//!
//! # Example
//!
//! ```
//! use graphs::{Graph, connectivity, mst};
//!
//! // A weighted 4-cycle plus one chord.
//! let mut g = Graph::new(4);
//! g.add_edge(0, 1, 1);
//! g.add_edge(1, 2, 2);
//! g.add_edge(2, 3, 1);
//! g.add_edge(3, 0, 5);
//! g.add_edge(0, 2, 2);
//!
//! assert!(connectivity::is_connected(&g));
//! assert_eq!(connectivity::edge_connectivity(&g), 2);
//! let t = mst::kruskal(&g);
//! assert_eq!(t.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfs;
pub mod connectivity;
pub mod dsu;
pub mod generators;
pub mod graph;
pub mod io;
pub mod maxflow;
pub mod mst;
pub mod stream;
pub mod tree;

pub use graph::{Edge, EdgeId, EdgeSet, Graph, NodeId, Weight};
pub use tree::RootedTree;

// The `kecss_runtime` executor shares graphs, edge sets and trees across
// worker threads by reference; lock the auto-trait guarantees in at compile
// time so a future field change cannot silently lose them.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Graph>();
    assert_send_sync::<Edge>();
    assert_send_sync::<EdgeSet>();
    assert_send_sync::<RootedTree>();
};
