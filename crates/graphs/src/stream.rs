//! Out-of-core instance ingest: streaming record cursors and the two-pass
//! CSR build.
//!
//! The `slurp then build` readers in [`crate::io`] copy a whole file into
//! memory before a single edge exists; at the road-network scale the ROADMAP
//! targets (10⁸ edges, gigabytes on disk) that buffer dominates peak RSS.
//! This module replaces the ingest path with two pieces:
//!
//! * [`RecordCursor`] — a cursor over an instance's edge records through any
//!   [`io::Read`]. [`BinaryCursor`] walks `KGB1`'s fixed-stride 16-byte
//!   records through a bounded chunk buffer (records may straddle chunk
//!   boundaries and arbitrarily short reads); [`TextCursor`] streams the
//!   plain-text format line by line and carries 1-based line numbers into
//!   every error.
//! * [`Graph::from_edge_stream`] — a two-pass counting-sort CSR builder
//!   that opens the source twice: pass 1 counts per-vertex degrees (and the
//!   edge count for formats that do not declare one), pass 2 places the
//!   `(neighbor, EdgeId)` entries straight into the final arrays. Nothing is
//!   materialized beyond the graph's own storage — no file buffer, no
//!   amortized-doubling edge vector — and the placement order equals the
//!   legacy `add_edge` + `freeze()` order, so the frozen CSR is
//!   bit-identical to the in-memory path (a determinism requirement:
//!   adjacency order is observable through DFS tie-breaks and message
//!   ordering).
//!
//! [`peek_header`] exposes the header (vertex count, declared edge count)
//! without touching the body, so a service can enforce instance caps
//! *before* ingesting a single record (`kecss_server`'s `file:` specs do).

use crate::graph::{Edge, EdgeId, Graph};
use crate::io::{GraphFormat, GraphIoError, BINARY_MAGIC};
use std::io::{self, BufRead, BufReader, Read};
use std::path::Path;

/// Size of one `KGB1` edge record: `u32 u, u32 v, u64 weight`.
const RECORD_BYTES: usize = 16;

/// Size of the `KGB1` header: magic + LE u64 vertex and edge counts.
const HEADER_BYTES: usize = 4 + 8 + 8;

/// Default chunk-buffer capacity of the streaming cursors (bytes).
const DEFAULT_CHUNK_BYTES: usize = 64 * 1024;

/// One streamed edge record: endpoints and weight, already bounds-checked
/// against the header's vertex count (and self-loop-free).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EdgeRecord {
    /// One endpoint (`< n`).
    pub u: usize,
    /// The other endpoint (`< n`, `!= u`).
    pub v: usize,
    /// The edge weight.
    pub weight: u64,
}

/// What an instance header declares before any edge record is read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StreamHeader {
    /// The vertex count.
    pub n: usize,
    /// The edge count, for formats that declare one up front (`KGB1` does;
    /// the text format does not).
    pub declared_m: Option<u64>,
}

/// A streaming cursor over an instance's edge records, in `EdgeId` order.
///
/// Both on-disk formats sit behind this trait ([`BinaryCursor`],
/// [`TextCursor`]), so every consumer — the two-pass CSR build, the CLI, the
/// service's `file:` specs — ingests either format through the same chunked,
/// bounded-memory discipline. Records are validated as they are produced:
/// endpoints in range, no self-loops, with the record's position (record
/// index or 1-based line number) carried into the error.
pub trait RecordCursor {
    /// The header, available from construction (before any record).
    fn header(&self) -> StreamHeader;

    /// The next edge record, or `Ok(None)` at a clean end of input.
    ///
    /// # Errors
    ///
    /// Returns [`GraphIoError`] on I/O failures or malformed content
    /// (truncated records, trailing bytes, invalid endpoints).
    fn next_record(&mut self) -> Result<Option<EdgeRecord>, GraphIoError>;
}

/// Streams `KGB1` fixed-stride records through a bounded chunk buffer.
///
/// The cursor never holds more than one chunk (64 KiB by default) of the
/// body in memory; records that straddle a chunk boundary — or a reader that
/// hands out one byte at a time — are reassembled transparently. The header
/// is read and validated at construction, so the declared vertex and edge
/// counts are available before any record is ingested.
#[derive(Debug)]
pub struct BinaryCursor<R: Read> {
    source: R,
    n: usize,
    m: u64,
    produced: u64,
    buf: Vec<u8>,
    filled: usize,
    pos: usize,
}

impl<R: Read> BinaryCursor<R> {
    /// Opens a cursor with the default chunk capacity, reading and
    /// validating the `KGB1` header.
    ///
    /// # Errors
    ///
    /// Returns [`GraphIoError::Format`] on a short or bad header (wrong
    /// magic, vertex count beyond the u32 endpoint range, implausible edge
    /// count) and propagates I/O errors.
    pub fn new(source: R) -> Result<Self, GraphIoError> {
        Self::with_chunk_capacity(source, DEFAULT_CHUNK_BYTES)
    }

    /// Opens a cursor whose chunk buffer holds `capacity` bytes (clamped to
    /// at least one record). Small capacities force records to straddle
    /// refills; the tests use this to exercise the reassembly path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`BinaryCursor::new`].
    pub fn with_chunk_capacity(mut source: R, capacity: usize) -> Result<Self, GraphIoError> {
        let mut header = [0u8; HEADER_BYTES];
        let mut got = 0;
        while got < HEADER_BYTES {
            let read = source.read(&mut header[got..])?;
            if read == 0 {
                return Err(GraphIoError::Format(
                    "binary instance is shorter than the KGB1 header".into(),
                ));
            }
            got += read;
        }
        if header[0..4] != BINARY_MAGIC {
            return Err(GraphIoError::Format(format!(
                "bad magic {:02x?} (expected \"KGB1\"); is this a binary instance?",
                &header[0..4]
            )));
        }
        let le_u64 =
            |at: usize| u64::from_le_bytes(header[at..at + 8].try_into().expect("8-byte slice"));
        let n = le_u64(4);
        let m = le_u64(12);
        // The writer rejects n > u32::MAX (u32 endpoints), so a larger header
        // value can only be a corrupt or hostile file; reject it before it
        // can size any allocation.
        if n > u64::from(u32::MAX) {
            return Err(GraphIoError::Format(format!(
                "binary instance declares {n} vertices, beyond the format's u32 endpoint range"
            )));
        }
        // Checked arithmetic: a crafted edge count must not overflow the
        // body-length bookkeeping downstream (the CSR build sizes `2 * m`
        // entries from this number).
        if usize::try_from(m)
            .ok()
            .and_then(|m| m.checked_mul(RECORD_BYTES))
            .is_none()
        {
            return Err(GraphIoError::Format(format!(
                "binary instance declares an implausible edge count {m}"
            )));
        }
        Ok(BinaryCursor {
            source,
            n: n as usize,
            m,
            produced: 0,
            buf: vec![0u8; capacity.max(RECORD_BYTES)],
            filled: 0,
            pos: 0,
        })
    }

    /// Compacts the unconsumed tail to the front of the chunk buffer and
    /// refills from the source until a whole record is available or the
    /// source is exhausted.
    fn refill(&mut self) -> Result<(), io::Error> {
        if self.pos > 0 {
            self.buf.copy_within(self.pos..self.filled, 0);
            self.filled -= self.pos;
            self.pos = 0;
        }
        while self.filled < RECORD_BYTES {
            let read = self.source.read(&mut self.buf[self.filled..])?;
            if read == 0 {
                break;
            }
            self.filled += read;
        }
        Ok(())
    }
}

impl<R: Read> RecordCursor for BinaryCursor<R> {
    fn header(&self) -> StreamHeader {
        StreamHeader {
            n: self.n,
            declared_m: Some(self.m),
        }
    }

    fn next_record(&mut self) -> Result<Option<EdgeRecord>, GraphIoError> {
        if self.produced == self.m {
            // The declared records are all delivered; anything further —
            // buffered or still in the source — is trailing garbage.
            if self.pos < self.filled || self.source.read(&mut [0u8; 1])? != 0 {
                return Err(GraphIoError::Format(format!(
                    "binary instance carries trailing bytes after its {} declared edge records",
                    self.m
                )));
            }
            return Ok(None);
        }
        if self.filled - self.pos < RECORD_BYTES {
            self.refill()?;
        }
        if self.filled - self.pos < RECORD_BYTES {
            return Err(GraphIoError::Format(format!(
                "binary instance declares {} edges but its body ends after {}",
                self.m, self.produced
            )));
        }
        let record = &self.buf[self.pos..self.pos + RECORD_BYTES];
        let u = u32::from_le_bytes(record[0..4].try_into().expect("4-byte slice")) as usize;
        let v = u32::from_le_bytes(record[4..8].try_into().expect("4-byte slice")) as usize;
        let weight = u64::from_le_bytes(record[8..16].try_into().expect("8-byte slice"));
        self.pos += RECORD_BYTES;
        if u >= self.n || v >= self.n || u == v {
            return Err(GraphIoError::Format(format!(
                "edge record {}: invalid endpoints {u} {v}",
                self.produced
            )));
        }
        self.produced += 1;
        Ok(Some(EdgeRecord { u, v, weight }))
    }
}

/// Streams the plain-text format line by line through a [`BufReader`],
/// tracking 1-based physical line numbers (comments and blanks included) so
/// every parse error names the exact line.
#[derive(Debug)]
pub struct TextCursor<R: Read> {
    source: BufReader<R>,
    n: usize,
    /// 1-based number of the last line read (0 before the first line).
    line_no: u64,
    line: String,
}

impl<R: Read> TextCursor<R> {
    /// Opens a cursor with the default chunk capacity, consuming lines up to
    /// and including the vertex-count line.
    ///
    /// # Errors
    ///
    /// Returns [`GraphIoError::Format`] if the input has no data line or the
    /// first data line is not a vertex count; propagates I/O errors.
    pub fn new(source: R) -> Result<Self, GraphIoError> {
        Self::with_chunk_capacity(source, DEFAULT_CHUNK_BYTES)
    }

    /// Opens a cursor whose internal [`BufReader`] holds `capacity` bytes.
    /// Small capacities force lines to straddle refills; the tests use this
    /// to exercise the buffering path.
    ///
    /// # Errors
    ///
    /// Same conditions as [`TextCursor::new`].
    pub fn with_chunk_capacity(source: R, capacity: usize) -> Result<Self, GraphIoError> {
        let mut cursor = TextCursor {
            source: BufReader::with_capacity(capacity.max(1), source),
            n: 0,
            line_no: 0,
            line: String::new(),
        };
        match cursor.next_data_line()? {
            None => Err(GraphIoError::Format("empty instance file".into())),
            Some(()) => {
                cursor.n = cursor.line.trim().parse().map_err(|_| {
                    GraphIoError::Format(format!(
                        "line {}: the first data line must be the vertex count",
                        cursor.line_no
                    ))
                })?;
                Ok(cursor)
            }
        }
    }

    /// Advances `self.line` to the next non-blank, non-comment line,
    /// returning `Ok(None)` at end of input.
    fn next_data_line(&mut self) -> Result<Option<()>, GraphIoError> {
        loop {
            self.line.clear();
            if self.source.read_line(&mut self.line)? == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let trimmed = self.line.trim();
            if !trimmed.is_empty() && !trimmed.starts_with('#') {
                return Ok(Some(()));
            }
        }
    }
}

impl<R: Read> RecordCursor for TextCursor<R> {
    fn header(&self) -> StreamHeader {
        StreamHeader {
            n: self.n,
            declared_m: None,
        }
    }

    fn next_record(&mut self) -> Result<Option<EdgeRecord>, GraphIoError> {
        if self.next_data_line()?.is_none() {
            return Ok(None);
        }
        let line_no = self.line_no;
        let mut parts = self.line.split_whitespace();
        let parse = |part: Option<&str>, what: &str| -> Result<u64, GraphIoError> {
            let token = part
                .ok_or_else(|| GraphIoError::Format(format!("line {line_no}: missing {what}")))?;
            token.parse().map_err(|_| {
                GraphIoError::Format(format!("line {line_no}: malformed {what} '{token}'"))
            })
        };
        let u = parse(parts.next(), "endpoint u")? as usize;
        let v = parse(parts.next(), "endpoint v")? as usize;
        let weight = parse(parts.next(), "weight")?;
        if u >= self.n || v >= self.n || u == v {
            return Err(GraphIoError::Format(format!(
                "line {line_no}: invalid endpoints {u} {v} (n = {})",
                self.n
            )));
        }
        Ok(Some(EdgeRecord { u, v, weight }))
    }
}

/// Reads just the header of an instance file — the `KGB1` header, or the
/// text format's leading comment block plus vertex-count line — without
/// touching the body. This is how a service bounds a submitted instance
/// *before* ingesting it: the vertex count (and, for binary, the edge count)
/// is known after a few dozen bytes.
///
/// # Errors
///
/// Propagates I/O errors and header-level format errors.
pub fn peek_header(path: &Path) -> Result<StreamHeader, GraphIoError> {
    let file = std::fs::File::open(path)?;
    match GraphFormat::from_path(path) {
        GraphFormat::Binary => Ok(BinaryCursor::new(file)?.header()),
        GraphFormat::Text => Ok(TextCursor::new(file)?.header()),
    }
}

impl Graph {
    /// Builds a frozen graph from a re-openable edge-record stream in two
    /// passes, never materializing an intermediate edge list or file buffer.
    ///
    /// `open` is called twice (e.g. opening the same file twice). **Pass 1**
    /// counts per-vertex degrees and the edge count; **pass 2** — after the
    /// exact-size allocations — places the `(neighbor, EdgeId)` CSR entries
    /// and the per-edge records directly into their final slots, in stream
    /// order. Because both formats stream records in `EdgeId` order, the
    /// placement order equals the legacy `add_edge` push order, and the
    /// resulting frozen CSR is bit-identical to `add_edge` + `freeze()` —
    /// peak memory is the final graph footprint itself (edge array + CSR +
    /// offsets), with no transient proportional to the file size.
    ///
    /// If the source changes between the passes (header or record count
    /// mismatch), the build fails rather than producing a torn graph.
    ///
    /// # Errors
    ///
    /// Propagates open, I/O and format errors from the cursors, and returns
    /// [`GraphIoError::Format`] on a declared-versus-actual edge-count
    /// mismatch or a source that changed between passes.
    pub fn from_edge_stream<C, F>(mut open: F) -> Result<Graph, GraphIoError>
    where
        C: RecordCursor,
        F: FnMut() -> Result<C, GraphIoError>,
    {
        // Pass 1: degree counts (straight into what becomes the CSR offset
        // array) and the actual record count.
        let mut cursor = open()?;
        let header = cursor.header();
        let n = header.n;
        let mut offsets = vec![0usize; n + 1];
        let mut m = 0usize;
        while let Some(record) = cursor.next_record()? {
            offsets[record.u + 1] += 1;
            offsets[record.v + 1] += 1;
            m += 1;
        }
        if let Some(declared) = header.declared_m {
            // The binary cursor enforces this itself; keep the contract
            // explicit for any future cursor that declares a count.
            if declared != m as u64 {
                return Err(GraphIoError::Format(format!(
                    "instance declares {declared} edges but streams {m}"
                )));
            }
        }
        for v in 0..n {
            offsets[v + 1] += offsets[v];
        }

        // Pass 2: exact-size allocations, then direct placement.
        let mut cursor = open()?;
        if cursor.header().n != n {
            return Err(GraphIoError::Format(
                "instance changed between streaming passes (vertex count differs)".into(),
            ));
        }
        let mut edges: Vec<Edge> = Vec::with_capacity(m);
        let mut entries = vec![(0usize, EdgeId(0)); 2 * m];
        let mut placement = offsets.clone();
        while let Some(record) = cursor.next_record()? {
            let id = EdgeId(edges.len());
            if id.index() == m {
                return Err(GraphIoError::Format(
                    "instance changed between streaming passes (more records than counted)".into(),
                ));
            }
            entries[placement[record.u]] = (record.v, id);
            placement[record.u] += 1;
            entries[placement[record.v]] = (record.u, id);
            placement[record.v] += 1;
            edges.push(Edge {
                u: record.u,
                v: record.v,
                weight: record.weight,
            });
        }
        if edges.len() != m {
            return Err(GraphIoError::Format(
                "instance changed between streaming passes (fewer records than counted)".into(),
            ));
        }
        Ok(Graph::from_csr_parts(n, edges, offsets, entries))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::io;
    use rand::SeedableRng;

    /// A reader that hands out at most `max` bytes per `read` call, forcing
    /// records and lines to straddle refills.
    pub struct Throttled<R> {
        inner: R,
        max: usize,
    }

    impl<R: Read> Throttled<R> {
        pub fn new(inner: R, max: usize) -> Self {
            Throttled { inner, max }
        }
    }

    impl<R: Read> Read for Throttled<R> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            let cap = self.max.min(buf.len()).max(1);
            self.inner.read(&mut buf[..cap])
        }
    }

    fn sample(seed: u64) -> Graph {
        generators::random_weighted_k_edge_connected(
            18,
            2,
            14,
            60,
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(seed),
        )
    }

    #[test]
    fn binary_cursor_streams_all_records_in_id_order() {
        let g = sample(1);
        let mut bytes = Vec::new();
        io::write_binary(&mut bytes, &g).unwrap();
        let mut cursor = BinaryCursor::new(bytes.as_slice()).unwrap();
        assert_eq!(
            cursor.header(),
            StreamHeader {
                n: g.n(),
                declared_m: Some(g.m() as u64)
            }
        );
        for (_, e) in g.edges() {
            let r = cursor.next_record().unwrap().unwrap();
            assert_eq!((r.u, r.v, r.weight), (e.u, e.v, e.weight));
        }
        assert!(cursor.next_record().unwrap().is_none());
        // None is sticky.
        assert!(cursor.next_record().unwrap().is_none());
    }

    #[test]
    fn binary_cursor_handles_straddling_records_at_tiny_capacities() {
        let g = sample(2);
        let mut bytes = Vec::new();
        io::write_binary(&mut bytes, &g).unwrap();
        for (reader_max, chunk) in [(1, 16), (7, 16), (5, 17), (4096, 64), (3, 4096)] {
            let source = Throttled::new(bytes.as_slice(), reader_max);
            let mut cursor = BinaryCursor::with_chunk_capacity(source, chunk).unwrap();
            let mut count = 0;
            while let Some(r) = cursor.next_record().unwrap() {
                let e = g.edge(EdgeId(count));
                assert_eq!((r.u, r.v, r.weight), (e.u, e.v, e.weight));
                count += 1;
            }
            assert_eq!(count, g.m(), "reader_max = {reader_max}, chunk = {chunk}");
        }
    }

    #[test]
    fn binary_cursor_rejects_malformed_streams() {
        let g = sample(3);
        let mut bytes = Vec::new();
        io::write_binary(&mut bytes, &g).unwrap();
        // Short header.
        assert!(BinaryCursor::new(&b"KGB1"[..]).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(BinaryCursor::new(bad.as_slice()).is_err());
        // Oversized n / implausible m are header-time errors.
        let mut huge_n = bytes.clone();
        huge_n[4..12].copy_from_slice(&(u64::from(u32::MAX) + 1).to_le_bytes());
        assert!(BinaryCursor::new(huge_n.as_slice()).is_err());
        let mut huge_m = bytes.clone();
        huge_m[12..20].copy_from_slice(&((1u64 << 60) + 1).to_le_bytes());
        assert!(BinaryCursor::new(huge_m.as_slice()).is_err());
        // Truncated body surfaces at the torn record.
        let drain = |mut cursor: BinaryCursor<&[u8]>| -> Result<usize, GraphIoError> {
            let mut count = 0;
            while cursor.next_record()?.is_some() {
                count += 1;
            }
            Ok(count)
        };
        let cursor = BinaryCursor::new(&bytes[..bytes.len() - 1]).unwrap();
        assert!(drain(cursor).is_err());
        // Trailing garbage surfaces after the last declared record.
        let mut long = bytes.clone();
        long.push(0);
        let cursor = BinaryCursor::new(long.as_slice()).unwrap();
        assert!(drain(cursor).is_err());
        // A self-loop record names its index.
        let h = Graph::from_edges(3, [(0, 1, 1), (1, 2, 1)]);
        let mut enc = Vec::new();
        io::write_binary(&mut enc, &h).unwrap();
        enc[36..40].copy_from_slice(&2u32.to_le_bytes());
        enc[40..44].copy_from_slice(&2u32.to_le_bytes());
        let cursor = BinaryCursor::new(enc.as_slice()).unwrap();
        let err = drain(cursor).unwrap_err();
        assert!(err.to_string().contains("record 1"), "{err}");
    }

    #[test]
    fn text_cursor_streams_and_numbers_lines() {
        let text = "# comment\n\n4\n0 1 5\n# interlude\n2 3 7\n";
        let mut cursor = TextCursor::new(text.as_bytes()).unwrap();
        assert_eq!(
            cursor.header(),
            StreamHeader {
                n: 4,
                declared_m: None
            }
        );
        let a = cursor.next_record().unwrap().unwrap();
        assert_eq!((a.u, a.v, a.weight), (0, 1, 5));
        let b = cursor.next_record().unwrap().unwrap();
        assert_eq!((b.u, b.v, b.weight), (2, 3, 7));
        assert!(cursor.next_record().unwrap().is_none());
    }

    #[test]
    fn text_cursor_errors_carry_one_based_line_numbers() {
        // Line 3 is the bad vertex count.
        let err = TextCursor::new("# a\n# b\nthree\n".as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 3"), "{err}");
        // Line 4: missing weight.
        let mut cursor = TextCursor::new("# a\n3\n0 1 1\n0 2\n".as_bytes()).unwrap();
        cursor.next_record().unwrap();
        let err = cursor.next_record().unwrap_err();
        assert!(
            err.to_string().contains("line 4") && err.to_string().contains("missing weight"),
            "{err}"
        );
        // Line 5: malformed endpoint (names the token).
        let mut cursor = TextCursor::new("3\n\n0 1 1\n# c\n0 x 1\n".as_bytes()).unwrap();
        cursor.next_record().unwrap();
        let err = cursor.next_record().unwrap_err();
        assert!(
            err.to_string().contains("line 5") && err.to_string().contains("'x'"),
            "{err}"
        );
        // Line 2: out-of-range endpoint.
        let mut cursor = TextCursor::new("3\n0 9 1\n".as_bytes()).unwrap();
        let err = cursor.next_record().unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        // Line 2: self-loop.
        let mut cursor = TextCursor::new("3\n1 1 1\n".as_bytes()).unwrap();
        let err = cursor.next_record().unwrap_err();
        assert!(err.to_string().contains("invalid endpoints 1 1"), "{err}");
    }

    #[test]
    fn text_cursor_survives_tiny_buffer_capacities() {
        let g = sample(4);
        let mut text = Vec::new();
        io::write_text(&mut text, &g).unwrap();
        for capacity in [1usize, 7, 4096] {
            let mut cursor = TextCursor::with_chunk_capacity(
                Throttled::new(text.as_slice(), capacity),
                capacity,
            )
            .unwrap();
            let mut count = 0;
            while let Some(r) = cursor.next_record().unwrap() {
                let e = g.edge(EdgeId(count));
                assert_eq!((r.u, r.v, r.weight), (e.u, e.v, e.weight));
                count += 1;
            }
            assert_eq!(count, g.m(), "capacity = {capacity}");
        }
    }

    #[test]
    fn from_edge_stream_is_bit_identical_to_the_legacy_build() {
        let g = sample(5);
        let mut bytes = Vec::new();
        io::write_binary(&mut bytes, &g).unwrap();
        let streamed = Graph::from_edge_stream(|| BinaryCursor::new(bytes.as_slice())).unwrap();
        assert_eq!(streamed, g);
        assert!(streamed.is_frozen(), "the streamed build arrives frozen");
        // The CSR itself is bit-identical: same slices for every vertex.
        g.freeze();
        for v in 0..g.n() {
            assert_eq!(streamed.neighbors(v), g.neighbors(v), "vertex {v}");
        }
        // The streamed graph still accepts the mutable builder (which
        // invalidates and rebuilds, legacy contract).
        let mut grown = streamed.clone();
        grown.add_edge(0, 1, 99);
        assert!(!grown.is_frozen());
        assert_eq!(grown.m(), g.m() + 1);
        assert_eq!(grown.degree(0), g.degree(0) + 1);
    }

    #[test]
    fn from_edge_stream_handles_text_sources() {
        let g = sample(6);
        let mut text = Vec::new();
        io::write_text(&mut text, &g).unwrap();
        let streamed = Graph::from_edge_stream(|| TextCursor::new(text.as_slice())).unwrap();
        assert_eq!(streamed, g);
    }

    #[test]
    fn from_edge_stream_rejects_a_source_that_changes_between_passes() {
        let a = "3\n0 1 1\n1 2 1\n";
        let b = "3\n0 1 1\n";
        let mut openings = 0;
        let result = Graph::from_edge_stream(|| {
            openings += 1;
            let source = if openings == 1 { a } else { b };
            TextCursor::new(source.as_bytes())
        });
        assert!(result.is_err());
        let mut openings = 0;
        let result = Graph::from_edge_stream(|| {
            openings += 1;
            let source = if openings == 1 { b } else { a };
            TextCursor::new(source.as_bytes())
        });
        assert!(result.is_err());
        let mut openings = 0;
        let result = Graph::from_edge_stream(|| {
            openings += 1;
            let source = if openings == 1 {
                "3\n0 1 1\n"
            } else {
                "4\n0 1 1\n"
            };
            TextCursor::new(source.as_bytes())
        });
        assert!(result.is_err());
    }

    #[test]
    fn peek_header_reads_only_the_header() {
        let dir = std::env::temp_dir().join("kecss-graphs-stream-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample(7);
        let bin = dir.join("peek.graphb");
        io::write_graph(&bin, &g).unwrap();
        assert_eq!(
            peek_header(&bin).unwrap(),
            StreamHeader {
                n: g.n(),
                declared_m: Some(g.m() as u64)
            }
        );
        let text = dir.join("peek.graph");
        io::write_graph(&text, &g).unwrap();
        assert_eq!(
            peek_header(&text).unwrap(),
            StreamHeader {
                n: g.n(),
                declared_m: None
            }
        );
        // A binary file whose header is valid but whose body is truncated
        // still peeks fine — the header does not touch the body.
        let torn = dir.join("torn.graphb");
        let mut bytes = Vec::new();
        io::write_binary(&mut bytes, &g).unwrap();
        std::fs::write(&torn, &bytes[..HEADER_BYTES + 3]).unwrap();
        assert_eq!(peek_header(&torn).unwrap().n, g.n());
    }
}
