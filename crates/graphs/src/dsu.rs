//! Disjoint-set union (union–find) with union by rank and path compression.

/// A disjoint-set forest over the integers `0..n`.
///
/// Used by Kruskal's MST, the Borůvka-style distributed MST simulation, and
/// connectivity checks on masked edge sets.
///
/// # Example
///
/// ```
/// use graphs::dsu::DisjointSets;
///
/// let mut dsu = DisjointSets::new(4);
/// assert!(dsu.union(0, 1));
/// assert!(dsu.union(2, 3));
/// assert!(!dsu.union(1, 0));
/// assert!(dsu.connected(0, 1));
/// assert!(!dsu.connected(0, 2));
/// assert_eq!(dsu.component_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct DisjointSets {
    parent: Vec<usize>,
    rank: Vec<u8>,
    components: usize,
}

impl DisjointSets {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSets {
            parent: (0..n).collect(),
            rank: vec![0; n],
            components: n,
        }
    }

    /// Resets every element back to a singleton set, reusing the existing
    /// allocations. Equivalent to `*self = DisjointSets::new(self.len())`
    /// without touching the allocator — the contraction enumerators reset a
    /// pooled forest once per trial on their hot path.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i;
        }
        self.rank.fill(0);
        self.components = self.parent.len();
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// The representative of the set containing `x`, with path compression.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        // Path compression.
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// The representative of the set containing `x` without mutating the
    /// structure (no path compression). Useful when only a shared reference
    /// is available.
    pub fn find_immutable(&self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        root
    }

    /// Merges the sets containing `a` and `b`. Returns `true` if they were
    /// previously different sets.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra] >= self.rank[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo] = hi;
        if self.rank[hi] == self.rank[lo] {
            self.rank[hi] += 1;
        }
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn connected(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Number of disjoint sets currently represented.
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Component label of every element, with labels normalized to the
    /// representative's index.
    pub fn labels(&mut self) -> Vec<usize> {
        (0..self.len()).map(|v| self.find(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn singletons_start_disconnected() {
        let mut d = DisjointSets::new(3);
        assert_eq!(d.component_count(), 3);
        assert!(!d.connected(0, 2));
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
    }

    #[test]
    fn union_merges_and_counts() {
        let mut d = DisjointSets::new(5);
        assert!(d.union(0, 1));
        assert!(d.union(1, 2));
        assert!(!d.union(0, 2));
        assert_eq!(d.component_count(), 3);
        assert!(d.connected(0, 2));
        assert!(!d.connected(0, 3));
    }

    #[test]
    fn find_immutable_matches_find() {
        let mut d = DisjointSets::new(6);
        d.union(0, 1);
        d.union(2, 3);
        d.union(1, 3);
        for v in 0..4 {
            assert_eq!(d.find_immutable(v), d.find_immutable(0));
        }
        assert_eq!(d.find(5), 5);
        assert_eq!(d.find_immutable(5), 5);
    }

    #[test]
    fn labels_are_consistent_per_component() {
        let mut d = DisjointSets::new(4);
        d.union(0, 3);
        let labels = d.labels();
        assert_eq!(labels[0], labels[3]);
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
    }

    #[test]
    fn reset_restores_singletons_in_place() {
        let mut d = DisjointSets::new(8);
        for i in 0..7 {
            d.union(i, i + 1);
        }
        assert_eq!(d.component_count(), 1);
        d.reset();
        assert_eq!(d.component_count(), 8);
        for v in 0..8 {
            assert_eq!(d.find(v), v);
        }
        // The reset forest behaves exactly like a fresh one.
        assert!(d.union(3, 5));
        assert!(d.connected(3, 5));
        assert!(!d.connected(0, 3));
    }

    #[test]
    fn long_chain_compresses() {
        let n = 1000;
        let mut d = DisjointSets::new(n);
        for i in 0..n - 1 {
            d.union(i, i + 1);
        }
        assert_eq!(d.component_count(), 1);
        let r = d.find(0);
        for i in 0..n {
            assert_eq!(d.find(i), r);
        }
    }
}
