//! Rooted spanning trees: parents, depths, LCA queries and tree paths.
//!
//! The weighted TAP algorithm (Section 3 of the paper) reasons entirely in
//! terms of a rooted spanning tree `T`: a non-tree edge `e = {u, v}` covers
//! exactly the tree edges on the unique tree path `P_{u,v}`, which is the
//! concatenation of the `u → LCA(u, v)` and `v → LCA(u, v)` paths. This module
//! provides those primitives with binary-lifting LCA so the sequential
//! reference implementations stay near-linear.

use crate::graph::{EdgeId, EdgeSet, Graph, NodeId};

/// A rooted spanning tree (or rooted spanning forest component) of a graph,
/// with O(log n) LCA queries.
///
/// Tree edges are identified by their *child* endpoint: the tree edge
/// `{v, parent(v)}` is referred to as "the tree edge of `v`". This matches the
/// paper's convention `t = {v, p(v)}`.
#[derive(Clone, Debug)]
pub struct RootedTree {
    root: NodeId,
    parent: Vec<Option<NodeId>>,
    parent_edge: Vec<Option<EdgeId>>,
    depth: Vec<usize>,
    children: Vec<Vec<NodeId>>,
    /// Vertices in BFS order from the root (every vertex appears after its parent).
    order: Vec<NodeId>,
    /// `up[j][v]` = the 2^j-th ancestor of `v` (or the root when overshooting).
    up: Vec<Vec<NodeId>>,
    in_tree: Vec<bool>,
}

impl RootedTree {
    /// Builds the rooted tree over the component of `root` in the subgraph
    /// `(V, tree_edges)`.
    ///
    /// # Panics
    ///
    /// Panics if `root` is out of range, or if `tree_edges` contains a cycle
    /// in the component of `root` (it must be a forest).
    pub fn new(graph: &Graph, tree_edges: &EdgeSet, root: NodeId) -> Self {
        assert!(root < graph.n(), "root {root} out of range");
        let n = graph.n();
        let mut parent = vec![None; n];
        let mut parent_edge = vec![None; n];
        let mut depth = vec![0usize; n];
        let mut children = vec![Vec::new(); n];
        let mut in_tree = vec![false; n];
        let mut order = Vec::new();
        let mut queue = std::collections::VecDeque::new();
        in_tree[root] = true;
        queue.push_back(root);
        let mut edges_seen = 0usize;
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &(u, e) in graph.neighbors(v) {
                if !tree_edges.contains(e) {
                    continue;
                }
                if Some(e) == parent_edge[v] {
                    continue;
                }
                assert!(
                    !in_tree[u],
                    "tree_edges contains a cycle through vertex {u} (edge {e})"
                );
                in_tree[u] = true;
                parent[u] = Some(v);
                parent_edge[u] = Some(e);
                depth[u] = depth[v] + 1;
                children[v].push(u);
                edges_seen += 1;
                queue.push_back(u);
            }
        }
        debug_assert_eq!(edges_seen + 1, order.len());

        // Binary lifting table.
        let levels = usize::BITS as usize - (n.max(2) - 1).leading_zeros() as usize;
        let mut up = vec![vec![root; n]; levels.max(1)];
        for v in 0..n {
            up[0][v] = parent[v].unwrap_or(v);
        }
        for j in 1..up.len() {
            for v in 0..n {
                up[j][v] = up[j - 1][up[j - 1][v]];
            }
        }

        RootedTree {
            root,
            parent,
            parent_edge,
            depth,
            children,
            order,
            up,
            in_tree,
        }
    }

    /// The root vertex.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Whether `v` belongs to this tree (is in the root's component).
    pub fn contains(&self, v: NodeId) -> bool {
        self.in_tree[v]
    }

    /// Number of vertices in the tree.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the tree is empty (never true: the root is always present).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The parent of `v`, or `None` for the root (and for vertices outside the
    /// tree).
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.parent[v]
    }

    /// The tree edge `{v, parent(v)}`, or `None` for the root.
    pub fn parent_edge(&self, v: NodeId) -> Option<EdgeId> {
        self.parent_edge[v]
    }

    /// Depth of `v` (root has depth 0).
    pub fn depth(&self, v: NodeId) -> usize {
        self.depth[v]
    }

    /// The height of the tree (maximum depth).
    pub fn height(&self) -> usize {
        self.order.iter().map(|&v| self.depth[v]).max().unwrap_or(0)
    }

    /// Children of `v`.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        &self.children[v]
    }

    /// Vertices in BFS order from the root (parents before children).
    pub fn bfs_order(&self) -> &[NodeId] {
        &self.order
    }

    /// The tree edges, identified by their child endpoints.
    pub fn edge_children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.order.iter().copied().filter(|&v| v != self.root)
    }

    /// The tree edges as an [`EdgeSet`].
    pub fn edge_set(&self, graph: &Graph) -> EdgeSet {
        let mut s = graph.empty_edge_set();
        for e in self.parent_edge.iter().flatten() {
            s.insert(*e);
        }
        s
    }

    /// The ancestor of `v` that is `steps` levels up (clamped at the root).
    pub fn ancestor(&self, v: NodeId, steps: usize) -> NodeId {
        let mut v = v;
        let mut remaining = steps.min(self.depth[v]);
        let mut j = 0;
        while remaining > 0 {
            if remaining & 1 == 1 {
                v = self.up[j][v];
            }
            remaining >>= 1;
            j += 1;
        }
        v
    }

    /// The lowest common ancestor of `u` and `v`.
    ///
    /// # Panics
    ///
    /// Panics if either vertex is outside the tree.
    pub fn lca(&self, u: NodeId, v: NodeId) -> NodeId {
        assert!(self.in_tree[u], "vertex {u} is not in the tree");
        assert!(self.in_tree[v], "vertex {v} is not in the tree");
        let (mut a, mut b) = (u, v);
        if self.depth[a] < self.depth[b] {
            std::mem::swap(&mut a, &mut b);
        }
        a = self.ancestor(a, self.depth[a] - self.depth[b]);
        if a == b {
            return a;
        }
        for j in (0..self.up.len()).rev() {
            if self.up[j][a] != self.up[j][b] {
                a = self.up[j][a];
                b = self.up[j][b];
            }
        }
        self.parent[a].expect("distinct vertices at equal depth have a common ancestor")
    }

    /// Whether `a` is an ancestor of `b` (a vertex is an ancestor of itself).
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> bool {
        self.in_tree[a] && self.in_tree[b] && self.lca(a, b) == a
    }

    /// The vertices on the path from `v` up to (and including) its ancestor
    /// `top`.
    ///
    /// # Panics
    ///
    /// Panics if `top` is not an ancestor of `v`.
    pub fn path_to_ancestor(&self, v: NodeId, top: NodeId) -> Vec<NodeId> {
        assert!(self.is_ancestor(top, v), "{top} is not an ancestor of {v}");
        let mut path = Vec::new();
        let mut cur = v;
        loop {
            path.push(cur);
            if cur == top {
                break;
            }
            cur = self.parent[cur].expect("walk towards an ancestor cannot pass the root");
        }
        path
    }

    /// The tree edges on the unique path between `u` and `v`, identified by
    /// their child endpoints. This is the cover set `S_e` of a non-tree edge
    /// `e = {u, v}` in the TAP algorithm.
    pub fn path_edge_children(&self, u: NodeId, v: NodeId) -> Vec<NodeId> {
        let l = self.lca(u, v);
        let mut out = Vec::new();
        let mut cur = u;
        while cur != l {
            out.push(cur);
            cur = self.parent[cur].expect("path to LCA stays in tree");
        }
        let mut cur = v;
        while cur != l {
            out.push(cur);
            cur = self.parent[cur].expect("path to LCA stays in tree");
        }
        out
    }

    /// The tree edges on the unique path between `u` and `v` as edge ids.
    pub fn path_edges(&self, u: NodeId, v: NodeId) -> Vec<EdgeId> {
        self.path_edge_children(u, v)
            .into_iter()
            .map(|c| self.parent_edge[c].expect("non-root child has a parent edge"))
            .collect()
    }

    /// The number of tree edges on the path between `u` and `v`.
    pub fn path_len(&self, u: NodeId, v: NodeId) -> usize {
        let l = self.lca(u, v);
        self.depth[u] + self.depth[v] - 2 * self.depth[l]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use crate::mst;

    fn sample_tree() -> (Graph, RootedTree) {
        // Tree:      0
        //          /   \
        //         1     2
        //        / \     \
        //       3   4     5
        //       |
        //       6
        let mut g = Graph::new(7);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(1, 4, 1);
        g.add_edge(2, 5, 1);
        g.add_edge(3, 6, 1);
        let all = g.full_edge_set();
        let t = RootedTree::new(&g, &all, 0);
        (g, t)
    }

    #[test]
    fn parents_depths_children() {
        let (_, t) = sample_tree();
        assert_eq!(t.root(), 0);
        assert_eq!(t.parent(0), None);
        assert_eq!(t.parent(6), Some(3));
        assert_eq!(t.depth(6), 3);
        assert_eq!(t.height(), 3);
        assert_eq!(t.children(1), &[3, 4]);
        assert_eq!(t.len(), 7);
        assert!(!t.is_empty());
    }

    #[test]
    fn lca_queries() {
        let (_, t) = sample_tree();
        assert_eq!(t.lca(3, 4), 1);
        assert_eq!(t.lca(6, 4), 1);
        assert_eq!(t.lca(6, 5), 0);
        assert_eq!(t.lca(2, 5), 2);
        assert_eq!(t.lca(0, 6), 0);
        assert_eq!(t.lca(3, 3), 3);
    }

    #[test]
    fn ancestor_and_is_ancestor() {
        let (_, t) = sample_tree();
        assert_eq!(t.ancestor(6, 1), 3);
        assert_eq!(t.ancestor(6, 2), 1);
        assert_eq!(t.ancestor(6, 10), 0);
        assert!(t.is_ancestor(0, 6));
        assert!(t.is_ancestor(1, 4));
        assert!(!t.is_ancestor(2, 4));
        assert!(t.is_ancestor(5, 5));
    }

    #[test]
    fn paths_between_vertices() {
        let (_, t) = sample_tree();
        assert_eq!(t.path_len(6, 5), 5);
        let children = t.path_edge_children(6, 5);
        assert_eq!(children.len(), 5);
        assert!(children.contains(&6));
        assert!(children.contains(&3));
        assert!(children.contains(&1));
        assert!(children.contains(&2));
        assert!(children.contains(&5));
        assert_eq!(t.path_edges(4, 3).len(), 2);
        assert_eq!(t.path_len(3, 3), 0);
        assert!(t.path_edges(3, 3).is_empty());
    }

    #[test]
    fn path_to_ancestor_walks_upwards() {
        let (_, t) = sample_tree();
        assert_eq!(t.path_to_ancestor(6, 0), vec![6, 3, 1, 0]);
        assert_eq!(t.path_to_ancestor(6, 6), vec![6]);
    }

    #[test]
    #[should_panic(expected = "not an ancestor")]
    fn path_to_non_ancestor_panics() {
        let (_, t) = sample_tree();
        t.path_to_ancestor(6, 2);
    }

    #[test]
    fn tree_from_mst_of_random_graph() {
        use rand::SeedableRng;
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(9);
        let g = generators::random_weighted_k_edge_connected(40, 2, 60, 50, &mut rng);
        let forest = mst::kruskal(&g);
        let t = RootedTree::new(&g, &forest, 0);
        assert_eq!(t.len(), g.n());
        assert_eq!(t.edge_set(&g).len(), g.n() - 1);
        // Every non-tree edge's path length matches path_edges().len().
        for (id, e) in g.edges() {
            if forest.contains(id) {
                continue;
            }
            assert_eq!(t.path_len(e.u, e.v), t.path_edges(e.u, e.v).len());
        }
    }

    #[test]
    fn edge_children_skip_root() {
        let (_, t) = sample_tree();
        let kids: Vec<NodeId> = t.edge_children().collect();
        assert_eq!(kids.len(), 6);
        assert!(!kids.contains(&0));
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn cyclic_edge_set_is_rejected() {
        let g = generators::cycle(4, 1);
        RootedTree::new(&g, &g.full_edge_set(), 0);
    }

    #[test]
    fn partial_tree_only_contains_component() {
        let mut g = Graph::new(4);
        let a = g.add_edge(0, 1, 1);
        let _b = g.add_edge(2, 3, 1);
        let set = EdgeSet::from_ids(g.m(), [a]);
        let t = RootedTree::new(&g, &set, 0);
        assert!(t.contains(0));
        assert!(t.contains(1));
        assert!(!t.contains(2));
        assert_eq!(t.len(), 2);
    }
}
