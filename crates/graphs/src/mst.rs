//! Minimum spanning trees and forests.
//!
//! The 2-ECSS algorithm of Theorem 1.1 builds an MST and augments it; the
//! Aug_k algorithm of Section 4 computes an MST of a reweighted graph in every
//! iteration (weight 0 for edges already in the augmentation, 1 for active
//! candidates, 2 otherwise). Both uses are served by [`kruskal_in`], which
//! breaks ties deterministically by edge id so results are reproducible.

use crate::dsu::DisjointSets;
use crate::graph::{EdgeId, EdgeSet, Graph, Weight};

/// A minimum spanning forest of the whole graph (Kruskal).
///
/// Returns the forest as an [`EdgeSet`]; if the graph is connected it is a
/// spanning tree with `n - 1` edges.
pub fn kruskal(graph: &Graph) -> EdgeSet {
    kruskal_in(graph, &graph.full_edge_set())
}

/// A minimum spanning forest of the subgraph `(V, edges)` (Kruskal).
///
/// Ties are broken by edge id, so the result is deterministic and, when all
/// weights are distinct, the unique MST.
pub fn kruskal_in(graph: &Graph, edges: &EdgeSet) -> EdgeSet {
    let mut ids: Vec<EdgeId> = edges.iter().collect();
    ids.sort_by_key(|&id| (graph.weight(id), id));
    let mut dsu = DisjointSets::new(graph.n());
    let mut forest = graph.empty_edge_set();
    for id in ids {
        let e = graph.edge(id);
        if dsu.union(e.u, e.v) {
            forest.insert(id);
        }
    }
    forest
}

/// A minimum spanning forest where the weight of each edge is overridden by
/// `weight_fn` (used by the Aug_k reweighting step, Section 4 line 4).
///
/// Ties are broken by edge id.
pub fn kruskal_with<F>(graph: &Graph, edges: &EdgeSet, weight_fn: F) -> EdgeSet
where
    F: Fn(EdgeId) -> Weight,
{
    let mut ids: Vec<EdgeId> = edges.iter().collect();
    ids.sort_by_key(|&id| (weight_fn(id), id));
    let mut dsu = DisjointSets::new(graph.n());
    let mut forest = graph.empty_edge_set();
    for id in ids {
        let e = graph.edge(id);
        if dsu.union(e.u, e.v) {
            forest.insert(id);
        }
    }
    forest
}

/// A maximal spanning forest (ignoring weights) of the subgraph `(V, edges)`.
///
/// This is the building block of Thurimella's sparse-certificate baseline
/// ([36] in the paper): repeatedly extract maximal spanning forests and remove
/// them from the graph.
pub fn maximal_spanning_forest_in(graph: &Graph, edges: &EdgeSet) -> EdgeSet {
    let mut dsu = DisjointSets::new(graph.n());
    let mut forest = graph.empty_edge_set();
    for id in edges.iter() {
        let e = graph.edge(id);
        if dsu.union(e.u, e.v) {
            forest.insert(id);
        }
    }
    forest
}

/// Total weight of a spanning forest returned by the functions in this module.
pub fn forest_weight(graph: &Graph, forest: &EdgeSet) -> Weight {
    graph.weight_of(forest)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity;
    use crate::generators;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn mst_of_cycle_drops_heaviest_edge() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 2);
        g.add_edge(2, 3, 3);
        let heavy = g.add_edge(3, 0, 10);
        let t = kruskal(&g);
        assert_eq!(t.len(), 3);
        assert!(!t.contains(heavy));
        assert_eq!(forest_weight(&g, &t), 6);
    }

    #[test]
    fn mst_spans_connected_graph() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let g = generators::random_weighted_k_edge_connected(30, 2, 40, 100, &mut rng);
        let t = kruskal(&g);
        assert_eq!(t.len(), g.n() - 1);
        assert!(connectivity::is_connected_in(&g, &t));
    }

    #[test]
    fn mst_on_disconnected_graph_is_a_forest() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        let t = kruskal(&g);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn mst_weight_is_minimal_versus_brute_force() {
        // Exhaustively check on a small graph: enumerate all spanning trees.
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 4);
        g.add_edge(1, 2, 7);
        g.add_edge(2, 3, 2);
        g.add_edge(3, 0, 5);
        g.add_edge(0, 2, 1);
        g.add_edge(1, 3, 9);
        let t = kruskal(&g);
        let w = forest_weight(&g, &t);
        let ids: Vec<EdgeId> = g.edge_ids().collect();
        let mut best = u64::MAX;
        for mask in 0u32..(1 << ids.len()) {
            if mask.count_ones() as usize != g.n() - 1 {
                continue;
            }
            let set: EdgeSet = EdgeSet::from_ids(
                g.m(),
                ids.iter()
                    .enumerate()
                    .filter(|(i, _)| mask >> i & 1 == 1)
                    .map(|(_, &id)| id),
            );
            if connectivity::is_connected_in(&g, &set) {
                best = best.min(g.weight_of(&set));
            }
        }
        assert_eq!(w, best);
    }

    #[test]
    fn kruskal_with_overridden_weights() {
        let mut g = Graph::new(3);
        let cheap_by_weight = g.add_edge(0, 1, 1);
        let e2 = g.add_edge(1, 2, 100);
        let e3 = g.add_edge(0, 2, 100);
        // Override: make the nominally cheap edge expensive.
        let t = kruskal_with(&g, &g.full_edge_set(), |id| {
            if id == cheap_by_weight {
                10
            } else {
                0
            }
        });
        assert!(t.contains(e2));
        assert!(t.contains(e3));
        assert!(!t.contains(cheap_by_weight));
    }

    #[test]
    fn maximal_forest_spans_each_component() {
        let g = generators::complete(6, 1);
        let f = maximal_spanning_forest_in(&g, &g.full_edge_set());
        assert_eq!(f.len(), 5);
        assert!(connectivity::is_connected_in(&g, &f));
    }

    #[test]
    fn mst_is_deterministic_under_ties() {
        let g = generators::complete(5, 7);
        let a = kruskal(&g);
        let b = kruskal(&g);
        assert_eq!(a, b);
    }
}
