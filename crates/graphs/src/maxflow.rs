//! Unit-capacity maximum flow for exact edge-connectivity queries.
//!
//! Edge connectivity between two vertices of an undirected graph equals the
//! maximum number of edge-disjoint paths between them (Menger), which is the
//! value of a maximum flow where every undirected edge has capacity one in
//! each direction. The verifier uses this to certify the outputs of every
//! k-ECSS algorithm, so it is deliberately simple (BFS augmenting paths) and
//! exact.

use crate::graph::{EdgeSet, Graph, NodeId};
use std::collections::VecDeque;

/// A residual arc in the unit-capacity flow network.
#[derive(Clone, Copy, Debug)]
struct Arc {
    to: NodeId,
    /// Residual capacity (0 or 1 initially; reverse arcs also start at 1
    /// because the edge is undirected).
    cap: u32,
    /// Index of the reverse arc in the arena.
    rev: usize,
}

/// A reusable unit-capacity max-flow solver over a masked subgraph.
///
/// The per-vertex arc lists are stored CSR-style (offsets into one contiguous
/// arc-index array) so the BFS inner loop walks flat memory: no per-vertex
/// `Vec`s, built with a counting sort over the masked edge set.
#[derive(Clone, Debug)]
pub struct UnitFlow {
    n: usize,
    arcs: Vec<Arc>,
    /// `head_offsets[v]..head_offsets[v + 1]` indexes `head_arcs` for `v`.
    head_offsets: Vec<usize>,
    /// Arc-arena indices, grouped by owning vertex.
    head_arcs: Vec<usize>,
}

impl UnitFlow {
    /// Builds the flow network for the subgraph of `graph` given by `edges`.
    pub fn new(graph: &Graph, edges: &EdgeSet) -> Self {
        let n = graph.n();
        let mut head_offsets = vec![0usize; n + 1];
        for id in edges.iter() {
            let e = graph.edge(id);
            head_offsets[e.u + 1] += 1;
            head_offsets[e.v + 1] += 1;
        }
        for v in 0..n {
            head_offsets[v + 1] += head_offsets[v];
        }
        let mut arcs = Vec::with_capacity(2 * edges.len());
        let mut head_arcs = vec![0usize; 2 * edges.len()];
        let mut cursor = head_offsets.clone();
        for id in edges.iter() {
            let e = graph.edge(id);
            let a = arcs.len();
            // Undirected unit edge: both directions start at capacity 1.
            arcs.push(Arc {
                to: e.v,
                cap: 1,
                rev: a + 1,
            });
            arcs.push(Arc {
                to: e.u,
                cap: 1,
                rev: a,
            });
            head_arcs[cursor[e.u]] = a;
            cursor[e.u] += 1;
            head_arcs[cursor[e.v]] = a + 1;
            cursor[e.v] += 1;
        }
        UnitFlow {
            n,
            arcs,
            head_offsets,
            head_arcs,
        }
    }

    /// The arc-arena indices incident to `v`.
    #[inline]
    fn head(&self, v: NodeId) -> &[usize] {
        &self.head_arcs[self.head_offsets[v]..self.head_offsets[v + 1]]
    }

    fn reset(&mut self) {
        // Undirected unit edges: both directions back to capacity 1.
        for arc in &mut self.arcs {
            arc.cap = 1;
        }
    }

    /// Maximum `s`–`t` flow value, stopping early once it reaches `limit`.
    ///
    /// With unit capacities each augmentation adds exactly one unit, so the
    /// cost is `O(limit * m)`.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either vertex is out of range.
    pub fn max_flow_capped(&mut self, s: NodeId, t: NodeId, limit: u32) -> u32 {
        assert!(s < self.n && t < self.n, "flow endpoints out of range");
        assert_ne!(s, t, "source and sink must differ");
        self.reset();
        let mut flow = 0;
        while flow < limit {
            match self.augment(s, t) {
                true => flow += 1,
                false => break,
            }
        }
        flow
    }

    /// Maximum `s`–`t` flow value (uncapped; bounded by the degree of `s`).
    pub fn max_flow(&mut self, s: NodeId, t: NodeId) -> u32 {
        let cap = self.head(s).len() as u32;
        self.max_flow_capped(s, t, cap)
    }

    /// Finds one augmenting path by BFS and pushes one unit along it.
    fn augment(&mut self, s: NodeId, t: NodeId) -> bool {
        let mut pred: Vec<Option<usize>> = vec![None; self.n];
        let mut seen = vec![false; self.n];
        seen[s] = true;
        let mut queue = VecDeque::new();
        queue.push_back(s);
        'bfs: while let Some(v) = queue.pop_front() {
            for &ai in self.head(v) {
                let arc = self.arcs[ai];
                if arc.cap > 0 && !seen[arc.to] {
                    seen[arc.to] = true;
                    pred[arc.to] = Some(ai);
                    if arc.to == t {
                        break 'bfs;
                    }
                    queue.push_back(arc.to);
                }
            }
        }
        if !seen[t] {
            return false;
        }
        // Walk back from t, pushing one unit.
        let mut v = t;
        while v != s {
            let ai = pred[v].expect("predecessor must exist on augmenting path");
            self.arcs[ai].cap -= 1;
            let rev = self.arcs[ai].rev;
            self.arcs[rev].cap += 1;
            v = self.arcs[rev].to;
        }
        true
    }
}

/// The local edge connectivity between `s` and `t` in the subgraph given by
/// `edges` (the maximum number of edge-disjoint `s`–`t` paths).
pub fn local_edge_connectivity_in(graph: &Graph, edges: &EdgeSet, s: NodeId, t: NodeId) -> u32 {
    UnitFlow::new(graph, edges).max_flow(s, t)
}

/// The local edge connectivity capped at `limit` (early exit).
pub fn local_edge_connectivity_capped(
    graph: &Graph,
    edges: &EdgeSet,
    s: NodeId,
    t: NodeId,
    limit: u32,
) -> u32 {
    UnitFlow::new(graph, edges).max_flow_capped(s, t, limit)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn flow_on_cycle_is_two() {
        let g = generators::cycle(6, 1);
        let all = g.full_edge_set();
        assert_eq!(local_edge_connectivity_in(&g, &all, 0, 3), 2);
    }

    #[test]
    fn flow_on_path_is_one() {
        let g = generators::path(4, 1);
        let all = g.full_edge_set();
        assert_eq!(local_edge_connectivity_in(&g, &all, 0, 3), 1);
    }

    #[test]
    fn flow_on_complete_graph_equals_degree() {
        let g = generators::complete(5, 1);
        let all = g.full_edge_set();
        assert_eq!(local_edge_connectivity_in(&g, &all, 0, 4), 4);
    }

    #[test]
    fn capped_flow_stops_early() {
        let g = generators::complete(6, 1);
        let all = g.full_edge_set();
        assert_eq!(local_edge_connectivity_capped(&g, &all, 0, 5, 2), 2);
    }

    #[test]
    fn flow_respects_edge_mask() {
        let g = generators::cycle(5, 1);
        let mut half = g.empty_edge_set();
        // Keep only edges 0-1, 1-2 (a path); connectivity drops to 1.
        half.insert(crate::EdgeId(0));
        half.insert(crate::EdgeId(1));
        assert_eq!(local_edge_connectivity_in(&g, &half, 0, 2), 1);
        assert_eq!(local_edge_connectivity_in(&g, &half, 0, 3), 0);
    }

    #[test]
    fn parallel_edges_add_capacity() {
        let mut g = Graph::new(2);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 1, 1);
        let all = g.full_edge_set();
        assert_eq!(local_edge_connectivity_in(&g, &all, 0, 1), 3);
    }

    #[test]
    fn disconnected_vertices_have_zero_flow() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(2, 3, 1);
        let all = g.full_edge_set();
        assert_eq!(local_edge_connectivity_in(&g, &all, 0, 3), 0);
    }

    #[test]
    fn reusing_solver_resets_flow() {
        let g = generators::cycle(5, 1);
        let all = g.full_edge_set();
        let mut f = UnitFlow::new(&g, &all);
        assert_eq!(f.max_flow(0, 2), 2);
        assert_eq!(f.max_flow(1, 3), 2);
        assert_eq!(f.max_flow(0, 2), 2);
    }
}
