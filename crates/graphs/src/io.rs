//! Instance files: the plain-text format, the `KGB1` binary format, and
//! extension-based autodetection.
//!
//! Two on-disk encodings of the same logical object — an edge list with a
//! vertex count — with **identical `EdgeId` assignment** (edges are stored in
//! id order in both), so a graph round-trips bit-exactly through either
//! format and solvers produce byte-identical output regardless of which one
//! an instance was loaded from:
//!
//! * **Text** (`.graph`, and any other extension): `#` comment lines, one
//!   data line with the vertex count, then one `u v weight` line per edge.
//!   Human-readable, diff-able, ~20 bytes and one integer-parse per edge.
//! * **Binary** (`.graphb`): the `KGB1` magic, little-endian `u64` vertex
//!   and edge counts, then one fixed-width 16-byte record per edge —
//!   `u: u32, v: u32, weight: u64`, all little-endian. Length-prefixed and
//!   fixed-stride, so reading is one bulk I/O pass with no parsing; DESIGN.md
//!   §10 specifies the layout.
//!
//! Solutions (edge subsets of an instance) mirror the same split:
//!
//! * **Text** (`.edges`, and any other extension): one `u v weight` line per
//!   selected edge; edges are matched back to the instance by endpoints,
//!   cheapest unused edge first.
//! * **Binary** (`.solb`): the `KGS1` magic, a little-endian `u64` count,
//!   then one little-endian `u64` edge id per selected edge in strictly
//!   increasing order — the canonical encoding, since [`EdgeSet::iter`]
//!   yields increasing ids. Exact (ids, not endpoint matching) and eight
//!   bytes per edge; DESIGN.md §10 specifies the layout.
//!
//! All writers stream through an [`io::Write`] sink and the path-level
//! readers ([`read_graph`], [`read_solution`]) stream through the chunked
//! cursors of [`crate::stream`] — a 10⁷-edge instance is never materialized
//! as one in-memory buffer.

use crate::graph::{EdgeId, EdgeSet, Graph};
use crate::stream::{BinaryCursor, RecordCursor, TextCursor};
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The `.graphb` magic: "KGB1" (Kecss Graph Binary, version 1).
pub const BINARY_MAGIC: [u8; 4] = *b"KGB1";

/// The file extension that selects the binary format.
pub const BINARY_EXTENSION: &str = "graphb";

/// Size of one binary edge record: `u32 u, u32 v, u64 weight`.
const RECORD_BYTES: usize = 16;

/// The `.solb` magic: "KGS1" (Kecss Graph Solution, version 1).
pub const SOLUTION_BINARY_MAGIC: [u8; 4] = *b"KGS1";

/// The file extension that selects the binary solution format.
pub const SOLUTION_BINARY_EXTENSION: &str = "solb";

/// Size of one binary solution record: one `u64` edge id.
const SOLUTION_RECORD_BYTES: usize = 8;

/// Errors of the instance codecs.
#[derive(Debug)]
pub enum GraphIoError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// Malformed content (either format).
    Format(String),
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphIoError::Io(e) => write!(f, "i/o error: {e}"),
            GraphIoError::Format(msg) => write!(f, "format error: {msg}"),
        }
    }
}

impl std::error::Error for GraphIoError {}

impl From<io::Error> for GraphIoError {
    fn from(value: io::Error) -> Self {
        GraphIoError::Io(value)
    }
}

/// The two on-disk instance encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphFormat {
    /// One `u v weight` line per edge (the seed format).
    Text,
    /// `KGB1` fixed-width records (DESIGN.md §10).
    Binary,
}

impl GraphFormat {
    /// Picks the format from a path's extension: `.graphb` is binary,
    /// everything else (including no extension) is text.
    pub fn from_path(path: &Path) -> GraphFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) if ext.eq_ignore_ascii_case(BINARY_EXTENSION) => GraphFormat::Binary,
            _ => GraphFormat::Text,
        }
    }
}

/// The two on-disk solution encodings.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SolutionFormat {
    /// One `u v weight` line per selected edge (the seed format).
    Text,
    /// `KGS1` edge-id records (DESIGN.md §10).
    Binary,
}

impl SolutionFormat {
    /// Picks the format from a path's extension: `.solb` is binary,
    /// everything else (including no extension) is text.
    pub fn from_path(path: &Path) -> SolutionFormat {
        match path.extension().and_then(|e| e.to_str()) {
            Some(ext) if ext.eq_ignore_ascii_case(SOLUTION_BINARY_EXTENSION) => {
                SolutionFormat::Binary
            }
            _ => SolutionFormat::Text,
        }
    }
}

/// Streams a graph in the text format to `sink`.
///
/// # Errors
///
/// Propagates sink errors.
pub fn write_text<W: Write>(sink: &mut W, graph: &Graph) -> io::Result<()> {
    writeln!(
        sink,
        "# kecss instance: first line = n, then one 'u v weight' per edge"
    )?;
    writeln!(sink, "{}", graph.n())?;
    for (_, e) in graph.edges() {
        writeln!(sink, "{} {} {}", e.u, e.v, e.weight)?;
    }
    Ok(())
}

/// Parses a graph from the text format (in memory, via the legacy mutable
/// builder — the streaming two-pass path is [`read_graph`]).
///
/// # Errors
///
/// Returns [`GraphIoError::Format`] on malformed content; errors carry the
/// 1-based physical line number of the offending line.
pub fn read_text(text: &str) -> Result<Graph, GraphIoError> {
    let mut cursor = TextCursor::new(text.as_bytes())?;
    let mut graph = Graph::new(cursor.header().n);
    while let Some(record) = cursor.next_record()? {
        graph.add_edge(record.u, record.v, record.weight);
    }
    Ok(graph)
}

/// Streams a graph in the `KGB1` binary format to `sink`.
///
/// # Errors
///
/// Returns [`GraphIoError::Format`] if an endpoint exceeds `u32` (the record
/// width), and propagates sink errors.
pub fn write_binary<W: Write>(sink: &mut W, graph: &Graph) -> Result<(), GraphIoError> {
    if graph.n() > u32::MAX as usize {
        return Err(GraphIoError::Format(format!(
            "binary format stores endpoints as u32; n = {} does not fit",
            graph.n()
        )));
    }
    sink.write_all(&BINARY_MAGIC)?;
    sink.write_all(&(graph.n() as u64).to_le_bytes())?;
    sink.write_all(&(graph.m() as u64).to_le_bytes())?;
    let mut record = [0u8; RECORD_BYTES];
    for (_, e) in graph.edges() {
        record[0..4].copy_from_slice(&(e.u as u32).to_le_bytes());
        record[4..8].copy_from_slice(&(e.v as u32).to_le_bytes());
        record[8..16].copy_from_slice(&e.weight.to_le_bytes());
        sink.write_all(&record)?;
    }
    Ok(())
}

/// Parses a graph from the `KGB1` binary format.
///
/// # Errors
///
/// Returns [`GraphIoError::Format`] on a bad magic, truncated or oversized
/// content, or invalid endpoints.
pub fn read_binary(bytes: &[u8]) -> Result<Graph, GraphIoError> {
    let header = 4 + 8 + 8;
    if bytes.len() < header {
        return Err(GraphIoError::Format(
            "binary instance is shorter than the KGB1 header".into(),
        ));
    }
    if bytes[0..4] != BINARY_MAGIC {
        return Err(GraphIoError::Format(format!(
            "bad magic {:02x?} (expected \"KGB1\"); is this a binary instance?",
            &bytes[0..4]
        )));
    }
    let le_u64 =
        |at: usize| u64::from_le_bytes(bytes[at..at + 8].try_into().expect("8-byte slice"));
    let n = le_u64(4);
    let m = le_u64(12);
    // The writer rejects n > u32::MAX (u32 endpoints), so a larger header
    // value can only be a corrupt or hostile file; reject it before it can
    // size any allocation.
    if n > u64::from(u32::MAX) {
        return Err(GraphIoError::Format(format!(
            "binary instance declares {n} vertices, beyond the format's u32 endpoint range"
        )));
    }
    let n = n as usize;
    // Checked arithmetic: a crafted edge count must not overflow the
    // expected-length computation (wrap would mis-validate the body).
    let expected = usize::try_from(m)
        .ok()
        .and_then(|m| m.checked_mul(RECORD_BYTES))
        .ok_or_else(|| {
            GraphIoError::Format(format!(
                "binary instance declares an implausible edge count {m}"
            ))
        })?;
    let m = m as usize;
    let body = &bytes[header..];
    if body.len() != expected {
        return Err(GraphIoError::Format(format!(
            "binary instance declares {m} edges ({expected} body bytes) but carries {}",
            body.len()
        )));
    }
    let mut graph = Graph::new(n);
    for (idx, record) in body.chunks_exact(RECORD_BYTES).enumerate() {
        let u = u32::from_le_bytes(record[0..4].try_into().expect("4-byte slice")) as usize;
        let v = u32::from_le_bytes(record[4..8].try_into().expect("4-byte slice")) as usize;
        let w = u64::from_le_bytes(record[8..16].try_into().expect("8-byte slice"));
        if u >= n || v >= n || u == v {
            return Err(GraphIoError::Format(format!(
                "edge record {idx}: invalid endpoints {u} {v}"
            )));
        }
        graph.add_edge(u, v, w);
    }
    Ok(graph)
}

/// Writes a graph to `path`, picking the format from the extension
/// (`.graphb` = binary, anything else = text), through a buffered stream.
///
/// # Errors
///
/// Propagates I/O and encoding errors.
pub fn write_graph(path: &Path, graph: &Graph) -> Result<(), GraphIoError> {
    let mut sink = BufWriter::new(std::fs::File::create(path)?);
    match GraphFormat::from_path(path) {
        GraphFormat::Text => write_text(&mut sink, graph)?,
        GraphFormat::Binary => write_binary(&mut sink, graph)?,
    }
    sink.flush()?;
    Ok(())
}

/// Reads a graph from `path`, picking the format from the extension, by
/// **streaming**: the file is read twice through a chunked cursor
/// ([`Graph::from_edge_stream`]) and arrives frozen, with no full-file
/// buffer and no intermediate edge list. The result — including `EdgeId`
/// assignment and CSR entry order — is bit-identical to the in-memory
/// readers ([`read_text`], [`read_binary`]).
///
/// # Errors
///
/// Propagates I/O and format errors.
pub fn read_graph(path: &Path) -> Result<Graph, GraphIoError> {
    match GraphFormat::from_path(path) {
        GraphFormat::Text => {
            Graph::from_edge_stream(|| TextCursor::new(std::fs::File::open(path)?))
        }
        GraphFormat::Binary => {
            Graph::from_edge_stream(|| BinaryCursor::new(std::fs::File::open(path)?))
        }
    }
}

/// Streams a solution (edge subset of `graph`) as a text edge list to `sink`.
///
/// # Errors
///
/// Propagates sink errors.
pub fn write_solution_text<W: Write>(
    sink: &mut W,
    graph: &Graph,
    edges: &EdgeSet,
) -> io::Result<()> {
    writeln!(
        sink,
        "# kecss solution: one 'u v weight' line per selected edge"
    )?;
    for id in edges.iter() {
        let e = graph.edge(id);
        writeln!(sink, "{} {} {}", e.u, e.v, e.weight)?;
    }
    Ok(())
}

/// Parses a text solution back into an [`EdgeSet`] of `graph`, streaming
/// line by line.
///
/// Each `u v weight` line claims one edge between `u` and `v`; the weight is
/// informational and ignored. Parallel edges are matched greedily — the
/// cheapest unused edge between the endpoints first (ties by id) — so a
/// canonical re-encoding of the parsed set reproduces the input's edge
/// multiset.
///
/// # Errors
///
/// Returns [`GraphIoError::Format`] (with the 1-based physical line number)
/// if a line is malformed or references an edge the instance does not have.
pub fn read_solution_text<R: Read>(source: R, graph: &Graph) -> Result<EdgeSet, GraphIoError> {
    let mut set = graph.empty_edge_set();
    let mut reader = BufReader::new(source);
    let mut line = String::new();
    let mut line_no: u64 = 0;
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(set);
        }
        line_no += 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split_whitespace();
        let mut endpoint = |what: &str| -> Result<usize, GraphIoError> {
            parts.next().and_then(|p| p.parse().ok()).ok_or_else(|| {
                GraphIoError::Format(format!("solution line {line_no}: malformed {what}"))
            })
        };
        let u = endpoint("endpoint u")?;
        let v = endpoint("endpoint v")?;
        if u >= graph.n() || v >= graph.n() {
            return Err(GraphIoError::Format(format!(
                "solution line {line_no}: endpoint out of range"
            )));
        }
        let mut candidates: Vec<EdgeId> = graph
            .neighbors(u)
            .iter()
            .filter(|(nbr, id)| *nbr == v && !set.contains(*id))
            .map(|&(_, id)| id)
            .collect();
        candidates.sort_by_key(|&id| (graph.weight(id), id));
        let Some(&id) = candidates.first() else {
            return Err(GraphIoError::Format(format!(
                "solution line {line_no}: the instance has no unused edge between {u} and {v}"
            )));
        };
        set.insert(id);
    }
}

/// Streams a solution in the `KGS1` binary format to `sink`: magic, LE u64
/// count, then one LE u64 edge id per selected edge in strictly increasing
/// order ([`EdgeSet::iter`]'s order, which makes the encoding canonical).
///
/// # Errors
///
/// Propagates sink errors.
pub fn write_solution_binary<W: Write>(sink: &mut W, edges: &EdgeSet) -> io::Result<()> {
    sink.write_all(&SOLUTION_BINARY_MAGIC)?;
    sink.write_all(&(edges.len() as u64).to_le_bytes())?;
    for id in edges.iter() {
        sink.write_all(&(id.index() as u64).to_le_bytes())?;
    }
    Ok(())
}

/// Parses a solution from the `KGS1` binary format, streaming through a
/// chunked reader — exact edge ids, no endpoint matching.
///
/// # Errors
///
/// Returns [`GraphIoError::Format`] on a bad magic, truncated or trailing
/// content, ids at or beyond `graph.m()`, or ids out of strictly increasing
/// order (which also catches duplicates).
pub fn read_solution_binary<R: Read>(source: R, graph: &Graph) -> Result<EdgeSet, GraphIoError> {
    let mut reader = BufReader::new(source);
    let mut header = [0u8; 4 + 8];
    reader.read_exact(&mut header).map_err(|e| {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            GraphIoError::Format("binary solution is shorter than the KGS1 header".into())
        } else {
            GraphIoError::Io(e)
        }
    })?;
    if header[0..4] != SOLUTION_BINARY_MAGIC {
        return Err(GraphIoError::Format(format!(
            "bad magic {:02x?} (expected \"KGS1\"); is this a binary solution?",
            &header[0..4]
        )));
    }
    let count = u64::from_le_bytes(header[4..12].try_into().expect("8-byte slice"));
    if count > graph.m() as u64 {
        return Err(GraphIoError::Format(format!(
            "binary solution declares {count} edges but the instance has only {}",
            graph.m()
        )));
    }
    let mut set = graph.empty_edge_set();
    let mut record = [0u8; SOLUTION_RECORD_BYTES];
    let mut previous: Option<u64> = None;
    for idx in 0..count {
        reader.read_exact(&mut record).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                GraphIoError::Format(format!(
                    "binary solution declares {count} edges but its body ends after {idx}"
                ))
            } else {
                GraphIoError::Io(e)
            }
        })?;
        let id = u64::from_le_bytes(record);
        if id >= graph.m() as u64 {
            return Err(GraphIoError::Format(format!(
                "solution record {idx}: edge id {id} out of range (m = {})",
                graph.m()
            )));
        }
        if previous.is_some_and(|p| p >= id) {
            return Err(GraphIoError::Format(format!(
                "solution record {idx}: edge id {id} is not strictly increasing"
            )));
        }
        previous = Some(id);
        set.insert(EdgeId(id as usize));
    }
    if reader.read(&mut [0u8; 1])? != 0 {
        return Err(GraphIoError::Format(format!(
            "binary solution carries trailing bytes after its {count} declared records"
        )));
    }
    Ok(set)
}

/// Writes a solution to `path`, picking the format from the extension
/// (`.solb` = `KGS1` binary, anything else = text), through a buffered
/// stream.
///
/// # Errors
///
/// Propagates I/O errors.
pub fn write_solution(path: &Path, graph: &Graph, edges: &EdgeSet) -> Result<(), GraphIoError> {
    let mut sink = BufWriter::new(std::fs::File::create(path)?);
    match SolutionFormat::from_path(path) {
        SolutionFormat::Text => write_solution_text(&mut sink, graph, edges)?,
        SolutionFormat::Binary => write_solution_binary(&mut sink, edges)?,
    }
    sink.flush()?;
    Ok(())
}

/// Reads a solution from `path`, picking the format from the extension,
/// streaming either way.
///
/// # Errors
///
/// Propagates I/O and format errors.
pub fn read_solution(path: &Path, graph: &Graph) -> Result<EdgeSet, GraphIoError> {
    let file = std::fs::File::open(path)?;
    match SolutionFormat::from_path(path) {
        SolutionFormat::Text => read_solution_text(file, graph),
        SolutionFormat::Binary => read_solution_binary(file, graph),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use rand::SeedableRng;

    fn sample(seed: u64) -> Graph {
        generators::random_weighted_k_edge_connected(
            14,
            2,
            9,
            40,
            &mut rand_chacha::ChaCha8Rng::seed_from_u64(seed),
        )
    }

    #[test]
    fn text_round_trip_preserves_edge_ids() {
        let g = sample(1);
        let mut buf = Vec::new();
        write_text(&mut buf, &g).unwrap();
        let parsed = read_text(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn binary_round_trip_preserves_edge_ids() {
        let g = sample(2);
        let mut buf = Vec::new();
        write_binary(&mut buf, &g).unwrap();
        assert_eq!(&buf[0..4], b"KGB1");
        assert_eq!(buf.len(), 20 + 16 * g.m());
        let parsed = read_binary(&buf).unwrap();
        assert_eq!(parsed, g);
    }

    #[test]
    fn formats_agree_on_the_same_graph() {
        let g = sample(3);
        let mut text = Vec::new();
        write_text(&mut text, &g).unwrap();
        let mut binary = Vec::new();
        write_binary(&mut binary, &g).unwrap();
        let from_text = read_text(std::str::from_utf8(&text).unwrap()).unwrap();
        let from_binary = read_binary(&binary).unwrap();
        assert_eq!(from_text, from_binary);
    }

    #[test]
    fn extension_autodetection() {
        assert_eq!(
            GraphFormat::from_path(Path::new("a/b/inst.graph")),
            GraphFormat::Text
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("inst.graphb")),
            GraphFormat::Binary
        );
        assert_eq!(
            GraphFormat::from_path(Path::new("inst.GRAPHB")),
            GraphFormat::Binary
        );
        assert_eq!(GraphFormat::from_path(Path::new("inst")), GraphFormat::Text);
        assert_eq!(
            GraphFormat::from_path(Path::new("inst.edges")),
            GraphFormat::Text
        );
    }

    #[test]
    fn file_round_trip_in_both_formats() {
        let dir = std::env::temp_dir().join("kecss-graphs-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample(4);
        for name in ["roundtrip.graph", "roundtrip.graphb"] {
            let path = dir.join(name);
            write_graph(&path, &g).unwrap();
            let parsed = read_graph(&path).unwrap();
            assert_eq!(parsed, g, "{name}");
        }
        // The binary file is much denser than the text file.
        let text_len = std::fs::metadata(dir.join("roundtrip.graph"))
            .unwrap()
            .len();
        let bin_len = std::fs::metadata(dir.join("roundtrip.graphb"))
            .unwrap()
            .len();
        assert!(
            bin_len < text_len * 3,
            "binary {bin_len} vs text {text_len}"
        );
    }

    #[test]
    fn malformed_binary_is_rejected() {
        // Too short.
        assert!(read_binary(b"KGB1").is_err());
        // Bad magic.
        let mut buf = Vec::new();
        write_binary(&mut buf, &sample(5)).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_binary(&bad).is_err());
        // Truncated body.
        assert!(read_binary(&buf[..buf.len() - 1]).is_err());
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0);
        assert!(read_binary(&long).is_err());
        // A crafted edge count must not overflow the expected-length check
        // (wrap would validate the body against a tiny number).
        let mut huge_m = buf.clone();
        huge_m[12..20].copy_from_slice(&((1u64 << 60) + 1).to_le_bytes());
        assert!(read_binary(&huge_m).is_err());
        // A vertex count beyond the u32 endpoint range is rejected before it
        // sizes anything.
        let mut huge_n = buf.clone();
        huge_n[4..12].copy_from_slice(&(u64::from(u32::MAX) + 1).to_le_bytes());
        assert!(read_binary(&huge_n).is_err());
        // Invalid endpoints (self-loop record).
        let g = Graph::from_edges(3, [(0, 1, 1)]);
        let mut enc = Vec::new();
        write_binary(&mut enc, &g).unwrap();
        enc[20..24].copy_from_slice(&1u32.to_le_bytes());
        enc[24..28].copy_from_slice(&1u32.to_le_bytes());
        assert!(read_binary(&enc).is_err());
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(read_text("").is_err());
        assert!(read_text("three\n").is_err());
        assert!(read_text("3\n0 1\n").is_err());
        assert!(read_text("3\n0 9 1\n").is_err());
        assert!(read_text("3\n1 1 1\n").is_err());
    }

    #[test]
    fn solution_text_streams() {
        let g = sample(6);
        let set = g.full_edge_set();
        let mut buf = Vec::new();
        write_solution_text(&mut buf, &g, &set).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().filter(|l| !l.starts_with('#')).count(), g.m());
    }

    #[test]
    fn text_errors_carry_one_based_line_numbers() {
        // The vertex-count line is physical line 2 here.
        let err = read_text("# header\nnope\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        // The bad edge line is physical line 4 (comment + count + edge).
        let err = read_text("# header\n3\n0 1 1\n0 2\n").unwrap_err();
        assert!(err.to_string().contains("line 4"), "{err}");
    }

    #[test]
    fn solution_format_autodetection() {
        assert_eq!(
            SolutionFormat::from_path(Path::new("a/b/sol.edges")),
            SolutionFormat::Text
        );
        assert_eq!(
            SolutionFormat::from_path(Path::new("sol.solb")),
            SolutionFormat::Binary
        );
        assert_eq!(
            SolutionFormat::from_path(Path::new("sol.SOLB")),
            SolutionFormat::Binary
        );
        assert_eq!(
            SolutionFormat::from_path(Path::new("sol")),
            SolutionFormat::Text
        );
    }

    #[test]
    fn binary_solution_round_trips() {
        let g = sample(7);
        let mut set = g.empty_edge_set();
        for id in g.edge_ids().filter(|id| id.index() % 3 != 1) {
            set.insert(id);
        }
        let mut buf = Vec::new();
        write_solution_binary(&mut buf, &set).unwrap();
        assert_eq!(&buf[0..4], b"KGS1");
        assert_eq!(buf.len(), 12 + 8 * set.len());
        let parsed = read_solution_binary(buf.as_slice(), &g).unwrap();
        assert_eq!(parsed, set);
    }

    #[test]
    fn malformed_binary_solutions_are_rejected() {
        let g = sample(8);
        let mut set = g.empty_edge_set();
        set.insert(crate::EdgeId(0));
        set.insert(crate::EdgeId(2));
        let mut buf = Vec::new();
        write_solution_binary(&mut buf, &set).unwrap();
        // Short header.
        assert!(read_solution_binary(&b"KGS1"[..], &g).is_err());
        // Bad magic.
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_solution_binary(bad.as_slice(), &g).is_err());
        // Truncated body.
        assert!(read_solution_binary(&buf[..buf.len() - 1], &g).is_err());
        // Trailing garbage.
        let mut long = buf.clone();
        long.push(0);
        assert!(read_solution_binary(long.as_slice(), &g).is_err());
        // Count beyond m.
        let mut huge = buf.clone();
        huge[4..12].copy_from_slice(&(g.m() as u64 + 1).to_le_bytes());
        assert!(read_solution_binary(huge.as_slice(), &g).is_err());
        // Id out of range.
        let mut oob = buf.clone();
        oob[20..28].copy_from_slice(&(g.m() as u64).to_le_bytes());
        assert!(read_solution_binary(oob.as_slice(), &g).is_err());
        // Duplicate / non-increasing ids.
        let mut dup = buf.clone();
        dup[20..28].copy_from_slice(&0u64.to_le_bytes());
        assert!(read_solution_binary(dup.as_slice(), &g).is_err());
    }

    #[test]
    fn solution_file_round_trip_in_both_formats() {
        let dir = std::env::temp_dir().join("kecss-graphs-io-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let g = sample(9);
        let mut set = g.empty_edge_set();
        for id in g.edge_ids().filter(|id| id.index() % 2 == 0) {
            set.insert(id);
        }
        for name in ["sol.edges", "sol.solb"] {
            let path = dir.join(name);
            write_solution(&path, &g, &set).unwrap();
            assert_eq!(read_solution(&path, &g).unwrap(), set, "{name}");
        }
        // The binary encoding is the canonical one: re-writing the parsed
        // set is byte-identical.
        let path = dir.join("sol.solb");
        let first = std::fs::read(&path).unwrap();
        let parsed = read_solution(&path, &g).unwrap();
        let mut second = Vec::new();
        write_solution_binary(&mut second, &parsed).unwrap();
        assert_eq!(first, second);
    }

    #[test]
    fn text_solutions_match_by_endpoints_with_line_numbers() {
        let mut g = Graph::new(3);
        let a = g.add_edge(0, 1, 5);
        let b = g.add_edge(0, 1, 2);
        let c = g.add_edge(1, 2, 3);
        let mut set = g.empty_edge_set();
        set.insert(a);
        set.insert(b);
        set.insert(c);
        let mut buf = Vec::new();
        write_solution_text(&mut buf, &g, &set).unwrap();
        let parsed = read_solution_text(buf.as_slice(), &g).unwrap();
        assert_eq!(parsed, set);
        // The header comment is line 1, so the first bad data line is 2.
        let err = read_solution_text(&b"# c\n0 2 1\n"[..], &g).unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
        let err = read_solution_text(&b"0 x 1\n"[..], &g).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }
}
