//! Library backing the `kecss` command-line tool.
//!
//! The binary is a thin wrapper around [`run`]; everything else lives here so
//! that argument parsing, instance I/O and command execution are unit-tested.
//!
//! Supported commands (see `kecss help`):
//!
//! * `generate` — write a synthetic k-edge-connected instance to a `.graph`
//!   (text) or `.graphb` (`KGB1` binary, DESIGN.md §10) file; the format is
//!   picked from the extension everywhere an instance is read or written.
//! * `solve` — read an instance (either format), run one of the paper's
//!   algorithms (`2ecss`, `kecss`, `3ecss`, `3ecss-weighted`, or the
//!   baselines), print the solution summary and optionally write the chosen
//!   edges.
//! * `verify` — check a solution file for k-edge-connectivity against its
//!   instance.
//! * `convert` — translate an instance between the text and binary formats.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod graph_io;

use std::fmt;

/// Errors surfaced to the command-line user.
#[derive(Debug)]
pub enum CliError {
    /// The command line could not be parsed.
    Usage(String),
    /// An input file could not be read or parsed.
    Io(std::io::Error),
    /// An instance or solution file was malformed.
    Format(String),
    /// The solver rejected the instance.
    Solver(kecss::Error),
    /// A service interaction (`kecss submit`) failed: connection trouble, a
    /// protocol violation, a failed job, or a result that did not verify.
    Service(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(msg) => write!(f, "usage error: {msg}"),
            CliError::Io(e) => write!(f, "i/o error: {e}"),
            CliError::Format(msg) => write!(f, "format error: {msg}"),
            CliError::Solver(e) => write!(f, "solver error: {e}"),
            CliError::Service(msg) => write!(f, "service error: {msg}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(value: std::io::Error) -> Self {
        CliError::Io(value)
    }
}

impl From<kecss::Error> for CliError {
    fn from(value: kecss::Error) -> Self {
        CliError::Solver(value)
    }
}

/// Parses the arguments and runs the corresponding command, writing its
/// report to `out`.
///
/// # Errors
///
/// Returns a [`CliError`] describing what went wrong; the binary prints it and
/// exits non-zero.
pub fn run<W: std::io::Write>(argv: &[String], out: &mut W) -> Result<(), CliError> {
    let command = args::parse(argv)?;
    commands::execute(command, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_help_succeeds() {
        let mut out = Vec::new();
        run(&["help".to_string()], &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.contains("generate"));
        assert!(text.contains("solve"));
        assert!(text.contains("verify"));
    }

    #[test]
    fn run_unknown_command_is_a_usage_error() {
        let mut out = Vec::new();
        let err = run(&["frobnicate".to_string()], &mut out).unwrap_err();
        assert!(matches!(err, CliError::Usage(_)));
        assert!(err.to_string().contains("usage"));
    }
}
