//! The `kecss` command-line tool. See `kecss help` or the crate documentation
//! of `kecss_cli` for the supported commands.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut stdout = std::io::stdout();
    if let Err(err) = kecss_cli::run(&argv, &mut stdout) {
        eprintln!("error: {err}");
        eprintln!("run 'kecss help' for usage");
        std::process::exit(1);
    }
}
